//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of criterion's surface that `crates/bench/benches/*` use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`Throughput`], [`BenchmarkId`],
//! [`BatchSize`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is deliberately simple: each benchmark auto-scales its
//! iteration count until a sample takes long enough to time reliably, runs
//! `sample_size` samples, and reports min/mean ns per iteration (plus
//! throughput when configured). Good enough to compare runs on one
//! machine; not a statistical engine.
//!
//! Measurement runs only under `cargo bench` (which passes `--bench` to
//! harness=false targets). `cargo test --benches` and `cargo bench --
//! --test` execute every benchmark once and skip measurement.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The stub treats all variants
/// identically: setup is re-run per iteration and excluded from timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Medium per-iteration input.
    MediumInput,
    /// Large per-iteration input.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier, e.g. `BenchmarkId::from_parameter(144)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form (the group supplies the function name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Passed to benchmark closures; drives the timed loop.
pub struct Bencher<'a> {
    cfg: &'a Config,
    /// Filled in by the timing loop; `(total_duration, iterations)` per sample.
    samples: Vec<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Times `routine` in an auto-scaled loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.cfg.test_mode {
            std::hint::black_box(routine());
            return;
        }
        let iters = calibrate(|n| {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            start.elapsed()
        });
        for _ in 0..self.cfg.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push((start.elapsed(), iters));
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.cfg.test_mode {
            std::hint::black_box(routine(setup()));
            return;
        }
        let iters = calibrate(|n| {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            start.elapsed()
        });
        for _ in 0..self.cfg.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.samples.push((start.elapsed(), iters));
        }
    }
}

/// Finds an iteration count whose sample takes ≥ ~5 ms (capped so very
/// slow benchmarks still run once per sample).
fn calibrate(mut run: impl FnMut(u64) -> Duration) -> u64 {
    let target = Duration::from_millis(5);
    let mut iters = 1u64;
    loop {
        let took = run(iters);
        if took >= target || iters >= 1 << 20 {
            return iters;
        }
        // Scale towards the target, at least doubling.
        let scale = (target.as_nanos() / took.as_nanos().max(1)).clamp(2, 16) as u64;
        iters = iters.saturating_mul(scale);
    }
}

struct Config {
    sample_size: usize,
    test_mode: bool,
}

/// The benchmark manager. Collects and reports results to stdout.
pub struct Criterion {
    cfg: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench` to harness=false targets;
        // `cargo test --benches` passes neither flag. Measure only under
        // `cargo bench`, and honor an explicit `--test` override — same
        // gating as real criterion.
        let args: Vec<String> = std::env::args().collect();
        let test_mode = !args.iter().any(|a| a == "--bench") || args.iter().any(|a| a == "--test");
        Self {
            cfg: Config {
                sample_size: 100,
                test_mode,
            },
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            cfg: &self.cfg,
            samples: Vec::new(),
        };
        f(&mut b);
        report(name, &b.samples, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        // The group gets its own config copy so `sample_size` overrides
        // stay scoped to the group, as in real criterion.
        BenchmarkGroup {
            cfg: Config {
                sample_size: self.cfg.sample_size,
                test_mode: self.cfg.test_mode,
            },
            name: name.to_string(),
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    cfg: Config,
    name: String,
    throughput: Option<Throughput>,
    // Keeps real criterion's `&mut Criterion` borrow semantics.
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            cfg: &self.cfg,
            samples: Vec::new(),
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.id),
            &b.samples,
            self.throughput,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            cfg: &self.cfg,
            samples: Vec::new(),
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            &b.samples,
            self.throughput,
        );
        self
    }

    /// Closes the group (reporting already happened per-benchmark).
    pub fn finish(self) {}
}

fn report(name: &str, samples: &[(Duration, u64)], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<50} ok (test mode)");
        return;
    }
    let per_iter: Vec<f64> = samples
        .iter()
        .map(|(d, n)| d.as_nanos() as f64 / *n as f64)
        .collect();
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let tput = match throughput {
        Some(Throughput::Bytes(b)) => {
            format!("  {:8.2} GiB/s", b as f64 / min / 1.073_741_824)
        }
        Some(Throughput::Elements(e)) => {
            // e elements per `min` ns → e/min elem/ns → ×1e3 Melem/s.
            format!("  {:8.2} Melem/s", e as f64 / min * 1e3)
        }
        None => String::new(),
    };
    println!("{name:<50} min {min:>12.1} ns/iter  mean {mean:>12.1} ns/iter{tput}");
}

/// Declares a benchmark group function, optionally with a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export so `criterion::black_box` callers work; defers to
/// `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}
