//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of proptest's surface that the `prop_*.rs` suites use:
//!
//! * the [`proptest!`] macro (`#[test] fn name(arg in strategy, ..) { .. }`);
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * range strategies over integers and floats (`0u64..100`, `0u8..=7`,
//!   `-1e9f64..1e9`), [`any`], tuple strategies, and
//!   [`collection::vec`];
//!
//! Cases are generated from a deterministic per-test seed (splitmix64 over
//! the test name), so failures reproduce across runs. There is no
//! shrinking: a failing case reports its inputs via `Debug` instead.
//! `PROPTEST_CASES` overrides the default case count (256).

#![forbid(unsafe_code)]

/// Deterministic RNG and failure plumbing used by the generated tests.
pub mod test_runner {
    /// Splitmix64 generator; statistically fine for test-case generation
    /// and trivially reproducible.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Derives a per-test seed from the test's name so every test has
        /// an independent, stable stream.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::new(h)
        }

        /// Captures the generator state so a case's inputs can be
        /// regenerated later (e.g. for failure reporting).
        pub fn snapshot(&self) -> u64 {
            self.state
        }

        /// Rebuilds a generator from a [`snapshot`](Self::snapshot).
        pub fn restore(state: u64) -> Self {
            Self { state }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Multiply-shift bounded sampling; bias is negligible for
            // test-case generation.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// A failed property; carries the formatted assertion message.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(msg: String) -> Self {
            Self(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Extracts a printable message from a `catch_unwind` payload.
    pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            format!("panicked: {s}")
        } else if let Some(s) = payload.downcast_ref::<String>() {
            format!("panicked: {s}")
        } else {
            "panicked (non-string payload)".to_string()
        }
    }

    /// Number of cases each property runs (`PROPTEST_CASES` overrides).
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Anything that can produce a value from the RNG.
    pub trait Strategy {
        /// The value type this strategy generates.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// `Strategy` passes through references so strategies can be borrowed.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    if span > u64::MAX as u128 {
                        // Whole-domain range: use the raw generator.
                        rng.next_u64() as $t
                    } else {
                        (lo + rng.below(span as u64) as i128) as $t
                    }
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    /// Types with a canonical whole-domain strategy (see [`crate::any`]).
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only; keeps arithmetic properties meaningful.
            (rng.unit_f64() - 0.5) * 2e12
        }
    }

    /// The strategy returned by [`crate::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification accepted by [`vec()`]: a fixed size or a range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Strategies that sample from explicit value sets
/// (`prop::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice among the given values.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Builds a [`Select`] strategy; `options` must be non-empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Whole-domain strategy for `T` (`any::<u8>()`, `any::<bool>()`, ...).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// The glob-import surface the test suites use.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a property within a `proptest!` body; failure aborts the case
/// with the offending inputs reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!(a == b)` with both sides reported on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// `prop_assert!(a != b)` with both sides reported on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)+);
    }};
}

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn roundtrip(xs in proptest::collection::vec(any::<u8>(), 0..64)) {
///         prop_assert_eq!(decode(&encode(&xs)), xs);
///     }
/// }
/// ```
///
/// Each function runs [`test_runner::case_count`] cases drawn from a
/// deterministic per-test stream; a failing case panics with its inputs.
#[macro_export]
macro_rules! proptest {
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..$crate::test_runner::case_count() {
                let snapshot = rng.snapshot();
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    },
                ));
                let failure = match outcome {
                    ::core::result::Result::Ok(::core::result::Result::Ok(())) => None,
                    ::core::result::Result::Ok(::core::result::Result::Err(e)) => {
                        Some(e.to_string())
                    }
                    ::core::result::Result::Err(payload) => {
                        Some($crate::test_runner::panic_message(&payload))
                    }
                };
                if let Some(msg) = failure {
                    // The body may have moved (or panicked before using)
                    // its inputs; replay the RNG from the snapshot to
                    // render them.
                    let mut replay = $crate::test_runner::TestRng::restore(snapshot);
                    let mut inputs = ::std::string::String::new();
                    $(inputs.push_str(&format!(
                        "\n  {} = {:?}",
                        stringify!($arg),
                        $crate::strategy::Strategy::sample(&($strat), &mut replay)
                    ));)+
                    panic!(
                        "proptest case {case} of {} failed: {msg}\ninputs:{inputs}",
                        stringify!($name),
                    );
                }
            }
        }
        $crate::proptest! { $($rest)* }
    };
    () => {};
}
