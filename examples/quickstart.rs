//! Quickstart: remote memory access over the EDM fabric.
//!
//! Builds the paper's testbed topology (compute node, EDM switch, memory
//! node), performs a remote write, read, and atomic compare-and-swap, and
//! prints the end-to-end latency of each — which lands around the paper's
//! headline ~300 ns.
//!
//! Run with: `cargo run --example quickstart`

use edm_core::testbed::{Fabric, TestbedConfig};
use edm_memory::rmw::RmwOp;
use edm_sim::Time;

fn main() {
    // Node 0 is the compute node, node 1 the memory node (Figure 4).
    let mut fabric = Fabric::new(TestbedConfig::default());

    // Remote write: 64 B of application state to remote address 0x1000.
    let payload = vec![0xAB; 64];
    let write = fabric.write(Time::ZERO, 0, 1, 0x1000, payload.clone());

    // Remote read of the same cache line, issued after the write settles.
    let read = fabric.read(Time::from_us(1), 0, 1, 0x1000, 64);

    // Atomic compare-and-swap on a lock word.
    let cas = fabric.rmw(
        Time::from_us(2),
        0,
        1,
        0x2000,
        RmwOp::CompareAndSwap {
            expected: 0,
            desired: 1,
        },
    );

    fabric.run();

    let w = fabric.completion(write).expect("write completed");
    let r = fabric.completion(read).expect("read completed");
    let c = fabric.completion(cas).expect("cas completed");

    assert_eq!(r.data, payload, "read must return the written bytes");
    let cas_original = u64::from_le_bytes(c.data.clone().try_into().expect("8 B result"));
    assert_eq!(cas_original, 0, "CAS on a fresh word must succeed");

    println!("EDM remote memory operations over 25 GbE (unloaded):");
    println!("  write 64 B : {}", w.latency());
    println!("  read  64 B : {}", r.latency());
    println!("  CAS        : {}", c.latency());
    println!();
    println!(
        "paper Table 1 reference: read 299.52 ns, write 296.96 ns \
         (plus DRAM service and message serialization in this end-to-end run)"
    );
}
