//! Rack-scale simulation: EDM's in-network scheduler against the six
//! baseline transports on a 144-node disaggregated cluster (§4.3).
//!
//! Generates the paper's all-to-all 64 B microbenchmark at one load and
//! prints each protocol's average and tail message completion time,
//! normalized by its own unloaded latency — a single column of Figure 8a.
//!
//! Run with: `cargo run --release --example cluster_simulation`

use edm_baselines::prelude::*;
use edm_core::sim::{solo_mct, ClusterConfig};
use edm_workloads::SyntheticWorkload;

fn main() {
    let load = 0.8;
    let count = 3000;
    let cluster = ClusterConfig::default(); // 144 nodes, 100 Gb/s

    let workload = SyntheticWorkload::paper_default(load, 0.5, count);
    let flows = workload.generate(42);
    println!(
        "{count} messages, 64 B each, load {load}, {} compute -> {} memory nodes",
        workload.compute_nodes(),
        workload.memory_nodes()
    );
    println!();
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "protocol", "unloaded", "norm. mean", "norm. p99"
    );

    for mut protocol in all_protocols() {
        let solo = solo_mct(protocol.as_mut(), &cluster, &flows[0]);
        let result = protocol.simulate(&cluster, &flows);
        let mut norm = result.normalized_mct(|_| solo);
        println!(
            "{:<10} {:>9.1} ns {:>12.2} {:>12.2}",
            protocol.name(),
            solo.as_ns_f64(),
            norm.mean(),
            norm.percentile(99.0)
        );
    }
    println!();
    println!(
        "expected shape (paper Fig. 8a): EDM stays within ~1.3x of unloaded; \
         receiver-driven and reactive transports degrade; Fastpass collapses \
         on its control channel."
    );
}
