//! A remote key-value store over the EDM fabric (the §4.2.2 application).
//!
//! The entire store lives on the memory node; the compute node issues a
//! YCSB-A mix of reads (1 KB objects) and updates (100 B) through EDM
//! remote reads/writes. Reports per-op latency and the projected
//! requests/second against the RoCEv2 baseline (the Figure 6 comparison).
//!
//! Run with: `cargo run --release --example remote_kv_store`

use edm_core::testbed::{Fabric, TestbedConfig};
use edm_core::throughput::{edm_throughput, rdma_throughput, RequestMix};
use edm_memory::KvStore;
use edm_sim::{Bandwidth, Duration, Summary, Time};
use edm_workloads::{YcsbOp, YcsbWorkload};

fn main() {
    // --- Build the store layout (a directory the client learns once) and
    // seed the memory node's DRAM with each object at its slot address.
    let mut directory = KvStore::new(4096, 1024);
    let object = vec![0x5A; 1024];
    for key in 0..512u64 {
        directory.put(Time::ZERO, key, &object).expect("store fits");
    }

    let mut fabric = Fabric::new(TestbedConfig::default());
    for key in 0..512u64 {
        let addr = directory.value_addr(key).expect("key present");
        fabric.seed_memory(1, addr, &object);
    }

    // --- Issue a YCSB-A mix from the compute node (closed loop).
    let workload = YcsbWorkload {
        keys: 512,
        ..YcsbWorkload::a()
    };
    let ops = workload.generate(200, 7);
    let mut issued = Vec::new();
    let mut t = Time::ZERO;
    for op in &ops {
        t += Duration::from_us(2);
        let addr = directory.value_addr(op.key()).expect("key present");
        match *op {
            YcsbOp::Read { .. } => issued.push(("read", fabric.read(t, 0, 1, addr, 1024))),
            YcsbOp::Update { bytes, .. } => {
                issued.push((
                    "update",
                    fabric.write(t, 0, 1, addr, vec![0xEE; bytes as usize]),
                ));
            }
        }
    }
    fabric.run();

    let mut reads = Summary::new();
    let mut updates = Summary::new();
    for (kind, id) in &issued {
        let c = fabric.completion(*id).expect("op completed");
        match *kind {
            "read" => reads.record_duration(c.latency()),
            _ => updates.record_duration(c.latency()),
        }
    }

    println!("Remote KV store over EDM (YCSB-A, 512 x 1 KB objects):");
    println!(
        "  {} reads   : mean {:.0} ns, p99 {:.0} ns",
        reads.count(),
        reads.mean(),
        reads.percentile(99.0)
    );
    println!(
        "  {} updates : mean {:.0} ns, p99 {:.0} ns",
        updates.count(),
        updates.mean(),
        updates.percentile(99.0)
    );

    // --- The Figure 6 throughput comparison on a 25 G link.
    let link = Bandwidth::from_gbps(25);
    println!();
    println!("Projected saturation throughput (Figure 6 model):");
    for (name, mix) in [
        ("YCSB-A", RequestMix::ycsb_a()),
        ("YCSB-B", RequestMix::ycsb_b()),
        ("YCSB-F", RequestMix::ycsb_f()),
    ] {
        let edm = edm_throughput(link, &mix).requests_per_sec / 1e6;
        let rdma = rdma_throughput(link, &mix).requests_per_sec / 1e6;
        println!(
            "  {name}: EDM {edm:6.2} Mrps vs RDMA {rdma:6.2} Mrps ({:.1}x)",
            edm / rdma
        );
    }
}
