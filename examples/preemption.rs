//! Intra-frame preemption demo (§3.2.3): a small memory message cuts
//! *into* an in-flight 1500 B Ethernet frame at 66-bit block granularity,
//! something the MAC layer fundamentally cannot do.
//!
//! Shows the wait the memory message would suffer behind a full frame at
//! the MAC layer versus the couple of block slots it waits in EDM's PHY,
//! and verifies the preempted frame still decodes intact at the receiver.
//!
//! Run with: `cargo run --example preemption`

use edm_phy::frame::{blocks_for_frame, encode_frame};
use edm_phy::mem_codec::{decode_message, encode_message, MemMessage};
use edm_phy::preempt::{PreemptMux, RxReorderBuffer, TxPolicy};
use edm_phy::BLOCK_CLOCK;

fn main() {
    let mut mux = PreemptMux::new(TxPolicy::Fair);

    // A 1500 B IP frame begins transmission...
    let ip_frame: Vec<u8> = (0..1500).map(|i| (i % 251) as u8).collect();
    mux.enqueue_frame(encode_frame(&ip_frame).expect("valid frame"));
    let frame_blocks = blocks_for_frame(ip_frame.len());

    // ...and transmits its first 10 blocks before a remote memory read
    // request shows up.
    let mut wire = Vec::new();
    for _ in 0..10 {
        wire.push(mux.tick());
    }
    let rreq = MemMessage::new(1, 0, vec![0xAA; 8]); // 8 B read request
    mux.enqueue_memory(encode_message(&rreq));

    // Drain the link and find where the memory message landed.
    wire.extend(mux.drain());
    let ms_at = wire
        .iter()
        .position(|b| matches!(b, edm_phy::Block::MemStart(_)))
        .expect("memory message transmitted");

    let waited_blocks = ms_at - 10;
    let mac_wait_blocks = frame_blocks - 10; // MAC: wait for the whole frame
    println!("1500 B frame = {frame_blocks} blocks of 66 bits");
    println!(
        "memory message waited {} block slots = {} (EDM PHY preemption)",
        waited_blocks,
        BLOCK_CLOCK * waited_blocks as u64
    );
    println!(
        "at the MAC layer it would wait {} slots = {} (no preemption)",
        mac_wait_blocks,
        BLOCK_CLOCK * mac_wait_blocks as u64
    );

    // The receiver re-contiguizes the frame and extracts the message.
    let mut rx = RxReorderBuffer::new();
    let mut mem_blocks = Vec::new();
    let mut frames = Vec::new();
    for b in wire {
        let out = rx.push(b).expect("legal TX stream");
        mem_blocks.extend(out.mem);
        if let Some(f) = out.frame {
            frames.push(f);
        }
    }
    let got = decode_message(&mem_blocks).expect("memory message intact");
    assert_eq!(got.payload(), rreq.payload());
    let got_frame = edm_phy::frame::decode_frame(&frames[0]).expect("frame intact");
    assert_eq!(got_frame, ip_frame);
    println!();
    println!("receiver: frame reassembled intact, memory message extracted with zero buffering");
}
