//! `edm` — facade crate for the EDM reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so downstream users can
//! depend on a single crate:
//!
//! ```
//! use edm::fabric::{Fabric, TestbedConfig};
//! use edm::sim::Time;
//!
//! let mut fabric = Fabric::new(TestbedConfig::default());
//! fabric.seed_memory(1, 0, b"hello, remote memory");
//! let op = fabric.read(Time::ZERO, 0, 1, 0, 20);
//! fabric.run();
//! assert_eq!(fabric.completion(op).unwrap().data, b"hello, remote memory");
//! ```
//!
//! See the crate-level docs of each member for the full story:
//! [`edm_core`] (the paper's contribution), [`edm_phy`], [`edm_sched`],
//! [`edm_memory`], [`edm_baselines`], [`edm_workloads`], [`edm_topo`]
//! (multi-switch fabrics), [`edm_approx`] (fast what-if estimation),
//! [`edm_sim`].

#![forbid(unsafe_code)]

pub use edm_approx as approx;
pub use edm_baselines as baselines;
pub use edm_core::testbed as fabric;
pub use edm_core::{latency, message, shim, stack, throughput};
pub use edm_memory as memory;
pub use edm_phy as phy;
pub use edm_sched as sched;
pub use edm_sim as sim;
pub use edm_topo as topo;
pub use edm_workloads as workloads;
