#!/usr/bin/env bash
# Tier-1 gate for the EDM workspace. Mirrors what CI should run.
#
# Every step is timed; a per-step summary prints at the end. The
# property suites — the gate's dominant cost — are pre-built once and
# then run concurrently, one job per crate.
set -euo pipefail
cd "$(dirname "$0")"

STEP_NAMES=()
STEP_SECS=()

# step <name> <command...> — announce, run, and time one gate step.
step() {
    local name="$1"
    shift
    echo "==> $name"
    local t0=$SECONDS
    "$@"
    STEP_NAMES+=("$name")
    STEP_SECS+=($((SECONDS - t0)))
}

run_examples() {
    for ex in quickstart preemption remote_kv_store cluster_simulation; do
        cargo run -q --release --example "$ex" > /dev/null
    done
}

run_harness_bins() {
    for bin in table1 fig5 sched_scaling; do
        cargo run -q --release -p edm-bench --bin "$bin" > /dev/null
    done
    EDM_FLOWS=500 cargo run -q --release -p edm-bench --bin topo_sweep > /dev/null
    # The sharded engine end-to-end (bit-identical results; exercises
    # the conservative window protocol outside the test harness).
    EDM_FLOWS=500 EDM_SHARDS=2 cargo run -q --release -p edm-bench --bin topo_sweep > /dev/null
}

run_bench_json() {
    EDM_BENCH_ITERS=2 EDM_MEM_FLOWS=20000 \
        cargo run -q --release -p edm-bench --bin bench_json -- \
        --out "$(mktemp -d)" > /dev/null
}

# Reduced-scale streaming-lifecycle smoke: 100k flows through the
# 288-node leaf-spine must complete under a hard RSS ceiling (the full
# 1M run peaks near 10 MB; 256 MB is an order-of-magnitude leak guard).
# The second run replays the same scale through a mid-run spine flap, so
# the flatness and RSS gates also cover the fault path.
run_million_flows_smoke() {
    EDM_FLOWS=100000 EDM_RSS_CEILING_MB=256 \
        cargo run -q --release -p edm-bench --bin million_flows -- \
        --out "$(mktemp -d)" > /dev/null
    EDM_FLOWS=100000 EDM_FAULTS=1 EDM_RSS_CEILING_MB=256 \
        cargo run -q --release -p edm-bench --bin million_flows -- \
        --out "$(mktemp -d)" > /dev/null
}

# Approximate-estimator smoke: overlap validation at reduced flow count
# still asserts the p99 error envelope against the exact engine (the
# 10x speedup gate arms only at full scale, so the small grid is just
# an end-to-end wiring check of the delta path).
run_approx_smoke() {
    EDM_FLOWS=1000 EDM_GRID_FLOWS=2000 EDM_GRID_VARIANTS=4 \
        EDM_GRID_PASSES=1 EDM_REPS=1 \
        cargo run -q --release -p edm-bench --bin approx_sweep -- \
        --out "$(mktemp -d)" > /dev/null
}

# Chaos-campaign smoke: seeded fault/repair schedules across scenarios
# and loads at reduced scale, under the same leak-guard RSS ceiling.
run_chaos_smoke() {
    EDM_FLOWS=20000 EDM_RSS_CEILING_MB=256 \
        cargo run -q --release -p edm-bench --bin chaos_sweep -- \
        --out "$(mktemp -d)" > /dev/null
}

# Closed-loop application smoke: the reduced grid (3 MLPs x 2 splits,
# 2 shards) still asserts the acceptance envelope inside the bin —
# every op completes, residency stays inside the MLP windows, and EDM
# beats CXL-over-Ethernet on the identical fabric — under the same
# leak-guard RSS ceiling.
run_app_smoke() {
    EDM_APP_GRID=smoke EDM_APP_SHARDS=2 EDM_RSS_CEILING_MB=256 \
        cargo run -q --release -p edm-bench --bin app_sweep -- \
        --out "$(mktemp -d)" > /dev/null
}

PROP_CRATES=(edm-core edm-phy edm-sched edm-memory edm-sim edm-topo edm-workloads)

# One cargo invocation builds every release test binary, then the
# per-crate suites run as concurrent background jobs (cargo only takes
# its lock for the no-op freshness check). Logs surface only on failure.
run_prop_suites() {
    local pkg_flags=()
    for crate in "${PROP_CRATES[@]}"; do
        pkg_flags+=(-p "$crate")
    done
    cargo test -q --release --no-run "${pkg_flags[@]}" > /dev/null
    local tmp
    tmp=$(mktemp -d)
    local pids=()
    for crate in "${PROP_CRATES[@]}"; do
        (
            t0=$SECONDS
            if PROPTEST_CASES="$PROPTEST_CASES" \
                cargo test -q --release -p "$crate" --test "prop_*" \
                > "$tmp/$crate.log" 2>&1; then
                echo "$((SECONDS - t0))" > "$tmp/$crate.ok"
            else
                echo "$((SECONDS - t0))" > "$tmp/$crate.fail"
            fi
        ) &
        pids+=($!)
    done
    for pid in "${pids[@]}"; do
        wait "$pid"
    done
    local failed=0
    for crate in "${PROP_CRATES[@]}"; do
        if [[ -f "$tmp/$crate.ok" ]]; then
            printf '    %-12s ok in %ss\n' "$crate" "$(cat "$tmp/$crate.ok")"
        else
            printf '    %-12s FAILED in %ss\n' "$crate" "$(cat "$tmp/$crate.fail")"
            cat "$tmp/$crate.log"
            failed=1
        fi
    done
    return $failed
}

rustdoc_gate() {
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
}

run_bench_smoke() {
    cargo test -q --release --benches -p edm-bench > /dev/null
}

step "cargo fmt --check" cargo fmt --check
step "cargo clippy --workspace --all-targets -- -D warnings" \
    cargo clippy --workspace --all-targets -- -D warnings
step "cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)" rustdoc_gate
step "cargo build --release" cargo build --release
step "cargo test -q" cargo test -q
step "cargo build --examples --benches" cargo build --examples --benches
step "examples run end-to-end" run_examples
step "criterion benches smoke-run (no measurement)" run_bench_smoke
step "fast harness bins run end-to-end (incl. 2-shard engine)" run_harness_bins
step "bench_json emits machine-readable baselines" run_bench_json
step "million_flows 100k-flow smoke under 256 MB RSS ceiling (incl. fault path)" \
    run_million_flows_smoke
step "approx_sweep smoke: error envelope vs exact on overlap sizes" \
    run_approx_smoke
step "chaos_sweep smoke: seeded fault/repair campaign under RSS ceiling" \
    run_chaos_smoke
step "app_sweep smoke: closed-loop YCSB, EDM vs CXL-oE envelope (2 shards)" \
    run_app_smoke
step "property suites at ${PROPTEST_CASES:=1024} cases (concurrent per crate)" \
    run_prop_suites

echo
echo "ci.sh step timing:"
for i in "${!STEP_NAMES[@]}"; do
    printf '  %4ss  %s\n' "${STEP_SECS[$i]}" "${STEP_NAMES[$i]}"
done
echo "ci.sh: all green"
