#!/usr/bin/env bash
# Tier-1 gate for the EDM workspace. Mirrors what CI should run.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo build --examples --benches"
cargo build --examples --benches

echo "==> examples run end-to-end"
for ex in quickstart preemption remote_kv_store cluster_simulation; do
    cargo run -q --release --example "$ex" > /dev/null
done

echo "==> criterion benches smoke-run (no measurement)"
cargo test -q --release --benches -p edm-bench > /dev/null

echo "==> fast harness bins run end-to-end"
for bin in table1 fig5 sched_scaling; do
    cargo run -q --release -p edm-bench --bin "$bin" > /dev/null
done
EDM_FLOWS=500 cargo run -q --release -p edm-bench --bin topo_sweep > /dev/null

echo "==> bench_json emits machine-readable baselines"
EDM_BENCH_ITERS=2 cargo run -q --release -p edm-bench --bin bench_json -- \
    --out "$(mktemp -d)" > /dev/null

echo "==> property suites at ${PROPTEST_CASES:=1024} cases"
PROPTEST_CASES="$PROPTEST_CASES" cargo test -q --release \
    -p edm-core -p edm-phy -p edm-sched -p edm-memory -p edm-sim -p edm-topo \
    --test "prop_*"

echo "ci.sh: all green"
