//! ISSUE 3 acceptance: a leaf–spine fabric with 2 spines, 4 leaves, and
//! 288 nodes completes a loaded rack-aware run, and its per-flow
//! simulation cost stays within 2× of the single-switch path on the same
//! workload at equal load. Exercises the facade (`edm::topo`).

use edm::sim::Bandwidth;
use edm::topo::{LeafSpine, TopoEdm, Topology};
use edm::workloads::RackAwareWorkload;
use edm_core::sim::{ClusterConfig, EdmProtocol, FabricProtocol, Flow};

fn fabric_288() -> Topology {
    // 4 leaves × 72 hosts, 2 spines × 36 parallel trunks: non-blocking.
    Topology::leaf_spine(LeafSpine::symmetric(4, 2, 72, 36))
}

fn workload_288(count: usize) -> Vec<Flow> {
    RackAwareWorkload {
        nodes: 288,
        racks: 4,
        link: Bandwidth::from_gbps(100),
        load: 0.6,
        size: 64,
        write_fraction: 0.5,
        local_fraction: 0.5,
        count,
    }
    .generate(42)
}

#[test]
fn leaf_spine_288_completes_under_load() {
    let topo = fabric_288();
    assert_eq!(topo.switch_count(), 6);
    let flows = workload_288(800);
    let result = TopoEdm::default().simulate(&topo, &flows);
    assert_eq!(result.delivered(), 800, "every flow must be delivered");
    assert_eq!(result.failed(), 0);
    assert_eq!(result.reroutes, 0, "no faults were injected");
    // Sanity on the latency shape: the fabric is non-blocking at load
    // 0.6, so the mean MCT stays within a small multiple of a cross-leaf
    // unloaded write.
    let solo = TopoEdm::default()
        .solo_mct(&topo, &flows[0])
        .expect("pristine fabric routes");
    let mean = result.mean_mct();
    assert!(
        mean < 4 * solo,
        "mean MCT {mean} should be near unloaded {solo}"
    );
}

#[test]
fn leaf_spine_per_flow_cost_within_2x_of_single_switch() {
    let topo = fabric_288();
    let flows = workload_288(500);
    let single = ClusterConfig {
        nodes: 288,
        ..ClusterConfig::default()
    };
    let proto = TopoEdm::default();

    // Same workload, same offered load — the only variable is the
    // fabric. The two sides are measured *interleaved* (A/B pairs, min
    // of 4) so background load from concurrently running tests hits both
    // alike, and a noisy verdict is retried before failing.
    let measure_ratio = || {
        let (mut topo_cost, mut single_cost) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..4 {
            let t0 = std::time::Instant::now();
            assert_eq!(proto.simulate(&topo, &flows).delivered(), 500);
            topo_cost = topo_cost.min(t0.elapsed().as_secs_f64());
            let t0 = std::time::Instant::now();
            let r = EdmProtocol::default().simulate(&single, &flows);
            assert_eq!(r.outcomes.len(), 500);
            single_cost = single_cost.min(t0.elapsed().as_secs_f64());
        }
        topo_cost / single_cost
    };
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        best = best.min(measure_ratio());
        if best < 2.0 {
            return;
        }
    }
    panic!(
        "leaf-spine per-flow cost must stay within 2x of the \
         single-switch path on the same workload; best observed {best:.2}x"
    );
}
