//! Cross-crate integration: applications (shim, KV store, locks) running
//! over the full EDM fabric — host stacks, scheduler, switch, DRAM.

use edm_core::shim::{AddressSpace, Placement, PAGE_BYTES};
use edm_core::testbed::{Fabric, TestbedConfig};
use edm_memory::rmw::RmwOp;
use edm_memory::MemoryController;
use edm_sim::{Duration, Time};

#[test]
fn disaggregated_working_set_via_shim() {
    // A compute node keeps hot pages local and spills cold pages to a
    // remote memory node, then accesses both transparently.
    let mut space = AddressSpace::new(0);
    space.map(0, Placement::Local { phys: 0x1_0000 });
    for page in 1..=4u64 {
        space.map(
            page * PAGE_BYTES,
            Placement::Remote {
                node: 1,
                phys: 0x10_0000 + page * PAGE_BYTES,
            },
        );
    }
    assert!((space.remote_fraction() - 0.8).abs() < 1e-9);

    let mut local = MemoryController::ddr4();
    let mut fabric = Fabric::new(TestbedConfig::default());

    // Store a record that straddles local and remote pages.
    let record: Vec<u8> = (0..256).map(|i| i as u8).collect();
    let vaddr = PAGE_BYTES - 128;
    let st = space
        .store(Time::ZERO, vaddr, &record, &mut local, &mut fabric)
        .expect("mapped");
    assert_eq!(st.local_pieces, 1);
    assert_eq!(st.remote_ops.len(), 1);
    fabric.run();

    // Load it back.
    let ld = space
        .load(Time::from_us(20), vaddr, 256, &mut local, &mut fabric)
        .expect("mapped");
    fabric.run();
    // Local half:
    assert_eq!(ld.data, record[..128].to_vec());
    // Remote half arrives through the fabric:
    let remote = fabric
        .completion(ld.remote_ops[0])
        .expect("remote read done");
    assert_eq!(remote.data, record[128..].to_vec());
}

#[test]
fn distributed_lock_with_remote_cas() {
    // Two compute nodes contend for a lock word on a memory node using
    // RMWREQ compare-and-swap; exactly one wins each round.
    let mut fabric = Fabric::new(TestbedConfig {
        nodes: 3,
        ..TestbedConfig::default()
    });
    let lock_addr = 0x4000;
    let cas = |f: &mut Fabric, at: Time, node| {
        f.rmw(
            at,
            node,
            2,
            lock_addr,
            RmwOp::CompareAndSwap {
                expected: 0,
                desired: node as u64 + 1,
            },
        )
    };
    let a = cas(&mut fabric, Time::ZERO, 0);
    let b = cas(&mut fabric, Time::from_ns(50), 1);
    fabric.run();
    let ra = u64::from_le_bytes(
        fabric
            .completion(a)
            .unwrap()
            .data
            .clone()
            .try_into()
            .unwrap(),
    );
    let rb = u64::from_le_bytes(
        fabric
            .completion(b)
            .unwrap()
            .data
            .clone()
            .try_into()
            .unwrap(),
    );
    assert!(
        (ra == 0) ^ (rb == 0),
        "exactly one CAS must win: a saw {ra}, b saw {rb}"
    );
}

#[test]
fn fan_in_reads_all_serve_correctly() {
    // Many compute nodes read distinct regions of one memory node; the
    // scheduler serializes the shared downlink but every byte arrives.
    let n = 9;
    let mut fabric = Fabric::new(TestbedConfig {
        nodes: n,
        ..TestbedConfig::default()
    });
    let memory: u16 = (n - 1) as u16;
    for i in 0..n - 1 {
        let pattern = vec![i as u8 + 1; 512];
        fabric.seed_memory(memory, (i as u64) * 0x1000, &pattern);
    }
    let ops: Vec<u64> = (0..n - 1)
        .map(|i| fabric.read(Time::ZERO, i as u16, memory, (i as u64) * 0x1000, 512))
        .collect();
    fabric.run();
    for (i, op) in ops.iter().enumerate() {
        let c = fabric.completion(*op).expect("read completed");
        assert_eq!(c.data, vec![i as u8 + 1; 512], "reader {i} data");
    }
}

#[test]
fn sustained_alternating_traffic_keeps_latency_bounded() {
    // A closed loop of writes and reads; the unloaded fabric must show no
    // latency drift (no leaked scheduler state, no queue growth).
    let mut fabric = Fabric::new(TestbedConfig::default());
    let mut ops = Vec::new();
    let mut t = Time::ZERO;
    for i in 0..50u64 {
        t += Duration::from_us(2);
        if i % 2 == 0 {
            ops.push(fabric.write(t, 0, 1, 0x8000 + i * 64, vec![i as u8; 64]));
        } else {
            ops.push(fabric.read(t, 0, 1, 0x8000 + (i - 1) * 64, 64));
        }
    }
    fabric.run();
    let latencies: Vec<f64> = ops
        .iter()
        .map(|op| fabric.completion(*op).expect("done").latency().as_ns_f64())
        .collect();
    let first = latencies[..10].iter().sum::<f64>() / 10.0;
    let last = latencies[40..].iter().sum::<f64>() / 10.0;
    assert!(
        (last - first).abs() / first < 0.2,
        "latency drifted: first {first:.0} ns vs last {last:.0} ns"
    );
    for (i, l) in latencies.iter().enumerate() {
        assert!(*l < 600.0, "op {i} latency {l} ns exceeds unloaded bound");
    }
}

#[test]
fn read_guard_protects_against_dead_memory_node() {
    use edm_core::fault::{GuardedRead, ReadGuard};
    // The fabric cannot lose data in normal operation; simulate a memory
    // node failure by simply never delivering a response and resolving
    // the guard at its deadline.
    let guard = ReadGuard::arm(Time::ZERO, Duration::from_us(100));
    assert_eq!(guard.resolve(None), GuardedRead::Null);
    // A healthy read resolves with data well within the deadline.
    let mut fabric = Fabric::new(TestbedConfig::default());
    fabric.seed_memory(1, 0, &[3u8; 64]);
    let id = fabric.read(Time::ZERO, 0, 1, 0, 64);
    fabric.run();
    let c = fabric.completion(id).unwrap();
    let got = guard.resolve(Some((c.completed, c.data.clone())));
    assert_eq!(got, GuardedRead::Data(vec![3u8; 64]));
}
