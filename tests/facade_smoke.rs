//! Smoke test for the `edm` facade crate: the crate-level quickstart must
//! keep working through the re-exported paths only (no direct `edm_*`
//! dependencies), and every advertised re-export must resolve.
//!
//! The same quickstart also runs as a doctest on `src/lib.rs`; this test
//! pins it at integration-test granularity so `cargo test --test
//! facade_smoke` can gate the facade alone.

use edm::fabric::{Fabric, TestbedConfig};
use edm::sim::{Duration, Time};

#[test]
fn quickstart_read_roundtrip() {
    let mut fabric = Fabric::new(TestbedConfig::default());
    fabric.seed_memory(1, 0, b"hello, remote memory");
    let op = fabric.read(Time::ZERO, 0, 1, 0, 20);
    fabric.run();
    let done = fabric.completion(op).expect("read completes");
    assert_eq!(done.data, b"hello, remote memory");
    assert!(done.latency() < Duration::from_ns(1000));
}

#[test]
fn quickstart_write_then_read() {
    let mut fabric = Fabric::new(TestbedConfig::default());
    let w = fabric.write(Time::ZERO, 0, 1, 0x40, b"persisted".to_vec());
    fabric.run();
    assert!(fabric.completion(w).is_some());

    let r = fabric.read(Time::from_us(1), 0, 1, 0x40, 9);
    fabric.run();
    assert_eq!(
        fabric.completion(r).expect("read completes").data,
        b"persisted"
    );
}

#[test]
fn reexported_modules_resolve() {
    // One symbol per re-export; a broken facade path fails to compile.
    let _ = edm::latency::edm_read();
    let _ = edm::message::MemOp::Read { addr: 0, len: 8 }.to_bytes();
    let _ = edm::stack::compute_node_read_cycles();
    let _ = edm::throughput::RequestMix::ycsb_a();
    let _ = edm::shim::PAGE_BYTES;
    let _ = edm::phy::scramble::Scrambler::default();
    let _ = edm::sched::PriorityEncoder::new(8);
    let _ = edm::memory::DramConfig::ddr4_2400();
    let _ = edm::sim::Rng::seed_from(1);
    let _ = edm::workloads::traces::AppTrace::all();
    let protocols = edm::baselines::prelude::all_protocols();
    assert_eq!(protocols.len(), 7, "EDM + 6 baselines");
}
