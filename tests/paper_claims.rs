//! Regression pins for the paper's quantitative claims: these are the
//! numbers EXPERIMENTS.md reports, frozen as tests so they cannot drift
//! silently.

use edm_baselines::stacks;
use edm_core::latency::{edm_read, edm_write};
use edm_core::throughput::{edm_throughput, rdma_throughput, RequestMix};
use edm_phy::frame::blocks_for_frame;
use edm_phy::mem_codec::blocks_for_message;
use edm_sched::pim::{min_chunk_for_line_rate, scheduling_latency};
use edm_sim::Bandwidth;

#[test]
fn table1_edm_column_is_exact() {
    assert_eq!(edm_read().total().as_ps(), 299_520); // 299.52 ns
    assert_eq!(edm_write().total().as_ps(), 296_960); // 296.96 ns
    assert_eq!(edm_read().network_stack_latency().as_ps(), 107_520);
    assert_eq!(edm_write().network_stack_latency().as_ps(), 104_960);
}

#[test]
fn table1_baseline_columns_are_exact() {
    assert_eq!(stacks::tcp_read().total().as_ps(), 3_779_680);
    assert_eq!(stacks::tcp_write().total().as_ps(), 1_889_840);
    assert_eq!(stacks::rocev2_read().total().as_ps(), 2_035_680);
    assert_eq!(stacks::rocev2_write().total().as_ps(), 1_017_840);
    assert_eq!(stacks::raw_ethernet_read().total().as_ps(), 1_114_880);
    assert_eq!(stacks::raw_ethernet_write().total().as_ps(), 557_440);
}

#[test]
fn headline_speedups_match_section_4_2_1() {
    let er = edm_read().total().as_ps() as f64;
    let ew = edm_write().total().as_ps() as f64;
    let close = |got: f64, want: f64| (got - want).abs() / want < 0.05;
    assert!(close(
        stacks::raw_ethernet_read().total().as_ps() as f64 / er,
        3.7
    ));
    assert!(close(
        stacks::raw_ethernet_write().total().as_ps() as f64 / ew,
        1.9
    ));
    assert!(close(
        stacks::rocev2_read().total().as_ps() as f64 / er,
        6.8
    ));
    assert!(close(
        stacks::rocev2_write().total().as_ps() as f64 / ew,
        3.4
    ));
    assert!(close(stacks::tcp_read().total().as_ps() as f64 / er, 12.7));
    assert!(close(stacks::tcp_write().total().as_ps() as f64 / ew, 6.4));
}

#[test]
fn phy_granularity_claims() {
    // §2.3/§3.2: a 64 B minimum frame needs 9 PHY blocks; an 8 B memory
    // message needs 3 (with header) — the granularity gap behind EDM's
    // bandwidth advantage.
    assert_eq!(blocks_for_frame(64), 9);
    assert_eq!(blocks_for_message(8), 3);
    // 1500 B frame at 100 G = 120 ns; 9 KB jumbo = 720 ns (§2.4 lim. 3).
    let g100 = Bandwidth::from_gbps(100);
    assert_eq!(g100.tx_time_bytes(1500).as_ns(), 120);
    assert_eq!(g100.tx_time_bytes(9000).as_ns(), 720);
}

#[test]
fn scheduler_asic_claims() {
    // §3.1.3: 512 ports at 3 GHz → ~9 ns matching, 128 B minimum chunk.
    let t = scheduling_latency(512, edm_sched::ASIC_CLOCK);
    assert!((t.as_ns_f64() - 9.0).abs() < 0.1);
    assert_eq!(
        min_chunk_for_line_rate(512, edm_sched::ASIC_CLOCK, Bandwidth::from_gbps(100)),
        128
    );
}

#[test]
fn figure6_throughput_advantage() {
    // §4.2.2: EDM sustains substantially more requests/sec than RDMA on
    // every YCSB mix (paper: ~2.7x average).
    let link = Bandwidth::from_gbps(25);
    let mut ratios = Vec::new();
    for mix in [
        RequestMix::ycsb_a(),
        RequestMix::ycsb_b(),
        RequestMix::ycsb_f(),
    ] {
        let ratio = edm_throughput(link, &mix).requests_per_sec
            / rdma_throughput(link, &mix).requests_per_sec;
        assert!(ratio > 1.3, "ratio {ratio:.2}");
        ratios.push(ratio);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!((1.5..4.0).contains(&avg), "average ratio {avg:.2}");
}

#[test]
fn figure7_ordering() {
    // §4.2.2: EDM within ~1.3x of CXL unloaded; RDMA far behind both.
    let edm = (edm_read().total().as_ns_f64() + edm_write().total().as_ns_f64()) / 2.0;
    let cxl = (stacks::cxl::READ.as_ns_f64() + stacks::cxl::WRITE.as_ns_f64()) / 2.0;
    let rdma = (stacks::rocev2_read().total().as_ns_f64()
        + stacks::rocev2_write().total().as_ns_f64())
        / 2.0;
    assert!(edm / cxl < 1.3, "EDM/CXL = {:.2}", edm / cxl);
    assert!(rdma / edm > 4.0, "RDMA/EDM = {:.2}", rdma / edm);
}

#[test]
fn edm_unloaded_is_comparable_to_two_hop_numa() {
    // §1: "comparable to an intra-server two hop NUMA" — a few hundred ns.
    let ns = edm_read().total().as_ns_f64();
    assert!((250.0..350.0).contains(&ns));
}
