//! Regression pins for the paper's quantitative claims: these are the
//! numbers EXPERIMENTS.md reports, frozen as tests so they cannot drift
//! silently.

use edm_baselines::stacks;
use edm_core::latency::{edm_read, edm_write};
use edm_core::throughput::{edm_throughput, rdma_throughput, RequestMix};
use edm_phy::frame::blocks_for_frame;
use edm_phy::mem_codec::blocks_for_message;
use edm_sched::pim::{min_chunk_for_line_rate, scheduling_latency};
use edm_sim::Bandwidth;
use edm_topo::{AppConfig, AppTransport, CxlOeConfig, LeafSpine, TopoEdm, Topology};
use edm_workloads::{OpMix, TenantSpec, YcsbWorkload};

#[test]
fn table1_edm_column_is_exact() {
    assert_eq!(edm_read().total().as_ps(), 299_520); // 299.52 ns
    assert_eq!(edm_write().total().as_ps(), 296_960); // 296.96 ns
    assert_eq!(edm_read().network_stack_latency().as_ps(), 107_520);
    assert_eq!(edm_write().network_stack_latency().as_ps(), 104_960);
}

#[test]
fn table1_baseline_columns_are_exact() {
    assert_eq!(stacks::tcp_read().total().as_ps(), 3_779_680);
    assert_eq!(stacks::tcp_write().total().as_ps(), 1_889_840);
    assert_eq!(stacks::rocev2_read().total().as_ps(), 2_035_680);
    assert_eq!(stacks::rocev2_write().total().as_ps(), 1_017_840);
    assert_eq!(stacks::raw_ethernet_read().total().as_ps(), 1_114_880);
    assert_eq!(stacks::raw_ethernet_write().total().as_ps(), 557_440);
}

#[test]
fn headline_speedups_match_section_4_2_1() {
    let er = edm_read().total().as_ps() as f64;
    let ew = edm_write().total().as_ps() as f64;
    let close = |got: f64, want: f64| (got - want).abs() / want < 0.05;
    assert!(close(
        stacks::raw_ethernet_read().total().as_ps() as f64 / er,
        3.7
    ));
    assert!(close(
        stacks::raw_ethernet_write().total().as_ps() as f64 / ew,
        1.9
    ));
    assert!(close(
        stacks::rocev2_read().total().as_ps() as f64 / er,
        6.8
    ));
    assert!(close(
        stacks::rocev2_write().total().as_ps() as f64 / ew,
        3.4
    ));
    assert!(close(stacks::tcp_read().total().as_ps() as f64 / er, 12.7));
    assert!(close(stacks::tcp_write().total().as_ps() as f64 / ew, 6.4));
}

#[test]
fn phy_granularity_claims() {
    // §2.3/§3.2: a 64 B minimum frame needs 9 PHY blocks; an 8 B memory
    // message needs 3 (with header) — the granularity gap behind EDM's
    // bandwidth advantage.
    assert_eq!(blocks_for_frame(64), 9);
    assert_eq!(blocks_for_message(8), 3);
    // 1500 B frame at 100 G = 120 ns; 9 KB jumbo = 720 ns (§2.4 lim. 3).
    let g100 = Bandwidth::from_gbps(100);
    assert_eq!(g100.tx_time_bytes(1500).as_ns(), 120);
    assert_eq!(g100.tx_time_bytes(9000).as_ns(), 720);
}

#[test]
fn scheduler_asic_claims() {
    // §3.1.3: 512 ports at 3 GHz → ~9 ns matching, 128 B minimum chunk.
    let t = scheduling_latency(512, edm_sched::ASIC_CLOCK);
    assert!((t.as_ns_f64() - 9.0).abs() < 0.1);
    assert_eq!(
        min_chunk_for_line_rate(512, edm_sched::ASIC_CLOCK, Bandwidth::from_gbps(100)),
        128
    );
}

#[test]
fn figure6_throughput_advantage() {
    // §4.2.2: EDM sustains substantially more requests/sec than RDMA on
    // every YCSB mix (paper: ~2.7x average).
    let link = Bandwidth::from_gbps(25);
    let mut ratios = Vec::new();
    for mix in [
        RequestMix::ycsb_a(),
        RequestMix::ycsb_b(),
        RequestMix::ycsb_f(),
    ] {
        let ratio = edm_throughput(link, &mix).requests_per_sec
            / rdma_throughput(link, &mix).requests_per_sec;
        assert!(ratio > 1.3, "ratio {ratio:.2}");
        ratios.push(ratio);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!((1.5..4.0).contains(&avg), "average ratio {avg:.2}");
}

#[test]
fn figure7_ordering() {
    // §4.2.2: EDM within ~1.3x of CXL unloaded; RDMA far behind both.
    let edm = (edm_read().total().as_ns_f64() + edm_write().total().as_ns_f64()) / 2.0;
    let cxl = (stacks::cxl::READ.as_ns_f64() + stacks::cxl::WRITE.as_ns_f64()) / 2.0;
    let rdma = (stacks::rocev2_read().total().as_ns_f64()
        + stacks::rocev2_write().total().as_ns_f64())
        / 2.0;
    assert!(edm / cxl < 1.3, "EDM/CXL = {:.2}", edm / cxl);
    assert!(rdma / edm > 4.0, "RDMA/EDM = {:.2}", rdma / edm);
}

/// Unloaded closed-loop latency on a paper-scale single switch: one
/// tenant, window of 1, pure reads (then pure writes) of Figure 6's
/// object shapes against one remote memory node.
fn unloaded_p50(update_fraction: f64, transport: AppTransport) -> f64 {
    let topo = Topology::single_switch(144, Default::default());
    let wl = YcsbWorkload {
        update_fraction,
        ..YcsbWorkload::b()
    };
    let tenants = vec![TenantSpec::saturating(0, OpMix::remote(wl), 1, 200)];
    let app = AppConfig {
        transport,
        ..AppConfig::new(tenants, vec![100])
    };
    let r = TopoEdm::default().simulate_app(&topo, &app);
    assert_eq!(r.ops_completed, 200);
    r.lat.percentile(50.0) as f64
}

#[test]
fn figure7_closed_loop_crosscheck() {
    // The analytic Table 1 / Figure 7 numbers and the simulated closed
    // loop must not silently diverge. They are not expected to be equal:
    // Table 1 times a single 64 B access, while the closed loop serves
    // Figure 6's KV shapes — a read pays the slot-header probe chained
    // into the 1 KB value read, the 1 KB response leg on the wire, and
    // the NIC/completion handoffs. That adds ~45% to reads (payload +
    // second DRAM access) and ~4% to writes (100 B payload, header and
    // value land in one burst train). Documented tolerance: reads within
    // [1.1, 1.8]x of analytic, writes within [0.9, 1.2]x.
    let read_ratio = unloaded_p50(0.0, AppTransport::Edm) / edm_read().total().as_ps() as f64;
    assert!(
        (1.1..1.8).contains(&read_ratio),
        "simulated/analytic read ratio {read_ratio:.3} drifted"
    );
    let write_ratio = unloaded_p50(1.0, AppTransport::Edm) / edm_write().total().as_ps() as f64;
    assert!(
        (0.9..1.2).contains(&write_ratio),
        "simulated/analytic write ratio {write_ratio:.3} drifted"
    );

    // Figure 7's ordering, reproduced end-to-end: EDM stays well ahead
    // of Ethernet-tunneled CXL on the identical fabric (the paper's
    // point that the advantage comes from the in-PHY transport, not the
    // topology).
    let cxl = AppTransport::CxlOe(CxlOeConfig::default());
    let cxl_read = unloaded_p50(0.0, cxl) / unloaded_p50(0.0, AppTransport::Edm);
    let cxl_write = unloaded_p50(1.0, cxl) / unloaded_p50(1.0, AppTransport::Edm);
    assert!(cxl_read > 1.5, "CXL-oE/EDM read ratio {cxl_read:.2}");
    assert!(cxl_write > 1.5, "CXL-oE/EDM write ratio {cxl_write:.2}");
}

#[test]
fn figure6_closed_loop_crosscheck() {
    // The analytic Figure 6 model is a line-rate ceiling (request per
    // bottleneck-transfer time); the simulated closed loop adds
    // scheduling epochs, DRAM service, and bounded per-tenant windows,
    // so its sustained rate must sit *under* the ceiling but reach a
    // healthy fraction of it once windows are deep (16 tenants x MLP 16
    // against 16 memory nodes). Documented envelope: [0.3, 1.0) of the
    // aggregate analytic ceiling (measured ~0.6).
    let topo = Topology::leaf_spine(LeafSpine::symmetric(4, 2, 8, 4));
    let mix = OpMix::remote(YcsbWorkload::b());
    let tenants: Vec<_> = (0..16)
        .map(|i| TenantSpec::saturating(i, mix, 16, 500))
        .collect();
    let app = AppConfig::new(tenants, (16..32).collect());
    let r = TopoEdm::default().simulate_app(&topo, &app);
    assert_eq!(r.ops_completed, 8_000);
    let sim_rate = r.ops_completed as f64 / (r.makespan.as_ns_f64() / 1e9);
    let ceiling =
        16.0 * edm_throughput(Bandwidth::from_gbps(100), &RequestMix::ycsb_b()).requests_per_sec;
    let fraction = sim_rate / ceiling;
    assert!(
        (0.3..1.0).contains(&fraction),
        "simulated rate {sim_rate:.3e} is {fraction:.3} of the analytic ceiling {ceiling:.3e}"
    );
}

#[test]
fn edm_unloaded_is_comparable_to_two_hop_numa() {
    // §1: "comparable to an intra-server two hop NUMA" — a few hundred ns.
    let ns = edm_read().total().as_ns_f64();
    assert!((250.0..350.0).contains(&ns));
}
