//! Integration: the 144-node evaluation pipeline (workload generator →
//! protocol simulators → normalized statistics) for all seven protocols.

use edm_baselines::prelude::*;
use edm_core::sim::{solo_mct, ClusterConfig, FabricProtocol, Flow, FlowKind};
use edm_workloads::{AppTrace, SyntheticWorkload};

fn cluster() -> ClusterConfig {
    ClusterConfig::default() // 144 nodes, 100 Gb/s
}

fn microbenchmark(load: f64, write_fraction: f64, count: usize) -> Vec<Flow> {
    SyntheticWorkload::paper_default(load, write_fraction, count).generate(7)
}

#[test]
fn every_protocol_completes_the_microbenchmark() {
    let flows = microbenchmark(0.6, 0.5, 800);
    for mut p in all_protocols() {
        let r = p.simulate(&cluster(), &flows);
        assert_eq!(r.outcomes.len(), flows.len(), "{} lost flows", p.name());
        for o in &r.outcomes {
            assert!(
                o.completed > o.flow.arrival,
                "{}: completion before arrival",
                p.name()
            );
        }
    }
}

#[test]
fn edm_stays_near_unloaded_at_high_load() {
    // The paper's headline scaling claim (§4.3.1): average latency within
    // ~1.3x unloaded even at load 0.9.
    let flows = microbenchmark(0.9, 0.5, 3000);
    let c = cluster();
    let mut edm = edm_core::sim::EdmProtocol::default();
    let probe = flows[0];
    let solo_w = solo_mct(
        &mut edm,
        &c,
        &Flow {
            kind: FlowKind::Write,
            ..probe
        },
    );
    let solo_r = solo_mct(
        &mut edm,
        &c,
        &Flow {
            kind: FlowKind::Read,
            ..probe
        },
    );
    let r = edm.simulate(&c, &flows);
    let mean = r
        .normalized_mct(|f| match f.kind {
            FlowKind::Write => solo_w,
            FlowKind::Read => solo_r,
        })
        .mean();
    assert!(
        mean < 1.45,
        "EDM normalized mean {mean:.2} at load 0.9 exceeds the paper band"
    );
}

#[test]
fn edm_beats_every_baseline_at_high_load() {
    let flows = microbenchmark(0.8, 0.5, 2000);
    let c = cluster();
    let norm_mean = |p: &mut dyn FabricProtocol| {
        let probe = flows[0];
        let solo_w = solo_mct(
            p,
            &c,
            &Flow {
                kind: FlowKind::Write,
                ..probe
            },
        );
        let solo_r = solo_mct(
            p,
            &c,
            &Flow {
                kind: FlowKind::Read,
                ..probe
            },
        );
        let r = p.simulate(&c, &flows);
        r.normalized_mct(|f| match f.kind {
            FlowKind::Write => solo_w,
            FlowKind::Read => solo_r,
        })
        .mean()
    };
    let mut protocols = all_protocols();
    let edm = norm_mean(protocols[0].as_mut());
    for p in protocols[1..].iter_mut() {
        let v = norm_mean(p.as_mut());
        assert!(
            edm <= v * 1.05,
            "EDM ({edm:.2}) should not lose to {} ({v:.2}) on the microbenchmark",
            p.name()
        );
    }
}

#[test]
fn fastpass_control_channel_is_the_worst_bottleneck() {
    let flows = microbenchmark(0.4, 0.5, 1500);
    let c = cluster();
    let mut results = Vec::new();
    for mut p in all_protocols() {
        let r = p.simulate(&c, &flows);
        results.push((p.name(), r.mean_mct()));
    }
    let fastpass = results.iter().find(|(n, _)| *n == "Fastpass").unwrap().1;
    for (name, mct) in &results {
        if *name != "Fastpass" {
            assert!(
                fastpass > *mct,
                "Fastpass ({fastpass}) must be slower than {name} ({mct})"
            );
        }
    }
}

#[test]
fn load_monotonicity_for_edm() {
    // Higher offered load must not reduce mean completion time.
    let c = cluster();
    let mut last = None;
    for load in [0.2, 0.5, 0.8] {
        let flows = microbenchmark(load, 1.0, 1500);
        let r = edm_core::sim::EdmProtocol::default().simulate(&c, &flows);
        let mean = r.mean_mct();
        if let Some(prev) = last {
            assert!(
                mean >= prev,
                "EDM mean MCT decreased from {prev} to {mean} as load rose to {load}"
            );
        }
        last = Some(mean);
    }
}

#[test]
fn trace_pipeline_runs_for_every_application() {
    let c = cluster();
    for app in AppTrace::all() {
        let flows = app.generate(c.nodes, c.link, 0.5, 400, 11);
        assert_eq!(flows.len(), 400);
        // EDM and CXL exercise the two most different datapaths.
        let edm = edm_core::sim::EdmProtocol::default().simulate(&c, &flows);
        let cxl = CxlProtocol::default().simulate(&c, &flows);
        assert_eq!(edm.outcomes.len(), 400, "{}", app.name());
        assert_eq!(cxl.outcomes.len(), 400, "{}", app.name());
        // CXL must not beat EDM on heavy-tailed traces (HOL blocking).
        assert!(
            cxl.mean_mct() >= edm.mean_mct(),
            "{}: CXL {} vs EDM {}",
            app.name(),
            cxl.mean_mct(),
            edm.mean_mct()
        );
    }
}

#[test]
fn deterministic_simulation_across_runs() {
    let flows = microbenchmark(0.7, 0.5, 500);
    let c = cluster();
    for mut p in all_protocols() {
        let a = p.simulate(&c, &flows);
        let b = p.simulate(&c, &flows);
        for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
            assert_eq!(x.completed, y.completed, "{} is nondeterministic", p.name());
        }
    }
}
