//! Property pins for the streaming flow sources: a [`FlowSource`] must
//! emit the *bit-identical* flow sequence its workload's materialized
//! `generate()` builds — same arrivals, same ids, same draws — for any
//! geometry, seed, and prefix length. This is the contract that lets
//! simulations pull arrivals lazily without perturbing a single result.

use edm_workloads::{FlowSource, RackAwareWorkload, SyntheticWorkload};
use proptest::prelude::*;

proptest! {
    /// Synthetic all-to-all: the streamed sequence equals the
    /// materialized one, and a count-N source is a prefix of a larger
    /// source over the same seed (streaming scale-up never perturbs
    /// already-emitted flows).
    #[test]
    fn synthetic_source_prefix_equivalence(
        nodes in 2usize..40,
        seed in any::<u64>(),
        count in 1usize..400,
        load_pct in 5u32..=100,
        write_pct in 0u32..=100,
        prefix in 0usize..400,
    ) {
        let w = SyntheticWorkload {
            nodes,
            link: edm_sim::Bandwidth::from_gbps(100),
            load: load_pct as f64 / 100.0,
            size: 64,
            write_fraction: write_pct as f64 / 100.0,
            count,
        };
        let materialized = w.generate(seed);
        let streamed: Vec<_> = w.source(seed).collect();
        prop_assert_eq!(&streamed, &materialized);

        let prefix = prefix.min(count);
        let mut longer = w;
        longer.count = count * 4;
        let long_prefix: Vec<_> = longer.source(seed).take(prefix).collect();
        prop_assert_eq!(&long_prefix[..], &materialized[..prefix]);
    }

    /// Rack-aware: same equivalence across rack geometries and locality
    /// fractions, plus the `remaining()` bookkeeping.
    #[test]
    fn rack_source_prefix_equivalence(
        racks in 1usize..5,
        npr_half in 1usize..6,
        seed in any::<u64>(),
        count in 1usize..300,
        local_pct in 0u32..=100,
    ) {
        let r = RackAwareWorkload {
            nodes: racks * npr_half * 2,
            racks,
            link: edm_sim::Bandwidth::from_gbps(100),
            load: 0.6,
            size: 64,
            write_fraction: 0.5,
            // One rack cannot host remote traffic.
            local_fraction: if racks == 1 { 1.0 } else { local_pct as f64 / 100.0 },
            count,
        };
        let materialized = r.generate(seed);
        let mut source = r.source(seed);
        prop_assert_eq!(source.remaining(), count);
        let streamed: Vec<_> = source.by_ref().collect();
        prop_assert_eq!(source.remaining(), 0);
        prop_assert_eq!(streamed, materialized);
    }
}
