//! Poisson all-to-all synthetic memory traffic at a target offered load
//! (the Figure 8a microbenchmark).
//!
//! Half the cluster's nodes act as compute nodes, half as memory nodes
//! (the paper simulates "144 nodes (compute + memory)"). Each compute
//! node issues requests to uniformly random memory nodes with Poisson
//! inter-arrival times calibrated so that the *data* bytes offered to each
//! memory-node link equal `load × capacity`.
//!
//! Every compute node draws from its **own splittable RNG stream**
//! ([`Rng::stream`] keyed by the node id), so arrival generation is a
//! pure per-node function: chunk the nodes across any number of threads
//! or shards ([`SyntheticWorkload::generate_par`]) and the merged flow
//! list is identical to the sequential one.

use crate::source::{DrawDest, MergeSource};
use edm_core::sim::{Flow, FlowKind};
use edm_sim::{Bandwidth, Duration, Rng, Time};

/// Generates `count` flows by merging per-node Poisson streams: node
/// `c`'s arrivals and per-flow draws come only from `Rng::stream(seed,
/// c)`, so the result is independent of how `computes` is chunked across
/// `chunks` workers. The merge orders by `(arrival, node)` — exactly the
/// earliest-next-arrival order a sequential generator would emit.
fn merge_generate(
    seed: u64,
    computes: &[usize],
    gap: Duration,
    count: usize,
    size: u32,
    chunks: usize,
    draw: impl Fn(&mut Rng, usize) -> (usize, FlowKind) + Sync,
) -> Vec<Flow> {
    if count == 0 || computes.is_empty() {
        return Vec::new();
    }
    // A horizon wide enough to cover `count` flows in expectation, grown
    // geometrically when a draw-starved run undershoots. Every node's
    // candidate prefix is a pure function of (seed, node, horizon), and
    // a larger horizon only extends it, so retries stay deterministic.
    let mut horizon = gap
        .as_ps()
        .max(1)
        .saturating_mul(2 * (count as u64 / computes.len() as u64 + 2));
    loop {
        let gen_node = |c: usize| -> Vec<(Time, usize, usize, FlowKind)> {
            let mut rng = Rng::stream(seed, c as u64);
            let mut at = Time::ZERO + rng.exp_duration(gap);
            let mut out = Vec::new();
            while at.as_ps() <= horizon {
                let (dst, kind) = draw(&mut rng, c);
                out.push((at, c, dst, kind));
                at += rng.exp_duration(gap);
            }
            out
        };
        let mut all: Vec<(Time, usize, usize, FlowKind)> = if chunks <= 1 {
            computes.iter().flat_map(|&c| gen_node(c)).collect()
        } else {
            let gen_node = &gen_node;
            let per = computes.len().div_ceil(chunks);
            std::thread::scope(|scope| {
                let handles: Vec<_> = computes
                    .chunks(per)
                    .map(|part| {
                        scope.spawn(move || {
                            part.iter().flat_map(|&c| gen_node(c)).collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("workload chunk worker panicked"))
                    .collect()
            })
        };
        if all.len() < count {
            horizon = horizon.saturating_mul(2);
            continue;
        }
        // Stable sort: same-instant flows of one node keep their
        // generation order; across nodes the lower node id issues first.
        all.sort_by_key(|&(at, c, _, _)| (at, c));
        all.truncate(count);
        return all
            .into_iter()
            .enumerate()
            .map(|(id, (arrival, src, dst, kind))| Flow {
                id,
                src,
                dst,
                size,
                arrival,
                kind,
            })
            .collect();
    }
}

/// Generator for the all-to-all microbenchmark.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticWorkload {
    /// Total nodes; the first half are compute, the second half memory.
    pub nodes: usize,
    /// Link bandwidth (for load calibration).
    pub link: Bandwidth,
    /// Offered load fraction in `(0, 1]` of each memory link.
    pub load: f64,
    /// Data bytes per message (64 B in §4.3.1; 8 B RREQs ride for free).
    pub size: u32,
    /// Fraction of messages that are writes (the rest are reads).
    pub write_fraction: f64,
    /// Number of messages to generate.
    pub count: usize,
}

impl SyntheticWorkload {
    /// The §4.3.1 defaults: 144 nodes, 100 Gb/s, 64 B messages.
    pub fn paper_default(load: f64, write_fraction: f64, count: usize) -> Self {
        SyntheticWorkload {
            nodes: 144,
            link: Bandwidth::from_gbps(100),
            load,
            size: 64,
            write_fraction,
            count,
        }
    }

    /// Compute-node count (first half of the cluster).
    pub fn compute_nodes(&self) -> usize {
        self.nodes / 2
    }

    /// Memory-node count (second half).
    pub fn memory_nodes(&self) -> usize {
        self.nodes - self.nodes / 2
    }

    /// Mean inter-arrival gap per compute node for the target load.
    ///
    /// Each memory link receives traffic from all compute nodes; with
    /// uniform destinations the per-compute-node rate `r` must satisfy
    /// `r × size × computes / memories = load × B`.
    pub fn mean_gap(&self) -> Duration {
        assert!(self.load > 0.0 && self.load <= 1.0, "load in (0,1]");
        let bytes_per_sec = self.link.as_bps() as f64 / 8.0 * self.load;
        let per_compute = bytes_per_sec * self.memory_nodes() as f64 / self.compute_nodes() as f64;
        let msgs_per_sec = per_compute / self.size as f64;
        Duration::from_ps((1e12 / msgs_per_sec).round() as u64)
    }

    /// Generates the flow list, deterministically from `seed`. Each
    /// compute node draws from its own [`Rng::stream`], so the output is
    /// identical to [`SyntheticWorkload::generate_par`] at any chunk
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has fewer than 2 nodes or `load` is out of
    /// range.
    pub fn generate(&self, seed: u64) -> Vec<Flow> {
        self.generate_par(seed, 1)
    }

    /// [`SyntheticWorkload::generate`] with per-node stream generation
    /// fanned out over `chunks` threads. The flow list is bit-identical
    /// for every chunk count.
    pub fn generate_par(&self, seed: u64, chunks: usize) -> Vec<Flow> {
        assert!(
            self.nodes >= 2,
            "need at least one compute and one memory node"
        );
        let nodes: Vec<usize> = (0..self.compute_nodes()).collect();
        merge_generate(
            seed,
            &nodes,
            self.mean_gap(),
            self.count,
            self.size,
            chunks,
            |rng, src| self.draw(rng, src),
        )
    }

    /// A streaming [`crate::source::FlowSource`] that pulls the *exact*
    /// same flows as [`SyntheticWorkload::generate`] one at a time —
    /// O(compute nodes) memory instead of O(count). Pinned bit-identical
    /// by the `prop_source` property suite.
    pub fn source(&self, seed: u64) -> MergeSource<SyntheticWorkload> {
        assert!(
            self.nodes >= 2,
            "need at least one compute and one memory node"
        );
        let nodes: Vec<usize> = (0..self.compute_nodes()).collect();
        MergeSource::new(seed, nodes, self.mean_gap(), self.count, self.size, *self)
    }
}

impl DrawDest for SyntheticWorkload {
    fn draw(&self, rng: &mut Rng, _src: usize) -> (usize, FlowKind) {
        let dst = self.compute_nodes() + rng.below(self.memory_nodes() as u64) as usize;
        let kind = if rng.chance(self.write_fraction) {
            FlowKind::Write
        } else {
            FlowKind::Read
        };
        (dst, kind)
    }
}

/// Rack-aware all-to-all traffic for multi-switch fabrics.
///
/// Nodes are divided into `racks` equal contiguous blocks (matching
/// `edm_topo`'s leaf attachment order); within each rack the first half
/// are compute nodes, the second half memory nodes. Each compute node
/// issues Poisson requests; a configurable fraction target same-rack
/// memory, the rest uniformly random memory in *other* racks — the knob
/// that moves traffic on or off the spine trunks.
#[derive(Debug, Clone, Copy)]
pub struct RackAwareWorkload {
    /// Total nodes; must divide evenly into racks of even size.
    pub nodes: usize,
    /// Number of racks (= leaf switches).
    pub racks: usize,
    /// Link bandwidth (for load calibration).
    pub link: Bandwidth,
    /// Offered load fraction in `(0, 1]` of each memory link.
    pub load: f64,
    /// Data bytes per message.
    pub size: u32,
    /// Fraction of messages that are writes (the rest are reads).
    pub write_fraction: f64,
    /// Fraction of requests that stay inside the issuing rack.
    pub local_fraction: f64,
    /// Number of messages to generate.
    pub count: usize,
}

impl RackAwareWorkload {
    /// Nodes per rack.
    pub fn nodes_per_rack(&self) -> usize {
        self.nodes / self.racks
    }

    /// Memory nodes of one rack: the second half of its block.
    fn rack_memory(&self, rack: usize) -> std::ops::Range<usize> {
        let npr = self.nodes_per_rack();
        (rack * npr + npr / 2)..((rack + 1) * npr)
    }

    /// Generates the flow list, deterministically from `seed`. Each
    /// compute node draws from its own [`Rng::stream`], so the output is
    /// identical to [`RackAwareWorkload::generate_par`] at any chunk
    /// count.
    ///
    /// # Panics
    ///
    /// Panics unless nodes divide evenly into racks of even size ≥ 2,
    /// and `load` is in range.
    pub fn generate(&self, seed: u64) -> Vec<Flow> {
        self.generate_par(seed, 1)
    }

    /// [`RackAwareWorkload::generate`] with per-node stream generation
    /// fanned out over `chunks` threads. The flow list is bit-identical
    /// for every chunk count.
    pub fn generate_par(&self, seed: u64, chunks: usize) -> Vec<Flow> {
        let computes = self.validate_and_computes();
        merge_generate(
            seed,
            &computes,
            self.mean_gap(),
            self.count,
            self.size,
            chunks,
            |rng, src| self.draw(rng, src),
        )
    }

    /// A streaming [`crate::source::FlowSource`] that pulls the *exact*
    /// same flows as [`RackAwareWorkload::generate`] one at a time —
    /// O(compute nodes) memory instead of O(count). Pinned bit-identical
    /// by the `prop_source` property suite.
    pub fn source(&self, seed: u64) -> MergeSource<RackAwareWorkload> {
        let computes = self.validate_and_computes();
        MergeSource::new(
            seed,
            computes,
            self.mean_gap(),
            self.count,
            self.size,
            *self,
        )
    }

    /// Mean inter-arrival gap per compute node for the target load.
    ///
    /// Load calibration as in [`SyntheticWorkload::mean_gap`]; the
    /// compute:memory split is 1:1, so the per-compute rate is
    /// `load × B / size` regardless of locality.
    pub fn mean_gap(&self) -> Duration {
        SyntheticWorkload {
            nodes: self.nodes,
            link: self.link,
            load: self.load,
            size: self.size,
            write_fraction: self.write_fraction,
            count: self.count,
        }
        .mean_gap()
    }

    /// Validates the rack geometry and returns the compute-node list.
    fn validate_and_computes(&self) -> Vec<usize> {
        assert!(self.racks >= 1, "need a rack");
        assert!(
            self.nodes.is_multiple_of(self.racks),
            "nodes must divide into racks"
        );
        let npr = self.nodes_per_rack();
        assert!(
            npr >= 2 && npr.is_multiple_of(2),
            "racks need even size >= 2"
        );
        assert!(
            self.racks > 1 || self.local_fraction >= 1.0 - f64::EPSILON,
            "one rack cannot host remote traffic"
        );
        let half = npr / 2;
        (0..self.nodes).filter(|n| n % npr < half).collect()
    }
}

impl DrawDest for RackAwareWorkload {
    fn draw(&self, rng: &mut Rng, src: usize) -> (usize, FlowKind) {
        let npr = self.nodes_per_rack();
        let half = npr / 2;
        let rack = src / npr;
        let dst = if self.racks == 1 || rng.chance(self.local_fraction) {
            let m = self.rack_memory(rack);
            m.start + rng.below(half as u64) as usize
        } else {
            // Uniform over other racks' memory nodes.
            let pick = rng.below(((self.racks - 1) * half) as u64) as usize;
            let mut other = pick / half;
            if other >= rack {
                other += 1;
            }
            self.rack_memory(other).start + pick % half
        };
        let kind = if rng.chance(self.write_fraction) {
            FlowKind::Write
        } else {
            FlowKind::Read
        };
        (dst, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(load: f64) -> SyntheticWorkload {
        SyntheticWorkload {
            nodes: 16,
            link: Bandwidth::from_gbps(100),
            load,
            size: 64,
            write_fraction: 0.5,
            count: 2000,
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = wl(0.5).generate(7);
        let b = wl(0.5).generate(7);
        assert_eq!(a, b);
        let c = wl(0.5).generate(8);
        assert_ne!(a, c);
    }

    #[test]
    fn sources_are_compute_destinations_memory() {
        for f in wl(0.5).generate(1) {
            assert!(f.src < 8, "source must be a compute node");
            assert!((8..16).contains(&f.dst), "dest must be a memory node");
        }
    }

    #[test]
    fn arrivals_sorted_and_positive_gap_scales_with_load() {
        let flows = wl(0.9).generate(2);
        for w in flows.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        assert!(wl(0.2).mean_gap() > wl(0.8).mean_gap());
    }

    #[test]
    fn offered_load_calibration() {
        // Measure realized load on the memory links over the generated
        // span: bytes / (span × memories × capacity) ≈ load.
        let w = wl(0.6);
        let flows = w.generate(3);
        let span = flows.last().unwrap().arrival - flows[0].arrival;
        let bytes: u64 = flows.iter().map(|f| f.size as u64).sum();
        let capacity_bytes =
            w.link.as_bps() as f64 / 8.0 * span.as_ps() as f64 / 1e12 * w.memory_nodes() as f64;
        let realized = bytes as f64 / capacity_bytes;
        assert!(
            (realized - 0.6).abs() < 0.1,
            "realized load {realized} vs target 0.6"
        );
    }

    #[test]
    fn write_fraction_respected() {
        let mut w = wl(0.5);
        w.write_fraction = 0.8;
        let flows = w.generate(4);
        let writes = flows.iter().filter(|f| f.kind == FlowKind::Write).count();
        let frac = writes as f64 / flows.len() as f64;
        assert!((frac - 0.8).abs() < 0.05, "write fraction {frac}");
    }

    #[test]
    fn pure_mixes() {
        let mut w = wl(0.5);
        w.write_fraction = 0.0;
        assert!(w.generate(5).iter().all(|f| f.kind == FlowKind::Read));
        w.write_fraction = 1.0;
        assert!(w.generate(5).iter().all(|f| f.kind == FlowKind::Write));
    }

    #[test]
    fn paper_default_shape() {
        let w = SyntheticWorkload::paper_default(0.8, 0.5, 10);
        assert_eq!(w.nodes, 144);
        assert_eq!(w.compute_nodes(), 72);
        assert_eq!(w.memory_nodes(), 72);
        assert_eq!(w.generate(1).len(), 10);
    }

    fn rack_wl(local: f64) -> RackAwareWorkload {
        RackAwareWorkload {
            nodes: 32,
            racks: 4,
            link: Bandwidth::from_gbps(100),
            load: 0.6,
            size: 64,
            write_fraction: 0.5,
            local_fraction: local,
            count: 4000,
        }
    }

    #[test]
    fn rack_roles_are_respected() {
        for f in rack_wl(0.5).generate(7) {
            assert!(f.src % 8 < 4, "sources are rack-local compute nodes");
            assert!(f.dst % 8 >= 4, "destinations are memory nodes");
        }
    }

    #[test]
    fn rack_locality_fraction_is_calibrated() {
        for target in [0.0, 0.5, 1.0] {
            let flows = rack_wl(target).generate(11);
            let local = flows.iter().filter(|f| f.src / 8 == f.dst / 8).count();
            let frac = local as f64 / flows.len() as f64;
            assert!(
                (frac - target).abs() < 0.05,
                "local fraction {frac} vs target {target}"
            );
        }
    }

    #[test]
    fn rack_workload_deterministic_and_sorted() {
        let a = rack_wl(0.3).generate(5);
        assert_eq!(a, rack_wl(0.3).generate(5));
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn chunked_generation_is_bit_identical() {
        // Per-node splittable streams: the flow list must not depend on
        // how nodes are chunked across threads — the property that lets
        // per-shard arrival generation stay deterministic at any shard
        // count.
        for seed in [0u64, 7, 42, 0xDEAD] {
            let w = wl(0.6);
            let reference = w.generate(seed);
            for chunks in [1usize, 2, 3, 8, 64] {
                assert_eq!(w.generate_par(seed, chunks), reference, "seed {seed}");
            }
            let r = rack_wl(0.4);
            let reference = r.generate(seed);
            for chunks in [1usize, 2, 5, 16] {
                assert_eq!(r.generate_par(seed, chunks), reference, "seed {seed}");
            }
        }
    }

    #[test]
    fn single_rack_degenerates_to_local_traffic() {
        let w = RackAwareWorkload {
            racks: 1,
            nodes: 8,
            local_fraction: 1.0,
            ..rack_wl(1.0)
        };
        for f in w.generate(3) {
            assert!(f.src < 4 && f.dst >= 4);
        }
    }
}
