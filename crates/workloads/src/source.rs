//! Streaming flow sources: pull-based, time-ordered arrival generation
//! in O(active generators) memory.
//!
//! The materialized generators ([`crate::SyntheticWorkload::generate`],
//! [`crate::RackAwareWorkload::generate`]) build the entire `Vec<Flow>`
//! up front — O(count) memory, which caps how many flows a harness can
//! push through a simulation. A [`FlowSource`] inverts that: the
//! simulation *pulls* the next arrival when it is ready to admit it, so
//! the generator holds only one pending arrival per compute node.
//!
//! [`MergeSource`] is the streaming twin of the batch generators' merge:
//! each compute node draws from its own splittable [`Rng::stream`]
//! substream, and a k-way heap merge keyed by `(arrival, node)` emits
//! flows in exactly the order the batch path's stable
//! `sort_by_key((at, node))` produces. Because one candidate per node is
//! in the heap at a time and each node's arrivals are nondecreasing, the
//! heap order *is* the sorted order — the emitted stream is
//! bit-identical to `generate()` (including dense ids assigned in
//! emission order), which the `prop_source` suite pins, prefix by
//! prefix.

use edm_core::sim::{Flow, FlowKind};
use edm_sim::{Duration, Rng, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pull-based source of time-ordered flow arrivals.
///
/// Implementors yield flows with nondecreasing `arrival` and dense ids
/// (`0, 1, 2, …` in emission order), so a simulation can admit arrivals
/// lazily — scheduling the next admission event when the previous one
/// fires — instead of pre-loading the whole workload.
pub trait FlowSource: Iterator<Item = Flow> {
    /// Flows not yet emitted.
    fn remaining(&self) -> usize;

    /// Drains the source into a flow list, pre-sized from
    /// [`remaining`](Self::remaining) — the bridge from streaming
    /// ingestion to consumers that slice one flow set many ways (the
    /// `edm-approx` per-link decomposition buckets every flow onto each
    /// link its route crosses, so it needs the whole set at once).
    fn materialize(mut self) -> Vec<Flow>
    where
        Self: Sized,
    {
        let mut out = Vec::with_capacity(self.remaining());
        out.extend(&mut self);
        out
    }
}

/// Per-compute-node destination/kind draw shared by the batch and
/// streaming generators — one implementation, two consumption shapes,
/// so the RNG call sequence per node cannot diverge between them.
pub trait DrawDest {
    /// Draws the destination node and flow kind for one arrival issued
    /// by compute node `src`, advancing `rng` exactly as the batch
    /// generator's closure does.
    fn draw(&self, rng: &mut Rng, src: usize) -> (usize, FlowKind);
}

/// Streaming k-way merge of per-node Poisson arrival streams.
///
/// Memory is O(compute nodes): one [`Rng`] and one pending `(arrival,
/// node)` heap entry per node, regardless of how many flows the source
/// will emit. Clones are independent replays of the same stream (the
/// per-shard replication the sharded engine needs).
#[derive(Debug, Clone)]
pub struct MergeSource<D> {
    draw: D,
    gap: Duration,
    size: u32,
    remaining: usize,
    next_id: usize,
    rngs: Vec<Rng>,
    /// Min-heap of `(arrival, node, rng slot)` — one entry per node. The
    /// slot rides along for O(1) RNG lookup; `(arrival, node)` alone
    /// decides the order, matching the batch path's stable sort key.
    heap: BinaryHeap<Reverse<(Time, usize, usize)>>,
}

impl<D: DrawDest> MergeSource<D> {
    /// Creates a source emitting `count` flows of `size` bytes from the
    /// given compute nodes, each drawing Poisson gaps around `gap` from
    /// its own `Rng::stream(seed, node)` substream.
    pub fn new(
        seed: u64,
        computes: Vec<usize>,
        gap: Duration,
        count: usize,
        size: u32,
        draw: D,
    ) -> Self {
        let mut rngs = Vec::with_capacity(computes.len());
        let mut heap = BinaryHeap::with_capacity(computes.len());
        for (slot, &c) in computes.iter().enumerate() {
            let mut rng = Rng::stream(seed, c as u64);
            let at = Time::ZERO + rng.exp_duration(gap);
            rngs.push(rng);
            heap.push(Reverse((at, c, slot)));
        }
        MergeSource {
            draw,
            gap,
            size,
            remaining: if computes.is_empty() { 0 } else { count },
            next_id: 0,
            rngs,
            heap,
        }
    }
}

impl<D: DrawDest> Iterator for MergeSource<D> {
    type Item = Flow;

    fn next(&mut self) -> Option<Flow> {
        if self.remaining == 0 {
            return None;
        }
        let Reverse((at, node, slot)) = self.heap.pop()?;
        let rng = &mut self.rngs[slot];
        let (dst, kind) = self.draw.draw(rng, node);
        let flow = Flow {
            id: self.next_id,
            src: node,
            dst,
            size: self.size,
            arrival: at,
            kind,
        };
        self.next_id += 1;
        self.remaining -= 1;
        self.heap
            .push(Reverse((at + rng.exp_duration(self.gap), node, slot)));
        Some(flow)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<D: DrawDest> ExactSizeIterator for MergeSource<D> {}

impl<D: DrawDest> FlowSource for MergeSource<D> {
    fn remaining(&self) -> usize {
        self.remaining
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RackAwareWorkload, SyntheticWorkload};
    use edm_sim::Bandwidth;

    fn wl(count: usize) -> SyntheticWorkload {
        SyntheticWorkload {
            nodes: 16,
            link: Bandwidth::from_gbps(100),
            load: 0.6,
            size: 64,
            write_fraction: 0.5,
            count,
        }
    }

    #[test]
    fn source_matches_generate_exactly() {
        let w = wl(3000);
        assert_eq!(w.source(42).collect::<Vec<_>>(), w.generate(42));
    }

    #[test]
    fn rack_source_matches_generate_exactly() {
        let r = RackAwareWorkload {
            nodes: 32,
            racks: 4,
            link: Bandwidth::from_gbps(100),
            load: 0.6,
            size: 64,
            write_fraction: 0.5,
            local_fraction: 0.4,
            count: 2500,
        };
        assert_eq!(r.source(7).collect::<Vec<_>>(), r.generate(7));
    }

    #[test]
    fn longer_streams_extend_shorter_ones() {
        // A count-N source is a prefix of a count-10N source: streaming
        // scale-up never perturbs the flows already emitted.
        let small: Vec<_> = wl(500).source(9).collect();
        let large: Vec<_> = wl(5000).source(9).take(500).collect();
        assert_eq!(small, large);
    }

    #[test]
    fn remaining_counts_down_and_len_is_exact() {
        let mut s = wl(10).source(1);
        assert_eq!(s.remaining(), 10);
        assert_eq!(s.len(), 10);
        s.next().unwrap();
        assert_eq!(s.remaining(), 9);
        assert_eq!(s.by_ref().count(), 9);
        assert_eq!(s.remaining(), 0);
        assert!(s.next().is_none());
    }

    #[test]
    fn clones_replay_identically() {
        let mut a = wl(100).source(3);
        for _ in 0..40 {
            a.next();
        }
        let b = a.clone();
        assert_eq!(a.collect::<Vec<_>>(), b.collect::<Vec<_>>());
    }
}
