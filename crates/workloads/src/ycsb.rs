//! YCSB key-value operation mixes (Figures 6 and 7).
//!
//! The cloud-serving benchmark of Cooper et al. \[18\], as the paper uses
//! it: workload A is 50% updates, B is 5%, F is read-modify-write (which
//! the paper counts as 33% writes). Reads fetch 1 KB objects with an 8 B
//! request; updates carry 100 B. Key popularity is Zipf-skewed, matching
//! YCSB's default request distribution.

use edm_sim::rng::Zipf;
use edm_sim::Rng;

/// One key-value operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbOp {
    /// Read the object under `key`.
    Read {
        /// Key index.
        key: u64,
    },
    /// Update the object under `key` with a payload of `bytes`.
    Update {
        /// Key index.
        key: u64,
        /// Update payload size.
        bytes: u32,
    },
}

impl YcsbOp {
    /// The key this operation touches.
    pub fn key(&self) -> u64 {
        match *self {
            YcsbOp::Read { key } | YcsbOp::Update { key, .. } => key,
        }
    }

    /// Whether this is a write.
    pub fn is_update(&self) -> bool {
        matches!(self, YcsbOp::Update { .. })
    }
}

/// A YCSB workload definition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YcsbWorkload {
    /// Workload label, e.g. `"A"`.
    pub name: &'static str,
    /// Fraction of operations that are updates.
    pub update_fraction: f64,
    /// Number of distinct keys.
    pub keys: u64,
    /// Object size returned by reads (1 KB in §4.2.2).
    pub object_bytes: u32,
    /// Update payload size (100 B in §4.2.2).
    pub update_bytes: u32,
    /// Zipf skew (YCSB default 0.99 is outside our sampler's (0,1) range;
    /// 0.9 preserves the hot-key behaviour).
    pub zipf_theta: f64,
}

impl YcsbWorkload {
    fn base(name: &'static str, update_fraction: f64) -> Self {
        YcsbWorkload {
            name,
            update_fraction,
            keys: 100_000,
            object_bytes: 1024,
            update_bytes: 100,
            zipf_theta: 0.9,
        }
    }

    /// Workload A: 50% reads / 50% updates.
    pub fn a() -> Self {
        Self::base("A", 0.5)
    }

    /// Workload B: 95% reads / 5% updates.
    pub fn b() -> Self {
        Self::base("B", 0.05)
    }

    /// Workload F: read-modify-write; the paper counts it as 33% writes.
    pub fn f() -> Self {
        Self::base("F", 0.33)
    }

    /// The three workloads of Figure 6.
    pub fn figure6() -> Vec<YcsbWorkload> {
        vec![YcsbWorkload::a(), YcsbWorkload::b(), YcsbWorkload::f()]
    }

    /// Generates `count` operations, deterministically from `seed`.
    pub fn generate(&self, count: usize, seed: u64) -> Vec<YcsbOp> {
        let mut rng = Rng::seed_from(seed);
        let zipf = Zipf::new(self.keys, self.zipf_theta);
        (0..count)
            .map(|_| {
                let key = zipf.sample(&mut rng);
                if rng.chance(self.update_fraction) {
                    YcsbOp::Update {
                        key,
                        bytes: self.update_bytes,
                    }
                } else {
                    YcsbOp::Read { key }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_fractions_match_definitions() {
        for (wl, want) in [
            (YcsbWorkload::a(), 0.5),
            (YcsbWorkload::b(), 0.05),
            (YcsbWorkload::f(), 0.33),
        ] {
            let ops = wl.generate(20_000, 1);
            let updates = ops.iter().filter(|o| o.is_update()).count();
            let frac = updates as f64 / ops.len() as f64;
            assert!(
                (frac - want).abs() < 0.02,
                "workload {}: update fraction {frac} vs {want}",
                wl.name
            );
        }
    }

    #[test]
    fn keys_are_zipf_skewed() {
        let ops = YcsbWorkload::a().generate(50_000, 2);
        let hot = ops.iter().filter(|o| o.key() < 100).count();
        // Top-100 of 100k keys must receive far more than the uniform
        // share (0.1%).
        assert!(
            hot as f64 / ops.len() as f64 > 0.05,
            "hot-key share {}",
            hot as f64 / ops.len() as f64
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = YcsbWorkload::f().generate(100, 3);
        let b = YcsbWorkload::f().generate(100, 3);
        assert_eq!(a, b);
        assert_ne!(a, YcsbWorkload::f().generate(100, 4));
    }

    #[test]
    fn keys_in_range() {
        let wl = YcsbWorkload::b();
        for op in wl.generate(10_000, 5) {
            assert!(op.key() < wl.keys);
        }
    }

    #[test]
    fn figure6_lineup() {
        let wls = YcsbWorkload::figure6();
        assert_eq!(
            wls.iter().map(|w| w.name).collect::<Vec<_>>(),
            vec!["A", "B", "F"]
        );
    }
}
