//! Heavy-tailed disaggregated-application traces (Figure 8b).
//!
//! The paper's artifact generates its traces synthetically from
//! "pre-existing CDF profiles of disaggregated workloads" (§A.5.2),
//! derived from the applications of Gao et al. \[22\] and Shoal \[61\].
//! We do the same: each application is a message-size CDF (heavy-tailed,
//! per §4.3.2) from which traces with a 50/50 read/write mix are drawn at
//! a target load.
//!
//! The absolute CDF control points are our calibration (the paper does
//! not print them); what the experiment depends on — small-message-
//! dominated counts with a byte-heavy tail, differing skew per
//! application — is preserved.

use edm_core::sim::{Flow, FlowKind};
use edm_sim::rng::EmpiricalCdf;
use edm_sim::{Bandwidth, Duration, Rng, Time};

/// One disaggregated application's trace profile.
#[derive(Debug, Clone)]
pub struct AppTrace {
    name: &'static str,
    cdf: EmpiricalCdf,
}

impl AppTrace {
    /// Hadoop (Sort): shuffle-dominated, the heaviest tail.
    pub fn hadoop() -> Self {
        AppTrace {
            name: "Hadoop (Sort)",
            cdf: EmpiricalCdf::new(vec![
                (64, 0.35),
                (256, 0.55),
                (1_024, 0.72),
                (4_096, 0.85),
                (16_384, 0.93),
                (131_072, 0.985),
                (1_048_576, 1.0),
            ])
            .expect("static CDF is valid"),
        }
    }

    /// Spark (Sort): similar to Hadoop with a fatter middle.
    pub fn spark() -> Self {
        AppTrace {
            name: "Spark (Sort)",
            cdf: EmpiricalCdf::new(vec![
                (64, 0.30),
                (512, 0.55),
                (2_048, 0.75),
                (8_192, 0.88),
                (32_768, 0.955),
                (524_288, 1.0),
            ])
            .expect("static CDF is valid"),
        }
    }

    /// Spark SQL (Query): many small lookups, moderate tail.
    pub fn spark_sql() -> Self {
        AppTrace {
            name: "Spark SQL (Query)",
            cdf: EmpiricalCdf::new(vec![
                (64, 0.45),
                (256, 0.68),
                (1_024, 0.82),
                (4_096, 0.92),
                (16_384, 0.98),
                (65_536, 1.0),
            ])
            .expect("static CDF is valid"),
        }
    }

    /// GraphLab (collaborative filtering on the Netflix data set):
    /// vertex/edge-state messages, moderate skew.
    pub fn graphlab() -> Self {
        AppTrace {
            name: "GraphLab (Filtering)",
            cdf: EmpiricalCdf::new(vec![
                (64, 0.40),
                (512, 0.65),
                (2_048, 0.82),
                (8_192, 0.93),
                (32_768, 0.985),
                (262_144, 1.0),
            ])
            .expect("static CDF is valid"),
        }
    }

    /// Memcached over YCSB: small-object dominated, shortest tail.
    pub fn memcached() -> Self {
        AppTrace {
            name: "Memcached (KVstore)",
            cdf: EmpiricalCdf::new(vec![
                (64, 0.50),
                (128, 0.70),
                (512, 0.85),
                (1_024, 0.93),
                (4_096, 0.99),
                (16_384, 1.0),
            ])
            .expect("static CDF is valid"),
        }
    }

    /// All five applications, in the paper's Figure 8b order.
    pub fn all() -> Vec<AppTrace> {
        vec![
            AppTrace::hadoop(),
            AppTrace::spark(),
            AppTrace::spark_sql(),
            AppTrace::graphlab(),
            AppTrace::memcached(),
        ]
    }

    /// Application display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The message-size CDF.
    pub fn cdf(&self) -> &EmpiricalCdf {
        &self.cdf
    }

    /// Generates a trace of `count` messages over `nodes` (first half
    /// compute, second half memory) at `load`, 50/50 read/write (§4.3.2),
    /// deterministically from `seed`.
    pub fn generate(
        &self,
        nodes: usize,
        link: Bandwidth,
        load: f64,
        count: usize,
        seed: u64,
    ) -> Vec<Flow> {
        assert!(nodes >= 2, "need compute and memory nodes");
        assert!(load > 0.0 && load <= 1.0, "load in (0,1]");
        let mut rng = Rng::seed_from(seed);
        let computes = nodes / 2;
        let memories = nodes - computes;
        // Calibrate Poisson rate from the CDF's mean size.
        let mean_size = self.cdf.mean();
        let bytes_per_sec = link.as_bps() as f64 / 8.0 * load;
        let per_compute = bytes_per_sec * memories as f64 / computes as f64;
        let gap = Duration::from_ps((1e12 * mean_size / per_compute).round() as u64);

        let mut next_at: Vec<Time> = (0..computes)
            .map(|_| Time::ZERO + rng.exp_duration(gap))
            .collect();
        let mut flows = Vec::with_capacity(count);
        for id in 0..count {
            let (src, _) = next_at
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .expect("non-empty");
            let arrival = next_at[src];
            next_at[src] = arrival + rng.exp_duration(gap);
            let dst = computes + rng.below(memories as u64) as usize;
            let size = self.cdf.sample(&mut rng).clamp(8, u32::MAX as u64) as u32;
            let kind = if rng.chance(0.5) {
                FlowKind::Write
            } else {
                FlowKind::Read
            };
            flows.push(Flow {
                id,
                src,
                dst,
                size,
                arrival,
                kind,
            });
        }
        flows.sort_by_key(|f| f.arrival);
        flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_apps_with_distinct_profiles() {
        let apps = AppTrace::all();
        assert_eq!(apps.len(), 5);
        let names: std::collections::HashSet<_> = apps.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 5);
        // Memcached's mean must be the smallest; Hadoop's the largest.
        let means: Vec<f64> = apps.iter().map(|a| a.cdf().mean()).collect();
        let memcached = means[4];
        let hadoop = means[0];
        assert!(
            memcached < hadoop,
            "memcached {memcached} vs hadoop {hadoop}"
        );
    }

    #[test]
    fn traces_are_heavy_tailed() {
        // Heavy tail: the largest decile carries most of the bytes.
        let trace = AppTrace::hadoop().generate(16, Bandwidth::from_gbps(100), 0.5, 5000, 1);
        let mut sizes: Vec<u64> = trace.iter().map(|f| f.size as u64).collect();
        sizes.sort_unstable();
        let total: u64 = sizes.iter().sum();
        let top_decile: u64 = sizes[sizes.len() * 9 / 10..].iter().sum();
        assert!(
            top_decile as f64 / total as f64 > 0.5,
            "top decile carries {} of bytes",
            top_decile as f64 / total as f64
        );
    }

    #[test]
    fn mixed_reads_and_writes() {
        let trace = AppTrace::spark().generate(16, Bandwidth::from_gbps(100), 0.5, 2000, 2);
        let writes = trace.iter().filter(|f| f.kind == FlowKind::Write).count();
        let frac = writes as f64 / trace.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "write fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = AppTrace::graphlab().generate(8, Bandwidth::from_gbps(100), 0.4, 100, 3);
        let b = AppTrace::graphlab().generate(8, Bandwidth::from_gbps(100), 0.4, 100, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn sizes_within_cdf_support() {
        for app in AppTrace::all() {
            let max = app.cdf().max_value();
            let t = app.generate(8, Bandwidth::from_gbps(100), 0.3, 500, 4);
            for f in t {
                assert!((8..=max as u32).contains(&f.size));
            }
        }
    }
}
