//! Closed-loop tenant specifications for the end-to-end application tier.
//!
//! An open workload ([`crate::FlowSource`]) fixes arrival *times*; a
//! closed loop fixes the *population*: each tenant keeps at most `mlp`
//! operations outstanding (its memory-level-parallelism window, the knob
//! EDAN shows application slowdown is most sensitive to), issues the next
//! op only when a completion frees a slot, and inserts an exponential
//! think time between a completion and the op it triggers. Arrival times
//! are therefore *outputs* of the simulation — which is why the driver
//! lives inside `edm-topo`'s event world rather than behind a flow
//! iterator.
//!
//! This module holds the simulator-independent half: the per-tenant op
//! mix (YCSB read/update fractions plus a NIC-side RMW share, §3.2.1 —
//! workload F's read-modify-write executed as one atomic fabric op), the
//! local:remote split (the EDAN grid's second axis), and deterministic
//! per-tenant sampling from splittable [`Rng`] streams.

use crate::ycsb::YcsbWorkload;
use edm_sim::rng::Zipf;
use edm_sim::{Duration, Rng};

/// What one closed-loop operation does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Fetch a remote object (8 B request, `object_bytes` response).
    Read,
    /// Overwrite a remote object's payload (`update_bytes` request,
    /// control-block ack).
    Update,
    /// NIC-side atomic read-modify-write on one remote word (control
    /// blocks both ways; the memory node serializes read→modify→write).
    Rmw,
    /// An access served by the compute node's own DRAM — no fabric
    /// involved; the local side of the local:remote split.
    Local,
}

/// One sampled closed-loop operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantOp {
    /// Operation kind.
    pub kind: OpKind,
    /// Key index (within [`OpMix::ycsb`]'s key space). Local ops keep a
    /// key too — the tenant's working set spans both tiers.
    pub key: u64,
}

/// A tenant's operation mix: a YCSB read/update split, a share of updates
/// executed as NIC-side RMWs, and the fraction of accesses served from
/// local DRAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// The YCSB workload supplying key skew, object/update sizes, and the
    /// read/update split.
    pub ycsb: YcsbWorkload,
    /// Fraction of *updates* executed as atomic RMWs instead of payload
    /// writes (1.0 models workload F's read-modify-write ops natively).
    pub rmw_fraction: f64,
    /// Fraction of all ops served by local DRAM (the `local:remote`
    /// split; 0.0 = fully disaggregated, 1.0 = the all-local baseline).
    pub local_fraction: f64,
}

impl OpMix {
    /// A fully-remote mix over `ycsb` with plain-write updates.
    pub fn remote(ycsb: YcsbWorkload) -> Self {
        OpMix {
            ycsb,
            rmw_fraction: 0.0,
            local_fraction: 0.0,
        }
    }

    /// Workload F with its read-modify-writes executed as NIC-side RMWs.
    pub fn f_rmw() -> Self {
        OpMix {
            ycsb: YcsbWorkload::f(),
            rmw_fraction: 1.0,
            ..OpMix::remote(YcsbWorkload::f())
        }
    }

    /// Samples one operation. Consumes a *fixed* number of draws per call
    /// (key, tier, class, rmw) regardless of the outcome, so interleaved
    /// tenants stay on reproducible substreams.
    pub fn sample(&self, zipf: &Zipf, rng: &mut Rng) -> TenantOp {
        let key = zipf.sample(rng);
        let local = rng.chance(self.local_fraction);
        let update = rng.chance(self.ycsb.update_fraction);
        let rmw = rng.chance(self.rmw_fraction);
        let kind = if local {
            OpKind::Local
        } else if update && rmw {
            OpKind::Rmw
        } else if update {
            OpKind::Update
        } else {
            OpKind::Read
        };
        TenantOp { kind, key }
    }
}

/// One closed-loop tenant: a compute-node process with a bounded
/// outstanding-op window and think times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// The compute node this tenant runs on.
    pub node: usize,
    /// Operation mix.
    pub mix: OpMix,
    /// Outstanding-op window (memory-level parallelism); must be ≥ 1.
    pub mlp: u32,
    /// Mean exponential think time inserted between a completion and the
    /// op it triggers ([`Duration::ZERO`] = issue back-to-back).
    pub think_mean: Duration,
    /// Total operations this tenant issues before going idle.
    pub ops: u64,
}

impl TenantSpec {
    /// A saturating tenant (no think time) issuing `ops` operations of
    /// `mix` from `node` with a window of `mlp`.
    pub fn saturating(node: usize, mix: OpMix, mlp: u32, ops: u64) -> Self {
        TenantSpec {
            node,
            mix,
            mlp,
            think_mean: Duration::ZERO,
            ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_n(mix: OpMix, n: usize, seed: u64) -> Vec<TenantOp> {
        let zipf = Zipf::new(mix.ycsb.keys, mix.ycsb.zipf_theta);
        let mut rng = Rng::seed_from(seed);
        (0..n).map(|_| mix.sample(&zipf, &mut rng)).collect()
    }

    #[test]
    fn remote_mix_matches_ycsb_fractions() {
        let ops = sample_n(OpMix::remote(YcsbWorkload::a()), 20_000, 1);
        let updates = ops
            .iter()
            .filter(|o| o.kind == OpKind::Update || o.kind == OpKind::Rmw)
            .count();
        let frac = updates as f64 / ops.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "update fraction {frac}");
        assert!(ops.iter().all(|o| o.kind != OpKind::Local));
    }

    #[test]
    fn f_rmw_turns_updates_into_rmws() {
        let ops = sample_n(OpMix::f_rmw(), 20_000, 2);
        assert!(ops.iter().all(|o| o.kind != OpKind::Update));
        let rmws = ops.iter().filter(|o| o.kind == OpKind::Rmw).count();
        let frac = rmws as f64 / ops.len() as f64;
        assert!((frac - 0.33).abs() < 0.02, "rmw fraction {frac}");
    }

    #[test]
    fn local_fraction_splits_the_tiers() {
        let mix = OpMix {
            local_fraction: 0.75,
            ..OpMix::remote(YcsbWorkload::b())
        };
        let ops = sample_n(mix, 20_000, 3);
        let local = ops.iter().filter(|o| o.kind == OpKind::Local).count();
        let frac = local as f64 / ops.len() as f64;
        assert!((frac - 0.75).abs() < 0.02, "local fraction {frac}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mix = OpMix {
            rmw_fraction: 0.3,
            local_fraction: 0.25,
            ..OpMix::remote(YcsbWorkload::a())
        };
        assert_eq!(sample_n(mix, 500, 7), sample_n(mix, 500, 7));
        assert_ne!(sample_n(mix, 500, 7), sample_n(mix, 500, 8));
    }

    #[test]
    fn keys_stay_in_range_and_skewed() {
        let mix = OpMix::remote(YcsbWorkload::a());
        let ops = sample_n(mix, 50_000, 4);
        assert!(ops.iter().all(|o| o.key < mix.ycsb.keys));
        let hot = ops.iter().filter(|o| o.key < 100).count();
        assert!(hot as f64 / ops.len() as f64 > 0.05);
    }
}
