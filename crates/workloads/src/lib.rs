//! `edm-workloads` — workload and trace generators for the evaluation.
//!
//! Three families, matching §4's experiments:
//!
//! * [`synthetic`] — Poisson all-to-all memory traffic at a target offered
//!   load, with configurable read/write mix and message size (the Figure
//!   8a microbenchmark: 64 B messages, loads 0.2–0.9);
//! * [`traces`] — heavy-tailed message-size CDF profiles for the five
//!   disaggregated applications of Figure 8b (Hadoop, Spark, Spark SQL,
//!   GraphLab, Memcached), used to synthesize traces the way the paper's
//!   artifact does (from pre-existing CDF profiles, §A.5.2);
//! * [`ycsb`] — YCSB key-value operation mixes A/B/F with Zipf-skewed key
//!   popularity (Figures 6 and 7);
//! * [`closed_loop`] — closed-loop tenant specifications (bounded MLP
//!   window, think times, local:remote split) consumed by `edm-topo`'s
//!   end-to-end application tier, where arrival times are outputs of the
//!   simulation rather than inputs.
//!
//! The synthetic generators come in two consumption shapes: materialized
//! (`generate`/`generate_par`, building the whole `Vec<Flow>` up front)
//! and streaming ([`source`] — a pull-based [`FlowSource`] emitting the
//! bit-identical flow sequence one arrival at a time in O(compute nodes)
//! memory, for million-flow runs where the materialized list would
//! dominate RSS).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closed_loop;
pub mod source;
pub mod synthetic;
pub mod traces;
pub mod ycsb;

pub use closed_loop::{OpKind, OpMix, TenantOp, TenantSpec};
pub use source::{DrawDest, FlowSource, MergeSource};
pub use synthetic::{RackAwareWorkload, SyntheticWorkload};
pub use traces::AppTrace;
pub use ycsb::{YcsbOp, YcsbWorkload};
