//! `edm-workloads` — workload and trace generators for the evaluation.
//!
//! Three families, matching §4's experiments:
//!
//! * [`synthetic`] — Poisson all-to-all memory traffic at a target offered
//!   load, with configurable read/write mix and message size (the Figure
//!   8a microbenchmark: 64 B messages, loads 0.2–0.9);
//! * [`traces`] — heavy-tailed message-size CDF profiles for the five
//!   disaggregated applications of Figure 8b (Hadoop, Spark, Spark SQL,
//!   GraphLab, Memcached), used to synthesize traces the way the paper's
//!   artifact does (from pre-existing CDF profiles, §A.5.2);
//! * [`ycsb`] — YCSB key-value operation mixes A/B/F with Zipf-skewed key
//!   popularity (Figures 6 and 7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod synthetic;
pub mod traces;
pub mod ycsb;

pub use synthetic::{RackAwareWorkload, SyntheticWorkload};
pub use traces::AppTrace;
pub use ycsb::{YcsbOp, YcsbWorkload};
