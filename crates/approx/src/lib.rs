//! `edm-approx` — Parsimon-style link-level decomposition estimator for
//! datacenter-scale EDM what-if sweeps.
//!
//! The exact multi-switch engine ([`edm_topo::TopoEdm`]) answers "what
//! would this fabric do" by simulating every scheduler event; each
//! what-if question (a topology size, a failure scenario, a load point)
//! costs a full run. This crate trades a *measured* accuracy envelope
//! for orders-of-magnitude cheaper sweeps, following Parsimon's
//! architecture (NSDI '23) re-expressed over EDM's demand-sparse
//! scheduler:
//!
//! 1. [`decompose`](decompose()) — resolve every flow's salted-ECMP path
//!    with the exact engine's *own* path choice (bit-identical, pinned
//!    by `prop_approx`) and slice the flow set onto per-directed-link
//!    clusters, deduplicating links with identical (bandwidth, latency,
//!    flow-profile) signatures.
//! 2. [`simulate_cluster`] — replay each cluster through a miniature
//!    [`edm_core::sim::SwitchDomain`] (the same scheduler core the exact
//!    engine runs per switch — not a new queueing model), yielding
//!    per-crossing queueing excesses as shard-mergeable
//!    [`edm_sim::LogHistogram`]s. Clusters are independent:
//!    embarrassingly parallel.
//! 3. [`compose()`] — per flow, an exact unloaded baseline
//!    ([`edm_topo::TopoEdm::solo_mct`], memoized per route shape) plus a
//!    combination of its crossings' excesses ([`Combine`]; the
//!    documented independence assumption lives there).
//!
//! What-if grids go through [`SweepCache`]: scenarios that leave a
//! link's flow profile untouched (most failure what-ifs) reuse its
//! simulated delays, so a 100-scenario sweep pays for the clusters that
//! *changed*, not 100 full decompositions' worth of replays.
//!
//! When to trust which engine: the estimator is built for breadth-first
//! sweeps over placements, failures, and load points, where relative
//! ordering and ~10% FCT accuracy steer a decision; hand the shortlisted
//! scenarios to [`edm_topo::TopoEdm`] for exact tails, reroute dynamics,
//! and background-IP interaction (the estimator ignores
//! [`edm_topo::TopoEdmConfig::ip`] and models faults as static
//! topology states, not mid-run transitions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compose;
pub mod decompose;
pub mod delta;
mod fxhash;
pub mod linksim;

pub use compose::{compose, compose_cached, ApproxResult, Combine, SoloCache};
pub use decompose::{
    bucket, decompose, resolve_all, resolve_delta, resolve_route, ClusterProfile, CrossRec,
    Decomposition, FlowPath, HopRef, LinkCluster, LinkFlow, ResolvedRoutes, TopoSignature,
};
pub use delta::SweepBase;
pub use linksim::{simulate_batch, simulate_cluster, ClusterDelays};

use crate::fxhash::FxHashMap;
use crate::linksim::{DomainPool, SoloMemo};
use edm_core::sim::Flow;
use edm_sim::Duration;
use edm_topo::{FaultKind, TopoEdmConfig, Topology};

/// The documented p99 FCT error envelope of the estimator against the
/// exact engine on the overlap-size validation points: the paper's 64 B
/// message workloads at loads 0.4/0.7 on healthy and single-fault
/// 144/288-node fabrics. Asserted by the `error_envelope` suite and the
/// `approx_sweep` harness, measured into `BENCH_approx.json`. Outside
/// this regime the error grows — at 1–4 KiB messages under load 0.7 the
/// measured p99 gap reaches ~15% (per-hop serialization couples links
/// more strongly, and the per-link replays cannot see cross-link
/// correlation); `approx_sweep` records one such out-of-envelope point
/// so the degradation stays visible in committed artifacts.
pub const P99_ERROR_BOUND: f64 = 0.10;

/// Applies a what-if fault set to a topology as *static* element state
/// (the estimator's failure model: the fabric is already in its degraded
/// steady state when the workload runs, unlike the exact engine's
/// mid-run [`edm_topo::FaultEvent`] transitions).
pub fn apply_faults(topo: &mut Topology, faults: &[FaultKind]) {
    for f in faults {
        match *f {
            FaultKind::LinkDown(l) => topo.set_link_up(l, false),
            FaultKind::LinkUp(l) => topo.set_link_up(l, true),
            FaultKind::SwitchDown(s) => topo.set_switch_up(s, false),
            FaultKind::SwitchUp(s) => topo.set_switch_up(s, true),
            FaultKind::DegradeLink { link, extra } => topo.degrade_link(link, extra),
            FaultKind::RestoreLink(l) => topo.restore_link(l),
        }
    }
}

/// Sweep-level memo: simulated cluster delays keyed by the cluster's
/// dedup signature, plus the exact unloaded baselines ([`SoloCache`]).
/// Across a what-if grid most links' flow profiles are identical from
/// scenario to scenario (a fault only reshapes the clusters of links
/// whose crossing flows rerouted), so consecutive scenarios hit mostly
/// cache — the grid pays for the clusters that *changed*.
/// Cached delays are bare excess slices, not [`ClusterDelays`]: a grid's
/// cache holds thousands of clusters, and the per-cluster histogram
/// (~32 KB each) is cheap to rebuild from the excesses at composition
/// time but expensive to keep resident.
#[derive(Debug, Default)]
pub struct SweepCache {
    map: FxHashMap<ClusterProfile, Box<[Duration]>>,
    mini: SoloMemo,
    pool: DomainPool,
    solo: SoloCache,
    hits: u64,
    misses: u64,
}

impl SweepCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cluster simulations served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cluster simulations actually replayed (or [`insert`](Self::insert)ed).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Exact solo probes run across the sweep so far.
    pub fn solo_probes(&self) -> usize {
        self.solo.probes()
    }

    /// The cached per-member excesses for `cluster`'s signature, without
    /// tallying — harnesses that fan misses out over worker threads use
    /// this to split hits from misses, then [`insert`](Self::insert) the
    /// simulated misses and [`note_hits`](Self::note_hits) the rest.
    pub fn peek(&self, cluster: &LinkCluster) -> Option<&[Duration]> {
        self.map.get(&cluster.profile).map(|d| &d[..])
    }

    /// Records an externally simulated cluster — tallied as a miss.
    pub fn insert(&mut self, cluster: &LinkCluster, delays: ClusterDelays) {
        self.misses += 1;
        self.map
            .insert(cluster.profile.clone(), delays.excess.into_boxed_slice());
    }

    /// Tallies cache hits counted externally (the [`peek`](Self::peek) /
    /// [`insert`](Self::insert) fan-out protocol).
    pub fn note_hits(&mut self, n: u64) {
        self.hits += n;
    }

    /// Ensures `cluster`'s delays are cached, replaying in-process on a
    /// miss; tallies either way.
    pub fn ensure(&mut self, cluster: &LinkCluster, cfg: &TopoEdmConfig) {
        if self.map.contains_key(&cluster.profile) {
            self.hits += 1;
        } else {
            self.misses += 1;
            let d = linksim::simulate_memo(cluster, cfg, &mut self.mini, &mut self.pool);
            self.map
                .insert(cluster.profile.clone(), d.excess.into_boxed_slice());
        }
    }

    /// The solo-baseline half of the cache, for [`compose_cached`].
    pub fn solo_mut(&mut self) -> &mut SoloCache {
        &mut self.solo
    }

    /// Composes `decomp` against this cache's delays without cloning
    /// them. Every cluster must already be cached ([`ensure`](Self::ensure)
    /// or [`insert`](Self::insert)).
    ///
    /// # Panics
    ///
    /// Panics if a cluster of `decomp` has no cached delays.
    pub fn compose(
        &mut self,
        topo: &Topology,
        cfg: &TopoEdmConfig,
        decomp: &Decomposition,
        combine: Combine,
    ) -> ApproxResult {
        let (map, solo) = (&self.map, &mut self.solo);
        let delays: Vec<&[Duration]> = decomp
            .clusters
            .iter()
            .map(|c| {
                map.get(&c.profile)
                    .map(|d| &d[..])
                    .expect("every cluster simulated before composition")
            })
            .collect();
        compose_cached(topo, cfg, decomp, &delays, combine, solo)
    }
}

/// The approximate engine: decompose → per-link replay → compose, under
/// one exact-engine configuration.
#[derive(Debug, Clone, Default)]
pub struct ApproxEngine {
    cfg: TopoEdmConfig,
    /// How per-link excesses combine end to end (see [`Combine`]).
    pub combine: Combine,
}

impl ApproxEngine {
    /// An engine estimating the exact engine under `cfg`.
    pub fn new(cfg: TopoEdmConfig) -> Self {
        ApproxEngine {
            cfg,
            combine: Combine::default(),
        }
    }

    /// The exact-engine configuration being estimated.
    pub fn config(&self) -> &TopoEdmConfig {
        &self.cfg
    }

    /// Estimates per-flow outcomes for `flows` on `topo`, simulating
    /// every cluster in-process. For grids, use
    /// [`estimate_cached`](Self::estimate_cached); to fan clusters over
    /// cores, drive the three stages directly (the `approx_sweep`
    /// harness pushes [`decompose`](decompose())'s clusters through
    /// `par_sweep`).
    pub fn estimate(&self, topo: &Topology, flows: &[Flow]) -> ApproxResult {
        let mut cache = SweepCache::new();
        self.estimate_cached(topo, flows, &mut cache)
    }

    /// Estimates with a sweep-level [`SweepCache`], so unchanged links
    /// and already-probed route shapes are replayed once per sweep.
    pub fn estimate_cached(
        &self,
        topo: &Topology,
        flows: &[Flow],
        cache: &mut SweepCache,
    ) -> ApproxResult {
        let d = decompose(topo, &self.cfg, flows);
        for c in &d.clusters {
            cache.ensure(c, &self.cfg);
        }
        cache.compose(topo, &self.cfg, &d, self.combine)
    }

    /// Estimates one what-if scenario of a sweep, reusing a baseline
    /// resolution: only flows the scenario's element changes can have
    /// rerouted are re-resolved ([`resolve_delta`]), and only clusters
    /// whose profiles shifted are replayed. `topo` must be the baseline
    /// fabric with the scenario's faults applied
    /// ([`apply_faults`]); `baseline`/`base_sig` come from the healthy
    /// fabric via [`resolve_all`] and [`TopoSignature::of`].
    pub fn estimate_scenario(
        &self,
        topo: &Topology,
        flows: &[Flow],
        baseline: &ResolvedRoutes,
        base_sig: &TopoSignature,
        cache: &mut SweepCache,
    ) -> ApproxResult {
        let routes = resolve_delta(topo, flows, baseline, base_sig);
        let d = bucket(topo, &self.cfg, flows, &routes);
        for c in &d.clusters {
            cache.ensure(c, &self.cfg);
        }
        cache.compose(topo, &self.cfg, &d, self.combine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_core::sim::{ClusterConfig, FlowKind};
    use edm_sim::{Duration, Time};
    use edm_topo::{cluster_topology, LeafSpine, TopoEdm};

    fn flows(n: usize, nodes: usize, gap_ns: u64) -> Vec<Flow> {
        (0..n)
            .map(|i| Flow {
                id: i,
                src: i % (nodes / 2),
                dst: nodes / 2 + (i * 7) % (nodes / 2),
                size: 64,
                arrival: Time::ZERO + Duration::from_ns(i as u64 * gap_ns),
                kind: if i % 3 == 0 {
                    FlowKind::Read
                } else {
                    FlowKind::Write
                },
            })
            .collect()
    }

    #[test]
    fn sparse_load_estimates_match_exact_closely() {
        // Widely spaced flows barely contend: estimate and exact agree
        // to within the mini-model's residual.
        let topo = cluster_topology(&ClusterConfig::default());
        let cfg = TopoEdmConfig::default();
        let fs = flows(200, 144, 2000);
        let est = ApproxEngine::new(cfg.clone()).estimate(&topo, &fs);
        let exact = TopoEdm::new(cfg).simulate(&topo, &fs);
        assert_eq!(est.delivered(), exact.delivered());
        for (e, x) in est.outcomes.iter().zip(&exact.outcomes) {
            let (e, x) = (e.mct().unwrap(), x.mct().unwrap());
            let err = (e.as_ns_f64() - x.as_ns_f64()).abs() / x.as_ns_f64();
            assert!(err < 0.15, "sparse flow err {err:.3} ({e:?} vs {x:?})");
        }
    }

    #[test]
    fn cache_reuses_unchanged_clusters_across_scenarios() {
        let spec = LeafSpine::symmetric(4, 2, 4, 2);
        let cfg = TopoEdmConfig::default();
        let fs = flows(64, 16, 500);
        let eng = ApproxEngine::new(cfg);
        let mut cache = SweepCache::new();

        let healthy = Topology::leaf_spine(spec);
        eng.estimate_cached(&healthy, &fs, &mut cache);
        let cold = cache.misses();
        assert_eq!(cache.hits(), 0);

        // Same scenario again: pure cache.
        eng.estimate_cached(&healthy, &fs, &mut cache);
        assert_eq!(cache.misses(), cold);

        // One access link down: only the clusters whose profiles shifted
        // (rerouted crossings) replay.
        let mut faulted = Topology::leaf_spine(spec);
        apply_faults(&mut faulted, &[FaultKind::LinkDown(healthy.node_link(0))]);
        eng.estimate_cached(&faulted, &fs, &mut cache);
        assert!(
            cache.misses() < cold * 2,
            "fault scenario must mostly reuse: {} cold, {} total misses",
            cold,
            cache.misses()
        );
    }

    #[test]
    fn what_if_fault_fails_disconnected_flows() {
        let mut topo = cluster_topology(&ClusterConfig::default());
        let victim = topo.node_link(0);
        apply_faults(&mut topo, &[FaultKind::LinkDown(victim)]);
        let fs = flows(20, 144, 100);
        let est = ApproxEngine::default().estimate(&topo, &fs);
        assert!(est.failed() > 0, "node 0's flows are unroutable");
        assert_eq!(est.failed() + est.delivered(), fs.len());
    }
}
