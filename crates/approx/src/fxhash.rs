//! A minimal FxHash-style hasher for the decomposition hot maps.
//!
//! The decomposition front-end performs several hash-map operations per
//! flow crossing, and sweep caches hash entire member lists per cluster
//! per scenario; std's SipHash dominates those paths. This is the usual
//! multiply-rotate word hash (as used by rustc's `FxHashMap`) — not
//! DoS-resistant, which is fine for keys derived from simulation state.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-rotate hasher.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_ne_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            // Pad the tail and fold the length in so "ab" and "ab\0"
            // differ.
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_ne_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` keyed by simulation-derived data on the hot path.
pub(crate) type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly() {
        let mut m: FxHashMap<(u32, u32, bool), usize> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 7, i % 2 == 0), i as usize);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(41, 287, false)], 41);
    }

    #[test]
    fn byte_slices_hash_consistently() {
        use std::hash::Hash;
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        "same-key".hash(&mut a);
        "same-key".hash(&mut b);
        assert_eq!(a.finish(), b.finish());
    }
}
