//! Decomposition front-end: slice one fabric-wide flow set into
//! independent per-link clusters.
//!
//! The exact engine schedules every flow through every switch it crosses,
//! so its cost grows with (flows × hops × contention). The decomposition
//! observes that in EDM almost all *queueing* happens at two kinds of
//! places: the data source's access port (a node issuing faster than its
//! link drains) and each granted egress link (many flows converging on
//! one out port). It therefore projects each flow onto the sequence of
//! directed links its data crosses and treats every directed link as an
//! independent single-switch scheduling problem — Parsimon's
//! `Network::into_simulations` slicing, re-expressed over EDM's
//! demand-sparse scheduler.
//!
//! For every flow the front-end resolves the *same salted-ECMP route the
//! exact engine would pick* ([`resolve_route`], pinned bit-identical to
//! [`edm_topo::admission_route`] by `prop_approx`), then records one
//! [`LinkFlow`] crossing per directed link of that route:
//!
//! * the **source access link** into the hop-0 switch — members share the
//!   node's ingress port and fan out over egress ports (models the
//!   issuing node's own port contention and per-pair X limit), and
//! * each hop's **egress link** — members share the granted out port and
//!   fan in from that switch's ingress ports (models convergence:
//!   trunk contention and destination incast).
//!
//! Clusters whose (scheduler bandwidth, link bandwidth, latency,
//! flow-profile) signatures are identical are deduplicated parsimon-style
//! — symmetric fabrics under symmetric workloads collapse many physical
//! links onto one simulated [`LinkCluster`], and an unchanged link
//! re-simulated across a what-if grid hits the same signature in a sweep
//! cache (`ClusterCache` in the crate root).

use crate::fxhash::FxHashMap;
use edm_core::sim::Flow;
use edm_sim::{Bandwidth, Duration, Time};
use edm_topo::{Endpoint, Route, TopoEdmConfig, Topology};

/// The approximate engine's own derivation of the exact engine's path
/// choice: salted ECMP over the flow's *data* direction (writes travel
/// src→dst, reads carry the RRES dst→src), salted by the flow id.
///
/// Deliberately re-derived from [`Flow::data_direction`] rather than
/// calling [`edm_topo::admission_route`], so the `prop_approx` pin is a
/// real equivalence check between two implementations, not a tautology.
pub fn resolve_route(topo: &Topology, flow: &Flow) -> Option<Route> {
    let (data_src, data_dst) = flow.data_direction();
    topo.route(data_src as usize, data_dst as usize, flow.id as u64)
}

/// One flow's crossing of one directed link, as its cluster's
/// mini-simulation sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkFlow {
    /// When the flow's demand reaches this link's scheduler: the flow's
    /// arrival plus the *unloaded* store-and-forward time of the
    /// upstream hops (head-chunk serialization + propagation + forward
    /// turnaround per hop). Under load the true demand arrival lags
    /// this; the error that shift induces is part of the documented
    /// envelope.
    pub arrival: Time,
    /// Message bytes.
    pub bytes: u32,
    /// Dense source-port index within the cluster.
    pub src: u16,
    /// Dense destination-port index within the cluster.
    pub dst: u16,
    /// Per-pair X bound the exact engine applies on this route
    /// (single-hop routes keep the paper's X, multi-hop routes the trunk
    /// provision).
    pub limit: u32,
    /// Whether the exact engine would fold this flow into same-pair
    /// mega-batches (§3.1.2: single-hop routes under
    /// [`TopoEdmConfig::batch_small_messages`]).
    pub batchable: bool,
}

/// A cluster's identity for deduplication and sweep-level caching: two
/// directed links with equal profiles queue identically, so one
/// mini-simulation serves both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterProfile {
    /// Reference bandwidth of the granting switch's scheduler (port busy
    /// times in the exact engine are charged at this rate).
    pub sched_bandwidth: Bandwidth,
    /// Bandwidth of the crossed link (chunk serialization on the wire).
    pub link_bandwidth: Bandwidth,
    /// One-way latency of the crossed link (propagation + degradation).
    pub latency: Duration,
    /// Distinct source ports among the members.
    pub srcs: u16,
    /// Distinct destination ports among the members.
    pub dsts: u16,
    /// Member crossings in flow-input order, with dense port indices.
    pub members: Vec<LinkFlow>,
}

/// Hand-rolled to pack each member into three words: profiles are
/// hashed once per directed link per scenario (dedup *and* sweep-cache
/// lookup), which makes this one of a sweep's hottest loops. The packing
/// is injective per field set, so it agrees with the derived
/// `PartialEq`.
impl std::hash::Hash for ClusterProfile {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.sched_bandwidth.hash(state);
        self.link_bandwidth.hash(state);
        self.latency.hash(state);
        state.write_u32((self.srcs as u32) << 16 | self.dsts as u32);
        state.write_usize(self.members.len());
        for m in &self.members {
            state.write_u64(m.arrival.as_ps());
            state.write_u64(m.bytes as u64 | (m.src as u64) << 32 | (m.dst as u64) << 48);
            state.write_u64(m.limit as u64 | (m.batchable as u64) << 32);
        }
    }
}

/// One deduplicated per-link scheduling problem.
#[derive(Debug, Clone)]
pub struct LinkCluster {
    /// The signature the mini-simulation replays.
    pub profile: ClusterProfile,
    /// How many directed links collapsed onto this profile.
    pub instances: usize,
}

/// A flow's handle into one cluster: which cluster models one of its
/// crossings, and which member of that cluster it is.
#[derive(Debug, Clone, Copy)]
pub struct HopRef {
    /// Index into [`Decomposition::clusters`].
    pub cluster: u32,
    /// Index into that cluster's `profile.members`.
    pub member: u32,
}

/// One flow's decomposition: the flow plus an arena span over its
/// crossings ([`Decomposition::hops`]). Unroutable flows carry no span —
/// the estimator reports them failed at arrival, exactly as the exact
/// engine's fail-fast admission does.
#[derive(Debug, Clone, Copy)]
pub struct FlowPath {
    /// The flow.
    pub flow: Flow,
    /// `(start, len)` into `Decomposition::hop_refs`; `len == 0` marks
    /// an unroutable flow (a routable flow has ≥ 2 crossings).
    span: (u32, u16),
}

/// A flow set sliced onto deduplicated per-link clusters.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Deduplicated clusters, in first-appearance order.
    pub clusters: Vec<LinkCluster>,
    /// Per-flow entries, in input order.
    pub flows: Vec<FlowPath>,
    /// Arena of every flow's crossing references (source access link
    /// first, then each hop's egress link), indexed by `FlowPath::span`.
    hop_refs: Vec<HopRef>,
    /// Directed links that carried at least one flow (pre-dedup) — the
    /// dedup ratio is `link_instances / clusters.len()`.
    pub link_instances: usize,
}

impl Decomposition {
    /// Flow `i`'s crossings in path order, `None` if unroutable.
    pub fn hops(&self, i: usize) -> Option<&[HopRef]> {
        let (start, len) = self.flows[i].span;
        (len > 0).then(|| &self.hop_refs[start as usize..start as usize + len as usize])
    }
}

/// One crossing of a resolved route, in the compact form the bucketing
/// stage consumes: which directed link, granted by which switch, between
/// which raw switch ports. Everything load-dependent (arrival offsets,
/// link latency, bandwidths) is looked up at bucket time, so a cached
/// record stays valid across scenarios that only degrade latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossRec {
    /// The crossed link.
    pub link: u32,
    /// The granting switch (disambiguates trunk direction).
    pub switch: u32,
    /// Raw ingress port at the granting switch.
    pub in_port: u16,
    /// Raw egress port at the granting switch.
    pub out_port: u16,
    /// Node-facing ingress crossing (the source access link)?
    pub from_node: bool,
}

/// Every flow's resolved crossing sequence, arena-packed. The expensive
/// part of decomposition is route resolution; a what-if sweep resolves
/// the baseline once and then [`resolve_delta`] copies the spans of
/// flows the fault provably cannot have rerouted.
#[derive(Debug, Clone)]
pub struct ResolvedRoutes {
    recs: Vec<CrossRec>,
    /// Prefix offsets, `flows.len() + 1` entries; an empty span is an
    /// unroutable flow (a routable flow always has ≥ 2 crossings).
    spans: Vec<u32>,
    /// Flows actually re-resolved by the call that built this (equals
    /// the flow count for [`resolve_all`]; the interesting number for
    /// [`resolve_delta`]).
    pub rerouted: usize,
}

impl ResolvedRoutes {
    /// Flow `i`'s crossings, empty if unroutable.
    pub fn span(&self, i: usize) -> &[CrossRec] {
        &self.recs[self.spans[i] as usize..self.spans[i + 1] as usize]
    }

    /// Number of flows covered.
    pub fn len(&self) -> usize {
        self.spans.len() - 1
    }

    /// True when no flows are covered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push_route(&mut self, route: &Route) {
        let first = route.hops[0];
        self.recs.push(CrossRec {
            link: route.src_link,
            switch: first.switch,
            in_port: first.in_port,
            out_port: first.out_port,
            from_node: true,
        });
        for h in &route.hops {
            self.recs.push(CrossRec {
                link: h.out_link,
                switch: h.switch,
                in_port: h.in_port,
                out_port: h.out_port,
                from_node: false,
            });
        }
    }

    fn close_span(&mut self) {
        self.spans.push(self.recs.len() as u32);
    }
}

/// What [`resolve_delta`] compares to decide whether a fault can have
/// moved a flow: per-element liveness plus the ECMP decision-row digests
/// ([`Topology::route_digests`]). Snapshot the *baseline* topology once
/// per sweep.
#[derive(Debug, Clone)]
pub struct TopoSignature {
    switches: Vec<bool>,
    links: Vec<bool>,
    digests: Vec<u64>,
}

impl TopoSignature {
    /// Snapshots `topo`'s routing-relevant state.
    pub fn of(topo: &Topology) -> Self {
        TopoSignature {
            switches: (0..topo.switch_count())
                .map(|s| topo.switch_up(s as u32))
                .collect(),
            links: topo.links().iter().map(|l| l.is_up()).collect(),
            digests: topo.route_digests(),
        }
    }
}

/// Resolves every flow's route on `topo` from scratch.
pub fn resolve_all(topo: &Topology, flows: &[Flow]) -> ResolvedRoutes {
    let mut routes = ResolvedRoutes {
        recs: Vec::with_capacity(flows.len() * 4),
        spans: Vec::with_capacity(flows.len() + 1),
        rerouted: flows.len(),
    };
    routes.spans.push(0);
    for flow in flows {
        if let Some(route) = resolve_route(topo, flow) {
            routes.push_route(&route);
        }
        routes.close_span();
    }
    routes
}

/// Re-resolves only the flows that `topo`'s state can actually have
/// moved relative to the baseline `prev`/`base` pair: flows whose
/// endpoints changed liveness, flows that were unroutable, and flows
/// whose baseline path visits a switch whose ECMP decision row toward
/// the flow's destination changed. Everything else keeps its baseline
/// crossings verbatim — the salted-ECMP walk consults exactly those
/// rows, so the copy is bit-identical to re-resolving
/// (`delta_matches_full_resolution` in this module's tests, plus the
/// `prop_approx` pin, hold it to that).
pub fn resolve_delta(
    topo: &Topology,
    flows: &[Flow],
    prev: &ResolvedRoutes,
    base: &TopoSignature,
) -> ResolvedRoutes {
    assert_eq!(prev.len(), flows.len(), "baseline must cover these flows");
    let cur = TopoSignature::of(topo);
    let n = topo.switch_count();
    let dirty: Vec<bool> = base
        .digests
        .iter()
        .zip(&cur.digests)
        .map(|(a, b)| a != b)
        .collect();
    let mut routes = ResolvedRoutes {
        recs: Vec::with_capacity(prev.recs.len()),
        spans: Vec::with_capacity(flows.len() + 1),
        rerouted: 0,
    };
    routes.spans.push(0);
    for (i, flow) in flows.iter().enumerate() {
        let (data_src, data_dst) = flow.data_direction();
        let src_link = topo.node_link(data_src as usize) as usize;
        let dst_link = topo.node_link(data_dst as usize) as usize;
        let (s_sw, _) = topo.attach(data_src as usize);
        let (d_sw, _) = topo.attach(data_dst as usize);
        let span = prev.span(i);
        let affected = span.is_empty()
            || base.links[src_link] != cur.links[src_link]
            || base.links[dst_link] != cur.links[dst_link]
            || base.switches[s_sw as usize] != cur.switches[s_sw as usize]
            || base.switches[d_sw as usize] != cur.switches[d_sw as usize]
            || span
                .iter()
                .any(|r| dirty[r.switch as usize * n + d_sw as usize]);
        if affected {
            routes.rerouted += 1;
            if let Some(route) = resolve_route(topo, flow) {
                routes.push_route(&route);
            }
        } else {
            routes.recs.extend_from_slice(span);
        }
        routes.close_span();
    }
    routes
}

/// A raw (pre-dedup) cluster under construction: one directed link,
/// with raw switch ports densified in first-appearance order. Port maps
/// are linear scans — a cluster's port population is small (bounded by
/// the link's radix), where a hash map would pay more in setup than the
/// scan costs.
struct RawCluster {
    sched_bandwidth: Bandwidth,
    link_bandwidth: Bandwidth,
    latency: Duration,
    src_map: Vec<u16>,
    dst_map: Vec<u16>,
    members: Vec<LinkFlow>,
}

impl RawCluster {
    /// First-appearance dense numbering. A linear scan: most clusters
    /// touch a handful of distinct ports, so the scan beats any
    /// port-indexed table (measured — the table's per-port allocation
    /// and cache misses cost more than these few comparisons).
    fn dense(map: &mut Vec<u16>, raw: u16) -> u16 {
        match map.iter().position(|&p| p == raw) {
            Some(i) => i as u16,
            None => {
                map.push(raw);
                map.len() as u16 - 1
            }
        }
    }
}

/// Per-link snapshot used by the span walk: effective latency,
/// bandwidth, and the `b`-side switch for direction encoding.
pub(crate) fn snap_links(topo: &Topology) -> Vec<(Duration, Bandwidth, u32)> {
    topo.links()
        .iter()
        .map(|l| {
            let b_sw = match l.b {
                Endpoint::Port { switch, .. } => switch,
                Endpoint::Node(_) => u32::MAX,
            };
            (l.latency(), l.params.bandwidth, b_sw)
        })
        .collect()
}

/// One crossing as the span walk yields it: the directed-link key plus
/// everything a cluster member needs before port densification.
pub(crate) struct Crossing {
    /// `link * 3 + direction` — the directed-link identity.
    pub key: usize,
    /// The granting switch.
    pub switch: u32,
    /// Raw ingress port at the granting switch.
    pub in_port: u16,
    /// Raw egress port at the granting switch.
    pub out_port: u16,
    /// Demand arrival at this link's scheduler (flow arrival plus
    /// unloaded upstream store-and-forward legs).
    pub arrival: Time,
    /// Per-pair X bound on this route.
    pub limit: u32,
    /// Same-pair mega-batch eligibility on this route.
    pub batchable: bool,
}

/// Walks one flow's crossings, yielding each in path order with the
/// same arrival-offset arithmetic [`bucket`] applies — the delta path
/// ([`crate::SweepBase`]) rebuilds clusters through this walk so its
/// members are bit-identical to a from-scratch bucket.
pub(crate) fn walk_span(
    cfg: &TopoEdmConfig,
    snap: &[(Duration, Bandwidth, u32)],
    flow: &Flow,
    span: &[CrossRec],
    mut f: impl FnMut(Crossing),
) {
    if span.is_empty() {
        return;
    }
    let route_hops = span.len() - 1;
    let limit = if route_hops == 1 {
        cfg.max_active_per_pair
    } else {
        cfg.trunk_max_active_per_pair
    } as u32;
    let batchable = route_hops == 1 && cfg.batch_small_messages;
    let head = flow.size.min(cfg.chunk_bytes) as u64;
    let mut offset = Duration::ZERO;
    for (j, rec) in span.iter().enumerate() {
        if j >= 2 {
            let (lat, bw, _) = snap[span[j - 1].link as usize];
            offset += lat + bw.tx_time_bytes(head) + cfg.forward_latency;
        }
        let (_, _, b_sw) = snap[rec.link as usize];
        let dir = if rec.from_node {
            2
        } else {
            (rec.switch == b_sw) as usize
        };
        f(Crossing {
            key: rec.link as usize * 3 + dir,
            switch: rec.switch,
            in_port: rec.in_port,
            out_port: rec.out_port,
            arrival: flow.arrival + offset,
            limit,
            batchable,
        });
    }
}

/// Buckets pre-resolved `routes` onto per-link clusters of `topo` under
/// `cfg` — the cheap half of [`decompose`](decompose()), shared by the
/// from-scratch and delta paths. This is the hottest per-scenario stage
/// of a sweep (it touches every crossing of every flow), so the
/// directed-link index is a dense array and profile dedup hashes each
/// profile exactly once.
pub fn bucket(
    topo: &Topology,
    cfg: &TopoEdmConfig,
    flows: &[Flow],
    routes: &ResolvedRoutes,
) -> Decomposition {
    use std::hash::{Hash, Hasher};

    assert_eq!(routes.len(), flows.len(), "routes must cover these flows");
    let snap = snap_links(topo);
    let sched_bw: Vec<Bandwidth> = (0..topo.switch_count() as u32)
        .map(|s| topo.reference_bandwidth(s))
        .collect();

    // Directed-link index: a trunk carries traffic in both directions
    // (disambiguated by the granting switch, slots 0/1), and an access
    // link additionally separates its node-facing ingress (slot 2).
    let mut index: Vec<u32> = vec![u32::MAX; snap.len() * 3];
    let mut raws: Vec<RawCluster> = Vec::new();
    let mut paths: Vec<FlowPath> = Vec::with_capacity(flows.len());

    // Pass 1: assign directed-link slots and count members per slot, so
    // pass 2 fills exact-capacity vectors. Member pushes are the
    // hottest allocation site of a sweep scenario; growth-doubling
    // ~50k members across thousands of clusters cost more than this
    // extra walk over the spans does.
    let mut counts: Vec<u32> = Vec::new();
    let mut total_refs = 0usize;
    for i in 0..flows.len() {
        let span = routes.span(i);
        total_refs += span.len();
        for rec in span {
            let (lat, bw, b_sw) = snap[rec.link as usize];
            let dir = if rec.from_node {
                2
            } else {
                (rec.switch == b_sw) as usize
            };
            let key = rec.link as usize * 3 + dir;
            let slot = match index[key] {
                u32::MAX => {
                    index[key] = raws.len() as u32;
                    raws.push(RawCluster {
                        sched_bandwidth: sched_bw[rec.switch as usize],
                        link_bandwidth: bw,
                        latency: lat,
                        src_map: Vec::new(),
                        dst_map: Vec::new(),
                        members: Vec::new(),
                    });
                    counts.push(0);
                    raws.len() as u32 - 1
                }
                s => s,
            };
            counts[slot as usize] += 1;
        }
    }
    for (raw, &c) in raws.iter_mut().zip(&counts) {
        raw.members.reserve_exact(c as usize);
    }
    let mut hop_refs: Vec<HopRef> = Vec::with_capacity(total_refs);

    // Pass 2: the source access link and hop-0's egress link are
    // granted by the same scheduling decision, so both see the demand
    // at the flow's arrival; later hops see it one unloaded
    // store-and-forward leg downstream each ([`walk_span`]'s offset
    // arithmetic, shared with the delta rebuild).
    for (i, flow) in flows.iter().enumerate() {
        let span = routes.span(i);
        let start = hop_refs.len() as u32;
        walk_span(cfg, &snap, flow, span, |x| {
            let slot = index[x.key];
            let raw = &mut raws[slot as usize];
            let member = raw.members.len() as u32;
            raw.members.push(LinkFlow {
                arrival: x.arrival,
                bytes: flow.size,
                src: RawCluster::dense(&mut raw.src_map, x.in_port),
                dst: RawCluster::dense(&mut raw.dst_map, x.out_port),
                limit: x.limit,
                batchable: x.batchable,
            });
            hop_refs.push(HopRef {
                cluster: slot,
                member,
            });
        });
        paths.push(FlowPath {
            flow: *flow,
            span: (start, span.len() as u16),
        });
    }

    // Parsimon-style dedup: directed links with identical signatures
    // collapse onto one canonical cluster. Each profile is hashed once;
    // candidates bucketed by hash are confirmed with full equality.
    let link_instances = raws.len();
    let mut canonical: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    let mut clusters: Vec<LinkCluster> = Vec::new();
    let mut remap: Vec<u32> = Vec::with_capacity(raws.len());
    for raw in raws {
        let profile = ClusterProfile {
            sched_bandwidth: raw.sched_bandwidth,
            link_bandwidth: raw.link_bandwidth,
            latency: raw.latency,
            srcs: raw.src_map.len() as u16,
            dsts: raw.dst_map.len() as u16,
            members: raw.members,
        };
        let mut h = crate::fxhash::FxHasher::default();
        profile.hash(&mut h);
        let candidates = canonical.entry(h.finish()).or_default();
        match candidates
            .iter()
            .find(|&&c| clusters[c as usize].profile == profile)
        {
            Some(&slot) => {
                clusters[slot as usize].instances += 1;
                remap.push(slot);
            }
            None => {
                let slot = clusters.len() as u32;
                candidates.push(slot);
                clusters.push(LinkCluster {
                    profile,
                    instances: 1,
                });
                remap.push(slot);
            }
        }
    }
    for h in &mut hop_refs {
        h.cluster = remap[h.cluster as usize];
    }

    Decomposition {
        clusters,
        flows: paths,
        hop_refs,
        link_instances,
    }
}

/// Slices `flows` onto per-link clusters of `topo` under `cfg`.
///
/// Routes are resolved against the topology's *current* element state —
/// apply static what-if faults ([`crate::apply_faults`]) before calling.
/// Sweeps over many scenarios should resolve once and delta instead:
/// [`resolve_all`] + [`resolve_delta`] + [`bucket`].
pub fn decompose(topo: &Topology, cfg: &TopoEdmConfig, flows: &[Flow]) -> Decomposition {
    bucket(topo, cfg, flows, &resolve_all(topo, flows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_core::sim::{ClusterConfig, FlowKind};
    use edm_topo::{cluster_topology, LeafSpine};

    fn flow(id: usize, src: usize, dst: usize, at_ns: u64) -> Flow {
        Flow {
            id,
            src,
            dst,
            size: 64,
            arrival: Time::ZERO + Duration::from_ns(at_ns),
            kind: FlowKind::Write,
        }
    }

    #[test]
    fn single_switch_flow_has_two_crossings() {
        let topo = cluster_topology(&ClusterConfig::default());
        let d = decompose(&topo, &TopoEdmConfig::default(), &[flow(0, 0, 100, 0)]);
        let hops = d.hops(0).unwrap();
        assert_eq!(hops.len(), 2, "access ingress + egress");
        assert_eq!(d.link_instances, 2);
    }

    #[test]
    fn leaf_spine_flow_crosses_each_hop() {
        let topo = Topology::leaf_spine(LeafSpine::symmetric(4, 2, 4, 2));
        // Cross-rack: 3 hops (leaf up, spine across, leaf down) + ingress.
        let d = decompose(&topo, &TopoEdmConfig::default(), &[flow(0, 0, 12, 0)]);
        assert_eq!(d.hops(0).unwrap().len(), 4);
    }

    #[test]
    fn read_data_direction_governs_the_path() {
        let topo = Topology::leaf_spine(LeafSpine::symmetric(4, 2, 4, 2));
        let f = Flow {
            kind: FlowKind::Read,
            ..flow(3, 0, 12, 0)
        };
        let route = resolve_route(&topo, &f).unwrap();
        // RRES flows dst→src: the source access link belongs to node 12.
        assert_eq!(route.src_link, topo.node_link(12));
    }

    #[test]
    fn symmetric_clusters_deduplicate() {
        let topo = cluster_topology(&ClusterConfig::default());
        // Two flows with identical timing from different nodes to
        // different memories: 4 directed links whose one-member profiles
        // are all identical — one mini-simulation serves all four.
        let flows = [flow(0, 0, 100, 0), flow(1, 1, 101, 0)];
        let d = decompose(&topo, &TopoEdmConfig::default(), &flows);
        assert_eq!(d.link_instances, 4);
        assert_eq!(d.clusters.len(), 1);
        assert_eq!(d.clusters.iter().map(|c| c.instances).sum::<usize>(), 4);
    }

    #[test]
    fn unroutable_flow_maps_to_none() {
        let mut topo = cluster_topology(&ClusterConfig::default());
        topo.set_link_up(topo.node_link(5), false);
        let d = decompose(&topo, &TopoEdmConfig::default(), &[flow(0, 5, 100, 0)]);
        assert!(d.hops(0).is_none());
    }

    #[test]
    fn delta_matches_full_resolution() {
        // Across a spread of faults, the delta path must reproduce the
        // from-scratch resolution record for record — while actually
        // skipping most of the work on the single-element faults.
        let spec = LeafSpine::symmetric(4, 2, 8, 2);
        let healthy = Topology::leaf_spine(spec);
        let base = TopoSignature::of(&healthy);
        let flows: Vec<Flow> = (0..400)
            .map(|i| Flow {
                kind: if i % 3 == 0 {
                    FlowKind::Read
                } else {
                    FlowKind::Write
                },
                ..flow(i, i % 32, (i * 13 + 7) % 32, i as u64 * 40)
            })
            .filter(|f| f.src != f.dst)
            .collect();
        let baseline = resolve_all(&healthy, &flows);
        let trunk = healthy.links().iter().position(|l| l.is_trunk()).unwrap() as u32;
        type FaultCase = Box<dyn Fn(&mut Topology)>;
        let cases: Vec<FaultCase> = vec![
            Box::new(|_| {}),
            Box::new(move |t| t.set_link_up(trunk, false)),
            Box::new(|t| {
                let l = t.node_link(5);
                t.set_link_up(l, false)
            }),
            Box::new(|t| t.set_switch_up(4, false)),
            Box::new(move |t| {
                t.degrade_link(trunk, Duration::from_ns(500));
            }),
        ];
        for (c, mutate) in cases.iter().enumerate() {
            let mut faulted = Topology::leaf_spine(spec);
            mutate(&mut faulted);
            let delta = resolve_delta(&faulted, &flows, &baseline, &base);
            let full = resolve_all(&faulted, &flows);
            for i in 0..flows.len() {
                assert_eq!(delta.span(i), full.span(i), "case {c}, flow {i}");
            }
            if c == 0 || c == 4 {
                assert_eq!(delta.rerouted, 0, "case {c} cannot move any route");
            } else {
                assert!(
                    delta.rerouted < flows.len(),
                    "case {c} must skip unaffected flows"
                );
            }
        }
    }

    #[test]
    fn port_indices_densify_per_cluster() {
        let topo = cluster_topology(&ClusterConfig::default());
        let flows = [flow(0, 7, 130, 0), flow(1, 9, 130, 5)];
        let d = decompose(&topo, &TopoEdmConfig::default(), &flows);
        // The shared destination's egress cluster has 2 srcs, 1 dst.
        let egress = d
            .clusters
            .iter()
            .find(|c| c.profile.srcs == 2)
            .expect("shared egress cluster");
        assert_eq!(egress.profile.dsts, 1);
        assert_eq!(egress.profile.members.len(), 2);
        assert!(egress.profile.members.iter().all(|m| m.dst == 0));
    }
}
