//! Delta decomposition: evaluate a what-if scenario against a cached
//! healthy base, rebuilding only the clusters the fault actually
//! touches.
//!
//! A what-if grid's per-scenario floor under the from-scratch path is
//! the full re-bucket of every crossing plus a cache-key hash of every
//! cluster — ~8 ms at a million crossings even when a fault moved
//! nothing but one optics latency. [`SweepBase`] keeps, per (topology,
//! workload) pair, the healthy decomposition *plus* each directed
//! link's member list in pre-densification form and each base cluster's
//! simulated delays. [`SweepBase::estimate_delta`] then:
//!
//! 1. finds the flows a scenario can have perturbed — rerouted flows
//!    (via [`resolve_delta`]'s span diff) plus flows crossing a link
//!    whose latency/bandwidth/liveness changed (their downstream demand
//!    arrivals shift even when the route holds);
//! 2. marks every directed link those flows cross (old or new route) as
//!    *affected* and rebuilds exactly those clusters, merging the
//!    stored unaffected members with the perturbed flows' re-walked
//!    crossings — through the same `walk_span` arithmetic
//!    [`bucket`] uses, so a rebuilt cluster is bit-identical to what a
//!    from-scratch bucket would produce (`delta_matches_scratch` holds
//!    the whole path to outcome equality);
//! 3. replays only the rebuilt clusters (through the shared
//!    [`SweepCache`], so symmetric rebuilds still dedup) and composes
//!    flows against base delays plus a small overlay.
//!
//! When a fault perturbs most of the fabric (a spine kill rehashes
//! every leaf's ECMP row), the rebuild would touch more clusters than
//! it skips; past [`SweepBase::fallback_fraction`] the estimator
//! falls back to the from-scratch bucket, which is cheaper than a
//! mostly-total rebuild plus overlay bookkeeping.

use std::hash::{Hash, Hasher};

use crate::compose::{pack_solo_key, SoloProber};
use crate::decompose::{
    bucket, resolve_all, resolve_delta, snap_links, walk_span, ClusterProfile, Decomposition,
    LinkCluster, LinkFlow, ResolvedRoutes, TopoSignature,
};
use crate::fxhash::{FxHashMap, FxHasher};
use crate::{ApproxResult, Combine, SweepCache};
use edm_core::sim::{Flow, FlowKind};
use edm_sim::{Bandwidth, Duration, LogHistogram, Time};
use edm_topo::{FlowStatus, TopoEdmConfig, TopoOutcome, Topology};

/// One stored crossing of the base decomposition, in pre-densification
/// form (raw switch ports, absolute demand arrival) so an affected
/// cluster can be rebuilt without re-walking unchanged flows' routes.
#[derive(Debug, Clone, Copy)]
struct KeyMember {
    flow: u32,
    hop: u8,
    in_port: u16,
    out_port: u16,
    arrival: Time,
    limit: u32,
    batchable: bool,
}

/// First-appearance dense numbering, mirroring the bucket's private
/// helper: a rebuilt cluster must densify ports in exactly the order a
/// from-scratch bucket would.
fn dense(map: &mut Vec<u16>, raw: u16) -> u16 {
    match map.iter().position(|&p| p == raw) {
        Some(i) => i as u16,
        None => {
            map.push(raw);
            map.len() as u16 - 1
        }
    }
}

/// A (topology, workload) pair's cached healthy decomposition, ready to
/// answer what-if scenarios by delta rebuild. Build once per sweep axis
/// with [`SweepBase::new`], fill the delay side with
/// [`SweepBase::prime`] (or an external fan-out followed by
/// [`SweepBase::adopt`]), then call
/// [`SweepBase::estimate_delta`] per scenario.
#[derive(Debug)]
pub struct SweepBase {
    cfg: TopoEdmConfig,
    flows: Vec<Flow>,
    decomp: Decomposition,
    routes: ResolvedRoutes,
    sig: TopoSignature,
    /// Per-link baseline (latency, bandwidth, up) for change detection.
    link_state: Vec<(Duration, Bandwidth, bool)>,
    /// Per-switch baseline scheduler reference bandwidth.
    ref_bw: Vec<Bandwidth>,
    /// Per directed-link key: granting switch (`u32::MAX` when unused).
    key_switch: Vec<u32>,
    /// Per directed-link key: members in flow order.
    key_members: Vec<Vec<KeyMember>>,
    /// Per directed-link key: base cluster index (`u32::MAX` when unused).
    key_cluster: Vec<u32>,
    /// Per base cluster: simulated delays, adopted from the sweep cache.
    base_delays: Vec<Box<[Duration]>>,
    /// Per base cluster: crossing-parameter shape id.
    base_shape_id: Vec<u8>,
    shapes: Vec<(Bandwidth, Bandwidth, Duration)>,
    /// Affected-key fraction above which [`Self::estimate_delta`]
    /// abandons the delta rebuild for a
    /// from-scratch bucket. Default 0.6; tests pin it to 0.0/1.0 to
    /// force either path.
    pub fallback_fraction: f64,
}

impl SweepBase {
    /// Decomposes `flows` on the healthy `topo` and indexes every
    /// directed link's membership for later delta rebuilds.
    pub fn new(topo: &Topology, cfg: &TopoEdmConfig, flows: Vec<Flow>) -> Self {
        let routes = resolve_all(topo, &flows);
        let decomp = bucket(topo, cfg, &flows, &routes);
        let sig = TopoSignature::of(topo);
        let snap = snap_links(topo);
        let link_state = topo
            .links()
            .iter()
            .map(|l| (l.latency(), l.params.bandwidth, l.is_up()))
            .collect();
        let ref_bw = (0..topo.switch_count() as u32)
            .map(|s| topo.reference_bandwidth(s))
            .collect();
        let keyn = snap.len() * 3;
        let mut key_switch = vec![u32::MAX; keyn];
        let mut key_members: Vec<Vec<KeyMember>> = vec![Vec::new(); keyn];
        let mut key_cluster = vec![u32::MAX; keyn];
        for (i, flow) in flows.iter().enumerate() {
            let hops = decomp.hops(i);
            let mut h = 0u8;
            walk_span(cfg, &snap, flow, routes.span(i), |x| {
                key_switch[x.key] = x.switch;
                key_cluster[x.key] = hops.expect("non-empty span has hops")[h as usize].cluster;
                key_members[x.key].push(KeyMember {
                    flow: i as u32,
                    hop: h,
                    in_port: x.in_port,
                    out_port: x.out_port,
                    arrival: x.arrival,
                    limit: x.limit,
                    batchable: x.batchable,
                });
                h += 1;
            });
        }
        let mut shapes: Vec<(Bandwidth, Bandwidth, Duration)> = Vec::new();
        let base_shape_id = decomp
            .clusters
            .iter()
            .map(|c| {
                shape_of(
                    &mut shapes,
                    (
                        c.profile.sched_bandwidth,
                        c.profile.link_bandwidth,
                        c.profile.latency,
                    ),
                )
            })
            .collect();
        SweepBase {
            cfg: cfg.clone(),
            flows,
            decomp,
            routes,
            sig,
            link_state,
            ref_bw,
            key_switch,
            key_members,
            key_cluster,
            base_delays: Vec::new(),
            base_shape_id,
            shapes,
            fallback_fraction: 0.6,
        }
    }

    /// The healthy decomposition — fan its clusters out however the
    /// harness likes, then [`adopt`](Self::adopt) the cache.
    pub fn decomp(&self) -> &Decomposition {
        &self.decomp
    }

    /// The flows this base covers.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Copies every base cluster's delays out of `cache` (which must
    /// already hold them all — e.g. after a parallel fan-out), so delta
    /// compositions never contend with the cache for borrows.
    ///
    /// # Panics
    ///
    /// Panics if a base cluster has no cached delays.
    pub fn adopt(&mut self, cache: &SweepCache) {
        self.base_delays = self
            .decomp
            .clusters
            .iter()
            .map(|c| {
                cache
                    .peek(c)
                    .expect("every base cluster cached before adopt")
                    .to_vec()
                    .into_boxed_slice()
            })
            .collect();
    }

    /// Serially simulates every base cluster into `cache` and adopts
    /// the delays — the no-fan-out convenience path.
    pub fn prime(&mut self, cache: &mut SweepCache) {
        for c in &self.decomp.clusters {
            cache.ensure(c, &self.cfg);
        }
        self.adopt(cache);
    }

    /// Estimates one what-if scenario (`what_if` is the base fabric
    /// with faults applied — [`crate::apply_faults`]) by delta rebuild
    /// against this base, replaying only clusters the scenario
    /// perturbs. Outcomes are identical to a from-scratch
    /// [`crate::ApproxEngine::estimate`] on `what_if`
    /// (`delta_matches_scratch` pins this); `hop_excess` may count a
    /// rebuilt cluster separately from an identical retained one where
    /// a from-scratch dedup would merge them.
    pub fn estimate_delta(
        &self,
        what_if: &Topology,
        combine: Combine,
        cache: &mut SweepCache,
    ) -> ApproxResult {
        let n = self.flows.len();
        assert!(
            self.base_delays.len() == self.decomp.clusters.len(),
            "prime or adopt the base before estimating deltas"
        );
        let routes_new = resolve_delta(what_if, &self.flows, &self.routes, &self.sig);
        let snap_new = snap_links(what_if);

        // Which flows can the scenario have perturbed? Rerouted flows,
        // flows crossing a link whose effective parameters changed
        // (their own and downstream demand arrivals shift), and flows
        // granted by a switch whose reference bandwidth moved.
        let mut touched = vec![false; n];
        let links = what_if.links();
        for (l, st) in self.link_state.iter().enumerate() {
            let cur = (
                links[l].latency(),
                links[l].params.bandwidth,
                links[l].is_up(),
            );
            if cur != *st {
                for k in l * 3..l * 3 + 3 {
                    for m in &self.key_members[k] {
                        touched[m.flow as usize] = true;
                    }
                }
            }
        }
        for (s, &bw) in self.ref_bw.iter().enumerate() {
            if what_if.reference_bandwidth(s as u32) != bw {
                for (k, &sw) in self.key_switch.iter().enumerate() {
                    if sw == s as u32 {
                        for m in &self.key_members[k] {
                            touched[m.flow as usize] = true;
                        }
                    }
                }
            }
        }
        if routes_new.rerouted > 0 {
            for (i, t) in touched.iter_mut().enumerate() {
                if !*t && routes_new.span(i) != self.routes.span(i) {
                    *t = true;
                }
            }
        }

        // Affected directed links: everything a perturbed flow crosses,
        // on its old or new route.
        let keyn = self.key_members.len();
        let mut aff_mark = vec![false; keyn];
        let mut aff_keys: Vec<usize> = Vec::new();
        for (i, _) in touched.iter().enumerate().filter(|(_, t)| **t) {
            for span in [self.routes.span(i), routes_new.span(i)] {
                for rec in span {
                    let (_, _, b_sw) = snap_new[rec.link as usize];
                    let dir = if rec.from_node {
                        2
                    } else {
                        (rec.switch == b_sw) as usize
                    };
                    let key = rec.link as usize * 3 + dir;
                    if !aff_mark[key] {
                        aff_mark[key] = true;
                        aff_keys.push(key);
                    }
                }
            }
        }

        // A mostly-total rebuild is slower than a fresh bucket.
        if aff_keys.len() as f64 > self.fallback_fraction * self.decomp.link_instances as f64 {
            let d = bucket(what_if, &self.cfg, &self.flows, &routes_new);
            for c in &d.clusters {
                cache.ensure(c, &self.cfg);
            }
            return cache.compose(what_if, &self.cfg, &d, combine);
        }

        // Re-walk the perturbed flows' (new) routes into per-key
        // addition lists, in flow order.
        let mut aff_idx = vec![u32::MAX; keyn];
        for (j, &k) in aff_keys.iter().enumerate() {
            aff_idx[k] = j as u32;
        }
        let mut additions: Vec<Vec<KeyMember>> = vec![Vec::new(); aff_keys.len()];
        let mut aff_switch: Vec<u32> = aff_keys.iter().map(|&k| self.key_switch[k]).collect();
        for (i, flow) in self.flows.iter().enumerate() {
            if !touched[i] {
                continue;
            }
            let mut h = 0u8;
            walk_span(&self.cfg, &snap_new, flow, routes_new.span(i), |x| {
                let j = aff_idx[x.key] as usize;
                if aff_switch[j] == u32::MAX {
                    aff_switch[j] = x.switch;
                }
                additions[j].push(KeyMember {
                    flow: i as u32,
                    hop: h,
                    in_port: x.in_port,
                    out_port: x.out_port,
                    arrival: x.arrival,
                    limit: x.limit,
                    batchable: x.batchable,
                });
                h += 1;
            });
        }

        // Rebuild each affected key: stored unaffected members merged
        // with the additions by flow index — reproducing the bucket's
        // flow-input member order — then densified and deduplicated.
        let mut fresh: Vec<LinkCluster> = Vec::new();
        let mut canonical: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let mut overlay: FxHashMap<u64, (u32, u32)> = FxHashMap::default();
        let mut consults_overlay = vec![false; n];
        let (mut emptied, mut created) = (0usize, 0usize);
        let mut merged: Vec<KeyMember> = Vec::new();
        for (j, &k) in aff_keys.iter().enumerate() {
            let stored = &self.key_members[k];
            let adds = &additions[j];
            let existed = !stored.is_empty();
            merged.clear();
            merged.reserve(stored.len() + adds.len());
            let (mut a, mut b) = (0usize, 0usize);
            loop {
                while a < stored.len() && touched[stored[a].flow as usize] {
                    a += 1;
                }
                match (a < stored.len(), b < adds.len()) {
                    (false, false) => break,
                    (true, false) => {
                        merged.push(stored[a]);
                        a += 1;
                    }
                    (false, true) => {
                        merged.push(adds[b]);
                        b += 1;
                    }
                    (true, true) => {
                        if stored[a].flow < adds[b].flow {
                            merged.push(stored[a]);
                            a += 1;
                        } else {
                            merged.push(adds[b]);
                            b += 1;
                        }
                    }
                }
            }
            if merged.is_empty() {
                if existed {
                    emptied += 1;
                }
                continue;
            }
            if !existed {
                created += 1;
            }
            let (lat, bw, _) = snap_new[k / 3];
            let sched = what_if.reference_bandwidth(aff_switch[j]);
            let mut src_map: Vec<u16> = Vec::new();
            let mut dst_map: Vec<u16> = Vec::new();
            let members: Vec<LinkFlow> = merged
                .iter()
                .map(|m| LinkFlow {
                    arrival: m.arrival,
                    bytes: self.flows[m.flow as usize].size,
                    src: dense(&mut src_map, m.in_port),
                    dst: dense(&mut dst_map, m.out_port),
                    limit: m.limit,
                    batchable: m.batchable,
                })
                .collect();
            let profile = ClusterProfile {
                sched_bandwidth: sched,
                link_bandwidth: bw,
                latency: lat,
                srcs: src_map.len() as u16,
                dsts: dst_map.len() as u16,
                members,
            };
            let mut hasher = FxHasher::default();
            profile.hash(&mut hasher);
            let candidates = canonical.entry(hasher.finish()).or_default();
            let fi = match candidates
                .iter()
                .find(|&&c| fresh[c as usize].profile == profile)
            {
                Some(&c) => {
                    fresh[c as usize].instances += 1;
                    c
                }
                None => {
                    let c = fresh.len() as u32;
                    candidates.push(c);
                    fresh.push(LinkCluster {
                        profile,
                        instances: 1,
                    });
                    c
                }
            };
            for (pos, m) in merged.iter().enumerate() {
                overlay.insert((m.flow as u64) << 8 | m.hop as u64, (fi, pos as u32));
                consults_overlay[m.flow as usize] = true;
            }
        }

        // Replay only the rebuilt clusters (the shared cache dedups
        // symmetric rebuilds across scenarios too), then copy their
        // delays out so composition doesn't contend for the cache.
        for c in &fresh {
            cache.ensure(c, &self.cfg);
        }
        let fresh_delays: Vec<Box<[Duration]>> = fresh
            .iter()
            .map(|c| {
                cache
                    .peek(c)
                    .expect("just ensured")
                    .to_vec()
                    .into_boxed_slice()
            })
            .collect();

        // Merged per-crossing excesses: retained base clusters (those
        // still serving at least one unaffected directed link) plus the
        // rebuilt ones.
        let mut retained = vec![false; self.decomp.clusters.len()];
        for (k, &c) in self.key_cluster.iter().enumerate() {
            if c != u32::MAX && !aff_mark[k] {
                retained[c as usize] = true;
            }
        }
        let mut hop_excess = LogHistogram::new();
        for (c, r) in retained.iter().enumerate() {
            if *r {
                for &q in &self.base_delays[c][..] {
                    hop_excess.record_duration(q);
                }
            }
        }
        for d in &fresh_delays {
            for &q in &d[..] {
                hop_excess.record_duration(q);
            }
        }

        // Compose: per hop, overlay first (covers every member of a
        // rebuilt cluster, perturbed or not), base otherwise.
        let mut shapes = self.shapes.clone();
        let fresh_shape_id: Vec<u8> = fresh
            .iter()
            .map(|c| {
                shape_of(
                    &mut shapes,
                    (
                        c.profile.sched_bandwidth,
                        c.profile.link_bandwidth,
                        c.profile.latency,
                    ),
                )
            })
            .collect();
        let packable = shapes.len() <= 64;
        let mut probe = SoloProber::new(&self.cfg, cache.solo_mut());
        // Per-hop scratch: (rebuilt?, cluster, member), reused across flows.
        let mut hops: Vec<(bool, u32, u32)> = Vec::new();
        let outcomes: Vec<TopoOutcome> = (0..n)
            .map(|i| {
                let flow = self.flows[i];
                let span_len = routes_new.span(i).len();
                if span_len == 0 {
                    return TopoOutcome {
                        flow,
                        status: FlowStatus::Failed(flow.arrival),
                    };
                }
                let base_hops = self.decomp.hops(i);
                hops.clear();
                for h in 0..span_len {
                    let entry = if consults_overlay[i] {
                        overlay.get(&((i as u64) << 8 | h as u64)).copied()
                    } else {
                        None
                    };
                    hops.push(match entry {
                        Some((c, m)) => (true, c, m),
                        None => {
                            let hr = base_hops.expect("unperturbed flow keeps its base hops")[h];
                            (false, hr.cluster, hr.member)
                        }
                    });
                }
                let id_of = |&(rebuilt, c, _): &(bool, u32, u32)| {
                    if rebuilt {
                        fresh_shape_id[c as usize]
                    } else {
                        self.base_shape_id[c as usize]
                    }
                };
                let packed = if packable {
                    pack_solo_key(
                        flow.size,
                        flow.kind == FlowKind::Write,
                        hops.iter().map(id_of),
                    )
                } else {
                    None
                };
                let unloaded = probe.unloaded(what_if, &flow, packed, || {
                    hops.iter().map(|h| shapes[id_of(h) as usize]).collect()
                });
                let queued = combine.apply(hops.iter().map(|&(rebuilt, c, m)| {
                    if rebuilt {
                        fresh_delays[c as usize][m as usize]
                    } else {
                        self.base_delays[c as usize][m as usize]
                    }
                }));
                TopoOutcome {
                    flow,
                    status: FlowStatus::Delivered(flow.arrival + unloaded + queued),
                }
            })
            .collect();

        ApproxResult {
            outcomes,
            clusters: retained.iter().filter(|&&r| r).count() + fresh.len(),
            link_instances: self.decomp.link_instances - emptied + created,
            hop_excess,
        }
    }
}

/// Dense shape-id assignment shared by base construction and delta
/// composition.
fn shape_of(
    shapes: &mut Vec<(Bandwidth, Bandwidth, Duration)>,
    t: (Bandwidth, Bandwidth, Duration),
) -> u8 {
    match shapes.iter().position(|&s| s == t) {
        Some(i) => i as u8,
        None => {
            shapes.push(t);
            shapes.len() as u8 - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apply_faults, ApproxEngine};
    use edm_topo::{FaultKind, LeafSpine};

    fn workload(nodes: usize) -> Vec<Flow> {
        (0..400usize)
            .map(|i| Flow {
                id: i,
                src: i % nodes,
                dst: (i * 13 + 7) % nodes,
                size: 64,
                arrival: edm_sim::Time::ZERO + Duration::from_ns(i as u64 * 40),
                kind: if i % 3 == 0 {
                    FlowKind::Read
                } else {
                    FlowKind::Write
                },
            })
            .filter(|f| f.src != f.dst)
            .collect()
    }

    fn fault_cases(healthy: &Topology) -> Vec<Vec<FaultKind>> {
        let trunks: Vec<u32> = healthy
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_trunk())
            .map(|(i, _)| i as u32)
            .collect();
        let access = healthy.node_link(5);
        vec![
            vec![],
            vec![FaultKind::LinkDown(trunks[0])],
            vec![FaultKind::LinkDown(access)],
            vec![FaultKind::SwitchDown(4)],
            vec![FaultKind::DegradeLink {
                link: trunks[1],
                extra: Duration::from_ns(500),
            }],
            vec![FaultKind::DegradeLink {
                link: access,
                extra: Duration::from_ns(300),
            }],
            vec![
                FaultKind::LinkDown(trunks[0]),
                FaultKind::LinkDown(trunks[trunks.len() / 2]),
            ],
        ]
    }

    /// The delta path's contract: per-flow outcomes identical to a
    /// from-scratch estimate, under both the rebuild and the fallback
    /// path (forced via `fallback_fraction`).
    #[test]
    fn delta_matches_scratch() {
        let spec = LeafSpine::symmetric(4, 2, 8, 2);
        let healthy = Topology::leaf_spine(spec);
        let cfg = TopoEdmConfig::default();
        let flows = workload(32);
        for force in [1.01, 0.0] {
            let mut base = SweepBase::new(&healthy, &cfg, flows.clone());
            base.fallback_fraction = force;
            let mut cache = SweepCache::new();
            base.prime(&mut cache);
            for (ci, faults) in fault_cases(&healthy).iter().enumerate() {
                let mut what_if = Topology::leaf_spine(spec);
                apply_faults(&mut what_if, faults);
                let delta = base.estimate_delta(&what_if, Combine::Sum, &mut cache);
                let scratch = ApproxEngine::new(cfg.clone()).estimate(&what_if, &flows);
                assert_eq!(delta.outcomes.len(), scratch.outcomes.len());
                for (i, (d, s)) in delta.outcomes.iter().zip(&scratch.outcomes).enumerate() {
                    assert_eq!(d.status, s.status, "case {ci}, flow {i}, fallback {force}");
                }
            }
        }
    }

    /// A repair what-if (base built on a degraded fabric, scenario
    /// restores it) exercises the unroutable→routable direction.
    #[test]
    fn delta_handles_repair_what_if() {
        let spec = LeafSpine::symmetric(4, 2, 8, 2);
        let mut degraded = Topology::leaf_spine(spec);
        let victim = degraded.node_link(3);
        degraded.set_link_up(victim, false);
        let cfg = TopoEdmConfig::default();
        let flows = workload(32);
        let mut base = SweepBase::new(&degraded, &cfg, flows.clone());
        let mut cache = SweepCache::new();
        base.prime(&mut cache);
        assert!(
            base.estimate_delta(&degraded, Combine::Sum, &mut cache)
                .failed()
                > 0
        );
        let repaired = Topology::leaf_spine(spec);
        let delta = base.estimate_delta(&repaired, Combine::Sum, &mut cache);
        let scratch = ApproxEngine::new(cfg).estimate(&repaired, &flows);
        assert_eq!(delta.failed(), 0);
        for (d, s) in delta.outcomes.iter().zip(&scratch.outcomes) {
            assert_eq!(d.status, s.status);
        }
    }

    /// A single-optic degradation must rebuild (and replay) only the
    /// clusters along the flows that cross it — the cheapness the
    /// delta path exists for.
    #[test]
    fn degrade_replays_only_affected_clusters() {
        let spec = LeafSpine::symmetric(4, 2, 8, 2);
        let healthy = Topology::leaf_spine(spec);
        let cfg = TopoEdmConfig::default();
        let flows = workload(32);
        let mut base = SweepBase::new(&healthy, &cfg, flows.clone());
        let mut cache = SweepCache::new();
        base.prime(&mut cache);
        let cold = cache.misses();
        let mut what_if = Topology::leaf_spine(spec);
        apply_faults(
            &mut what_if,
            &[FaultKind::DegradeLink {
                link: healthy.node_link(0),
                extra: Duration::from_ns(250),
            }],
        );
        base.estimate_delta(&what_if, Combine::Sum, &mut cache);
        let replays = cache.misses() - cold;
        assert!(
            replays * 4 < cold,
            "one access degradation replayed {replays} of {cold} clusters"
        );
    }
}
