//! Per-link mini-simulator: replay one cluster's crossings through a
//! single [`SwitchDomain`].
//!
//! This is deliberately *not* a new queueing model. Each cluster replays
//! its members through the same demand-sparse scheduler core the exact
//! engine runs per switch (`edm_core::sim::SwitchDomain`: offer →
//! poll/grant → deliver, with per-pair X limits and §3.1.2 batching), on
//! a miniature port space holding just the cluster's own source and
//! destination ports. What the mini-simulation cannot see — the other
//! links of each member's route — is exactly the independence assumption
//! the composition back-end documents.
//!
//! The output per member is the crossing's *excess*: its completion
//! delay through the contended replay minus the same replay run with the
//! member alone. All path constants (scheduler latency floor, grant
//! turnaround, propagation, serialization) cancel in that subtraction,
//! so what remains is pure queueing attributable to this link.
//!
//! Two structural shortcuts keep a sweep's per-scenario cost an order of
//! magnitude under the exact engine's, both exact rather than
//! approximate:
//!
//! * **Burst stripping** — members are partitioned into *bursts* by a
//!   conservative work-conservation bound: a member joins the current
//!   burst only if it arrives before the burst's accumulated
//!   worst-case busy horizon. Members alone in their burst provably
//!   find an idle domain and complete untouched (zero excess, no
//!   replay); only multi-member bursts replay, and since distinct
//!   bursts cannot overlap in time they all share one replay.
//! * **Domain pooling** — a drained [`SwitchDomain`] is
//!   state-equivalent to a fresh one up to absolute timestamps (every
//!   per-pair counter and FIFO returns to empty; port busy marks are
//!   past times). `DomainPool` reuses drained domains by shifting the
//!   next cluster's arrivals past the pool cursor by a multiple of the
//!   scheduler clock tick, which preserves grant timing bit-exactly,
//!   and so skips the `ports²` zero-initialization that otherwise
//!   dominates cold replay cost.

use crate::decompose::{ClusterProfile, LinkCluster};
use crate::fxhash::FxHashMap;
use edm_core::sim::{evord, DomainOffer, SwitchDomain};
use edm_sched::SchedulerConfig;
use edm_sim::{Bandwidth, Duration, EventQueue, LogHistogram, Time, World};
use edm_topo::TopoEdmConfig;

/// Unloaded per-crossing baselines, keyed by everything that physically
/// determines them: message bytes plus the crossing's (scheduler
/// bandwidth, link bandwidth, latency). Shared across clusters — on a
/// symmetric fabric a whole sweep needs a handful of entries.
pub(crate) type SoloMemo = FxHashMap<(u32, Bandwidth, Bandwidth, Duration), Duration>;

/// Reusable drained domains, keyed by port count and scheduler
/// bandwidth (the only [`SchedulerConfig`] fields that vary across one
/// sweep's clusters). The cursor is a conservative quiesce horizon: no
/// state inside the paired domain references a time beyond it.
#[derive(Debug, Default)]
pub(crate) struct DomainPool {
    doms: FxHashMap<(usize, Bandwidth), (SwitchDomain, Time)>,
    /// Drained scratch event queue, reused across replays so the
    /// calendar buckets and node slab are allocated once per pool, not
    /// once per replay (thousands of replays per sweep scenario).
    queue: Option<EventQueue<MiniEv>>,
}

/// One cluster's mini-simulation output.
#[derive(Debug, Clone)]
pub struct ClusterDelays {
    /// Per-member queueing excess, indexed like `profile.members`.
    pub excess: Vec<Duration>,
}

impl ClusterDelays {
    /// The excesses as a shard-mergeable log-bucket distribution —
    /// merge across clusters for a fabric-wide per-hop delay profile.
    /// Built on demand: the histogram is 32 KB of buckets, and sweep
    /// paths that replay thousands of clusters per scenario only keep
    /// the excess vectors.
    pub fn hist(&self) -> LogHistogram {
        let mut hist = LogHistogram::new();
        for &q in &self.excess {
            hist.record_duration(q);
        }
        hist
    }
}

impl AsRef<[Duration]> for ClusterDelays {
    fn as_ref(&self) -> &[Duration] {
        &self.excess
    }
}

/// Events of the mini world, ordered by the exact engine's content keys
/// so same-instant ties resolve the same way they would there.
#[derive(Debug)]
enum MiniEv {
    /// Member `m`'s demand reaches the scheduler.
    Demand(u32),
    /// A scheduling round.
    Poll,
    /// A granted chunk's last byte lands downstream.
    Chunk { slot: u32, bytes: u32 },
}

/// The replay world: one switch domain, one link.
struct MiniWorld<'a> {
    profile: &'a ClusterProfile,
    members: &'a [u32],
    dom: SwitchDomain,
    /// Grant→arrival turnaround (cancels in the excess subtraction).
    turnaround: Duration,
    /// Source ports occupy dense indices `0..srcs`; destinations follow.
    src_ports: u16,
    /// Pool time shift applied to every arrival (subtracted back out).
    shift: Duration,
    /// Completion since arrival, indexed like `members`.
    done: Vec<Duration>,
    /// Latest event instant processed (the queue is time-ordered).
    last_now: Time,
    pending: usize,
}

impl World for MiniWorld<'_> {
    type Event = MiniEv;

    fn handle(&mut self, now: Time, ev: MiniEv, q: &mut EventQueue<MiniEv>) {
        self.last_now = now;
        match ev {
            MiniEv::Demand(m) => {
                let lf = self.profile.members[self.members[m as usize] as usize];
                let pair = lf.src as u64 * self.profile.dsts as u64 + lf.dst as u64;
                let offer = DomainOffer {
                    src: lf.src,
                    dst: self.src_ports + lf.dst,
                    bytes: lf.bytes,
                    limit: lf.limit as usize,
                    // Batchable members fold per end-to-end pair, like
                    // the exact engine's single-hop batching; everything
                    // else gets a unique key (never folds).
                    batch_key: if lf.batchable {
                        pair
                    } else {
                        1 << 32 | m as u64
                    },
                    token: m as u64,
                };
                if self.dom.offer(now, offer) && self.dom.note_poll_wanted(now) {
                    q.schedule_ordered(now, evord::poll(0), MiniEv::Poll);
                }
            }
            MiniEv::Poll => {
                if !self.dom.poll_due(now) {
                    return;
                }
                let flight = self.turnaround + self.profile.latency;
                let link = self.profile.link_bandwidth;
                let (grants, sched_latency, next_wakeup) = self.dom.poll(now);
                for g in grants {
                    let arrival =
                        now + sched_latency + flight + link.tx_time_bytes(g.chunk_bytes as u64);
                    q.schedule_ordered(
                        arrival,
                        evord::chunk(0, g.gseq),
                        MiniEv::Chunk {
                            slot: g.slot,
                            bytes: g.chunk_bytes,
                        },
                    );
                }
                if let Some(at) = next_wakeup {
                    if self.dom.note_poll_wanted(at) {
                        q.schedule_ordered(at, evord::poll(0), MiniEv::Poll);
                    }
                }
            }
            MiniEv::Chunk { slot, bytes } => {
                let MiniWorld {
                    profile,
                    members,
                    dom,
                    shift,
                    done,
                    pending,
                    ..
                } = self;
                let freed = dom.deliver(now, slot, bytes, |token, _sub_bytes| {
                    let lf = &profile.members[members[token as usize] as usize];
                    done[token as usize] = now.saturating_since(lf.arrival + *shift);
                    *pending -= 1;
                });
                if freed && self.dom.has_demand() && self.dom.note_poll_wanted(now) {
                    q.schedule_ordered(now, evord::poll(0), MiniEv::Poll);
                }
            }
        }
    }
}

/// Replays the `members` subset of `profile` (original member indices,
/// time-then-index order) and returns each one's completion since its
/// arrival. The domain comes from `pool` when a drained one of the right
/// shape is available; arrivals are then shifted past the pool cursor by
/// a multiple of the scheduler clock, which every timestamp the replay
/// produces inherits exactly, so the shift cancels in the returned
/// relative completions.
fn replay(
    profile: &ClusterProfile,
    members: &[u32],
    cfg: &TopoEdmConfig,
    pool: &mut DomainPool,
) -> Vec<Duration> {
    let ports = profile.srcs as usize + profile.dsts as usize;
    let key = (ports, profile.sched_bandwidth);
    let (dom, cursor) = pool.doms.remove(&key).unwrap_or_else(|| {
        let sched = SchedulerConfig {
            ports,
            chunk_bytes: cfg.chunk_bytes,
            link: profile.sched_bandwidth,
            policy: cfg.policy,
            // Per-offer limits override this default.
            max_active_per_pair: cfg.max_active_per_pair,
            clock: edm_sched::ASIC_CLOCK,
        };
        (
            SwitchDomain::new(sched, cfg.batch_small_messages),
            Time::ZERO,
        )
    });
    let first = members
        .iter()
        .map(|&m| profile.members[m as usize].arrival)
        .min()
        .expect("replay needs members");
    // Clock-tick multiple keeps every scheduler grid alignment
    // bit-identical to a fresh domain at the unshifted instants.
    let tick = edm_sched::ASIC_CLOCK.as_ps();
    let behind = cursor.saturating_since(first).as_ps();
    let shift = Duration::from_ps(behind.div_ceil(tick) * tick);
    let world = MiniWorld {
        profile,
        members,
        dom,
        turnaround: cfg.forward_latency,
        src_ports: profile.srcs,
        shift,
        done: vec![Duration::MAX; members.len()],
        last_now: cursor,
        pending: members.len(),
    };
    let mut queue = pool.queue.take().unwrap_or_default();
    debug_assert!(queue.is_empty(), "scratch queue must come back drained");
    let mut world = world;
    for (m, &orig) in members.iter().enumerate() {
        let at = profile.members[orig as usize].arrival + shift;
        queue.schedule_ordered(at, evord::demand(m as u32), MiniEv::Demand(m as u32));
    }
    // Manual drain instead of `Engine::run` so the queue survives the
    // replay and returns to the pool with its allocations intact.
    while let Some((at, ev)) = queue.pop() {
        world.handle(at, ev, &mut queue);
    }
    pool.queue = Some(queue);
    assert_eq!(world.pending, 0, "mini replay drained every member");
    debug_assert!(!world.dom.has_demand(), "drained domain retains demand");
    // Quiesce horizon: ports can stay busy past the last delivery by at
    // most one chunk's serialization at the scheduler's rate.
    let margin = profile
        .sched_bandwidth
        .tx_time_bytes(cfg.chunk_bytes as u64)
        + edm_sched::ASIC_CLOCK;
    pool.doms.insert(key, (world.dom, world.last_now + margin));
    world.done
}

/// The unloaded baseline for one crossing shape, via `solo`.
fn solo_of(
    profile: &ClusterProfile,
    bytes: u32,
    cfg: &TopoEdmConfig,
    solo: &mut SoloMemo,
    pool: &mut DomainPool,
) -> Duration {
    let key = (
        bytes,
        profile.sched_bandwidth,
        profile.link_bandwidth,
        profile.latency,
    );
    if let Some(&d) = solo.get(&key) {
        return d;
    }
    let one = ClusterProfile {
        srcs: 1,
        dsts: 1,
        members: vec![crate::decompose::LinkFlow {
            arrival: Time::ZERO,
            bytes,
            src: 0,
            dst: 0,
            limit: 1,
            batchable: false,
        }],
        ..profile.clone()
    };
    let d = replay(&one, &[0], cfg, pool)[0];
    solo.insert(key, d);
    d
}

/// Simulates one cluster, memoizing unloaded baselines through `solo`
/// and reusing drained domains through `pool`.
///
/// Members are partitioned into bursts by a conservative
/// work-conservation horizon: each member's worst-case contribution to
/// the domain's busy period is its slowest unloaded service plus one
/// chunk serialization and a scheduler tick, so a member arriving after
/// the accumulated horizon provably finds an idle domain. Members alone
/// in their burst complete unloaded (zero excess — no replay), and only
/// the multi-member bursts replay, together, since bursts cannot
/// overlap. At the paper's message sizes most links of a loaded fabric
/// are all singletons — this shortcut is where the estimator's
/// asymptotic win over the exact engine comes from (Parsimon skips
/// low-utilization links the same way).
pub(crate) fn simulate_memo(
    cluster: &LinkCluster,
    cfg: &TopoEdmConfig,
    solo: &mut SoloMemo,
    pool: &mut DomainPool,
) -> ClusterDelays {
    let profile = &cluster.profile;
    let m = profile.members.len();

    let mut service_max = Duration::ZERO;
    for lf in &profile.members {
        let s = solo_of(profile, lf.bytes, cfg, solo, pool);
        if s > service_max {
            service_max = s;
        }
    }
    let chunk = profile
        .members
        .iter()
        .map(|lf| lf.bytes.min(cfg.chunk_bytes))
        .max()
        .unwrap_or(0);
    let bound =
        service_max + profile.sched_bandwidth.tx_time_bytes(chunk as u64) + edm_sched::ASIC_CLOCK;

    // Time-then-index order: same-instant ties must map to ascending
    // replay indices so `evord::demand` resolves them exactly as a full
    // replay would.
    let mut order: Vec<u32> = (0..m as u32).collect();
    order.sort_unstable_by_key(|&i| (profile.members[i as usize].arrival, i));

    // Burst closure under the work-conservation horizon: every member
    // extends the busy upper bound by at most `bound`, so an arrival at
    // or past the horizon starts a fresh, provably idle burst.
    let mut contended: Vec<u32> = Vec::new();
    let mut burst_start = 0usize;
    let mut horizon = Time::ZERO;
    let flush = |contended: &mut Vec<u32>, lo: usize, hi: usize| {
        if hi - lo > 1 {
            contended.extend_from_slice(&order[lo..hi]);
        }
    };
    for (k, &i) in order.iter().enumerate() {
        let at = profile.members[i as usize].arrival;
        if k > 0 && at >= horizon {
            flush(&mut contended, burst_start, k);
            burst_start = k;
        }
        horizon = horizon.max(at) + bound;
    }
    flush(&mut contended, burst_start, m);

    let mut excess = vec![Duration::ZERO; m];
    if !contended.is_empty() {
        // One replay serves every contended burst: bursts cannot
        // overlap, so their members never interact, and stripping the
        // singletons between them cannot delay anyone in a
        // work-conserving domain.
        let done = replay(profile, &contended, cfg, pool);
        for (k, &i) in contended.iter().enumerate() {
            let lf = &profile.members[i as usize];
            let unloaded = solo_of(profile, lf.bytes, cfg, solo, pool);
            excess[i as usize] = done[k].saturating_sub(unloaded);
        }
    }
    ClusterDelays { excess }
}

/// Simulates one cluster's replay and returns per-member queueing
/// excesses. Clusters are independent — fan them out with `par_sweep`.
pub fn simulate_cluster(cluster: &LinkCluster, cfg: &TopoEdmConfig) -> ClusterDelays {
    let mut solo = SoloMemo::default();
    let mut pool = DomainPool::default();
    simulate_memo(cluster, cfg, &mut solo, &mut pool)
}

/// Simulates a batch of clusters on one worker, sharing one solo memo
/// and domain pool across the whole batch. Sweep harnesses hand each
/// `par_sweep` worker a batch of cache misses: per-cluster
/// [`simulate_cluster`] would rebuild a [`edm_core::sim::SwitchDomain`]
/// per replay, which costs more than the replays themselves.
pub fn simulate_batch(clusters: &[&LinkCluster], cfg: &TopoEdmConfig) -> Vec<ClusterDelays> {
    let mut solo = SoloMemo::default();
    let mut pool = DomainPool::default();
    clusters
        .iter()
        .map(|c| simulate_memo(c, cfg, &mut solo, &mut pool))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::LinkFlow;
    use edm_sim::Bandwidth;

    fn cluster(members: Vec<LinkFlow>, srcs: u16, dsts: u16) -> LinkCluster {
        LinkCluster {
            profile: ClusterProfile {
                sched_bandwidth: Bandwidth::from_gbps(100),
                link_bandwidth: Bandwidth::from_gbps(100),
                latency: Duration::from_ns(10),
                srcs,
                dsts,
                members,
            },
            instances: 1,
        }
    }

    fn member(at_ns: u64, src: u16, dst: u16) -> LinkFlow {
        LinkFlow {
            arrival: Time::ZERO + Duration::from_ns(at_ns),
            bytes: 64,
            src,
            dst,
            limit: 3,
            batchable: false,
        }
    }

    #[test]
    fn lone_member_has_zero_excess() {
        let c = cluster(vec![member(0, 0, 0)], 1, 1);
        let d = simulate_cluster(&c, &TopoEdmConfig::default());
        assert_eq!(d.excess, vec![Duration::ZERO]);
    }

    #[test]
    fn disjoint_pairs_do_not_queue() {
        let c = cluster(vec![member(0, 0, 0), member(0, 1, 1)], 2, 2);
        let d = simulate_cluster(&c, &TopoEdmConfig::default());
        assert!(d.excess.iter().all(|&e| e == Duration::ZERO));
    }

    #[test]
    fn converging_members_queue() {
        // Ten simultaneous messages into one destination port: later
        // grants wait for the port, so excess grows past zero.
        let members = (0..10).map(|s| member(0, s, 0)).collect();
        let d = simulate_cluster(&cluster(members, 10, 1), &TopoEdmConfig::default());
        assert_eq!(d.excess[0], Duration::ZERO, "someone goes first");
        let worst = d.excess.iter().max().unwrap();
        assert!(*worst > Duration::ZERO, "incast must queue, got {worst:?}");
        assert_eq!(d.hist().count(), 10);
    }

    #[test]
    fn widely_spaced_members_never_queue() {
        let members = (0..5u64).map(|i| member(i * 100_000, 0, 0)).collect();
        let d = simulate_cluster(&cluster(members, 1, 1), &TopoEdmConfig::default());
        assert!(d.excess.iter().all(|&e| e == Duration::ZERO));
    }

    #[test]
    fn pooled_replays_match_fresh_replays() {
        // Reusing a drained domain with a shifted clock must be
        // bit-identical to replaying in a fresh one, including for a
        // cluster whose arrivals start *before* the pool cursor.
        let cfg = TopoEdmConfig::default();
        let clusters: Vec<LinkCluster> = vec![
            cluster((0..10).map(|s| member(s * 7, s as u16, 0)).collect(), 10, 1),
            cluster((0..10).map(|s| member(s % 3, 0, s as u16)).collect(), 1, 10),
            cluster(
                (0..11)
                    .map(|s| member(s * 13, (s % 5) as u16, (s % 6) as u16))
                    .collect(),
                5,
                6,
            ),
            // Same port-space key as the first cluster: forces reuse.
            cluster((0..10).map(|s| member(s / 2, s as u16, 0)).collect(), 10, 1),
        ];
        let mut solo = SoloMemo::default();
        let mut pool = DomainPool::default();
        for c in &clusters {
            let pooled = simulate_memo(c, &cfg, &mut solo, &mut pool);
            let fresh = simulate_cluster(c, &cfg);
            assert_eq!(pooled.excess, fresh.excess);
        }
        // Round two drives the cursor far past every arrival.
        for c in &clusters {
            let pooled = simulate_memo(c, &cfg, &mut solo, &mut pool);
            assert_eq!(pooled.excess, simulate_cluster(c, &cfg).excess);
        }
    }

    #[test]
    fn burst_stripping_matches_full_replay() {
        // A contended burst, a lone member far away, then another
        // contended burst: stripping the singleton must not change
        // anyone's excess relative to replaying all members.
        let cfg = TopoEdmConfig::default();
        let mut members: Vec<LinkFlow> = (0..6).map(|s| member(s % 2, s as u16, 0)).collect();
        members.push(member(1_000_000, 6, 0));
        for s in 0..6u64 {
            members.push(member(2_000_000 + s % 3, s as u16, 0));
        }
        let c = cluster(members.clone(), 7, 1);
        let stripped = simulate_cluster(&c, &cfg);
        // Reference: force a full replay through the raw path.
        let mut pool = DomainPool::default();
        let all: Vec<u32> = (0..members.len() as u32).collect();
        let full = replay(&c.profile, &all, &cfg, &mut pool);
        let mut solo = SoloMemo::default();
        let mut pool2 = DomainPool::default();
        for (i, lf) in c.profile.members.iter().enumerate() {
            let unloaded = solo_of(&c.profile, lf.bytes, &cfg, &mut solo, &mut pool2);
            assert_eq!(
                stripped.excess[i],
                full[i].saturating_sub(unloaded),
                "member {i}"
            );
        }
        assert_eq!(stripped.excess[6], Duration::ZERO, "singleton is unloaded");
    }
}
