//! Composition back-end: per-link excesses → end-to-end FCT estimates.
//!
//! # The independence assumption
//!
//! Each flow's estimate is its *unloaded* completion time on the full
//! fabric ([`edm_topo::TopoEdm::solo_mct`] — the exact engine run with
//! the flow alone, so every path constant is exact by construction) plus
//! a combination of the queueing excesses its crossings measured in
//! their independent per-link replays. The combination treats those
//! per-link delays as if the links queued independently — in truth one
//! flow's stall at hop k reshapes its demand arrival at hop k+1, and
//! EDM's schedulers reserve a source *and* destination port jointly, so
//! per-link waits overlap in time rather than accruing one after
//! another.
//!
//! [`Combine::Sum`] (the default, Parsimon's serial-queueing
//! assumption) charges each flow the sum of its per-link excesses;
//! [`Combine::Bottleneck`] charges only the worst link (per-link waits
//! fully overlapping in time). Measured against the exact engine, the
//! per-link replays *miss* delay — cross-link correlation (a stall
//! upstream bunches arrivals downstream) and incast synchronization are
//! invisible to them — so both combiners underestimate the tail and Sum,
//! which recovers the most, tracks the exact engine closest (calibrated
//! on the 144/288-node overlaps: p99 within ~3–5% at the paper's 64 B
//! messages, degrading to ~15% at 1–4 KiB where per-hop serialization
//! couples the links more strongly). That envelope is measured, not
//! argued: the `approx_sweep` harness compares both engines on overlap
//! sizes and commits the numbers to `BENCH_approx.json`, and the
//! `error_envelope` suite pins [`crate::P99_ERROR_BOUND`].

use crate::decompose::Decomposition;
use crate::fxhash::FxHashMap;
use edm_core::sim::{Flow, FlowKind};
use edm_sim::{Bandwidth, Duration, LogHistogram, Summary};
use edm_topo::{FlowStatus, TopoEdm, TopoEdmConfig, TopoOutcome, Topology};

/// How a flow's per-link excesses combine into one end-to-end estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Combine {
    /// Sum every link's excess (Parsimon's serial-queueing assumption).
    /// Since the per-link replays systematically *miss* correlated
    /// delay, the combiner recovering the most tracks the exact engine
    /// closest — the calibrated default.
    #[default]
    Sum,
    /// Charge only the worst single link (per-link waits modeled as
    /// fully overlapping) — the optimistic bound, kept for comparison
    /// sweeps.
    Bottleneck,
}

impl Combine {
    pub(crate) fn apply(self, excesses: impl Iterator<Item = Duration>) -> Duration {
        match self {
            Combine::Bottleneck => excesses.max().unwrap_or(Duration::ZERO),
            Combine::Sum => excesses.sum(),
        }
    }
}

/// The estimator's output, shaped like the exact engine's result so
/// comparison code treats both uniformly.
#[derive(Debug, Clone)]
pub struct ApproxResult {
    /// Per-flow estimated outcomes, in input order. Flows the (possibly
    /// degraded) topology cannot route are `Failed` at arrival, matching
    /// the exact engine's fail-fast admission under its default
    /// `max_retries = 0`.
    pub outcomes: Vec<TopoOutcome>,
    /// Deduplicated clusters simulated.
    pub clusters: usize,
    /// Directed links that carried flows (pre-dedup).
    pub link_instances: usize,
    /// Merged per-crossing excess distribution across all clusters.
    pub hop_excess: LogHistogram,
}

impl ApproxResult {
    /// Number of flows estimated delivered.
    pub fn delivered(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, FlowStatus::Delivered(_)))
            .count()
    }

    /// Number of flows estimated failed (unroutable).
    pub fn failed(&self) -> usize {
        self.outcomes.len() - self.delivered()
    }

    /// Summary of estimated completion times, in nanoseconds.
    pub fn mct_summary(&self) -> Summary {
        let mut s = Summary::new();
        for o in &self.outcomes {
            if let Some(mct) = o.mct() {
                s.record_duration(mct);
            }
        }
        s
    }
}

/// Memo of exact unloaded baselines ([`TopoEdm::solo_mct`] probes),
/// keyed by what physically determines them: message size, flow kind,
/// and the per-crossing (scheduler bandwidth, link bandwidth, latency)
/// sequence of the route. The key is *stable across scenarios* — in a
/// what-if grid, routes detoured by a fault still hit the cache whenever
/// their crossing parameters match an already-probed shape, so a
/// symmetric fabric pays for a handful of probes over the entire sweep.
#[derive(Debug, Default)]
pub struct SoloCache {
    #[allow(clippy::type_complexity)]
    map: FxHashMap<(u32, bool, Vec<(Bandwidth, Bandwidth, Duration)>), Duration>,
}

impl SoloCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct route shapes probed so far.
    pub fn probes(&self) -> usize {
        self.map.len()
    }
}

/// Packed solo key: size (32b) | write (1b) | hop count (3b) | 4 × 6-bit
/// shape ids — usable whenever the route has ≤ 4 hops over ≤ 64 distinct
/// crossing-parameter shapes, which covers every leaf-spine fabric.
/// Callers guarantee the ≤ 64-shape side.
pub(crate) fn pack_solo_key<I: ExactSizeIterator<Item = u8>>(
    size: u32,
    write: bool,
    ids: I,
) -> Option<u64> {
    if ids.len() > 4 {
        return None;
    }
    let mut k = size as u64 | (write as u64) << 32 | (ids.len() as u64) << 33;
    for (j, id) in ids.enumerate() {
        k |= (id as u64) << (36 + 6 * j);
    }
    Some(k)
}

/// Per-scenario unloaded-baseline prober: a packed-key fast path over
/// per-scenario shape ids (a linear scan — a scenario sees one entry
/// per (size, kind, hop-shape) combination, typically under a couple
/// dozen), falling back to the structural, scenario-stable
/// [`SoloCache`] and ultimately the exact [`TopoEdm::solo_mct`] probe.
pub(crate) struct SoloProber<'a> {
    prober: TopoEdm,
    solo: &'a mut SoloCache,
    fast: Vec<(u64, Duration)>,
}

impl<'a> SoloProber<'a> {
    pub(crate) fn new(cfg: &TopoEdmConfig, solo: &'a mut SoloCache) -> Self {
        SoloProber {
            prober: TopoEdm::new(cfg.clone()),
            solo,
            fast: Vec::new(),
        }
    }

    /// The flow's unloaded completion time; `triples` materializes the
    /// route's crossing-parameter sequence only on a fast-path miss.
    pub(crate) fn unloaded(
        &mut self,
        topo: &Topology,
        flow: &Flow,
        packed: Option<u64>,
        triples: impl FnOnce() -> Vec<(Bandwidth, Bandwidth, Duration)>,
    ) -> Duration {
        if let Some(d) = packed.and_then(|k| self.fast.iter().find(|e| e.0 == k).map(|e| e.1)) {
            return d;
        }
        let key = (flow.size, flow.kind == FlowKind::Write, triples());
        let d = *self.solo.map.entry(key).or_insert_with(|| {
            self.prober
                .solo_mct(topo, flow)
                .expect("a decomposed flow has a route")
        });
        if let Some(k) = packed {
            self.fast.push((k, d));
        }
        d
    }
}

/// Composes per-cluster delays back into per-flow estimates, memoizing
/// the exact unloaded probes in a fresh [`SoloCache`].
pub fn compose<D: AsRef<[Duration]>>(
    topo: &Topology,
    cfg: &TopoEdmConfig,
    decomp: &Decomposition,
    delays: &[D],
    combine: Combine,
) -> ApproxResult {
    compose_cached(topo, cfg, decomp, delays, combine, &mut SoloCache::new())
}

/// Composes per-cluster delays back into per-flow estimates.
///
/// `delays[i]` must be the per-member excesses of `decomp.clusters[i]` —
/// a [`crate::ClusterDelays`], an owned vector, or a borrowed slice
/// (sweep harnesses pass `&[&[Duration]]` straight out of their cache).
/// Solo baselines come from `solo`, which outlives one composition —
/// hand the same cache to every scenario of a sweep.
///
/// This runs once per scenario over every flow, so the per-flow solo
/// lookup goes through a packed one-word key over per-scenario *shape
/// ids* (a fabric has a handful of distinct crossing parameter triples);
/// only a first-seen shape sequence falls back to the structural
/// [`SoloCache`] key, which persists across scenarios.
pub fn compose_cached<D: AsRef<[Duration]>>(
    topo: &Topology,
    cfg: &TopoEdmConfig,
    decomp: &Decomposition,
    delays: &[D],
    combine: Combine,
    solo: &mut SoloCache,
) -> ApproxResult {
    assert_eq!(
        decomp.clusters.len(),
        delays.len(),
        "one simulation per cluster"
    );
    // The merged per-crossing distribution is rebuilt by re-recording
    // every member excess — the same multiset a per-cluster histogram
    // merge would produce, minus the full-width bucket traffic.
    let mut hop_excess = LogHistogram::new();
    for d in delays {
        for &q in d.as_ref() {
            hop_excess.record_duration(q);
        }
    }
    // Per-scenario shape ids: cluster index → index of its crossing
    // parameter triple.
    let mut shapes: Vec<(Bandwidth, Bandwidth, Duration)> = Vec::new();
    let shape_id: Vec<u8> = decomp
        .clusters
        .iter()
        .map(|c| {
            let t = (
                c.profile.sched_bandwidth,
                c.profile.link_bandwidth,
                c.profile.latency,
            );
            match shapes.iter().position(|&s| s == t) {
                Some(i) => i as u8,
                None => {
                    shapes.push(t);
                    shapes.len() as u8 - 1
                }
            }
        })
        .collect();
    let packable = shapes.len() <= 64;
    let mut probe = SoloProber::new(cfg, solo);
    let outcomes = (0..decomp.flows.len())
        .map(|i| {
            let fp = &decomp.flows[i];
            let status = match decomp.hops(i) {
                None => FlowStatus::Failed(fp.flow.arrival),
                Some(hops) => {
                    let packed = if packable {
                        pack_solo_key(
                            fp.flow.size,
                            fp.flow.kind == FlowKind::Write,
                            hops.iter().map(|h| shape_id[h.cluster as usize]),
                        )
                    } else {
                        None
                    };
                    let unloaded = probe.unloaded(topo, &fp.flow, packed, || {
                        hops.iter()
                            .map(|h| shapes[shape_id[h.cluster as usize] as usize])
                            .collect()
                    });
                    let queued = combine.apply(
                        hops.iter()
                            .map(|h| delays[h.cluster as usize].as_ref()[h.member as usize]),
                    );
                    FlowStatus::Delivered(fp.flow.arrival + unloaded + queued)
                }
            };
            TopoOutcome {
                flow: fp.flow,
                status,
            }
        })
        .collect();
    ApproxResult {
        outcomes,
        clusters: decomp.clusters.len(),
        link_instances: decomp.link_instances,
        hop_excess,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use crate::linksim::{simulate_cluster, ClusterDelays};
    use edm_core::sim::{ClusterConfig, Flow};
    use edm_sim::Time;
    use edm_topo::cluster_topology;

    #[test]
    fn lone_flow_estimate_matches_exact_solo() {
        let topo = cluster_topology(&ClusterConfig::default());
        let cfg = TopoEdmConfig::default();
        let flow = Flow {
            id: 0,
            src: 3,
            dst: 99,
            size: 4096,
            arrival: Time::ZERO,
            kind: FlowKind::Write,
        };
        let d = decompose(&topo, &cfg, &[flow]);
        let delays: Vec<_> = d
            .clusters
            .iter()
            .map(|c| simulate_cluster(c, &cfg))
            .collect();
        let r = compose(&topo, &cfg, &d, &delays, Combine::Bottleneck);
        let exact = TopoEdm::new(cfg).simulate(&topo, &[flow]);
        // An uncontended flow has zero excess everywhere, so the
        // estimate *is* the exact engine's answer.
        assert_eq!(r.outcomes[0].mct(), exact.outcomes[0].mct());
    }

    #[test]
    fn unroutable_flow_estimates_failed_at_arrival() {
        let mut topo = cluster_topology(&ClusterConfig::default());
        topo.set_link_up(topo.node_link(7), false);
        let cfg = TopoEdmConfig::default();
        let at = Time::ZERO + Duration::from_ns(42);
        let flow = Flow {
            id: 0,
            src: 7,
            dst: 99,
            size: 64,
            arrival: at,
            kind: FlowKind::Write,
        };
        let d = decompose(&topo, &cfg, &[flow]);
        let r = compose::<ClusterDelays>(&topo, &cfg, &d, &[], Combine::Bottleneck);
        assert_eq!(r.outcomes[0].status, FlowStatus::Failed(at));
        assert_eq!(r.failed(), 1);
    }
}
