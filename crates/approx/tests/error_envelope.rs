//! The error-envelope validation suite: exact-vs-approx comparison on
//! the overlap sizes both engines can run (144-node single switch,
//! 288-node leaf–spine), across loads {0.4, 0.7} and a fault scenario.
//!
//! Each case simulates the same flow set through [`edm_topo::TopoEdm`]
//! and estimates it through [`edm_approx::ApproxEngine`], then asserts
//! the relative FCT error at p50 and p99 stays inside the documented
//! envelope ([`edm_approx::P99_ERROR_BOUND`]). The `approx_sweep`
//! harness measures the same quantities into `BENCH_approx.json`; this
//! suite is the regression gate.

use edm_approx::{apply_faults, ApproxEngine, P99_ERROR_BOUND};
use edm_core::sim::Flow;
use edm_sim::{Bandwidth, Summary, Time};
use edm_topo::{FaultEvent, FaultKind, LeafSpine, TopoEdm, TopoEdmConfig, Topology};
use edm_workloads::{RackAwareWorkload, SyntheticWorkload};

/// Flow count per validation point — enough for a stable p99 (the p99
/// rank has ~20 samples above it) while keeping debug-build test time
/// in seconds.
const FLOWS: usize = 2000;

fn p(s: &mut Summary, q: f64) -> f64 {
    assert!(!s.is_empty());
    s.percentile(q)
}

/// Runs one exact-vs-approx comparison and asserts the envelope.
fn assert_envelope(name: &str, topo: &Topology, cfg: &TopoEdmConfig, flows: &[Flow]) {
    let exact = TopoEdm::new(cfg.clone()).simulate(topo, flows);
    // The estimator sees the post-fault fabric statically.
    let mut what_if = topo.clone();
    let static_faults: Vec<FaultKind> = cfg.faults.iter().map(|f| f.kind).collect();
    apply_faults(&mut what_if, &static_faults);
    let mut est_cfg = cfg.clone();
    est_cfg.faults.clear();
    let est = ApproxEngine::new(est_cfg).estimate(&what_if, flows);

    assert_eq!(
        est.delivered(),
        exact.delivered(),
        "{name}: both engines must agree on deliverability"
    );
    let mut xs = Summary::new();
    for o in &exact.outcomes {
        if let Some(m) = o.mct() {
            xs.record_duration(m);
        }
    }
    let mut es = est.mct_summary();
    for q in [50.0, 99.0] {
        let (x, e) = (p(&mut xs, q), p(&mut es, q));
        let err = (e - x).abs() / x;
        eprintln!("{name}: p{q:.0} exact {x:.0} ns, approx {e:.0} ns, err {err:.4}");
        assert!(
            err <= P99_ERROR_BOUND,
            "{name}: p{q:.0} error {err:.4} exceeds the documented {P99_ERROR_BOUND} envelope"
        );
    }
}

fn rack_workload(load: f64, count: usize) -> RackAwareWorkload {
    RackAwareWorkload {
        nodes: 288,
        racks: 4,
        link: Bandwidth::from_gbps(100),
        load,
        size: 64,
        write_fraction: 0.5,
        local_fraction: 0.5,
        count,
    }
}

#[test]
fn envelope_single_switch_144() {
    let topo = edm_topo::cluster_topology(&edm_core::sim::ClusterConfig::default());
    let cfg = TopoEdmConfig::default();
    for load in [0.4, 0.7] {
        let flows = SyntheticWorkload::paper_default(load, 0.5, FLOWS).generate(42);
        assert_envelope(
            &format!("single_switch_144/load_{load}"),
            &topo,
            &cfg,
            &flows,
        );
    }
}

#[test]
fn envelope_leaf_spine_288() {
    let topo = Topology::leaf_spine(LeafSpine::symmetric(4, 2, 72, 36));
    let cfg = TopoEdmConfig::default();
    for load in [0.4, 0.7] {
        let flows = rack_workload(load, FLOWS).generate(42);
        assert_envelope(&format!("leaf_spine_288/load_{load}"), &topo, &cfg, &flows);
    }
}

#[test]
fn envelope_fault_scenario_288() {
    // One spine-side trunk down from t=0: the exact engine injects it as
    // a fault event before any admission; the estimator models the same
    // degraded fabric statically. Routed load concentrates on the
    // surviving uplinks — the envelope must hold there too.
    let topo = Topology::leaf_spine(LeafSpine::symmetric(4, 2, 72, 36));
    let trunk = topo
        .links()
        .iter()
        .position(|l| l.is_trunk())
        .expect("leaf-spine has trunks") as u32;
    let mut cfg = TopoEdmConfig::default();
    cfg.faults.push(FaultEvent {
        at: Time::ZERO,
        kind: FaultKind::LinkDown(trunk),
    });
    let flows = rack_workload(0.7, FLOWS).generate(42);
    assert_envelope("leaf_spine_288/trunk_down/load_0.7", &topo, &cfg, &flows);
}
