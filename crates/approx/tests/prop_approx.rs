//! The path-choice pin: `edm-approx`'s own route resolution
//! ([`edm_approx::resolve_route`]) must be bit-identical to the exact
//! engine's salted-ECMP choice ([`edm_topo::admission_route`]) for every
//! flow on every topology — the decomposition buckets flows onto the
//! links the *exact* engine would cross, or its per-link replays model
//! the wrong contention. The two functions are independent derivations
//! (data direction + flow-id salt), so this suite is a real equivalence
//! check, not a tautology.

use edm_approx::resolve_route;
use edm_core::sim::{Flow, FlowKind};
use edm_sim::Time;
use edm_topo::{admission_route, LeafSpine, Topology};
use proptest::prelude::*;

/// Every (src, dst, id, kind) combination routes identically through
/// both derivations — including the unroutable (`None`) cases.
fn assert_paths_pinned(t: &Topology, salt0: u64) {
    let nodes = t.nodes();
    for src in 0..nodes {
        for dst in 0..nodes {
            if src == dst {
                continue;
            }
            for (k, kind) in [FlowKind::Write, FlowKind::Read].into_iter().enumerate() {
                let flow = Flow {
                    id: (salt0 as usize)
                        .wrapping_mul(31)
                        .wrapping_add(src * nodes + dst + k),
                    src,
                    dst,
                    size: 256,
                    arrival: Time::ZERO,
                    kind,
                };
                assert_eq!(
                    resolve_route(t, &flow),
                    admission_route(t, &flow),
                    "path divergence for {flow:?}"
                );
            }
        }
    }
}

proptest! {
    /// Random leaf–spine shapes, healthy and with one element downed:
    /// both derivations pick the same path (or agree it does not exist).
    #[test]
    fn leaf_spine_path_choice_is_pinned(
        leaves in 2usize..6,
        spines in 1usize..4,
        npl in 2usize..6,
        uplinks in 1usize..3,
        salt in any::<u64>(),
        kill_spine in any::<bool>(),
    ) {
        let mut t = Topology::leaf_spine(LeafSpine::symmetric(leaves, spines, npl, uplinks));
        assert_paths_pinned(&t, salt);

        // Degrade the fabric: drop one trunk (or a whole spine) and
        // re-pin — reroute-time path choice must agree too.
        if kill_spine {
            // With a single spine this partitions all cross-leaf pairs:
            // the pin then covers the None agreement.
            t.set_switch_up(leaves as u32, false);
        } else {
            let trunk = t
                .links()
                .iter()
                .position(|l| l.is_trunk())
                .expect("leaf-spine has trunks") as u32;
            t.set_link_up(trunk, false);
        }
        assert_paths_pinned(&t, salt.wrapping_add(1));
    }

    /// Arbitrary connected adjacency (random spanning tree plus extra
    /// trunks): same pin, same degraded-fabric re-check.
    #[test]
    fn arbitrary_adjacency_path_choice_is_pinned(
        switches in 2usize..7,
        attach_seed in any::<u64>(),
        extra in proptest::collection::vec((0u32..7, 0u32..7), 0..6),
        salt in any::<u64>(),
        kill in any::<u64>(),
    ) {
        let attach: Vec<u32> = (0..switches as u32).collect();
        let mut trunks: Vec<(u32, u32)> = (1..switches as u32).map(|s| {
            let parent = (attach_seed.wrapping_mul(0x9E37_79B9).wrapping_add(s as u64 * 7) % s as u64) as u32;
            (parent, s)
        }).collect();
        for &(a, b) in &extra {
            let (a, b) = (a % switches as u32, b % switches as u32);
            if a != b {
                trunks.push((a.min(b), a.max(b)));
            }
        }
        let mut t = Topology::from_adjacency(
            switches,
            &attach,
            &trunks,
            Default::default(),
            Default::default(),
        );
        assert_paths_pinned(&t, salt);

        // Drop one pseudo-random trunk; possibly partitioning — the pin
        // covers the None agreement as much as the Some agreement.
        let trunk_links: Vec<u32> = t
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_trunk())
            .map(|(i, _)| i as u32)
            .collect();
        if !trunk_links.is_empty() {
            t.set_link_up(trunk_links[(kill % trunk_links.len() as u64) as usize], false);
            assert_paths_pinned(&t, salt.wrapping_add(1));
        }
    }
}
