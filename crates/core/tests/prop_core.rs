//! Property-based tests for the core fabric: message codec round-trips,
//! end-to-end data integrity over the testbed, and simulator invariants.

use edm_core::message::MemOp;
use edm_core::sim::{ClusterConfig, EdmProtocol, FabricProtocol, Flow, FlowKind};
use edm_core::testbed::{Fabric, TestbedConfig};
use edm_memory::rmw::RmwOp;
use edm_sim::Time;
use proptest::prelude::*;

proptest! {
    /// MemOp serialization round-trips for arbitrary field values.
    #[test]
    fn memop_roundtrip(
        addr in any::<u64>(),
        len in 1u32..1_000_000,
        data in proptest::collection::vec(any::<u8>(), 0..512),
        operand in any::<u64>(),
    ) {
        for op in [
            MemOp::Read { addr, len },
            MemOp::Write { addr, data: data.clone() },
            MemOp::Rmw { addr, op: RmwOp::FetchAdd(operand) },
            MemOp::Rmw {
                addr,
                op: RmwOp::CompareAndSwap { expected: operand, desired: !operand },
            },
            MemOp::ReadResponse { data: data.clone() },
        ] {
            let bytes = op.to_bytes();
            prop_assert_eq!(MemOp::from_bytes(&bytes).expect("roundtrip"), op);
            // Truncation of the serialized form must error, not panic or
            // succeed wrongly.
            if bytes.len() > 1 {
                prop_assert!(MemOp::from_bytes(&bytes[..bytes.len() - 1]).is_err());
            }
        }
    }

    /// Arbitrary remote writes followed by reads over the functional
    /// testbed return exactly the written bytes (data integrity through
    /// chunking, scheduling, and the switch).
    #[test]
    fn testbed_write_read_integrity(
        addr in 0u64..1_000_000,
        data in proptest::collection::vec(any::<u8>(), 1..2048),
    ) {
        let mut f = Fabric::new(TestbedConfig::default());
        let len = data.len() as u32;
        let w = f.write(Time::ZERO, 0, 1, addr, data.clone());
        let r = f.read(Time::from_us(50), 0, 1, addr, len);
        f.run();
        prop_assert!(f.completion(w).is_some());
        prop_assert_eq!(&f.completion(r).expect("read done").data, &data);
    }

    /// Every flow offered to the EDM cluster simulator completes, after
    /// its arrival, with byte-conservation implied by completion.
    #[test]
    fn edm_sim_all_flows_complete(
        specs in proptest::collection::vec((0usize..8, 8usize..16, 1u32..4096, 0u64..10_000, any::<bool>()), 1..40)
    ) {
        let cluster = ClusterConfig { nodes: 16, ..ClusterConfig::default() };
        let flows: Vec<Flow> = specs
            .iter()
            .enumerate()
            .map(|(id, &(src, dst, size, at, is_write))| Flow {
                id,
                src,
                dst,
                size,
                arrival: Time::from_ns(at),
                kind: if is_write { FlowKind::Write } else { FlowKind::Read },
            })
            .collect();
        let result = EdmProtocol::default().simulate(&cluster, &flows);
        prop_assert_eq!(result.outcomes.len(), flows.len());
        for o in &result.outcomes {
            prop_assert!(o.completed > o.flow.arrival, "completion before arrival");
            // Nothing can beat pure serialization of its own bytes.
            let floor = cluster.link.tx_time_bytes(o.flow.size as u64);
            prop_assert!(o.mct() >= floor, "MCT below serialization floor");
        }
    }

    /// The testbed's unloaded latency is insensitive to payload content
    /// and deterministic across runs (bit-for-bit reproducibility).
    #[test]
    fn testbed_deterministic(fill in any::<u8>()) {
        let run = |fill: u8| {
            let mut f = Fabric::new(TestbedConfig::default());
            f.seed_memory(1, 0x100, &[fill; 64]);
            let id = f.read(Time::ZERO, 0, 1, 0x100, 64);
            f.run();
            f.completion(id).expect("done").latency()
        };
        let a = run(fill);
        let b = run(fill);
        let c = run(fill.wrapping_add(1));
        prop_assert_eq!(a, b, "same input must reproduce exactly");
        prop_assert_eq!(a, c, "latency must not depend on payload bits");
    }
}
