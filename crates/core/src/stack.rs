//! Cycle-level timing of EDM's host and switch network stacks
//! (§3.2.1, §3.2.2, Figure 5).
//!
//! Every EDM pipeline stage has a fixed cost in PHY block-clock cycles
//! (2.56 ns at 25 GbE). The constants here are the paper's, and the
//! composition functions below *derive* the EDM column of Table 1 and the
//! Figure 5 breakdown from them — nothing in the experiment harness is a
//! hard-coded end-to-end number.

use edm_phy::BLOCK_CLOCK;
use edm_sim::Duration;

/// One PHY block-clock cycle (2.56 ns at 25 GbE).
pub const CYCLE: Duration = BLOCK_CLOCK;

/// Host stack per-operation cycle costs (§3.2.1, "Latency of EDM host
/// processing").
pub mod host {
    /// Generate an `/N/` or RREQ `/M*/` block: read message queue (1) +
    /// create block while writing state table (1).
    pub const GEN_NOTIFY_OR_RREQ: u64 = 2;
    /// Read a grant from the grant queue (crosses RX→TX clock domains).
    pub const READ_GRANT_QUEUE: u64 = 4;
    /// Generate an `/M*/` data block for an RRES/WREQ: state table (1) +
    /// data buffer (1) + block creation (1).
    pub const GEN_DATA_BLOCK: u64 = 3;
    /// Process a received `/G/` block: parse (1) + enqueue grant (1).
    pub const RX_GRANT: u64 = 2;
    /// Process a received RREQ `/M*/` block: parse (1) + enqueue grant (1)
    /// + forward to the memory controller (1).
    pub const RX_RREQ: u64 = 3;
    /// Process a received RRES/WREQ `/M*/` block: parse (1) + extract
    /// address (1) + deliver (1).
    pub const RX_DATA: u64 = 3;
}

/// Switch stack per-operation cycle costs (§3.2.2).
pub mod switch {
    /// Generate a `/G/` block from a scheduler grant.
    pub const GEN_GRANT: u64 = 1;
    /// Identify a received `/N/`, `/G/` or `/M*/` block by its type field.
    pub const IDENTIFY: u64 = 1;
    /// Buffer an `/N/` or RREQ into the notification queue (ordered-list
    /// insert).
    pub const ENQUEUE_NOTIFICATION: u64 = 2;
    /// Forward `/M*/` blocks RX→TX through the virtual circuit (clock
    /// domain crossing).
    pub const FORWARD: u64 = 4;
}

/// Base PCS datapath cost for one pass through encoder+scrambler (TX) or
/// descrambler+decoder (RX): 2 cycles = 5.12 ns (Table 1's per-pass
/// "Ethernet PHY (PCS)" entry for EDM).
pub const PCS_PASS: u64 = 2;

/// Converts cycles to a [`Duration`].
pub fn cycles(n: u64) -> Duration {
    n * CYCLE
}

/// The EDM-logic cycles spent at the compute node for a **read**:
/// TX RREQ generation + RX RRES processing (5 cycles = 12.8 ns in Table 1).
pub fn compute_node_read_cycles() -> u64 {
    host::GEN_NOTIFY_OR_RREQ + host::RX_DATA
}

/// The EDM-logic cycles at the compute node for a **write**:
/// TX `/N/` + RX `/G/` + grant-queue read + WREQ data-block generation
/// (11 cycles = 28.16 ns in Table 1).
pub fn compute_node_write_cycles() -> u64 {
    host::GEN_NOTIFY_OR_RREQ + host::RX_GRANT + host::READ_GRANT_QUEUE + host::GEN_DATA_BLOCK
}

/// The EDM-logic cycles at the switch for a **read**: the RREQ pass
/// (identify + notification enqueue + grant generation on the implicit
/// grant path = 7 cycles, Figure 5) plus the RRES forwarding pass
/// (4 cycles). Total 11 cycles = 28.16 ns in Table 1.
pub fn switch_read_cycles() -> u64 {
    // RREQ pass: identify, enqueue into notification queue, then the
    // buffered RREQ is re-emitted toward the memory node as the implicit
    // grant (ordered-list delete 2 + /G/-path emission 1 ≈ forward step).
    let rreq_pass = switch::IDENTIFY + switch::ENQUEUE_NOTIFICATION + switch::FORWARD;
    let rres_pass = switch::FORWARD;
    rreq_pass + rres_pass
}

/// The EDM-logic cycles at the switch for a **write**: `/N/` pass
/// (identify + enqueue), `/G/` generation + emission, and the WREQ
/// forwarding pass. Total 11 cycles = 28.16 ns in Table 1.
pub fn switch_write_cycles() -> u64 {
    let notify_pass = switch::IDENTIFY + switch::ENQUEUE_NOTIFICATION;
    let grant_pass = switch::GEN_GRANT + 2 + switch::IDENTIFY; // schedule pop + emit
    let wreq_pass = switch::FORWARD;
    notify_pass + grant_pass + wreq_pass
}

/// The EDM-logic cycles at the memory node for a **read**: RX RREQ
/// processing + grant-queue read + RRES data-block generation
/// (10 cycles = 25.6 ns in Table 1).
pub fn memory_node_read_cycles() -> u64 {
    host::RX_RREQ + host::READ_GRANT_QUEUE + host::GEN_DATA_BLOCK
}

/// The EDM-logic cycles at the memory node for a **write**: RX WREQ data
/// processing (3 cycles = 7.68 ns in Table 1).
pub fn memory_node_write_cycles() -> u64 {
    host::RX_DATA
}

/// Number of base PCS passes per node for reads/writes (the `k` in
/// Table 1's `k × 5.12 ns` entries).
pub mod pcs_passes {
    /// Compute node, read: TX RREQ + RX RRES.
    pub const COMPUTE_READ: u64 = 2;
    /// Compute node, write: TX `/N/` + RX `/G/` + TX WREQ.
    pub const COMPUTE_WRITE: u64 = 3;
    /// Switch, read: RREQ in/out + RRES in/out.
    pub const SWITCH_READ: u64 = 4;
    /// Switch, write: `/N/` in, `/G/` out, WREQ in/out.
    pub const SWITCH_WRITE: u64 = 4;
    /// Memory node, read: RX RREQ + TX RRES.
    pub const MEMORY_READ: u64 = 2;
    /// Memory node, write: RX WREQ.
    pub const MEMORY_WRITE: u64 = 1;
}

/// EDM network-stack latency (the "Network Stack Latency" row of Table 1)
/// for a read: all PCS passes plus all EDM logic cycles.
pub fn network_stack_read_latency() -> Duration {
    cycles(
        (pcs_passes::COMPUTE_READ + pcs_passes::SWITCH_READ + pcs_passes::MEMORY_READ) * PCS_PASS
            + compute_node_read_cycles()
            + switch_read_cycles()
            + memory_node_read_cycles(),
    )
}

/// EDM network-stack latency for a write.
pub fn network_stack_write_latency() -> Duration {
    cycles(
        (pcs_passes::COMPUTE_WRITE + pcs_passes::SWITCH_WRITE + pcs_passes::MEMORY_WRITE)
            * PCS_PASS
            + compute_node_write_cycles()
            + switch_write_cycles()
            + memory_node_write_cycles(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_stage_cycles_match_figure5() {
        assert_eq!(compute_node_read_cycles(), 5); // 12.8 ns
        assert_eq!(compute_node_write_cycles(), 11); // 28.16 ns
        assert_eq!(switch_read_cycles(), 11); // 28.16 ns
        assert_eq!(switch_write_cycles(), 11); // 28.16 ns
        assert_eq!(memory_node_read_cycles(), 10); // 25.6 ns
        assert_eq!(memory_node_write_cycles(), 3); // 7.68 ns
    }

    #[test]
    fn stage_durations_match_table1_blue_entries() {
        assert_eq!(cycles(compute_node_read_cycles()).as_ps(), 12_800);
        assert_eq!(cycles(compute_node_write_cycles()).as_ps(), 28_160);
        assert_eq!(cycles(switch_read_cycles()).as_ps(), 28_160);
        assert_eq!(cycles(memory_node_read_cycles()).as_ps(), 25_600);
        assert_eq!(cycles(memory_node_write_cycles()).as_ps(), 7_680);
        assert_eq!(cycles(PCS_PASS).as_ps(), 5_120);
    }

    #[test]
    fn network_stack_totals_match_table1() {
        // Table 1: EDM network stack latency 107.52 ns (read),
        // 104.96 ns (write).
        assert_eq!(network_stack_read_latency().as_ps(), 107_520);
        assert_eq!(network_stack_write_latency().as_ps(), 104_960);
    }

    #[test]
    fn read_has_more_stack_latency_than_write() {
        // Reads traverse RREQ + RRES; writes only WREQ (after /N/ + /G/,
        // which are shorter single-block passes).
        assert!(network_stack_read_latency() > network_stack_write_latency());
    }
}
