//! EDM's remote-memory message types (§2.3) and their wire serialization.
//!
//! | Message  | Origin        | Contents |
//! |----------|---------------|----------|
//! | `RREQ`   | compute node  | remote address + byte count |
//! | `WREQ`   | compute node  | remote address + byte count + data |
//! | `RMWREQ` | compute node  | remote address + opcode + operands |
//! | `RRES`   | memory node   | read data / RMW result |
//!
//! The defining property of this traffic is how *small* it is: an RREQ is
//! 8 B of control information, far below Ethernet's 64 B minimum frame.

use core::fmt;
use edm_memory::rmw::RmwOp;

/// Opcode tags in the serialized form.
const TAG_RREQ: u8 = 1;
const TAG_WREQ: u8 = 2;
const TAG_RMWREQ: u8 = 3;
const TAG_RRES: u8 = 4;

const RMW_CAS: u8 = 0;
const RMW_FAA: u8 = 1;
const RMW_SWAP: u8 = 2;
const RMW_AND: u8 = 3;
const RMW_OR: u8 = 4;
const RMW_XOR: u8 = 5;
const RMW_MIN: u8 = 6;
const RMW_MAX: u8 = 7;

/// A remote-memory request or response message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemOp {
    /// Read request: read `len` bytes at `addr`.
    Read {
        /// Remote memory address.
        addr: u64,
        /// Bytes to read.
        len: u32,
    },
    /// Write request: write `data` at `addr`.
    Write {
        /// Remote memory address.
        addr: u64,
        /// Data to write.
        data: Vec<u8>,
    },
    /// Atomic read-modify-write request.
    Rmw {
        /// Remote memory address.
        addr: u64,
        /// The modify operation.
        op: RmwOp,
    },
    /// Read response carrying the data (or the RMW original value).
    ReadResponse {
        /// The returned bytes.
        data: Vec<u8>,
    },
}

impl MemOp {
    /// The *nominal* message size used throughout the paper's accounting:
    /// RREQ counts as its 8 B of control information; WREQ and RRES count
    /// as their data payload; RMWREQ counts address+opcode+operands.
    pub fn nominal_bytes(&self) -> u32 {
        match self {
            MemOp::Read { .. } => 8,
            MemOp::Write { data, .. } => data.len() as u32,
            MemOp::Rmw { op, .. } => op.request_bytes(),
            MemOp::ReadResponse { data } => data.len() as u32,
        }
    }

    /// Size of the response this request elicits (`None` for one-sided
    /// writes). Known *a priori* from the request itself — the property the
    /// scheduler exploits for implicit read-demand notification (§3.1.1).
    pub fn response_bytes(&self) -> Option<u32> {
        match self {
            MemOp::Read { len, .. } => Some(*len),
            MemOp::Rmw { op, .. } => Some(op.response_bytes()),
            MemOp::Write { .. } | MemOp::ReadResponse { .. } => None,
        }
    }

    /// Whether this is a request generated at a compute node.
    pub fn is_request(&self) -> bool {
        !matches!(self, MemOp::ReadResponse { .. })
    }

    /// Serializes to the byte payload carried in `/M*/` blocks.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            MemOp::Read { addr, len } => {
                out.push(TAG_RREQ);
                out.extend_from_slice(&addr.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
            MemOp::Write { addr, data } => {
                out.push(TAG_WREQ);
                out.extend_from_slice(&addr.to_le_bytes());
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                out.extend_from_slice(data);
            }
            MemOp::Rmw { addr, op } => {
                out.push(TAG_RMWREQ);
                out.extend_from_slice(&addr.to_le_bytes());
                let (code, a, b) = match *op {
                    RmwOp::CompareAndSwap { expected, desired } => (RMW_CAS, expected, desired),
                    RmwOp::FetchAdd(x) => (RMW_FAA, x, 0),
                    RmwOp::Swap(x) => (RMW_SWAP, x, 0),
                    RmwOp::And(x) => (RMW_AND, x, 0),
                    RmwOp::Or(x) => (RMW_OR, x, 0),
                    RmwOp::Xor(x) => (RMW_XOR, x, 0),
                    RmwOp::Min(x) => (RMW_MIN, x, 0),
                    RmwOp::Max(x) => (RMW_MAX, x, 0),
                };
                out.push(code);
                out.extend_from_slice(&a.to_le_bytes());
                out.extend_from_slice(&b.to_le_bytes());
            }
            MemOp::ReadResponse { data } => {
                out.push(TAG_RRES);
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                out.extend_from_slice(data);
            }
        }
        out
    }

    /// Deserializes a payload produced by [`MemOp::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] describing what was malformed.
    pub fn from_bytes(bytes: &[u8]) -> Result<MemOp, CodecError> {
        fn take<const N: usize>(b: &[u8], at: usize) -> Result<[u8; N], CodecError> {
            b.get(at..at + N)
                .and_then(|s| s.try_into().ok())
                .ok_or(CodecError::Truncated)
        }
        let tag = *bytes.first().ok_or(CodecError::Truncated)?;
        match tag {
            TAG_RREQ => Ok(MemOp::Read {
                addr: u64::from_le_bytes(take(bytes, 1)?),
                len: u32::from_le_bytes(take(bytes, 9)?),
            }),
            TAG_WREQ => {
                let addr = u64::from_le_bytes(take(bytes, 1)?);
                let len = u32::from_le_bytes(take(bytes, 9)?) as usize;
                let data = bytes.get(13..13 + len).ok_or(CodecError::Truncated)?;
                Ok(MemOp::Write {
                    addr,
                    data: data.to_vec(),
                })
            }
            TAG_RMWREQ => {
                let addr = u64::from_le_bytes(take(bytes, 1)?);
                let code = *bytes.get(9).ok_or(CodecError::Truncated)?;
                let a = u64::from_le_bytes(take(bytes, 10)?);
                let b = u64::from_le_bytes(take(bytes, 18)?);
                let op = match code {
                    RMW_CAS => RmwOp::CompareAndSwap {
                        expected: a,
                        desired: b,
                    },
                    RMW_FAA => RmwOp::FetchAdd(a),
                    RMW_SWAP => RmwOp::Swap(a),
                    RMW_AND => RmwOp::And(a),
                    RMW_OR => RmwOp::Or(a),
                    RMW_XOR => RmwOp::Xor(a),
                    RMW_MIN => RmwOp::Min(a),
                    RMW_MAX => RmwOp::Max(a),
                    other => return Err(CodecError::BadRmwOpcode(other)),
                };
                Ok(MemOp::Rmw { addr, op })
            }
            TAG_RRES => {
                let len = u32::from_le_bytes(take(bytes, 1)?) as usize;
                let data = bytes.get(5..5 + len).ok_or(CodecError::Truncated)?;
                Ok(MemOp::ReadResponse {
                    data: data.to_vec(),
                })
            }
            other => Err(CodecError::BadTag(other)),
        }
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemOp::Read { addr, len } => write!(f, "RREQ[{addr:#x}, {len} B]"),
            MemOp::Write { addr, data } => write!(f, "WREQ[{addr:#x}, {} B]", data.len()),
            MemOp::Rmw { addr, op } => write!(f, "RMWREQ[{addr:#x}, {op}]"),
            MemOp::ReadResponse { data } => write!(f, "RRES[{} B]", data.len()),
        }
    }
}

/// Errors deserializing a [`MemOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Payload ended before the message was complete.
    Truncated,
    /// Unknown message tag.
    BadTag(u8),
    /// Unknown RMW opcode.
    BadRmwOpcode(u8),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "message payload truncated"),
            CodecError::BadTag(t) => write!(f, "unknown message tag {t}"),
            CodecError::BadRmwOpcode(o) => write!(f, "unknown RMW opcode {o}"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(op: MemOp) {
        let bytes = op.to_bytes();
        assert_eq!(MemOp::from_bytes(&bytes).unwrap(), op);
    }

    #[test]
    fn roundtrip_all_variants() {
        roundtrip(MemOp::Read {
            addr: 0xDEAD_BEEF,
            len: 64,
        });
        roundtrip(MemOp::Write {
            addr: 0x1000,
            data: vec![1, 2, 3],
        });
        roundtrip(MemOp::Rmw {
            addr: 8,
            op: RmwOp::CompareAndSwap {
                expected: 1,
                desired: 2,
            },
        });
        for op in [
            RmwOp::FetchAdd(9),
            RmwOp::Swap(9),
            RmwOp::And(9),
            RmwOp::Or(9),
            RmwOp::Xor(9),
            RmwOp::Min(9),
            RmwOp::Max(9),
        ] {
            roundtrip(MemOp::Rmw { addr: 16, op });
        }
        roundtrip(MemOp::ReadResponse {
            data: vec![7; 1024],
        });
    }

    #[test]
    fn nominal_sizes_match_paper() {
        // §2.3 / §4.2: RREQ is 8 B; CAS RMWREQ is 24 B.
        assert_eq!(MemOp::Read { addr: 0, len: 64 }.nominal_bytes(), 8);
        assert_eq!(
            MemOp::Rmw {
                addr: 0,
                op: RmwOp::CompareAndSwap {
                    expected: 0,
                    desired: 0
                }
            }
            .nominal_bytes(),
            24
        );
        assert_eq!(
            MemOp::Write {
                addr: 0,
                data: vec![0; 64]
            }
            .nominal_bytes(),
            64
        );
    }

    #[test]
    fn implicit_demand_from_request() {
        // §3.1.1: the RREQ itself announces the RRES demand.
        let rreq = MemOp::Read { addr: 0, len: 4096 };
        assert_eq!(rreq.response_bytes(), Some(4096));
        let wreq = MemOp::Write {
            addr: 0,
            data: vec![0; 10],
        };
        assert_eq!(wreq.response_bytes(), None, "writes are one-sided");
    }

    #[test]
    fn truncation_detected() {
        let bytes = MemOp::ReadResponse { data: vec![1; 50] }.to_bytes();
        assert_eq!(
            MemOp::from_bytes(&bytes[..20]).unwrap_err(),
            CodecError::Truncated
        );
        assert_eq!(MemOp::from_bytes(&[]).unwrap_err(), CodecError::Truncated);
    }

    #[test]
    fn bad_tags_detected() {
        assert_eq!(
            MemOp::from_bytes(&[99, 0, 0]).unwrap_err(),
            CodecError::BadTag(99)
        );
        let mut cas = MemOp::Rmw {
            addr: 0,
            op: RmwOp::FetchAdd(0),
        }
        .to_bytes();
        cas[9] = 200;
        assert_eq!(
            MemOp::from_bytes(&cas).unwrap_err(),
            CodecError::BadRmwOpcode(200)
        );
    }

    #[test]
    fn display_is_informative() {
        let s = format!(
            "{}",
            MemOp::Read {
                addr: 0x10,
                len: 64
            }
        );
        assert!(s.contains("RREQ"));
    }
}
