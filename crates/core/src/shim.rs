//! Application integration: the load/store shim layer (§3.3).
//!
//! The paper: applications "use the traditional load/store API and rely on
//! a shim layer to convert the load/store instructions into the
//! corresponding EDM messages … the application will use virtual memory
//! addresses, and a shim layer will intercept all memory requests and
//! perform the virtual to physical memory address translation before
//! directing a request to either the local memory controller or to EDM's
//! stack", citing Infiniswap \[27\] and AIFM \[53\] as adaptable designs.
//!
//! [`AddressSpace`] is that shim: a page-granular translation table maps
//! virtual pages to *local* frames or *remote* `(node, physical address)`
//! frames. [`AddressSpace::load`]/[`AddressSpace::store`] split accesses
//! at page boundaries and dispatch each piece to the local controller or
//! to the EDM fabric.

use crate::testbed::{Fabric, NodeId};
use edm_memory::MemoryController;
use edm_sim::Time;
use std::collections::HashMap;

/// Shim page size: 4 KiB, the x86 base page.
pub const PAGE_BYTES: u64 = 4096;

/// Where a virtual page's backing frame lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Local DRAM at the given physical address.
    Local {
        /// Physical frame address in local memory.
        phys: u64,
    },
    /// Remote memory on `node` at the given physical address.
    Remote {
        /// The memory node holding the frame.
        node: NodeId,
        /// Physical frame address at that node.
        phys: u64,
    },
}

/// Errors from shim accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShimError {
    /// No mapping for a virtual page.
    PageFault {
        /// The faulting virtual page number.
        vpn: u64,
    },
}

impl std::fmt::Display for ShimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShimError::PageFault { vpn } => write!(f, "page fault on virtual page {vpn:#x}"),
        }
    }
}

impl std::error::Error for ShimError {}

/// The result of a shim access: the data (for loads) and how many remote
/// operations it generated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShimAccess {
    /// Loaded bytes (empty for stores).
    pub data: Vec<u8>,
    /// Remote fabric operation ids issued on behalf of this access.
    pub remote_ops: Vec<u64>,
    /// Number of page-pieces served from local DRAM.
    pub local_pieces: usize,
}

/// A virtual address space whose pages may live locally or on remote
/// memory nodes, accessed through plain loads and stores.
#[derive(Debug)]
pub struct AddressSpace {
    /// This compute node's id on the fabric.
    node: NodeId,
    table: HashMap<u64, Placement>,
}

impl AddressSpace {
    /// Creates an empty address space for the compute node `node`.
    pub fn new(node: NodeId) -> Self {
        AddressSpace {
            node,
            table: HashMap::new(),
        }
    }

    /// Maps the virtual page containing `vaddr` to `placement`.
    pub fn map(&mut self, vaddr: u64, placement: Placement) {
        self.table.insert(vaddr / PAGE_BYTES, placement);
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.table.len()
    }

    /// Fraction of mapped pages that are remote.
    pub fn remote_fraction(&self) -> f64 {
        if self.table.is_empty() {
            return 0.0;
        }
        let remote = self
            .table
            .values()
            .filter(|p| matches!(p, Placement::Remote { .. }))
            .count();
        remote as f64 / self.table.len() as f64
    }

    /// Translates one virtual address to its placement and in-page offset.
    ///
    /// # Errors
    ///
    /// Returns [`ShimError::PageFault`] for unmapped pages.
    pub fn translate(&self, vaddr: u64) -> Result<(Placement, u64), ShimError> {
        let vpn = vaddr / PAGE_BYTES;
        let offset = vaddr % PAGE_BYTES;
        self.table
            .get(&vpn)
            .map(|&p| (p, offset))
            .ok_or(ShimError::PageFault { vpn })
    }

    /// Splits `[vaddr, vaddr+len)` at page boundaries into
    /// `(placement, physical address, piece length)` runs.
    fn pieces(&self, vaddr: u64, len: usize) -> Result<Vec<(Placement, u64, usize)>, ShimError> {
        let mut out = Vec::new();
        let mut at = vaddr;
        let end = vaddr + len as u64;
        while at < end {
            let (placement, offset) = self.translate(at)?;
            let in_page = (PAGE_BYTES - offset).min(end - at) as usize;
            let phys = match placement {
                Placement::Local { phys } | Placement::Remote { phys, .. } => phys + offset,
            };
            out.push((placement, phys, in_page));
            at += in_page as u64;
        }
        Ok(out)
    }

    /// Performs a load: local pieces read synchronously from `local`,
    /// remote pieces become EDM reads on `fabric` (asynchronous; the
    /// caller collects the data from the fabric's completions).
    ///
    /// # Errors
    ///
    /// Returns [`ShimError::PageFault`] if any touched page is unmapped
    /// (no partial remote operations are issued in that case).
    pub fn load(
        &self,
        now: Time,
        vaddr: u64,
        len: usize,
        local: &mut MemoryController,
        fabric: &mut Fabric,
    ) -> Result<ShimAccess, ShimError> {
        let pieces = self.pieces(vaddr, len)?;
        let mut access = ShimAccess {
            data: Vec::with_capacity(len),
            remote_ops: Vec::new(),
            local_pieces: 0,
        };
        for (placement, phys, n) in pieces {
            match placement {
                Placement::Local { .. } => {
                    let (bytes, _) = local.read(now, phys, n);
                    access.data.extend_from_slice(&bytes);
                    access.local_pieces += 1;
                }
                Placement::Remote { node, .. } => {
                    let op = fabric.read(now, self.node, node, phys, n as u32);
                    access.remote_ops.push(op);
                }
            }
        }
        Ok(access)
    }

    /// Performs a store, mirroring [`AddressSpace::load`].
    ///
    /// # Errors
    ///
    /// Returns [`ShimError::PageFault`] if any touched page is unmapped.
    pub fn store(
        &self,
        now: Time,
        vaddr: u64,
        data: &[u8],
        local: &mut MemoryController,
        fabric: &mut Fabric,
    ) -> Result<ShimAccess, ShimError> {
        let pieces = self.pieces(vaddr, data.len())?;
        let mut access = ShimAccess {
            data: Vec::new(),
            remote_ops: Vec::new(),
            local_pieces: 0,
        };
        let mut off = 0usize;
        for (placement, phys, n) in pieces {
            let slice = &data[off..off + n];
            off += n;
            match placement {
                Placement::Local { .. } => {
                    local.write(now, phys, slice);
                    access.local_pieces += 1;
                }
                Placement::Remote { node, .. } => {
                    let op = fabric.write(now, self.node, node, phys, slice.to_vec());
                    access.remote_ops.push(op);
                }
            }
        }
        Ok(access)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::TestbedConfig;

    fn setup() -> (AddressSpace, MemoryController, Fabric) {
        let mut space = AddressSpace::new(0);
        // Page 0 local at phys 0x10000; page 1 remote on node 1.
        space.map(0, Placement::Local { phys: 0x10000 });
        space.map(
            PAGE_BYTES,
            Placement::Remote {
                node: 1,
                phys: 0x20000,
            },
        );
        (
            space,
            MemoryController::ddr4(),
            Fabric::new(TestbedConfig::default()),
        )
    }

    #[test]
    fn local_load_store_roundtrip() {
        let (space, mut local, mut fabric) = setup();
        space
            .store(Time::ZERO, 100, b"hello", &mut local, &mut fabric)
            .unwrap();
        let got = space
            .load(Time::ZERO, 100, 5, &mut local, &mut fabric)
            .unwrap();
        assert_eq!(got.data, b"hello");
        assert_eq!(got.remote_ops.len(), 0);
        assert_eq!(got.local_pieces, 1);
    }

    #[test]
    fn remote_store_then_load_through_fabric() {
        let (space, mut local, mut fabric) = setup();
        let vaddr = PAGE_BYTES + 64; // remote page
        let w = space
            .store(Time::ZERO, vaddr, &[7u8; 32], &mut local, &mut fabric)
            .unwrap();
        assert_eq!(w.remote_ops.len(), 1);
        fabric.run();
        let r = space
            .load(Time::from_us(10), vaddr, 32, &mut local, &mut fabric)
            .unwrap();
        fabric.run();
        let op = r.remote_ops[0];
        assert_eq!(fabric.completion(op).unwrap().data, vec![7u8; 32]);
    }

    #[test]
    fn access_straddling_local_and_remote_pages() {
        let (space, mut local, mut fabric) = setup();
        let vaddr = PAGE_BYTES - 8; // last 8 B of local page + first 8 B remote
        let w = space
            .store(Time::ZERO, vaddr, &[9u8; 16], &mut local, &mut fabric)
            .unwrap();
        assert_eq!(w.local_pieces, 1);
        assert_eq!(w.remote_ops.len(), 1);
        fabric.run();
        // The local half is visible immediately.
        let got = local.store().read(0x10000 + PAGE_BYTES - 8, 8);
        assert_eq!(got, vec![9u8; 8]);
    }

    #[test]
    fn page_fault_on_unmapped() {
        let (space, mut local, mut fabric) = setup();
        let err = space
            .load(Time::ZERO, 10 * PAGE_BYTES, 4, &mut local, &mut fabric)
            .unwrap_err();
        assert_eq!(err, ShimError::PageFault { vpn: 10 });
    }

    #[test]
    fn translation_and_stats() {
        let (space, ..) = setup();
        assert_eq!(space.mapped_pages(), 2);
        assert!((space.remote_fraction() - 0.5).abs() < 1e-9);
        let (p, off) = space.translate(PAGE_BYTES + 123).unwrap();
        assert_eq!(off, 123);
        assert!(matches!(p, Placement::Remote { node: 1, .. }));
    }
}
