//! Link-level throughput model for request workloads (Figure 6).
//!
//! For a steady-state request mix on a full-duplex link, the sustainable
//! request rate is bounded by three resources:
//!
//! * uplink wire time per request (requests + write data + notifications),
//! * downlink wire time per request (responses + grants + ACKs),
//! * the per-message initiation interval of the host protocol engine
//!   (an FPGA RoCEv2/TCP stack admits a new message only every so many
//!   cycles; EDM's PHY pipeline admits one per few block cycles).
//!
//! `rps = 1 / max(uplink, downlink, initiation)` per direction-shared
//! request. EDM wins on both axes for memory traffic: 66-bit granularity +
//! repurposed IFG cut wire cost, and the in-PHY pipeline has no transport
//! engine to serialize behind (§4.2.2).

use edm_phy::overhead::{self, Encapsulation};
use edm_sim::{Bandwidth, Duration};

/// A two-class request mix: reads of `read_bytes` responses and writes of
/// `write_bytes` payloads, with `read_fraction` of requests being reads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestMix {
    /// Fraction of requests that are reads, in `[0, 1]`.
    pub read_fraction: f64,
    /// RRES payload bytes per read (YCSB: 1 KB objects).
    pub read_bytes: u64,
    /// WREQ payload bytes per write (YCSB: 100 B).
    pub write_bytes: u64,
}

impl RequestMix {
    /// YCSB workload A: 50% reads / 50% writes (updates).
    pub fn ycsb_a() -> Self {
        RequestMix {
            read_fraction: 0.5,
            read_bytes: 1024,
            write_bytes: 100,
        }
    }

    /// YCSB workload B: 95% reads / 5% writes.
    pub fn ycsb_b() -> Self {
        RequestMix {
            read_fraction: 0.95,
            read_bytes: 1024,
            write_bytes: 100,
        }
    }

    /// YCSB workload F: ~67% reads / 33% writes (read-modify-write).
    pub fn ycsb_f() -> Self {
        RequestMix {
            read_fraction: 0.67,
            read_bytes: 1024,
            write_bytes: 100,
        }
    }
}

/// A throughput estimate with its per-resource breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputEstimate {
    /// Sustainable requests per second.
    pub requests_per_sec: f64,
    /// Mean uplink wire time per request.
    pub uplink: Duration,
    /// Mean downlink wire time per request.
    pub downlink: Duration,
    /// Mean protocol-engine occupancy per request.
    pub initiation: Duration,
}

impl ThroughputEstimate {
    fn from_bounds(uplink: Duration, downlink: Duration, initiation: Duration) -> Self {
        let bottleneck = uplink.max(downlink).max(initiation);
        ThroughputEstimate {
            requests_per_sec: 1e12 / bottleneck.as_ps() as f64,
            uplink,
            downlink,
            initiation,
        }
    }
}

fn mix_time(mix: &RequestMix, read: Duration, write: Duration) -> Duration {
    let ps =
        mix.read_fraction * read.as_ps() as f64 + (1.0 - mix.read_fraction) * write.as_ps() as f64;
    Duration::from_ps(ps.round() as u64)
}

/// EDM throughput for a request mix on `link`.
///
/// Per read: 8 B RREQ (3 blocks) up, RRES down. Per write: `/N/` up,
/// `/G/` down, WREQ data up — control blocks ride repurposed IFG slots but
/// still occupy wire slots, so they are charged. The EDM host pipeline
/// admits a new message every [`crate::stack::host::GEN_NOTIFY_OR_RREQ`]
/// cycles.
pub fn edm_throughput(link: Bandwidth, mix: &RequestMix) -> ThroughputEstimate {
    let bits = |payload: u64| overhead::edm_wire_bits(payload);
    let block = 66u64;
    let up_read = link.tx_time_bits(bits(8));
    let down_read = link.tx_time_bits(bits(mix.read_bytes));
    let up_write = link.tx_time_bits(block + bits(mix.write_bytes)); // /N/ + data
    let down_write = link.tx_time_bits(block); // /G/
    let uplink = mix_time(mix, up_read, up_write);
    let downlink = mix_time(mix, down_read, down_write);
    // Host pipeline: one new message per 2 block cycles.
    let initiation = crate::stack::cycles(crate::stack::host::GEN_NOTIFY_OR_RREQ);
    ThroughputEstimate::from_bounds(uplink, downlink, initiation)
}

/// RoCEv2 (RDMA over Ethernet) throughput for the same mix.
///
/// Per read: a READ REQUEST frame up, a READ RESPONSE frame down.
/// Per write: a WRITE frame up, an ACK frame down. Every frame pays MAC
/// header + minimum frame + preamble + IFG (§2.4 limitations 1–2). The
/// transport engine's per-message datapath occupancy is taken from
/// Table 1's protocol-stack latency (230.2 ns per message direction for
/// the open-source FPGA RoCEv2 engine, which is not message-pipelined).
pub fn rdma_throughput(link: Bandwidth, mix: &RequestMix) -> ThroughputEstimate {
    let e = Encapsulation::RoCEv2;
    let up_read = link.tx_time_bits(overhead::mac_wire_bits(8, e));
    let down_read = link.tx_time_bits(overhead::mac_wire_bits(mix.read_bytes, e));
    let up_write = link.tx_time_bits(overhead::mac_wire_bits(mix.write_bytes, e));
    let down_write = link.tx_time_bits(overhead::mac_wire_bits(0, e)); // ACK
    let uplink = mix_time(mix, up_read, up_write);
    let downlink = mix_time(mix, down_read, down_write);
    // Table 1: RoCEv2 protocol stack datapath = 230.2 ns per message pass.
    // Every operation occupies the engine for two passes — request TX +
    // response/ACK RX — and the open-source FPGA engine is not
    // message-pipelined (§4.2 baselines).
    let per_pass = Duration::from_ps(230_200);
    let initiation = 2 * per_pass;
    ThroughputEstimate::from_bounds(uplink, downlink, initiation)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINK: Bandwidth = Bandwidth::from_gbps(25);

    #[test]
    fn edm_beats_rdma_on_every_ycsb_mix() {
        for mix in [
            RequestMix::ycsb_a(),
            RequestMix::ycsb_b(),
            RequestMix::ycsb_f(),
        ] {
            let edm = edm_throughput(LINK, &mix);
            let rdma = rdma_throughput(LINK, &mix);
            let ratio = edm.requests_per_sec / rdma.requests_per_sec;
            assert!(
                ratio > 1.3,
                "EDM/RDMA ratio {ratio:.2} too small for mix {mix:?}"
            );
        }
    }

    #[test]
    fn overall_advantage_matches_paper_factor() {
        // §4.2.2: "EDM is able to achieve around 2.7x more throughput than
        // RDMA in terms of requests per second" (averaged over workloads).
        let mixes = [
            RequestMix::ycsb_a(),
            RequestMix::ycsb_b(),
            RequestMix::ycsb_f(),
        ];
        let avg_ratio: f64 = mixes
            .iter()
            .map(|m| {
                edm_throughput(LINK, m).requests_per_sec / rdma_throughput(LINK, m).requests_per_sec
            })
            .sum::<f64>()
            / mixes.len() as f64;
        assert!(
            (1.5..4.5).contains(&avg_ratio),
            "average EDM/RDMA ratio {avg_ratio:.2} outside the paper's ballpark"
        );
    }

    #[test]
    fn rdma_is_initiation_bound_for_read_heavy_mixes() {
        let est = rdma_throughput(LINK, &RequestMix::ycsb_b());
        assert!(
            est.initiation >= est.uplink,
            "RoCEv2 engine should dominate uplink for small requests"
        );
    }

    #[test]
    fn edm_is_wire_bound_not_processing_bound() {
        let est = edm_throughput(LINK, &RequestMix::ycsb_a());
        assert!(
            est.initiation < est.downlink,
            "EDM's PHY pipeline must not be the bottleneck"
        );
    }

    #[test]
    fn write_heavy_mix_is_cheaper_than_read_heavy() {
        // 100 B writes cost less wire than 1 KB read responses.
        let writes = RequestMix {
            read_fraction: 0.0,
            read_bytes: 1024,
            write_bytes: 100,
        };
        let reads = RequestMix {
            read_fraction: 1.0,
            read_bytes: 1024,
            write_bytes: 100,
        };
        assert!(
            edm_throughput(LINK, &writes).requests_per_sec
                > edm_throughput(LINK, &reads).requests_per_sec
        );
    }

    #[test]
    fn faster_link_scales_wire_bound_throughput() {
        let mix = RequestMix::ycsb_a();
        let t25 = edm_throughput(Bandwidth::from_gbps(25), &mix);
        let t100 = edm_throughput(Bandwidth::from_gbps(100), &mix);
        assert!(t100.requests_per_sec > 3.0 * t25.requests_per_sec);
    }
}
