//! Fault tolerance (§3.3): replicated switch scheduling state, link
//! corruption monitoring, and read-timeout deadlock avoidance.
//!
//! * **Switch replication.** EDM's switch holds scheduling state, so a
//!   failover must not lose it. The paper's scheme: senders mirror every
//!   outgoing message on both interfaces, both switches compute on the
//!   same stream ("state machine replication" without consensus — the
//!   single hop guarantees no reordering), receivers accept the first copy.
//!   [`ReplicatedScheduler`] applies every input to primary and backup and
//!   verifies deterministic agreement; [`ReplicatedScheduler::fail_over`]
//!   promotes the backup with its state intact.
//! * **Link corruption.** Errors are persistent physical faults; the
//!   scrambler detects them and EDM disables the link ([`LinkMonitor`]).
//! * **Read-timeout.** A memory-node failure would block the application
//!   forever; EDM arms a timer per read and returns a NULL (zero-size)
//!   response on expiry ([`ReadGuard`]).

use edm_sched::scheduler::{NotifyError, PollResult};
use edm_sched::{Notification, Scheduler, SchedulerConfig};
use edm_sim::{Duration, Time};

/// A primary/backup scheduler pair driven by mirrored inputs.
///
/// Both replicas receive every notification and poll; because the
/// scheduler is deterministic, their grant streams are identical, so the
/// backup can take over at any instant with no state transfer.
#[derive(Debug)]
pub struct ReplicatedScheduler {
    primary: Scheduler,
    backup: Scheduler,
    primary_alive: bool,
    divergence_checks: u64,
}

impl ReplicatedScheduler {
    /// Creates the pair from one configuration.
    pub fn new(config: SchedulerConfig) -> Self {
        ReplicatedScheduler {
            primary: Scheduler::new(config),
            backup: Scheduler::new(config),
            primary_alive: true,
            divergence_checks: 0,
        }
    }

    /// Whether the primary is still serving.
    pub fn primary_alive(&self) -> bool {
        self.primary_alive
    }

    /// Number of completed agreement checks.
    pub fn divergence_checks(&self) -> u64 {
        self.divergence_checks
    }

    /// Mirrors a notification to both replicas (the sender transmits on
    /// both interfaces).
    ///
    /// # Errors
    ///
    /// Propagates the active replica's admission decision; the replicas
    /// always agree, which is itself asserted.
    pub fn notify(&mut self, now: Time, n: Notification) -> Result<(), NotifyError> {
        if self.primary_alive {
            let a = self.primary.notify(now, n);
            let b = self.backup.notify(now, n);
            assert_eq!(a, b, "replicas diverged on admission");
            a
        } else {
            self.backup.notify(now, n)
        }
    }

    /// Polls the active replica (and, while the primary lives, verifies
    /// the backup computes the identical grant set — the receive-side
    /// "accept the first copy, ignore the duplicate" guarantee).
    pub fn poll(&mut self, now: Time) -> PollResult {
        if self.primary_alive {
            let a = self.primary.poll(now);
            let b = self.backup.poll(now);
            assert_eq!(a.grants, b.grants, "replicas diverged on grants");
            self.divergence_checks += 1;
            a
        } else {
            self.backup.poll(now)
        }
    }

    /// Fails the primary; the backup continues with identical state.
    pub fn fail_over(&mut self) {
        self.primary_alive = false;
    }
}

/// Scrambler-based link corruption monitoring (§3.3): corruption in
/// datacenters is persistent (damaged fiber, dirty transceivers), so after
/// a burst of errors the only sustainable remedy is disabling the link.
#[derive(Debug, Clone)]
pub struct LinkMonitor {
    /// Corrupted blocks observed in the current window.
    errors_in_window: u32,
    window_started: Time,
    window: Duration,
    threshold: u32,
    disabled: bool,
}

impl LinkMonitor {
    /// Creates a monitor that disables the link after `threshold`
    /// corrupted blocks within any `window`.
    pub fn new(threshold: u32, window: Duration) -> Self {
        LinkMonitor {
            errors_in_window: 0,
            window_started: Time::ZERO,
            window,
            threshold,
            disabled: false,
        }
    }

    /// Whether the link has been disabled.
    pub fn is_disabled(&self) -> bool {
        self.disabled
    }

    /// Records a corrupted block at `now`. Returns `true` if this tripped
    /// the disable threshold.
    pub fn record_corruption(&mut self, now: Time) -> bool {
        if self.disabled {
            return false;
        }
        if now.saturating_since(self.window_started) > self.window {
            self.window_started = now;
            self.errors_in_window = 0;
        }
        self.errors_in_window += 1;
        if self.errors_in_window >= self.threshold {
            self.disabled = true;
            return true;
        }
        false
    }
}

impl Default for LinkMonitor {
    fn default() -> Self {
        // A handful of corrupted blocks within a millisecond is far beyond
        // any acceptable BER at 25G; treat as physical damage.
        LinkMonitor::new(8, Duration::from_us(1000))
    }
}

/// Per-read deadlock guard (§3.3): if the response does not arrive before
/// the deadline, the application receives a NULL (zero-size) read response
/// instead of blocking forever on a failed memory node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadGuard {
    /// When the read was issued.
    pub issued: Time,
    /// Response deadline.
    pub deadline: Time,
}

/// Outcome of a guarded read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardedRead {
    /// The response arrived in time.
    Data(Vec<u8>),
    /// The timer expired: NULL response (zero size).
    Null,
}

impl ReadGuard {
    /// Arms a guard at `now` with the given timeout.
    pub fn arm(now: Time, timeout: Duration) -> Self {
        ReadGuard {
            issued: now,
            deadline: now + timeout,
        }
    }

    /// Resolves the guard: data if it arrived by the deadline, NULL
    /// otherwise.
    pub fn resolve(&self, response: Option<(Time, Vec<u8>)>) -> GuardedRead {
        match response {
            Some((at, data)) if at <= self.deadline => GuardedRead::Data(data),
            _ => GuardedRead::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_sim::Bandwidth;

    fn config() -> SchedulerConfig {
        SchedulerConfig {
            ports: 8,
            chunk_bytes: 256,
            link: Bandwidth::from_gbps(100),
            policy: edm_sched::Policy::Srpt,
            max_active_per_pair: 3,
            clock: edm_sched::ASIC_CLOCK,
        }
    }

    #[test]
    fn replicas_agree_through_a_workload() {
        let mut r = ReplicatedScheduler::new(config());
        let mut now = Time::ZERO;
        // 3 messages per pair: stays within the X=3 admission bound.
        for i in 0..12u8 {
            r.notify(
                now,
                Notification::new(i as u16 % 4, 4 + (i as u16 % 4), i, 100 + i as u32 * 7),
            )
            .unwrap();
        }
        loop {
            let pr = r.poll(now);
            match pr.next_wakeup {
                Some(t) => now = t,
                None => break,
            }
        }
        assert!(r.divergence_checks() > 0);
    }

    #[test]
    fn failover_preserves_state() {
        let mut r = ReplicatedScheduler::new(config());
        r.notify(Time::ZERO, Notification::new(0, 1, 0, 1024))
            .unwrap();
        // First chunk granted by the primary.
        let g1 = r.poll(Time::ZERO).grants[0];
        assert_eq!(g1.chunk_bytes, 256);
        // Primary dies mid-message.
        r.fail_over();
        assert!(!r.primary_alive());
        // The backup continues the same message seamlessly.
        let mut now = Time::ZERO + Duration::from_ns(21);
        let mut granted = g1.chunk_bytes as u64;
        loop {
            let pr = r.poll(now);
            granted += pr.grants.iter().map(|g| g.chunk_bytes as u64).sum::<u64>();
            match pr.next_wakeup {
                Some(t) => now = t,
                None => break,
            }
        }
        assert_eq!(granted, 1024, "no bytes lost across failover");
    }

    #[test]
    fn post_failover_admissions_still_work() {
        let mut r = ReplicatedScheduler::new(config());
        r.fail_over();
        r.notify(Time::ZERO, Notification::new(2, 3, 0, 64))
            .unwrap();
        let pr = r.poll(Time::ZERO);
        assert_eq!(pr.grants.len(), 1);
    }

    #[test]
    fn link_monitor_trips_on_burst() {
        let mut m = LinkMonitor::new(3, Duration::from_us(1));
        assert!(!m.record_corruption(Time::from_ns(0)));
        assert!(!m.record_corruption(Time::from_ns(10)));
        assert!(m.record_corruption(Time::from_ns(20)), "third error trips");
        assert!(m.is_disabled());
        assert!(!m.record_corruption(Time::from_ns(30)), "already disabled");
    }

    #[test]
    fn link_monitor_window_resets() {
        let mut m = LinkMonitor::new(3, Duration::from_us(1));
        m.record_corruption(Time::from_ns(0));
        m.record_corruption(Time::from_ns(10));
        // Next error far outside the window: count restarts.
        assert!(!m.record_corruption(Time::from_us(10)));
        assert!(!m.is_disabled());
    }

    #[test]
    fn read_guard_returns_data_in_time() {
        let g = ReadGuard::arm(Time::ZERO, Duration::from_us(10));
        let got = g.resolve(Some((Time::from_us(5), vec![1, 2, 3])));
        assert_eq!(got, GuardedRead::Data(vec![1, 2, 3]));
    }

    #[test]
    fn read_guard_nulls_on_timeout() {
        let g = ReadGuard::arm(Time::ZERO, Duration::from_us(10));
        assert_eq!(g.resolve(None), GuardedRead::Null);
        assert_eq!(
            g.resolve(Some((Time::from_us(11), vec![1]))),
            GuardedRead::Null,
            "late data is discarded"
        );
    }
}
