//! The at-scale network simulator framework (§4.3) and EDM's protocol
//! implementation in it.
//!
//! This is the Rust counterpart of the paper's C simulator: a 144-node
//! cluster behind one switch, message-granularity events, per-protocol
//! control loops. The shared pieces — [`ClusterConfig`], [`Flow`],
//! [`SimResult`], and the [`FabricProtocol`] trait — are used by both EDM
//! (here) and the six baselines in `edm-baselines`.
//!
//! Normalization follows the paper: each flow's completion time is divided
//! by its *ideal* completion time (what it would take alone in the
//! network), so 1.0 is optimal and "within 1.3× of unloaded" means ≤ 1.3.

use edm_sched::{Notification, NotifyError, Policy, PollResult, Scheduler, SchedulerConfig};
use edm_sim::{Bandwidth, Duration, Engine, EventQueue, Summary, Time, World};
use std::sync::OnceLock;

/// Whether `EDM_SIM_DEBUG` is set, resolved once: the env lookup is a
/// syscall and must stay out of the per-simulation hot path.
fn sim_debug() -> bool {
    static DEBUG: OnceLock<bool> = OnceLock::new();
    *DEBUG.get_or_init(|| std::env::var_os("EDM_SIM_DEBUG").is_some())
}

/// Cluster-wide configuration shared by every protocol.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of nodes (the paper simulates 144).
    pub nodes: usize,
    /// Link bandwidth (scaled to 100 Gb/s in §4.3).
    pub link: Bandwidth,
    /// One-hop propagation delay.
    pub prop_delay: Duration,
    /// Fixed per-direction fabric pipeline latency added to every message
    /// (host stacks + switch, from the Table 1 model).
    pub pipeline_latency: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 144,
            link: Bandwidth::from_gbps(100),
            prop_delay: Duration::from_ns(10),
            // EDM one-way network-stack latency for a small message, from
            // the cycle model (read path / 2 as a representative one-way
            // cost). Protocols override their own pipeline constants.
            pipeline_latency: Duration::from_ns(54),
        }
    }
}

/// Whether a flow models a write (WREQ) or a read (RREQ→RRES pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// One-sided write: `size` bytes from `src` to `dst`.
    Write,
    /// Read: an 8 B RREQ from `src` to `dst`, answered by `size` bytes
    /// of RRES from `dst` back to `src`.
    Read,
}

/// One memory message (flow) offered to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Flow id (dense, 0-based).
    pub id: usize,
    /// Issuing (compute) node.
    pub src: usize,
    /// Target (memory) node.
    pub dst: usize,
    /// Data size in bytes (RRES size for reads, WREQ size for writes).
    pub size: u32,
    /// Arrival (issue) time.
    pub arrival: Time,
    /// Read or write.
    pub kind: FlowKind,
}

impl Flow {
    /// The (data source, data destination) node pair of this flow's *data*
    /// direction: writes send src→dst; reads send the RRES dst→src.
    pub fn data_direction(&self) -> (u16, u16) {
        match self.kind {
            FlowKind::Write => (self.src as u16, self.dst as u16),
            FlowKind::Read => (self.dst as u16, self.src as u16),
        }
    }
}

/// Per-flow outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowOutcome {
    /// The flow.
    pub flow: Flow,
    /// Completion time (last data byte delivered).
    pub completed: Time,
}

impl FlowOutcome {
    /// Message completion time.
    pub fn mct(&self) -> Duration {
        self.completed.saturating_since(self.flow.arrival)
    }
}

/// Result of simulating one workload under one protocol.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Protocol name.
    pub protocol: &'static str,
    /// Per-flow outcomes (same order as the input flows).
    pub outcomes: Vec<FlowOutcome>,
}

impl SimResult {
    /// Mean completion time over all flows.
    pub fn mean_mct(&self) -> Duration {
        if self.outcomes.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.outcomes.iter().map(|o| o.mct()).sum();
        total / self.outcomes.len() as u64
    }

    /// Summary of per-flow MCTs normalized by `ideal(flow)`.
    pub fn normalized_mct<F: Fn(&Flow) -> Duration>(&self, ideal: F) -> Summary {
        let mut s = Summary::new();
        for o in &self.outcomes {
            s.record(o.mct().ratio(ideal(&o.flow)));
        }
        s
    }

    /// Summary restricted to one flow kind.
    pub fn normalized_mct_of_kind<F: Fn(&Flow) -> Duration>(
        &self,
        kind: FlowKind,
        ideal: F,
    ) -> Summary {
        let mut s = Summary::new();
        for o in self.outcomes.iter().filter(|o| o.flow.kind == kind) {
            s.record(o.mct().ratio(ideal(&o.flow)));
        }
        s
    }
}

/// A fabric protocol that can simulate a workload on a cluster.
pub trait FabricProtocol {
    /// Display name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Simulates `flows` over `cluster`, returning per-flow outcomes.
    fn simulate(&mut self, cluster: &ClusterConfig, flows: &[Flow]) -> SimResult;
}

/// The ideal (unloaded) completion time of a flow under EDM's transport
/// shape: a control hop to the switch (demand), a control hop back (grant —
/// for reads this is the forwarded RREQ), then the data flight.
///
/// For the paper-faithful Figure 8 normalization ("normalized by the
/// corresponding unloaded latency"), prefer measuring each protocol's own
/// solo flow via [`solo_mct`]; this closed form is the EDM reference.
pub fn ideal_mct(cluster: &ClusterConfig, flow: &Flow) -> Duration {
    let ctrl_hop =
        cluster.pipeline_latency / 2 + cluster.prop_delay + cluster.link.tx_time_bytes(8);
    let data_hop = cluster.pipeline_latency / 2
        + 2 * cluster.prop_delay
        + cluster.link.tx_time_bytes(flow.size as u64);
    2 * ctrl_hop + data_hop
}

/// Measures a protocol's *unloaded* completion time for a flow by running
/// it alone in the cluster — the paper's normalization baseline for
/// Figure 8 ("the time it would take for that message to complete if it
/// were the only message in the network").
pub fn solo_mct<P: FabricProtocol + ?Sized>(
    protocol: &mut P,
    cluster: &ClusterConfig,
    flow: &Flow,
) -> Duration {
    let solo = Flow {
        id: 0,
        arrival: Time::ZERO,
        ..*flow
    };
    let result = protocol.simulate(cluster, &[solo]);
    result.outcomes[0].mct()
}

// ---------------------------------------------------------------------
// EDM protocol implementation
// ---------------------------------------------------------------------

/// EDM's in-network scheduler protocol for the cluster simulator.
///
/// Mechanics per §3.1.1:
/// * write arrival → `/N/` to the switch (half RTT) → queued;
/// * read arrival → RREQ to the switch (half RTT) → queued as the RRES
///   demand (implicit notification);
/// * the scheduler polls; each grant releases one chunk from the matched
///   sender, arriving `grant flight + chunk serialization + data flight`
///   later; ports free `chunk/B` after the grant (back-to-back pipelining);
/// * a flow completes when its last chunk reaches the destination.
///
/// Notification/grant blocks ride repurposed IFG slots, so their bandwidth
/// is not charged against the data links (§3.2); their latency is.
#[derive(Debug, Clone, Copy)]
pub struct EdmProtocol {
    /// Scheduler chunk size (the evaluation uses 256 B).
    pub chunk_bytes: u32,
    /// Scheduling policy.
    pub policy: Policy,
    /// X: max active notifications per source–destination pair.
    pub max_active_per_pair: usize,
    /// §3.1.2 optimization: when the X bound forces same-pair messages to
    /// wait, batch them into one "mega" message with a single
    /// notification. Off by default (the recorded experiments don't use
    /// it); enable for hot-pair workloads.
    pub batch_small_messages: bool,
}

impl Default for EdmProtocol {
    fn default() -> Self {
        EdmProtocol {
            chunk_bytes: 256,
            policy: Policy::Srpt,
            max_active_per_pair: 3,
            batch_small_messages: false,
        }
    }
}

/// Content-derived event order keys for the deterministic worlds.
///
/// The event engine orders same-time events by `(ord, seq)`
/// ([`edm_sim::EventQueue::schedule_ordered`]). Every world that must be
/// bit-identical between sequential and sharded execution derives `ord`
/// purely from event content through these helpers, so the same event
/// sorts into the same tie position regardless of where (or in which
/// shard) it was scheduled. The rank order is load-bearing: at one
/// instant, faults strike first, then reroutes, then demand arrivals,
/// then chunk arrivals, then scheduler polls — each rank keyed by a
/// value unique among the simultaneous events of that rank (fault index,
/// flow id, or the granting switch's monotone grant sequence).
pub mod evord {
    /// Bits reserved for the per-switch grant sequence in a chunk key.
    const GSEQ_BITS: u32 = 40;

    const fn rank(r: u64, payload: u64) -> u64 {
        r << 56 | payload
    }

    /// A planned fault striking (keyed by fault-plan index).
    pub fn fault(idx: u32) -> u64 {
        rank(0, idx as u64)
    }

    /// A bumped flow re-entering after its reroute delay.
    pub fn reroute(flow: u32) -> u64 {
        rank(1, flow as u64)
    }

    /// A flow's demand reaching its hop-0 switch.
    pub fn demand(flow: u32) -> u64 {
        rank(2, flow as u64)
    }

    /// A granted chunk's last byte reaching its next element, keyed by
    /// the granting switch and its monotone grant sequence (so chunks of
    /// one switch tie in grant order, and chunks of different switches
    /// tie deterministically).
    pub fn chunk(switch: u16, gseq: u64) -> u64 {
        debug_assert!(gseq < 1 << GSEQ_BITS, "grant sequence overflow");
        rank(
            3,
            (switch as u64) << GSEQ_BITS | (gseq & ((1 << GSEQ_BITS) - 1)),
        )
    }

    /// One switch's scheduler poll.
    pub fn poll(switch: u16) -> u64 {
        rank(4, switch as u64)
    }

    /// A cross-shard delivery-credit record (state sync, never an event).
    pub fn credit(flow: u32) -> u64 {
        rank(5, flow as u64)
    }

    /// A closed-loop tenant's issue step (keyed by tenant index).
    /// Application-tier ranks sort after all fabric ranks at one instant:
    /// the fabric's state at time T is settled before the app observes T.
    pub fn app_issue(tenant: u32) -> u64 {
        rank(6, tenant as u64)
    }

    /// A remote op's memory-service step (keyed by global op sequence).
    pub fn app_service(op: u32) -> u64 {
        rank(7, op as u64)
    }

    /// A remote op's completion observed by its tenant (keyed by global
    /// op sequence).
    pub fn app_done(op: u32) -> u64 {
        rank(8, op as u64)
    }
}

// ---------------------------------------------------------------------
// Switch scheduling domain — the per-switch half of the simulator,
// shared between the single-switch world here and `edm-topo`'s
// multi-switch fabrics.
// ---------------------------------------------------------------------

/// An offer of demand to a [`SwitchDomain`]: one simulation-level message
/// between two ports of that switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainOffer {
    /// Source port on this switch.
    pub src: u16,
    /// Destination port on this switch.
    pub dst: u16,
    /// Message size in bytes.
    pub bytes: u32,
    /// Per-pair X bound applied to this offer. Access pairs keep the
    /// paper's X; multi-switch worlds provision aggregated trunk pairs
    /// with a larger share (via [`edm_sched::Scheduler::notify_with_limit`]).
    pub limit: usize,
    /// Offers fold into one mega message (§3.1.2 batching) only when they
    /// share the port pair *and* this key. Multi-hop worlds key it by the
    /// end-to-end route so a batched message never spans two destinations;
    /// the single-switch world uses a constant (pair-only batching).
    pub batch_key: u64,
    /// Opaque caller tag, reported by [`SwitchDomain::deliver`] when this
    /// offer's bytes have fully arrived.
    pub token: u64,
}

/// A grant from [`SwitchDomain::poll`], resolved to its domain message.
#[derive(Debug, Clone, Copy)]
pub struct DomainGrant {
    /// Slot of the granted message; hand back to [`SwitchDomain::deliver`]
    /// when the chunk reaches its next element.
    pub slot: u32,
    /// Granted source port.
    pub src: u16,
    /// Granted destination port.
    pub dst: u16,
    /// Bytes granted in this chunk.
    pub chunk_bytes: u32,
    /// Token of the message's first (oldest) constituent offer — for
    /// mega messages every constituent shares the batch key, so this is
    /// representative for routing purposes.
    pub token: u64,
    /// This domain's monotone grant sequence number — the content key
    /// worlds use to order simultaneous chunk events deterministically
    /// ([`evord::chunk`]).
    pub gseq: u64,
}

/// The offers a scheduled message carries. The overwhelmingly common
/// unbatched case stays allocation-free; only §3.1.2 mega messages pay
/// for the boundary vectors.
#[derive(Debug)]
enum MsgBody {
    /// One offer.
    Single { token: u64, bytes: u32 },
    /// A mega-batched message: constituent tokens in FIFO order and their
    /// cumulative byte boundaries (`prefix[i]` = bytes after offer i).
    Batch { tokens: Vec<u64>, prefix: Vec<u32> },
}

/// A (possibly mega-batched) scheduled message.
#[derive(Debug)]
struct MsgState {
    body: MsgBody,
    delivered: u32,
    /// Bytes granted so far — the in-flight watermark that decides when a
    /// cancelled message's slot can be reclaimed (no grants outstanding).
    granted: u32,
    next_sub: u32,
    /// Scheduler msg_id this message was notified under (sanity checks).
    msg_id: u8,
    /// Whether the ungranted remainder was withdrawn ([`SwitchDomain::cancel`]).
    /// A cancelled message never completes; its slot frees once every
    /// already-granted chunk has landed.
    cancelled: bool,
    /// Next in-flight message of the same pair — the pair's grant FIFO as
    /// an intrusive list through the slab (slot index + 1; 0 = last).
    /// The zero sentinel keeps the per-pair slabs calloc-cheap.
    next_in_pair: u32,
}

impl MsgState {
    fn first_token(&self) -> u64 {
        match &self.body {
            MsgBody::Single { token, .. } => *token,
            MsgBody::Batch { tokens, .. } => tokens[0],
        }
    }

    fn sub_count(&self) -> u32 {
        match &self.body {
            MsgBody::Single { .. } => 1,
            MsgBody::Batch { tokens, .. } => tokens.len() as u32,
        }
    }
}

/// Per-pair in-flight FIFO endpoints, packed head (low 32) / tail
/// (high 32) into one word (`targets` index + 1; 0 = empty). Grants
/// within a pair are strictly FIFO (§3.1.1 property 5), so the head *is*
/// the granted message. `vec![0u64]` stays a calloc: untouched pairs
/// cost nothing at any port count.
type PairFifo = u64;

/// One EDM switch's scheduling state as seen by an event-driven world: a
/// demand-sparse [`Scheduler`] plus the bookkeeping that maps its grants
/// back to simulation-level messages — per-pair in-flight FIFOs, the
/// X-limit backlog with §3.1.2 mega-batching, msg-id allocation, and
/// poll-event deduplication.
///
/// The domain is event-queue agnostic: methods return whether the caller
/// should (de-duplicate and) schedule a poll event, so the same state
/// machine drives both the single-switch [`EdmProtocol`] world and
/// `edm-topo`'s multi-switch fabrics (one domain per switch).
#[derive(Debug)]
pub struct SwitchDomain {
    ports: usize,
    batch_small: bool,
    scheduler: Scheduler,
    /// Per-pair in-flight FIFO words, keyed by flat pair index.
    pair_fifo: Vec<PairFifo>,
    /// Per-pair backlog count (low 32, O(1) same-pair waiter checks) and
    /// msg-id allocator (bits 32..40, wraps at 256).
    pair_meta: Vec<u64>,
    targets: Vec<MsgState>,
    /// Retired message slots awaiting reuse (LIFO). Slots return here when
    /// a message completes or a cancelled message's last in-flight chunk
    /// lands, so `targets` grows to the in-flight high-water mark — not
    /// the total message count — under streaming workloads.
    free_slots: Vec<u32>,
    /// Pending offers blocked on the per-pair X limit.
    backlog: std::collections::VecDeque<DomainOffer>,
    /// High-water mark of `targets` across the domain's whole life —
    /// [`SwitchDomain::purge`] clears the slab but must not erase the
    /// peak the memory-bound tests pin.
    slab_hwm: usize,
    /// Monotone grant counter (the [`DomainGrant::gseq`] source).
    /// Survives [`SwitchDomain::purge`]: resetting it after a switch
    /// revival could collide [`evord::chunk`] keys with chunks granted
    /// before the outage.
    grant_seq: u64,
    poll_at: Option<Time>,
    /// Times of poll events currently in the caller's queue (tiny; one
    /// live plus at most a few superseded). A superseded event whose time
    /// matches a *later* wake-up request is recycled instead of firing
    /// stale next to a freshly scheduled duplicate.
    scheduled_polls: Vec<Time>,
    /// Reused scheduler poll result (grant buffer survives across polls).
    poll_scratch: PollResult,
    /// Reused resolved-grant buffer.
    grants_scratch: Vec<DomainGrant>,
}

impl SwitchDomain {
    /// Creates a domain for one switch.
    pub fn new(config: SchedulerConfig, batch_small_messages: bool) -> Self {
        let pairs = config.ports * config.ports;
        SwitchDomain {
            ports: config.ports,
            batch_small: batch_small_messages,
            scheduler: Scheduler::new(config),
            pair_fifo: vec![0; pairs],
            pair_meta: vec![0; pairs],
            targets: Vec::new(),
            free_slots: Vec::new(),
            backlog: std::collections::VecDeque::new(),
            slab_hwm: 0,
            grant_seq: 0,
            poll_at: None,
            scheduled_polls: Vec::new(),
            poll_scratch: PollResult::default(),
            grants_scratch: Vec::new(),
        }
    }

    /// The underlying scheduler (stats, configuration).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Whether the scheduler holds queued demand. A poll without demand
    /// is a no-op, so callers skip scheduling one (saves a heap event per
    /// completed message — outcomes are unaffected).
    pub fn has_demand(&self) -> bool {
        self.scheduler.pending_messages() > 0
    }

    /// Whether a just-admitted (src, dst) message is trivially the next
    /// grant: it is the *only* queued demand and both its ports are free,
    /// so a scheduling round at `now` must grant exactly it. Multi-switch
    /// worlds use this to run the round inline instead of paying a poll
    /// event for an uncontended store-and-forward hop.
    pub fn sole_eligible_demand(&self, now: Time, src: u16, dst: u16) -> bool {
        self.scheduler.pending_messages() == 1
            && self.scheduler.src_port_free(src, now)
            && self.scheduler.dst_port_free(dst, now)
    }

    /// High-water mark of the message slab: the most messages ever
    /// simultaneously resident. Under streaming churn this is bounded by
    /// peak in-flight messages, not total messages — the assertion the
    /// slab-reuse tests pin.
    pub fn msg_slab_high_water(&self) -> usize {
        self.slab_hwm.max(self.targets.len())
    }

    /// Messages currently resident (admitted or draining in-flight
    /// chunks): slab size minus retired slots awaiting reuse.
    pub fn msg_slots_live(&self) -> usize {
        self.targets.len() - self.free_slots.len()
    }

    /// Flat index of a (src port, dst port) pair.
    fn pair_idx(&self, src: u16, dst: u16) -> usize {
        src as usize * self.ports + dst as usize
    }

    /// Offers one message's demand. Returns `true` if the demand was
    /// admitted to the scheduler (the caller should poll at `now`);
    /// `false` means it joined the per-pair backlog.
    pub fn offer(&mut self, now: Time, offer: DomainOffer) -> bool {
        // Host message-queue FIFO: a new message may not overtake older
        // same-pair messages already waiting in the backlog.
        let pi = self.pair_idx(offer.src, offer.dst);
        if self.pair_meta[pi] as u32 > 0 {
            self.pair_meta[pi] += 1;
            self.backlog.push_back(offer);
            false
        } else {
            self.notify_one(now, offer)
        }
    }

    /// Links a freshly admitted message into its pair's grant FIFO,
    /// reusing a retired slot when one is free.
    fn push_msg(&mut self, pi: usize, msg_id: u8, body: MsgBody) {
        let meta = self.pair_meta[pi];
        self.pair_meta[pi] = (meta & !0xFF_0000_0000) | (msg_id.wrapping_add(1) as u64) << 32;
        let state = MsgState {
            body,
            delivered: 0,
            granted: 0,
            next_sub: 0,
            msg_id,
            cancelled: false,
            next_in_pair: 0,
        };
        // Slot index + 1 encoding, as in the pair FIFO words.
        let slot = match self.free_slots.pop() {
            Some(free) => {
                self.targets[free as usize] = state;
                free + 1
            }
            None => {
                self.targets.push(state);
                self.slab_hwm = self.slab_hwm.max(self.targets.len());
                self.targets.len() as u32
            }
        };
        // Append to the pair's grant FIFO.
        let fifo = self.pair_fifo[pi];
        let (head, tail) = (fifo as u32, (fifo >> 32) as u32);
        if head == 0 {
            self.pair_fifo[pi] = slot as u64 | (slot as u64) << 32;
        } else {
            self.targets[(tail - 1) as usize].next_in_pair = slot;
            self.pair_fifo[pi] = head as u64 | (slot as u64) << 32;
        }
    }

    /// Announces one unbatched message to the scheduler (the common,
    /// allocation-free path). Returns `true` on admission.
    fn notify_one(&mut self, now: Time, offer: DomainOffer) -> bool {
        let pi = self.pair_idx(offer.src, offer.dst);
        let msg_id = (self.pair_meta[pi] >> 32) as u8;
        match self.scheduler.notify_with_limit(
            now,
            Notification::new(offer.src, offer.dst, msg_id, offer.bytes),
            offer.limit,
        ) {
            Ok(()) => {
                self.push_msg(
                    pi,
                    msg_id,
                    MsgBody::Single {
                        token: offer.token,
                        bytes: offer.bytes,
                    },
                );
                true
            }
            Err(NotifyError::PairLimitReached { .. }) => {
                // Sender rate-limiting: retry when a grant frees a slot.
                self.pair_meta[pi] += 1;
                self.backlog.push_back(offer);
                false
            }
            Err(e) => panic!("unexpected notify error: {e}"),
        }
    }

    /// Announces one mega message carrying several batched same-pair
    /// offers (§3.1.2). Returns `true` on admission.
    fn notify_batch(&mut self, now: Time, offers: Vec<DomainOffer>) -> bool {
        debug_assert!(offers.len() > 1);
        let (s, d, limit) = (offers[0].src, offers[0].dst, offers[0].limit);
        let mut tokens = Vec::with_capacity(offers.len());
        let mut prefix = Vec::with_capacity(offers.len());
        let mut total = 0u32;
        for o in &offers {
            debug_assert_eq!((o.src, o.dst), (s, d), "mega is one pair");
            total += o.bytes;
            prefix.push(total);
            tokens.push(o.token);
        }
        let pi = self.pair_idx(s, d);
        let msg_id = (self.pair_meta[pi] >> 32) as u8;
        match self
            .scheduler
            .notify_with_limit(now, Notification::new(s, d, msg_id, total), limit)
        {
            Ok(()) => {
                self.push_msg(pi, msg_id, MsgBody::Batch { tokens, prefix });
                true
            }
            Err(NotifyError::PairLimitReached { .. }) => {
                self.pair_meta[pi] += offers.len() as u64;
                self.backlog.extend(offers);
                false
            }
            Err(e) => panic!("unexpected notify error: {e}"),
        }
    }

    /// Admits backlogged offers after a pair slot frees: one offer, or —
    /// with batching — every backlogged offer of the same (pair, batch
    /// key) folded into a single mega message (bounded by the 16-bit size
    /// field, §3.1.4).
    fn admit_from_backlog(&mut self, now: Time) {
        let Some(first) = self.backlog.pop_front() else {
            return;
        };
        let pi = self.pair_idx(first.src, first.dst);
        self.pair_meta[pi] -= 1;
        if !self.batch_small {
            self.notify_one(now, first);
            return;
        }
        let key = (first.src, first.dst, first.batch_key);
        let mut total = first.bytes;
        let mut batch = vec![first];
        self.backlog.retain(|o| {
            if (o.src, o.dst, o.batch_key) == key
                && total as u64 + o.bytes as u64 <= u16::MAX as u64
            {
                total += o.bytes;
                batch.push(*o);
                false
            } else {
                true
            }
        });
        self.pair_meta[pi] -= (batch.len() - 1) as u64;
        if batch.len() == 1 {
            self.notify_one(now, first);
        } else {
            self.notify_batch(now, batch);
        }
    }

    /// Records that a poll is wanted at `at`. Returns `true` when the
    /// caller must schedule the poll event; duplicate/later requests are
    /// absorbed, and a superseded event already queued for exactly `at`
    /// is recycled instead of duplicated.
    pub fn note_poll_wanted(&mut self, at: Time) -> bool {
        if self.poll_at.is_none_or(|t| at < t) {
            self.poll_at = Some(at);
            if self.scheduled_polls.contains(&at) {
                false
            } else {
                self.scheduled_polls.push(at);
                true
            }
        } else {
            false
        }
    }

    /// Whether a poll event firing at `now` is the live wake-up (and
    /// consumes it). Superseded (stale) poll events must be dropped,
    /// otherwise each stale event would spawn its own wake-up chain.
    pub fn poll_due(&mut self, now: Time) -> bool {
        if let Some(pos) = self.scheduled_polls.iter().position(|&t| t == now) {
            self.scheduled_polls.swap_remove(pos);
        }
        if self.poll_at == Some(now) {
            self.poll_at = None;
            true
        } else {
            false
        }
    }

    /// Runs one scheduling round, resolving each grant to its in-flight
    /// message slot. Returns the grants, the round's matching latency,
    /// and the next wake-up (pass to [`SwitchDomain::note_poll_wanted`]).
    pub fn poll(&mut self, now: Time) -> (&[DomainGrant], Duration, Option<Time>) {
        let mut result = std::mem::take(&mut self.poll_scratch);
        self.scheduler.poll_into(now, &mut result);
        self.grants_scratch.clear();
        for g in &result.grants {
            // Grants within a pair are FIFO, so the granted message is
            // the head of the pair's in-flight list.
            let pi = self.pair_idx(g.src, g.dest);
            let fifo = self.pair_fifo[pi];
            let head = fifo as u32;
            debug_assert_ne!(head, 0, "grant for unknown message");
            let slot = (head - 1) as usize;
            debug_assert_eq!(self.targets[slot].msg_id, g.msg_id);
            if g.is_final() {
                let next = self.targets[slot].next_in_pair;
                self.pair_fifo[pi] = if next == 0 {
                    0
                } else {
                    next as u64 | (fifo & 0xFFFF_FFFF_0000_0000)
                };
            }
            self.targets[slot].granted += g.chunk_bytes;
            let gseq = self.grant_seq;
            self.grant_seq += 1;
            self.grants_scratch.push(DomainGrant {
                slot: slot as u32,
                src: g.src,
                dst: g.dest,
                chunk_bytes: g.chunk_bytes,
                token: self.targets[slot].first_token(),
                gseq,
            });
        }
        let sched_latency = result.sched_latency;
        let next_wakeup = result.next_wakeup;
        self.poll_scratch = result;
        (&self.grants_scratch, sched_latency, next_wakeup)
    }

    /// Records a granted chunk's arrival at its next element. Sub-offers
    /// of a mega message complete in FIFO order as their cumulative bytes
    /// arrive; `on_complete(token, bytes)` fires once per completed offer.
    /// Returns `true` when the message finished (a pair slot freed and
    /// backlogged demand was admitted — the caller should poll at `now`).
    ///
    /// Completion is *byte-counted*, not flagged by the final grant:
    /// background-IP jitter can land a small final chunk before its
    /// (larger) predecessor, so the finishing arrival is whichever chunk
    /// brings the delivered total to the message size. A message whose
    /// remainder was [cancelled](Self::cancel) never reaches its total
    /// and therefore never completes or frees a second admission slot.
    pub fn deliver(
        &mut self,
        now: Time,
        slot: u32,
        bytes: u32,
        mut on_complete: impl FnMut(u64, u32),
    ) -> bool {
        let st = &mut self.targets[slot as usize];
        st.delivered += bytes;
        if st.cancelled {
            // No completion can fire; the slot retires once the last
            // already-granted chunk lands.
            debug_assert!(st.delivered <= st.granted, "delivery past cancellation");
            if st.delivered >= st.granted {
                self.free_slots.push(slot);
            }
            return false;
        }
        let total = match &st.body {
            MsgBody::Single {
                token,
                bytes: total,
            } => {
                if st.next_sub == 0 && *total <= st.delivered {
                    on_complete(*token, *total);
                    st.next_sub = 1;
                }
                *total
            }
            MsgBody::Batch { tokens, prefix } => {
                while (st.next_sub as usize) < tokens.len()
                    && prefix[st.next_sub as usize] <= st.delivered
                {
                    let i = st.next_sub as usize;
                    let start = if i == 0 { 0 } else { prefix[i - 1] };
                    on_complete(tokens[i], prefix[i] - start);
                    st.next_sub += 1;
                }
                *prefix.last().expect("batch is non-empty")
            }
        };
        debug_assert!(st.delivered <= total, "over-delivery");
        if st.delivered >= total {
            debug_assert_eq!(st.next_sub, st.sub_count(), "all sub-offers done");
            // Retire the message: its slot returns to the free list (the
            // backlog admission below may reuse it immediately), and the
            // freed pair slot admits backlogged demand.
            self.free_slots.push(slot);
            self.admit_from_backlog(now);
            true
        } else {
            false
        }
    }

    /// Withdraws the ungranted remainder of an *unbatched* offer (by its
    /// token): sender-side demand revocation after a failure reroute.
    ///
    /// Finds the offer wherever it queues — the per-pair X backlog (never
    /// notified: simply dropped) or the pair's in-flight FIFO (its
    /// [`edm_sched::Scheduler`] message is cancelled and the FIFO entry
    /// unlinked). Chunks already granted stay in flight; their delivery
    /// bookkeeping still runs, but the message can no longer complete, so
    /// no completion callback ever fires for it. Freeing the admission
    /// slot admits backlogged demand, exactly like a completion — the
    /// caller should poll at `now` when `true` is returned and demand
    /// remains.
    ///
    /// Offers folded into a §3.1.2 mega message are *not* cancellable
    /// (the notification covers the whole batch); those keep the
    /// documented stale-demand pessimism and `false` is returned.
    pub fn cancel(&mut self, now: Time, src: u16, dst: u16, token: u64) -> bool {
        let pi = self.pair_idx(src, dst);
        // Still in the X backlog: never notified, just drop it.
        if self.pair_meta[pi] as u32 > 0 {
            let before = self.backlog.len();
            self.backlog
                .retain(|o| !(o.src == src && o.dst == dst && o.token == token));
            let removed = (before - self.backlog.len()) as u64;
            if removed > 0 {
                self.pair_meta[pi] -= removed;
                return true;
            }
        }
        // Admitted: walk the pair's in-flight FIFO for the unbatched
        // message carrying this token.
        let fifo = self.pair_fifo[pi];
        let (head, tail) = (fifo as u32, (fifo >> 32) as u32);
        let mut prev: u32 = 0;
        let mut cur = head;
        while cur != 0 {
            let slot = (cur - 1) as usize;
            let next = self.targets[slot].next_in_pair;
            let hit = matches!(
                self.targets[slot].body,
                MsgBody::Single { token: t, .. } if t == token
            );
            if hit {
                let outcome = self.scheduler.cancel(src, dst, self.targets[slot].msg_id);
                debug_assert!(
                    matches!(outcome, edm_sched::CancelOutcome::Cancelled { .. }),
                    "a pair-FIFO member is always queued or waiting"
                );
                let new_head = if prev == 0 { next } else { head };
                let new_tail = if cur == tail { prev } else { tail };
                self.pair_fifo[pi] = if new_head == 0 {
                    0
                } else {
                    new_head as u64 | (new_tail as u64) << 32
                };
                if prev != 0 {
                    self.targets[(prev - 1) as usize].next_in_pair = next;
                }
                // The message can no longer complete; retire its slot now
                // if nothing is in flight, else when the last granted
                // chunk lands ([`SwitchDomain::deliver`]).
                let st = &mut self.targets[slot];
                st.cancelled = true;
                if st.delivered >= st.granted {
                    self.free_slots.push(slot as u32);
                }
                // The admission slot freed: admit backlogged demand.
                self.admit_from_backlog(now);
                return true;
            }
            prev = cur;
            cur = next;
        }
        false
    }

    /// Hard-resets the domain after its switch dies, appending to `dead`
    /// the token of every resident sub-offer that will now never complete
    /// — backlogged offers plus the uncompleted constituents of every
    /// scheduled message. Callers release whatever references those
    /// offers held; cancelled messages report nothing (their references
    /// were already released at cancellation).
    ///
    /// The revived switch comes back like a power-cycled ASIC: cold
    /// scheduler, empty FIFOs and backlog, no pending polls. Only the
    /// grant-sequence counter and the slab high-water mark survive — the
    /// former so post-revival [`evord::chunk`] keys can never collide
    /// with chunks granted before the outage, the latter so memory-bound
    /// reporting still sees the true peak. Chunks granted before the
    /// outage must be fenced off by the caller (generation-stamped
    /// settle events) and never handed back to [`SwitchDomain::deliver`].
    pub fn purge(&mut self, dead: &mut Vec<u64>) {
        for o in &self.backlog {
            dead.push(o.token);
        }
        let mut retired = vec![false; self.targets.len()];
        for &s in &self.free_slots {
            retired[s as usize] = true;
        }
        for (slot, st) in self.targets.iter().enumerate() {
            if retired[slot] || st.cancelled {
                continue;
            }
            match &st.body {
                MsgBody::Single { token, .. } => {
                    if st.next_sub == 0 {
                        dead.push(*token);
                    }
                }
                MsgBody::Batch { tokens, .. } => {
                    dead.extend_from_slice(&tokens[st.next_sub as usize..]);
                }
            }
        }
        self.scheduler = Scheduler::new(*self.scheduler.config());
        self.pair_fifo.iter_mut().for_each(|w| *w = 0);
        self.pair_meta.iter_mut().for_each(|w| *w = 0);
        self.targets.clear();
        self.free_slots.clear();
        self.backlog.clear();
        self.poll_at = None;
        self.scheduled_polls.clear();
    }
}

#[derive(Debug, Clone)]
enum EdmEv {
    /// A flow's demand reaches the switch. Carries the flow by value:
    /// lazily admitted worlds never hold a `Vec<Flow>`.
    DemandArrives { idx: u32, flow: Flow },
    /// Scheduler poll.
    Poll,
    /// A chunk's last byte reaches the flow's data destination.
    ChunkDelivered { slot: u32, bytes: u32 },
}

/// When a flow's demand reaches the switch: half an RTT after issue
/// (RREQ or `/N/` flight).
fn demand_time(cluster: &ClusterConfig, flow: &Flow) -> Time {
    flow.arrival + cluster.pipeline_latency / 2 + cluster.prop_delay + cluster.link.tx_time_bytes(8)
}

/// A flow resident in the [`EdmWorld`] active slab.
struct ActiveFlow {
    /// Position in the input order (the sink key).
    idx: u32,
    flow: Flow,
}

/// Memory/lifecycle statistics from a streamed single-switch run
/// ([`EdmProtocol::simulate_streamed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdmStreamStats {
    /// Flows admitted and completed.
    pub completed: u64,
    /// Most flows simultaneously resident (admitted, not yet retired).
    pub active_high_water: usize,
    /// High-water mark of the switch's message slab
    /// ([`SwitchDomain::msg_slab_high_water`]).
    pub msg_slab_high_water: usize,
}

/// The single-switch EDM world, generic over how results leave (`sink`,
/// called once per completion with the flow's input position) and where
/// arrivals come from (an optional lazy `source` pulled one flow ahead).
/// Memory is O(active flows): a retired flow's slab slot, pair-FIFO
/// link, and msg-id return to free lists.
struct EdmWorld<F, I> {
    cluster: ClusterConfig,
    domain: SwitchDomain,
    max_active_per_pair: usize,
    /// Active-flow slab, indexed by the domain offer token.
    active: Vec<Option<ActiveFlow>>,
    free: Vec<u32>,
    live: usize,
    active_hwm: usize,
    completed: u64,
    sink: F,
    /// Lazy arrival source and the input position of its next flow. Each
    /// admission pulls (at most) one successor, so only one pending
    /// arrival is ever queued.
    source: Option<(I, u32)>,
}

impl<F: FnMut(u32, FlowOutcome), I: Iterator<Item = Flow>> EdmWorld<F, I> {
    /// Admits a flow into the active slab, returning its token.
    fn admit(&mut self, idx: u32, flow: Flow) -> u32 {
        let entry = ActiveFlow { idx, flow };
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.active[s as usize].is_none());
                self.active[s as usize] = Some(entry);
                s
            }
            None => {
                self.active.push(Some(entry));
                (self.active.len() - 1) as u32
            }
        };
        self.live += 1;
        self.active_hwm = self.active_hwm.max(self.live);
        slot
    }

    /// Pulls the next arrival from the source (if any) and schedules its
    /// demand. Sources emit nondecreasing arrivals, so the demand time
    /// (a constant offset past arrival) never lands in the past.
    fn pull_next(&mut self, q: &mut EventQueue<EdmEv>) {
        let Some((source, next_idx)) = self.source.as_mut() else {
            return;
        };
        let Some(flow) = source.next() else {
            return;
        };
        let idx = *next_idx;
        *next_idx += 1;
        q.schedule_ordered(
            demand_time(&self.cluster, &flow),
            evord::demand(idx),
            EdmEv::DemandArrives { idx, flow },
        );
    }
}

impl<F: FnMut(u32, FlowOutcome), I: Iterator<Item = Flow>> World for EdmWorld<F, I> {
    type Event = EdmEv;

    fn handle(&mut self, now: Time, ev: EdmEv, q: &mut EventQueue<EdmEv>) {
        match ev {
            EdmEv::DemandArrives { idx, flow } => {
                self.pull_next(q);
                let token = self.admit(idx, flow);
                let (s, d) = flow.data_direction();
                let offer = DomainOffer {
                    src: s,
                    dst: d,
                    bytes: flow.size,
                    limit: self.max_active_per_pair,
                    batch_key: 0,
                    token: token as u64,
                };
                if self.domain.offer(now, offer) && self.domain.note_poll_wanted(now) {
                    q.schedule_ordered(now, evord::poll(0), EdmEv::Poll);
                }
            }
            EdmEv::Poll => {
                if !self.domain.poll_due(now) {
                    return;
                }
                let half = self.cluster.pipeline_latency / 2
                    + self.cluster.prop_delay
                    + self.cluster.link.tx_time_bytes(8); // grant block flight
                let (grants, sched_latency, next_wakeup) = self.domain.poll(now);
                for g in grants {
                    // Grant flies to the sender (half RTT), sender emits the
                    // chunk, chunk flies src -> switch -> dst.
                    let chunk_tx = self.cluster.link.tx_time_bytes(g.chunk_bytes as u64);
                    let data_flight =
                        self.cluster.pipeline_latency / 2 + 2 * self.cluster.prop_delay + chunk_tx;
                    let delivered = now + sched_latency + half + data_flight;
                    q.schedule_ordered(
                        delivered,
                        evord::chunk(0, g.gseq),
                        EdmEv::ChunkDelivered {
                            slot: g.slot,
                            bytes: g.chunk_bytes,
                        },
                    );
                }
                if let Some(t) = next_wakeup {
                    if self.domain.note_poll_wanted(t) {
                        q.schedule_ordered(t, evord::poll(0), EdmEv::Poll);
                    }
                }
            }
            EdmEv::ChunkDelivered { slot, bytes } => {
                let EdmWorld {
                    domain,
                    active,
                    free,
                    live,
                    completed,
                    sink,
                    ..
                } = self;
                let want_poll = domain.deliver(now, slot, bytes, |token, _bytes| {
                    // Retire the flow: emit its outcome, return its slot.
                    let entry = active[token as usize]
                        .take()
                        .expect("completion for a live flow");
                    *live -= 1;
                    *completed += 1;
                    free.push(token as u32);
                    sink(
                        entry.idx,
                        FlowOutcome {
                            flow: entry.flow,
                            completed: now,
                        },
                    );
                });
                if want_poll && self.domain.has_demand() && self.domain.note_poll_wanted(now) {
                    q.schedule_ordered(now, evord::poll(0), EdmEv::Poll);
                }
            }
        }
    }
}

impl EdmProtocol {
    fn scheduler_config(&self, cluster: &ClusterConfig) -> SchedulerConfig {
        SchedulerConfig {
            ports: cluster.nodes,
            chunk_bytes: self.chunk_bytes,
            link: cluster.link,
            policy: self.policy,
            max_active_per_pair: self.max_active_per_pair,
            clock: edm_sched::ASIC_CLOCK,
        }
    }

    fn world<F: FnMut(u32, FlowOutcome), I: Iterator<Item = Flow>>(
        &self,
        cluster: &ClusterConfig,
        sink: F,
        source: Option<(I, u32)>,
    ) -> EdmWorld<F, I> {
        EdmWorld {
            cluster: *cluster,
            domain: SwitchDomain::new(self.scheduler_config(cluster), self.batch_small_messages),
            max_active_per_pair: self.max_active_per_pair,
            active: Vec::new(),
            free: Vec::new(),
            live: 0,
            active_hwm: 0,
            completed: 0,
            sink,
            source,
        }
    }

    /// Simulates a *stream* of arrivals in O(active flows) memory:
    /// arrivals are pulled from `source` one at a time (lazy admission),
    /// each completion streams to `sink` and its state retires to free
    /// lists. Bit-identical to [`FabricProtocol::simulate`] on the same
    /// flow sequence.
    ///
    /// `source` must yield flows in nondecreasing arrival order (every
    /// `FlowSource` in `edm-workloads` does); outcomes reach `sink` in
    /// completion order, not input order.
    pub fn simulate_streamed<I, F>(
        &mut self,
        cluster: &ClusterConfig,
        source: I,
        mut sink: F,
    ) -> EdmStreamStats
    where
        I: Iterator<Item = Flow>,
        F: FnMut(FlowOutcome),
    {
        let mut source = source;
        let first = source.next();
        let world = self.world(cluster, |_idx, o| sink(o), Some((source, 1)));
        let mut engine = Engine::new(world);
        if let Some(flow) = first {
            engine.queue_mut().schedule_ordered(
                demand_time(cluster, &flow),
                evord::demand(0),
                EdmEv::DemandArrives { idx: 0, flow },
            );
        }
        engine.run();
        if sim_debug() {
            eprintln!("[edm-sim] events dispatched: {}", engine.steps());
        }
        let world = engine.into_world();
        assert_eq!(world.live, 0, "flows stalled without completing");
        EdmStreamStats {
            completed: world.completed,
            active_high_water: world.active_hwm,
            msg_slab_high_water: world.domain.msg_slab_high_water(),
        }
    }
}

impl FabricProtocol for EdmProtocol {
    fn name(&self) -> &'static str {
        "EDM"
    }

    fn simulate(&mut self, cluster: &ClusterConfig, flows: &[Flow]) -> SimResult {
        // The collecting sink keys outcomes by input position, so input
        // order is preserved even for unsorted arrival lists.
        let mut results: Vec<Option<FlowOutcome>> = vec![None; flows.len()];
        {
            let world = self.world(
                cluster,
                |idx, o| results[idx as usize] = Some(o),
                None::<(std::iter::Empty<Flow>, u32)>,
            );
            let mut engine = Engine::new(world);
            for (i, f) in flows.iter().enumerate() {
                engine.queue_mut().schedule_ordered(
                    demand_time(cluster, f),
                    evord::demand(i as u32),
                    EdmEv::DemandArrives {
                        idx: i as u32,
                        flow: *f,
                    },
                );
            }
            engine.run();
            if sim_debug() {
                eprintln!("[edm-sim] events dispatched: {}", engine.steps());
            }
        }
        let outcomes = results
            .into_iter()
            .map(|o| o.expect("all flows complete when the queue drains"))
            .collect();
        SimResult {
            protocol: self.name(),
            outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> ClusterConfig {
        ClusterConfig {
            nodes: n,
            ..ClusterConfig::default()
        }
    }

    fn write_flow(id: usize, src: usize, dst: usize, size: u32, at_ns: u64) -> Flow {
        Flow {
            id,
            src,
            dst,
            size,
            arrival: Time::from_ns(at_ns),
            kind: FlowKind::Write,
        }
    }

    #[test]
    fn single_write_completes_near_ideal() {
        let c = cluster(8);
        let flows = vec![write_flow(0, 0, 1, 64, 0)];
        let r = EdmProtocol::default().simulate(&c, &flows);
        let norm = r.outcomes[0].mct().ratio(ideal_mct(&c, &flows[0]));
        assert!(
            (0.8..1.6).contains(&norm),
            "unloaded write normalized MCT {norm}"
        );
    }

    #[test]
    fn single_read_completes_near_ideal() {
        let c = cluster(8);
        let flows = vec![Flow {
            id: 0,
            src: 0,
            dst: 1,
            size: 64,
            arrival: Time::ZERO,
            kind: FlowKind::Read,
        }];
        let r = EdmProtocol::default().simulate(&c, &flows);
        let norm = r.outcomes[0].mct().ratio(ideal_mct(&c, &flows[0]));
        assert!(
            (0.7..1.6).contains(&norm),
            "unloaded read normalized {norm}"
        );
    }

    #[test]
    fn incast_serializes_but_does_not_collapse() {
        // 8-to-1 incast of 256 B writes: EDM must serialize them (zero
        // queuing means one sender at a time) with no pathological delay.
        let c = cluster(16);
        let flows: Vec<Flow> = (0..8).map(|i| write_flow(i, i, 15, 256, 0)).collect();
        let r = EdmProtocol::default().simulate(&c, &flows);
        let mcts: Vec<f64> = r.outcomes.iter().map(|o| o.mct().as_ns_f64()).collect();
        let max = mcts.iter().cloned().fold(0.0, f64::max);
        // 8 chunks of 256 B at 100 G = 8 x 20.5 ns serialization; with
        // control latency the last finisher should still be < 1 us.
        assert!(max < 1000.0, "worst incast MCT {max} ns");
    }

    #[test]
    fn disjoint_pairs_run_in_parallel() {
        let c = cluster(8);
        let flows: Vec<Flow> = (0..4)
            .map(|i| write_flow(i, i * 2, i * 2 + 1, 256, 0))
            .collect();
        let r = EdmProtocol::default().simulate(&c, &flows);
        let mcts: Vec<f64> = r.outcomes.iter().map(|o| o.mct().as_ns_f64()).collect();
        let spread = mcts.iter().cloned().fold(0.0, f64::max)
            - mcts.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            spread < 50.0,
            "disjoint pairs should complete together, spread {spread} ns"
        );
    }

    #[test]
    fn multi_chunk_flow_completes_with_all_bytes() {
        let c = cluster(4);
        let flows = vec![write_flow(0, 0, 1, 4096, 0)];
        let r = EdmProtocol::default().simulate(&c, &flows);
        // 4096 B = 16 chunks of 256 B; chunk pipeline is back-to-back, so
        // MCT ≈ control latency + 16 x 20.48 ns ≈ 330 + 100 ns.
        let mct = r.outcomes[0].mct().as_ns_f64();
        let ser = c.link.tx_time_bytes(4096).as_ns_f64();
        assert!(mct >= ser, "MCT {mct} cannot beat serialization {ser}");
        assert!(mct < ser + 500.0, "MCT {mct} ns has excessive overhead");
    }

    #[test]
    fn x_limit_backlog_drains() {
        // 10 messages on one pair with X=3: all must still complete.
        let c = cluster(4);
        let flows: Vec<Flow> = (0..10).map(|i| write_flow(i, 0, 1, 64, 0)).collect();
        let r = EdmProtocol::default().simulate(&c, &flows);
        assert_eq!(r.outcomes.len(), 10);
        for o in &r.outcomes {
            assert!(o.completed > o.flow.arrival);
        }
    }

    #[test]
    fn srpt_favors_short_flows_under_contention() {
        let c = cluster(4);
        let flows = vec![
            write_flow(0, 0, 2, 64 * 1024, 0), // elephant
            write_flow(1, 1, 2, 64, 10),       // mouse, arrives just after
        ];
        let r = EdmProtocol {
            policy: Policy::Srpt,
            ..EdmProtocol::default()
        }
        .simulate(&c, &flows);
        let mouse = r.outcomes[1].mct().as_ns_f64();
        let elephant = r.outcomes[0].mct().as_ns_f64();
        assert!(
            mouse < elephant / 3.0,
            "SRPT should finish the mouse ({mouse} ns) long before the elephant ({elephant} ns)"
        );
    }

    #[test]
    fn mega_batching_completes_hot_pair_backlog() {
        // 30 small messages on one pair: with batching the backlog folds
        // into mega messages; everything must still complete, in order.
        let c = cluster(4);
        let flows: Vec<Flow> = (0..30).map(|i| write_flow(i, 0, 1, 64, 0)).collect();
        let batched = EdmProtocol {
            batch_small_messages: true,
            ..EdmProtocol::default()
        }
        .simulate(&c, &flows);
        assert_eq!(batched.outcomes.len(), 30);
        for o in &batched.outcomes {
            assert!(o.completed > o.flow.arrival);
        }
        // Batching needs fewer notifications, so the tail completes no
        // later than without batching.
        let plain = EdmProtocol::default().simulate(&c, &flows);
        let tail = |r: &SimResult| r.outcomes.iter().map(|o| o.completed).max().unwrap();
        assert!(tail(&batched) <= tail(&plain));
    }

    #[test]
    fn mega_batching_preserves_per_flow_order() {
        let c = cluster(4);
        let flows: Vec<Flow> = (0..12)
            .map(|i| write_flow(i, 0, 1, 64 + 32 * (i as u32 % 3), i as u64))
            .collect();
        let r = EdmProtocol {
            batch_small_messages: true,
            ..EdmProtocol::default()
        }
        .simulate(&c, &flows);
        // Same-pair messages complete in arrival order (EDM's in-order
        // guarantee within a pair, §3.1.1 property 5).
        for w in r.outcomes.windows(2) {
            assert!(
                w[0].completed <= w[1].completed,
                "pair order violated: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }

    fn pair_offer(token: u64, bytes: u32) -> DomainOffer {
        DomainOffer {
            src: 0,
            dst: 1,
            bytes,
            limit: 1,
            batch_key: token,
            token,
        }
    }

    #[test]
    fn domain_cancel_withdraws_backlogged_and_admitted_demand() {
        let mut dom = SwitchDomain::new(edm_sched::SchedulerConfig::default_for_ports(4), false);
        assert!(dom.offer(Time::ZERO, pair_offer(1, 1000)));
        assert!(!dom.offer(Time::ZERO, pair_offer(2, 500)), "X=1 backlogs");
        // The backlogged offer drops without ever being notified.
        assert!(dom.cancel(Time::ZERO, 0, 1, 2));
        // The admitted offer's scheduler message is withdrawn.
        assert!(dom.cancel(Time::ZERO, 0, 1, 1));
        assert!(!dom.has_demand());
        assert!(!dom.cancel(Time::ZERO, 0, 1, 1), "nothing left to cancel");
    }

    #[test]
    fn domain_cancel_admits_the_backlog_like_a_completion() {
        let mut dom = SwitchDomain::new(edm_sched::SchedulerConfig::default_for_ports(4), false);
        assert!(dom.offer(Time::ZERO, pair_offer(1, 1000)));
        assert!(!dom.offer(Time::ZERO, pair_offer(2, 500)));
        assert!(dom.cancel(Time::ZERO, 0, 1, 1));
        assert!(dom.has_demand(), "the backlogged offer takes the slot");
        let (grants, _, _) = dom.poll(Time::ZERO);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].token, 2);
    }

    #[test]
    fn domain_grant_sequence_is_monotone() {
        let mut dom = SwitchDomain::new(edm_sched::SchedulerConfig::default_for_ports(8), false);
        for i in 0..3u64 {
            assert!(dom.offer(
                Time::ZERO,
                DomainOffer {
                    src: 2 * i as u16,
                    dst: 2 * i as u16 + 1,
                    bytes: 64,
                    limit: 3,
                    batch_key: i,
                    token: i,
                }
            ));
        }
        let (grants, _, _) = dom.poll(Time::ZERO);
        let gseqs: Vec<u64> = grants.iter().map(|g| g.gseq).collect();
        assert_eq!(gseqs, vec![0, 1, 2]);
    }

    #[test]
    fn streamed_simulate_is_bit_identical_to_vec_path() {
        // Lazy admission from a source must not perturb a single event:
        // same flows in sorted-arrival order, same completions.
        let c = cluster(16);
        let flows: Vec<Flow> = (0..60)
            .map(|i| {
                let size = 64 + 96 * (i as u32 % 5);
                let mut f = write_flow(i, i % 8, 8 + (i * 3) % 8, size, (i as u64 * 7) % 200);
                if i % 3 == 0 {
                    f.kind = FlowKind::Read;
                }
                f
            })
            .collect();
        let mut sorted = flows.clone();
        sorted.sort_by_key(|f| f.arrival);
        for (id, f) in sorted.iter_mut().enumerate() {
            f.id = id;
        }
        for batching in [false, true] {
            let mut proto = EdmProtocol {
                batch_small_messages: batching,
                ..EdmProtocol::default()
            };
            let reference = proto.simulate(&c, &sorted);
            let mut streamed = Vec::new();
            let stats = proto.simulate_streamed(&c, sorted.iter().copied(), |o| streamed.push(o));
            assert_eq!(stats.completed, sorted.len() as u64);
            streamed.sort_by_key(|o| o.flow.id);
            assert_eq!(streamed, reference.outcomes, "batching={batching}");
            assert!(stats.active_high_water <= sorted.len());
            assert!(stats.active_high_water >= 1);
        }
    }

    #[test]
    fn streamed_waves_bound_slab_high_water() {
        // N sequential waves of the same hot-pair burst: retirement must
        // recycle slots, so the slab high-water mark tracks one wave's
        // in-flight footprint, not the total flow count.
        let c = cluster(4);
        let wave = 8usize;
        let hwm_of = |waves: usize| {
            let flows = (0..waves * wave).map(|i| {
                // Waves 40 us apart: each drains before the next starts.
                write_flow(i, 0, 1, 256, (i / wave) as u64 * 40_000)
            });
            EdmProtocol::default().simulate_streamed(&c, flows, |_| {})
        };
        let one = hwm_of(1);
        let many = hwm_of(12);
        assert_eq!(
            many.msg_slab_high_water, one.msg_slab_high_water,
            "slab must not grow across waves"
        );
        assert_eq!(many.active_high_water, one.active_high_water);
        assert_eq!(many.completed, 12 * wave as u64);
    }

    #[test]
    fn domain_slots_recycle_after_completion_and_cancel() {
        let mut dom = SwitchDomain::new(edm_sched::SchedulerConfig::default_for_ports(4), false);
        assert!(dom.offer(Time::ZERO, pair_offer(1, 100)));
        assert_eq!(dom.msg_slots_live(), 1);
        // Deliver the full message in one chunk: slot retires.
        let (grants, _, _) = dom.poll(Time::ZERO);
        let g = grants[0];
        let mut done = Vec::new();
        dom.deliver(Time::ZERO, g.slot, g.chunk_bytes, |t, b| done.push((t, b)));
        assert_eq!(done, vec![(1, 100)]);
        assert_eq!(dom.msg_slots_live(), 0);
        let hwm = dom.msg_slab_high_water();
        // A second message reuses the retired slot.
        assert!(dom.offer(Time::ZERO, pair_offer(2, 100)));
        assert_eq!(dom.msg_slab_high_water(), hwm, "no slab growth");
        // Cancel with nothing in flight retires immediately.
        assert!(dom.cancel(Time::ZERO, 0, 1, 2));
        assert_eq!(dom.msg_slots_live(), 0);
        assert_eq!(dom.msg_slab_high_water(), hwm);
    }

    #[test]
    fn cancelled_slot_retires_only_after_inflight_chunks_land() {
        let mut dom = SwitchDomain::new(edm_sched::SchedulerConfig::default_for_ports(4), false);
        // Multi-chunk message; grant one chunk, then cancel the rest.
        assert!(dom.offer(Time::ZERO, pair_offer(1, 1000)));
        let (grants, _, _) = dom.poll(Time::ZERO);
        assert_eq!(grants.len(), 1);
        let g = grants[0];
        assert!(g.chunk_bytes < 1000, "must leave a remainder in flight");
        assert!(dom.cancel(Time::ZERO, 0, 1, 1));
        assert_eq!(dom.msg_slots_live(), 1, "in-flight chunk pins the slot");
        // The granted chunk lands: no completion fires, the slot frees.
        let completed = dom.deliver(Time::from_ns(100), g.slot, g.chunk_bytes, |_, _| {
            panic!("cancelled message must not complete")
        });
        assert!(!completed);
        assert_eq!(dom.msg_slots_live(), 0);
    }

    #[test]
    fn purge_reports_resident_offers_and_cold_starts_the_domain() {
        let mut dom = SwitchDomain::new(edm_sched::SchedulerConfig::default_for_ports(4), false);
        // One scheduled multi-chunk message, one cancelled, one backlogged.
        assert!(dom.offer(Time::ZERO, pair_offer(1, 1000)));
        let (grants, _, _) = dom.poll(Time::ZERO);
        let gseq_before = grants[0].gseq;
        assert!(!dom.offer(Time::ZERO, pair_offer(2, 500)), "X=1 backlogs");
        assert!(dom.offer(
            Time::ZERO,
            DomainOffer {
                src: 2,
                dst: 3,
                bytes: 64,
                limit: 1,
                batch_key: 9,
                token: 9,
            }
        ));
        assert!(dom.cancel(Time::ZERO, 2, 3, 9));
        let hwm = dom.msg_slab_high_water();
        let mut dead = Vec::new();
        dom.purge(&mut dead);
        dead.sort_unstable();
        // The cancelled offer's reference was already released; only the
        // backlogged and scheduled offers report.
        assert_eq!(dead, vec![1, 2]);
        assert_eq!(dom.msg_slots_live(), 0);
        assert!(!dom.has_demand());
        assert_eq!(dom.msg_slab_high_water(), hwm, "peak survives the purge");
        // The revived domain schedules fresh demand, with gseq continuing
        // past the pre-outage grants.
        assert!(dom.offer(Time::from_ns(50), pair_offer(7, 64)));
        let (grants, _, _) = dom.poll(Time::from_ns(50));
        assert_eq!(grants[0].token, 7);
        assert!(grants[0].gseq > gseq_before, "gseq stays monotone");
    }

    #[test]
    fn normalized_summary_works() {
        let c = cluster(4);
        let flows = vec![write_flow(0, 0, 1, 64, 0)];
        let r = EdmProtocol::default().simulate(&c, &flows);
        let s = r.normalized_mct(|f| ideal_mct(&c, f));
        assert_eq!(s.count(), 1);
        assert!(s.mean() > 0.5);
    }
}
