//! The at-scale network simulator framework (§4.3) and EDM's protocol
//! implementation in it.
//!
//! This is the Rust counterpart of the paper's C simulator: a 144-node
//! cluster behind one switch, message-granularity events, per-protocol
//! control loops. The shared pieces — [`ClusterConfig`], [`Flow`],
//! [`SimResult`], and the [`FabricProtocol`] trait — are used by both EDM
//! (here) and the six baselines in `edm-baselines`.
//!
//! Normalization follows the paper: each flow's completion time is divided
//! by its *ideal* completion time (what it would take alone in the
//! network), so 1.0 is optimal and "within 1.3× of unloaded" means ≤ 1.3.

use edm_sched::scheduler::PollResult;
use edm_sched::{Notification, Policy, Scheduler, SchedulerConfig};
use edm_sim::{Bandwidth, Duration, Engine, EventQueue, Summary, Time, World};
use std::sync::OnceLock;

/// Whether `EDM_SIM_DEBUG` is set, resolved once: the env lookup is a
/// syscall and must stay out of the per-simulation hot path.
fn sim_debug() -> bool {
    static DEBUG: OnceLock<bool> = OnceLock::new();
    *DEBUG.get_or_init(|| std::env::var_os("EDM_SIM_DEBUG").is_some())
}

/// Cluster-wide configuration shared by every protocol.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of nodes (the paper simulates 144).
    pub nodes: usize,
    /// Link bandwidth (scaled to 100 Gb/s in §4.3).
    pub link: Bandwidth,
    /// One-hop propagation delay.
    pub prop_delay: Duration,
    /// Fixed per-direction fabric pipeline latency added to every message
    /// (host stacks + switch, from the Table 1 model).
    pub pipeline_latency: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 144,
            link: Bandwidth::from_gbps(100),
            prop_delay: Duration::from_ns(10),
            // EDM one-way network-stack latency for a small message, from
            // the cycle model (read path / 2 as a representative one-way
            // cost). Protocols override their own pipeline constants.
            pipeline_latency: Duration::from_ns(54),
        }
    }
}

/// Whether a flow models a write (WREQ) or a read (RREQ→RRES pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// One-sided write: `size` bytes from `src` to `dst`.
    Write,
    /// Read: an 8 B RREQ from `src` to `dst`, answered by `size` bytes
    /// of RRES from `dst` back to `src`.
    Read,
}

/// One memory message (flow) offered to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Flow id (dense, 0-based).
    pub id: usize,
    /// Issuing (compute) node.
    pub src: usize,
    /// Target (memory) node.
    pub dst: usize,
    /// Data size in bytes (RRES size for reads, WREQ size for writes).
    pub size: u32,
    /// Arrival (issue) time.
    pub arrival: Time,
    /// Read or write.
    pub kind: FlowKind,
}

/// Per-flow outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowOutcome {
    /// The flow.
    pub flow: Flow,
    /// Completion time (last data byte delivered).
    pub completed: Time,
}

impl FlowOutcome {
    /// Message completion time.
    pub fn mct(&self) -> Duration {
        self.completed.saturating_since(self.flow.arrival)
    }
}

/// Result of simulating one workload under one protocol.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Protocol name.
    pub protocol: &'static str,
    /// Per-flow outcomes (same order as the input flows).
    pub outcomes: Vec<FlowOutcome>,
}

impl SimResult {
    /// Mean completion time over all flows.
    pub fn mean_mct(&self) -> Duration {
        if self.outcomes.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.outcomes.iter().map(|o| o.mct()).sum();
        total / self.outcomes.len() as u64
    }

    /// Summary of per-flow MCTs normalized by `ideal(flow)`.
    pub fn normalized_mct<F: Fn(&Flow) -> Duration>(&self, ideal: F) -> Summary {
        let mut s = Summary::new();
        for o in &self.outcomes {
            s.record(o.mct().ratio(ideal(&o.flow)));
        }
        s
    }

    /// Summary restricted to one flow kind.
    pub fn normalized_mct_of_kind<F: Fn(&Flow) -> Duration>(
        &self,
        kind: FlowKind,
        ideal: F,
    ) -> Summary {
        let mut s = Summary::new();
        for o in self.outcomes.iter().filter(|o| o.flow.kind == kind) {
            s.record(o.mct().ratio(ideal(&o.flow)));
        }
        s
    }
}

/// A fabric protocol that can simulate a workload on a cluster.
pub trait FabricProtocol {
    /// Display name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Simulates `flows` over `cluster`, returning per-flow outcomes.
    fn simulate(&mut self, cluster: &ClusterConfig, flows: &[Flow]) -> SimResult;
}

/// The ideal (unloaded) completion time of a flow under EDM's transport
/// shape: a control hop to the switch (demand), a control hop back (grant —
/// for reads this is the forwarded RREQ), then the data flight.
///
/// For the paper-faithful Figure 8 normalization ("normalized by the
/// corresponding unloaded latency"), prefer measuring each protocol's own
/// solo flow via [`solo_mct`]; this closed form is the EDM reference.
pub fn ideal_mct(cluster: &ClusterConfig, flow: &Flow) -> Duration {
    let ctrl_hop =
        cluster.pipeline_latency / 2 + cluster.prop_delay + cluster.link.tx_time_bytes(8);
    let data_hop = cluster.pipeline_latency / 2
        + 2 * cluster.prop_delay
        + cluster.link.tx_time_bytes(flow.size as u64);
    2 * ctrl_hop + data_hop
}

/// Measures a protocol's *unloaded* completion time for a flow by running
/// it alone in the cluster — the paper's normalization baseline for
/// Figure 8 ("the time it would take for that message to complete if it
/// were the only message in the network").
pub fn solo_mct<P: FabricProtocol + ?Sized>(
    protocol: &mut P,
    cluster: &ClusterConfig,
    flow: &Flow,
) -> Duration {
    let solo = Flow {
        id: 0,
        arrival: Time::ZERO,
        ..*flow
    };
    let result = protocol.simulate(cluster, &[solo]);
    result.outcomes[0].mct()
}

// ---------------------------------------------------------------------
// EDM protocol implementation
// ---------------------------------------------------------------------

/// EDM's in-network scheduler protocol for the cluster simulator.
///
/// Mechanics per §3.1.1:
/// * write arrival → `/N/` to the switch (half RTT) → queued;
/// * read arrival → RREQ to the switch (half RTT) → queued as the RRES
///   demand (implicit notification);
/// * the scheduler polls; each grant releases one chunk from the matched
///   sender, arriving `grant flight + chunk serialization + data flight`
///   later; ports free `chunk/B` after the grant (back-to-back pipelining);
/// * a flow completes when its last chunk reaches the destination.
///
/// Notification/grant blocks ride repurposed IFG slots, so their bandwidth
/// is not charged against the data links (§3.2); their latency is.
#[derive(Debug, Clone, Copy)]
pub struct EdmProtocol {
    /// Scheduler chunk size (the evaluation uses 256 B).
    pub chunk_bytes: u32,
    /// Scheduling policy.
    pub policy: Policy,
    /// X: max active notifications per source–destination pair.
    pub max_active_per_pair: usize,
    /// §3.1.2 optimization: when the X bound forces same-pair messages to
    /// wait, batch them into one "mega" message with a single
    /// notification. Off by default (the recorded experiments don't use
    /// it); enable for hot-pair workloads.
    pub batch_small_messages: bool,
}

impl Default for EdmProtocol {
    fn default() -> Self {
        EdmProtocol {
            chunk_bytes: 256,
            policy: Policy::Srpt,
            max_active_per_pair: 3,
            batch_small_messages: false,
        }
    }
}

/// A (possibly mega-batched) scheduled message: the flows it carries in
/// FIFO order and their cumulative byte boundaries.
#[derive(Debug)]
struct MsgState {
    flows: Vec<usize>,
    /// prefix[i] = cumulative bytes after flow i.
    prefix: Vec<u32>,
    delivered: u32,
    next_flow: usize,
    /// Scheduler msg_id this message was notified under (sanity checks).
    msg_id: u8,
    /// Next in-flight message of the same pair — the pair's grant FIFO as
    /// an intrusive list through the slab (target index + 1; 0 = last).
    /// The zero sentinel keeps the per-pair slabs calloc-cheap.
    next_in_pair: u32,
}

#[derive(Debug, Clone)]
enum EdmEv {
    /// A flow's demand reaches the switch.
    DemandArrives { flow_idx: usize },
    /// Scheduler poll.
    Poll,
    /// A chunk's last byte reaches the flow's data destination.
    ChunkDelivered {
        target: usize,
        bytes: u32,
        last: bool,
    },
}

struct EdmWorld {
    cluster: ClusterConfig,
    flows: Vec<Flow>,
    scheduler: Scheduler,
    /// Head of each pair's in-flight message FIFO (`targets` index + 1;
    /// 0 = empty), keyed by pair index — a flat slab replacing the former
    /// `HashMap<(u16, u16, u8), usize>` grant lookup. Grants within a pair
    /// are strictly FIFO (§3.1.1 property 5), so the head *is* the
    /// granted message.
    pair_head: Vec<u32>,
    /// Tail of each pair's in-flight message FIFO (`targets` index + 1).
    pair_tail: Vec<u32>,
    targets: Vec<MsgState>,
    batch_small: bool,
    /// Pending notifications blocked on the per-pair X limit.
    backlog: std::collections::VecDeque<usize>,
    /// Backlogged flow count per pair index: O(1) same-pair waiter checks
    /// instead of an O(backlog) scan per demand arrival.
    backlog_per_pair: Vec<u32>,
    completed: Vec<Option<Time>>,
    poll_at: Option<Time>,
    /// msg_id allocator per pair index (flat slab, wraps at 256).
    next_msg_id: Vec<u8>,
    /// Reused scheduler poll result (grant buffer survives across polls).
    poll_scratch: PollResult,
}

impl EdmWorld {
    /// The scheduler's (src, dest) for a flow's *data* direction: writes
    /// send src→dst; reads send the RRES dst→src.
    fn data_dir(flow: &Flow) -> (u16, u16) {
        match flow.kind {
            FlowKind::Write => (flow.src as u16, flow.dst as u16),
            FlowKind::Read => (flow.dst as u16, flow.src as u16),
        }
    }

    /// Flat index of a (data src, data dst) pair.
    fn pair_idx(&self, src: u16, dst: u16) -> usize {
        src as usize * self.cluster.nodes + dst as usize
    }

    /// Announces one message (possibly carrying several batched same-pair
    /// flows, §3.1.2) to the scheduler.
    fn try_notify(&mut self, now: Time, flow_idxs: Vec<usize>, q: &mut EventQueue<EdmEv>) {
        debug_assert!(!flow_idxs.is_empty());
        let (s, d) = Self::data_dir(&self.flows[flow_idxs[0]]);
        let mut prefix = Vec::with_capacity(flow_idxs.len());
        let mut total = 0u32;
        for &fi in &flow_idxs {
            debug_assert_eq!(Self::data_dir(&self.flows[fi]), (s, d), "mega is one pair");
            total += self.flows[fi].size;
            prefix.push(total);
        }
        let pi = self.pair_idx(s, d);
        let msg_id = self.next_msg_id[pi];
        match self
            .scheduler
            .notify(now, Notification::new(s, d, msg_id, total))
        {
            Ok(()) => {
                self.next_msg_id[pi] = msg_id.wrapping_add(1);
                self.targets.push(MsgState {
                    flows: flow_idxs,
                    prefix,
                    delivered: 0,
                    next_flow: 0,
                    msg_id,
                    next_in_pair: 0,
                });
                // Append to the pair's grant FIFO (index + 1 encoding).
                let slot = self.targets.len() as u32;
                if self.pair_head[pi] == 0 {
                    self.pair_head[pi] = slot;
                } else {
                    self.targets[(self.pair_tail[pi] - 1) as usize].next_in_pair = slot;
                }
                self.pair_tail[pi] = slot;
                self.schedule_poll(now, q);
            }
            Err(edm_sched::scheduler::NotifyError::PairLimitReached { .. }) => {
                // Sender rate-limiting: retry when a grant frees a slot.
                self.backlog_per_pair[pi] += flow_idxs.len() as u32;
                self.backlog.extend(flow_idxs);
            }
            Err(e) => panic!("unexpected notify error: {e}"),
        }
    }

    /// Admits backlogged flows after a pair slot frees: one flow, or — with
    /// batching — every backlogged flow of that same pair folded into a
    /// single mega message (bounded by the 16-bit size field, §3.1.4).
    fn admit_from_backlog(&mut self, now: Time, q: &mut EventQueue<EdmEv>) {
        let Some(first) = self.backlog.pop_front() else {
            return;
        };
        let (s, d) = Self::data_dir(&self.flows[first]);
        let pi = self.pair_idx(s, d);
        self.backlog_per_pair[pi] -= 1;
        if !self.batch_small {
            self.try_notify(now, vec![first], q);
            return;
        }
        let pair = (s, d);
        let mut batch = vec![first];
        let mut total = self.flows[first].size;
        let flows = &self.flows;
        self.backlog.retain(|&fi| {
            if Self::data_dir(&flows[fi]) == pair
                && total as u64 + flows[fi].size as u64 <= u16::MAX as u64
            {
                total += flows[fi].size;
                batch.push(fi);
                false
            } else {
                true
            }
        });
        self.backlog_per_pair[pi] -= (batch.len() - 1) as u32;
        self.try_notify(now, batch, q);
    }

    fn schedule_poll(&mut self, at: Time, q: &mut EventQueue<EdmEv>) {
        if self.poll_at.is_none_or(|t| at < t) {
            self.poll_at = Some(at);
            q.schedule(at, EdmEv::Poll);
        }
    }
}

impl World for EdmWorld {
    type Event = EdmEv;

    fn handle(&mut self, now: Time, ev: EdmEv, q: &mut EventQueue<EdmEv>) {
        match ev {
            EdmEv::DemandArrives { flow_idx } => {
                // Host message-queue FIFO: a new message may not overtake
                // older same-pair messages already waiting in the backlog.
                let (s, d) = Self::data_dir(&self.flows[flow_idx]);
                let pi = self.pair_idx(s, d);
                if self.backlog_per_pair[pi] > 0 {
                    self.backlog_per_pair[pi] += 1;
                    self.backlog.push_back(flow_idx);
                } else {
                    self.try_notify(now, vec![flow_idx], q);
                }
            }
            EdmEv::Poll => {
                // Only the event matching the recorded wake-up runs; any
                // superseded (stale) poll event is dropped, otherwise each
                // stale event would spawn its own chain of wake-up polls.
                if self.poll_at != Some(now) {
                    return;
                }
                self.poll_at = None;
                let mut result = std::mem::take(&mut self.poll_scratch);
                self.scheduler.poll_into(now, &mut result);
                let half = self.cluster.pipeline_latency / 2
                    + self.cluster.prop_delay
                    + self.cluster.link.tx_time_bytes(8); // grant block flight
                for g in &result.grants {
                    // Grants within a pair are FIFO, so the granted message
                    // is the head of the pair's in-flight list.
                    let pi = self.pair_idx(g.src, g.dest);
                    debug_assert_ne!(self.pair_head[pi], 0, "grant for unknown flow");
                    let target = (self.pair_head[pi] - 1) as usize;
                    debug_assert_eq!(self.targets[target].msg_id, g.msg_id);
                    // Grant flies to the sender (half RTT), sender emits the
                    // chunk, chunk flies src -> switch -> dst.
                    let chunk_tx = self.cluster.link.tx_time_bytes(g.chunk_bytes as u64);
                    let data_flight =
                        self.cluster.pipeline_latency / 2 + 2 * self.cluster.prop_delay + chunk_tx;
                    let delivered = now + result.sched_latency + half + data_flight;
                    if g.is_final() {
                        let next = self.targets[target].next_in_pair;
                        self.pair_head[pi] = next;
                        if next == 0 {
                            self.pair_tail[pi] = 0;
                        }
                    }
                    q.schedule(
                        delivered,
                        EdmEv::ChunkDelivered {
                            target,
                            bytes: g.chunk_bytes,
                            last: g.is_final(),
                        },
                    );
                }
                if let Some(t) = result.next_wakeup {
                    self.schedule_poll(t, q);
                }
                self.poll_scratch = result;
            }
            EdmEv::ChunkDelivered {
                target,
                bytes,
                last,
            } => {
                let st = &mut self.targets[target];
                st.delivered += bytes;
                // Sub-flows of a mega message complete in FIFO order as
                // their cumulative bytes arrive.
                while st.next_flow < st.flows.len() && st.prefix[st.next_flow] <= st.delivered {
                    self.completed[st.flows[st.next_flow]] = Some(now);
                    st.next_flow += 1;
                }
                if last {
                    debug_assert_eq!(st.next_flow, st.flows.len(), "all sub-flows done");
                    // A pair slot freed: admit backlogged demand.
                    self.admit_from_backlog(now, q);
                    self.schedule_poll(now, q);
                }
            }
        }
    }
}

impl FabricProtocol for EdmProtocol {
    fn name(&self) -> &'static str {
        "EDM"
    }

    fn simulate(&mut self, cluster: &ClusterConfig, flows: &[Flow]) -> SimResult {
        let sched_cfg = SchedulerConfig {
            ports: cluster.nodes,
            chunk_bytes: self.chunk_bytes,
            link: cluster.link,
            policy: self.policy,
            max_active_per_pair: self.max_active_per_pair,
            clock: edm_sched::ASIC_CLOCK,
        };
        let pairs = cluster.nodes * cluster.nodes;
        let world = EdmWorld {
            cluster: *cluster,
            flows: flows.to_vec(),
            scheduler: Scheduler::new(sched_cfg),
            pair_head: vec![0; pairs],
            pair_tail: vec![0; pairs],
            targets: Vec::with_capacity(flows.len()),
            batch_small: self.batch_small_messages,
            backlog: std::collections::VecDeque::new(),
            backlog_per_pair: vec![0; pairs],
            completed: vec![None; flows.len()],
            poll_at: None,
            next_msg_id: vec![0; pairs],
            poll_scratch: PollResult::default(),
        };
        let mut engine = Engine::new(world);
        for (i, f) in flows.iter().enumerate() {
            // Demand reaches the switch half an RTT after issue (RREQ or
            // /N/ flight).
            let at = f.arrival
                + cluster.pipeline_latency / 2
                + cluster.prop_delay
                + cluster.link.tx_time_bytes(8);
            engine
                .queue_mut()
                .schedule(at, EdmEv::DemandArrives { flow_idx: i });
        }
        engine.run();
        if sim_debug() {
            eprintln!("[edm-sim] events dispatched: {}", engine.steps());
        }
        let world = engine.into_world();
        let outcomes = flows
            .iter()
            .enumerate()
            .map(|(i, &flow)| FlowOutcome {
                flow,
                completed: world.completed[i].expect("all flows complete when the queue drains"),
            })
            .collect();
        SimResult {
            protocol: self.name(),
            outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> ClusterConfig {
        ClusterConfig {
            nodes: n,
            ..ClusterConfig::default()
        }
    }

    fn write_flow(id: usize, src: usize, dst: usize, size: u32, at_ns: u64) -> Flow {
        Flow {
            id,
            src,
            dst,
            size,
            arrival: Time::from_ns(at_ns),
            kind: FlowKind::Write,
        }
    }

    #[test]
    fn single_write_completes_near_ideal() {
        let c = cluster(8);
        let flows = vec![write_flow(0, 0, 1, 64, 0)];
        let r = EdmProtocol::default().simulate(&c, &flows);
        let norm = r.outcomes[0].mct().ratio(ideal_mct(&c, &flows[0]));
        assert!(
            (0.8..1.6).contains(&norm),
            "unloaded write normalized MCT {norm}"
        );
    }

    #[test]
    fn single_read_completes_near_ideal() {
        let c = cluster(8);
        let flows = vec![Flow {
            id: 0,
            src: 0,
            dst: 1,
            size: 64,
            arrival: Time::ZERO,
            kind: FlowKind::Read,
        }];
        let r = EdmProtocol::default().simulate(&c, &flows);
        let norm = r.outcomes[0].mct().ratio(ideal_mct(&c, &flows[0]));
        assert!(
            (0.7..1.6).contains(&norm),
            "unloaded read normalized {norm}"
        );
    }

    #[test]
    fn incast_serializes_but_does_not_collapse() {
        // 8-to-1 incast of 256 B writes: EDM must serialize them (zero
        // queuing means one sender at a time) with no pathological delay.
        let c = cluster(16);
        let flows: Vec<Flow> = (0..8).map(|i| write_flow(i, i, 15, 256, 0)).collect();
        let r = EdmProtocol::default().simulate(&c, &flows);
        let mcts: Vec<f64> = r.outcomes.iter().map(|o| o.mct().as_ns_f64()).collect();
        let max = mcts.iter().cloned().fold(0.0, f64::max);
        // 8 chunks of 256 B at 100 G = 8 x 20.5 ns serialization; with
        // control latency the last finisher should still be < 1 us.
        assert!(max < 1000.0, "worst incast MCT {max} ns");
    }

    #[test]
    fn disjoint_pairs_run_in_parallel() {
        let c = cluster(8);
        let flows: Vec<Flow> = (0..4)
            .map(|i| write_flow(i, i * 2, i * 2 + 1, 256, 0))
            .collect();
        let r = EdmProtocol::default().simulate(&c, &flows);
        let mcts: Vec<f64> = r.outcomes.iter().map(|o| o.mct().as_ns_f64()).collect();
        let spread = mcts.iter().cloned().fold(0.0, f64::max)
            - mcts.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            spread < 50.0,
            "disjoint pairs should complete together, spread {spread} ns"
        );
    }

    #[test]
    fn multi_chunk_flow_completes_with_all_bytes() {
        let c = cluster(4);
        let flows = vec![write_flow(0, 0, 1, 4096, 0)];
        let r = EdmProtocol::default().simulate(&c, &flows);
        // 4096 B = 16 chunks of 256 B; chunk pipeline is back-to-back, so
        // MCT ≈ control latency + 16 x 20.48 ns ≈ 330 + 100 ns.
        let mct = r.outcomes[0].mct().as_ns_f64();
        let ser = c.link.tx_time_bytes(4096).as_ns_f64();
        assert!(mct >= ser, "MCT {mct} cannot beat serialization {ser}");
        assert!(mct < ser + 500.0, "MCT {mct} ns has excessive overhead");
    }

    #[test]
    fn x_limit_backlog_drains() {
        // 10 messages on one pair with X=3: all must still complete.
        let c = cluster(4);
        let flows: Vec<Flow> = (0..10).map(|i| write_flow(i, 0, 1, 64, 0)).collect();
        let r = EdmProtocol::default().simulate(&c, &flows);
        assert_eq!(r.outcomes.len(), 10);
        for o in &r.outcomes {
            assert!(o.completed > o.flow.arrival);
        }
    }

    #[test]
    fn srpt_favors_short_flows_under_contention() {
        let c = cluster(4);
        let flows = vec![
            write_flow(0, 0, 2, 64 * 1024, 0), // elephant
            write_flow(1, 1, 2, 64, 10),       // mouse, arrives just after
        ];
        let r = EdmProtocol {
            policy: Policy::Srpt,
            ..EdmProtocol::default()
        }
        .simulate(&c, &flows);
        let mouse = r.outcomes[1].mct().as_ns_f64();
        let elephant = r.outcomes[0].mct().as_ns_f64();
        assert!(
            mouse < elephant / 3.0,
            "SRPT should finish the mouse ({mouse} ns) long before the elephant ({elephant} ns)"
        );
    }

    #[test]
    fn mega_batching_completes_hot_pair_backlog() {
        // 30 small messages on one pair: with batching the backlog folds
        // into mega messages; everything must still complete, in order.
        let c = cluster(4);
        let flows: Vec<Flow> = (0..30).map(|i| write_flow(i, 0, 1, 64, 0)).collect();
        let batched = EdmProtocol {
            batch_small_messages: true,
            ..EdmProtocol::default()
        }
        .simulate(&c, &flows);
        assert_eq!(batched.outcomes.len(), 30);
        for o in &batched.outcomes {
            assert!(o.completed > o.flow.arrival);
        }
        // Batching needs fewer notifications, so the tail completes no
        // later than without batching.
        let plain = EdmProtocol::default().simulate(&c, &flows);
        let tail = |r: &SimResult| r.outcomes.iter().map(|o| o.completed).max().unwrap();
        assert!(tail(&batched) <= tail(&plain));
    }

    #[test]
    fn mega_batching_preserves_per_flow_order() {
        let c = cluster(4);
        let flows: Vec<Flow> = (0..12)
            .map(|i| write_flow(i, 0, 1, 64 + 32 * (i as u32 % 3), i as u64))
            .collect();
        let r = EdmProtocol {
            batch_small_messages: true,
            ..EdmProtocol::default()
        }
        .simulate(&c, &flows);
        // Same-pair messages complete in arrival order (EDM's in-order
        // guarantee within a pair, §3.1.1 property 5).
        for w in r.outcomes.windows(2) {
            assert!(
                w[0].completed <= w[1].completed,
                "pair order violated: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn normalized_summary_works() {
        let c = cluster(4);
        let flows = vec![write_flow(0, 0, 1, 64, 0)];
        let r = EdmProtocol::default().simulate(&c, &flows);
        let s = r.normalized_mct(|f| ideal_mct(&c, f));
        assert_eq!(s.count(), 1);
        assert!(s.mean() > 0.5);
    }
}
