//! A functional end-to-end EDM fabric: compute nodes, an EDM switch running
//! the real PIM scheduler, and memory nodes backed by the DDR4 controller —
//! the software twin of the paper's three-FPGA testbed (Figure 4).
//!
//! Data really moves: a remote read returns the bytes previously written,
//! RMWs are atomic, writes land in the memory node's DRAM. Timing composes
//! the per-stage cycle model of [`crate::stack`] with transmission,
//! propagation, and PMA/PMD constants, so the measured unloaded latency
//! reproduces Table 1 (~300 ns for 64 B accesses) while the payloads stay
//! real.
//!
//! Transport follows §3.1.1 exactly:
//!
//! * a WREQ sends an explicit `/N/` and waits for `/G/` grants, one chunk
//!   per grant;
//! * an RREQ travels immediately — the switch buffers it as the implicit
//!   demand notification, and *forwarding the RREQ to the memory node is
//!   itself the first grant* for the RRES; later RRES chunks get `/G/`s;
//! * the switch forwards data chunks through pre-established virtual
//!   circuits (no L2 processing), cut-through at block granularity.

use crate::latency::physical::{PMA_PMD_PASS, PROPAGATION};
use crate::message::MemOp;
use crate::stack;
use edm_memory::rmw::RmwOp;
use edm_memory::MemoryController;
use edm_phy::mem_codec;
use edm_sched::{Notification, Policy, Scheduler, SchedulerConfig};
use edm_sim::{Bandwidth, Duration, Engine, EventQueue, Time, World};
use std::collections::HashMap;

/// Identifies a node (== its switch port).
pub type NodeId = u16;

/// Configuration of the testbed fabric.
#[derive(Debug, Clone, Copy)]
pub struct TestbedConfig {
    /// Number of nodes attached to the switch.
    pub nodes: usize,
    /// Link bandwidth (the prototype uses 25 GbE).
    pub link: Bandwidth,
    /// Scheduler chunk size in bytes.
    pub chunk_bytes: u32,
    /// Scheduling policy.
    pub policy: Policy,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            nodes: 2,
            link: Bandwidth::from_gbps(25),
            chunk_bytes: 256,
            policy: Policy::Srpt,
        }
    }
}

/// A completed remote operation, with timestamps for latency accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The node that issued the operation.
    pub issuer: NodeId,
    /// Kind tag: `"read"`, `"write"`, or `"rmw"`.
    pub kind: &'static str,
    /// Application-assigned operation id.
    pub op_id: u64,
    /// When the application issued it.
    pub issued: Time,
    /// When it completed (data delivered / write landed).
    pub completed: Time,
    /// Returned data (read data or RMW original value; empty for writes).
    pub data: Vec<u8>,
}

impl Completion {
    /// End-to-end latency.
    pub fn latency(&self) -> Duration {
        self.completed.saturating_since(self.issued)
    }
}

/// Packets exchanged on the wire (transaction-level view of block runs).
#[doc(hidden)]
#[derive(Debug, Clone)]
pub enum Pkt {
    /// `/N/` — explicit write-demand notification.
    Notify { size: u32 },
    /// `/G/` — grant for the next chunk of a message.
    Grant { chunk: u32 },
    /// An RREQ/RMWREQ `/M*/` run (also the implicit notification/grant).
    Request { op: MemOp },
    /// One granted chunk of a WREQ.
    WriteChunk {
        addr: u64,
        offset: u32,
        data: Vec<u8>,
        last: bool,
    },
    /// One granted chunk of an RRES.
    ReadChunk {
        offset: u32,
        data: Vec<u8>,
        last: bool,
    },
}

impl Pkt {
    /// Wire size in PHY blocks.
    fn blocks(&self) -> u64 {
        match self {
            Pkt::Notify { .. } | Pkt::Grant { .. } => 1,
            Pkt::Request { op } => {
                mem_codec::blocks_for_message(op.nominal_bytes() as usize) as u64
            }
            Pkt::WriteChunk { data, .. } | Pkt::ReadChunk { data, .. } => {
                mem_codec::blocks_for_message(data.len()) as u64
            }
        }
    }
}

/// DES events (public only because `Testbed: World` exposes the type).
#[doc(hidden)]
#[derive(Debug, Clone)]
pub enum Ev {
    /// Application issues an operation at a node.
    App {
        node: NodeId,
        peer: NodeId,
        op: MemOp,
        op_id: u64,
    },
    /// A packet arrives at the switch from `src`.
    SwitchRx {
        src: NodeId,
        dst: NodeId,
        msg_id: u8,
        pkt: Pkt,
    },
    /// A packet arrives at node `node`.
    NodeRx {
        node: NodeId,
        src: NodeId,
        msg_id: u8,
        pkt: Pkt,
    },
    /// Scheduler poll.
    SchedPoll,
}

/// Per-message sender-side state.
#[derive(Debug)]
enum TxState {
    /// Outgoing write: data waiting for grants.
    Write {
        peer: NodeId,
        addr: u64,
        data: Vec<u8>,
        sent: u32,
        op_id: u64,
        issued: Time,
    },
    /// Outgoing read/RMW: awaiting RRES.
    Read {
        expected: u32,
        received: Vec<u8>,
        op_id: u64,
        issued: Time,
        kind: &'static str,
    },
}

/// Memory-node-side staged RRES data awaiting grants.
#[derive(Debug)]
struct RresState {
    data: Vec<u8>,
    sent: u32,
}

#[derive(Debug, Default)]
struct Node {
    /// Sender-side message state, keyed by msg_id.
    tx: HashMap<u8, TxState>,
    /// Memory-side staged read responses, keyed by (peer, request msg_id).
    rres: HashMap<(NodeId, u8), RresState>,
    next_msg_id: u8,
    /// Uplink busy-until (serialization at the source).
    tx_free_at: Time,
}

/// The testbed world.
pub struct Testbed {
    config: TestbedConfig,
    nodes: Vec<Node>,
    memories: Vec<MemoryController>,
    scheduler: Scheduler,
    /// RREQs buffered at the switch: (src=memory, dst=compute, msg_id) ->
    /// original request, released by the first grant.
    buffered_rreqs: HashMap<(NodeId, NodeId, u8), (NodeId, Pkt)>,
    /// Per-switch-egress busy-until (downlink serialization).
    egress_free_at: Vec<Time>,
    poll_scheduled: Option<Time>,
    completions: Vec<Completion>,
    next_op_id: u64,
}

impl std::fmt::Debug for Testbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Testbed")
            .field("nodes", &self.nodes.len())
            .field("completions", &self.completions.len())
            .finish()
    }
}

impl Testbed {
    /// Creates a testbed with `config.nodes` nodes, each with local DDR4.
    pub fn new(config: TestbedConfig) -> Self {
        let sched_cfg = SchedulerConfig {
            ports: config.nodes,
            chunk_bytes: config.chunk_bytes,
            link: config.link,
            policy: config.policy,
            max_active_per_pair: 3,
            clock: edm_sched::ASIC_CLOCK,
        };
        Testbed {
            nodes: (0..config.nodes).map(|_| Node::default()).collect(),
            memories: (0..config.nodes)
                .map(|_| MemoryController::ddr4())
                .collect(),
            scheduler: Scheduler::new(sched_cfg),
            buffered_rreqs: HashMap::new(),
            egress_free_at: vec![Time::ZERO; config.nodes],
            poll_scheduled: None,
            completions: Vec::new(),
            next_op_id: 0,
            config,
        }
    }

    /// Completed operations so far.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Direct access to a node's memory controller (test setup).
    pub fn memory_mut(&mut self, node: NodeId) -> &mut MemoryController {
        &mut self.memories[node as usize]
    }

    fn wire_time(&self, blocks: u64) -> Duration {
        // Serialization at 66 bits per block on the line.
        self.config.link.tx_time_bits(blocks * 66)
    }

    /// One-hop delivery latency after serialization: TX PMA/PMD +
    /// propagation + RX PMA/PMD.
    fn hop() -> Duration {
        PMA_PMD_PASS + PROPAGATION + PMA_PMD_PASS
    }

    #[allow(clippy::too_many_arguments)]
    fn send_to_switch(
        &mut self,
        now: Time,
        q: &mut EventQueue<Ev>,
        src: NodeId,
        dst: NodeId,
        msg_id: u8,
        pkt: Pkt,
        extra_tx_cycles: u64,
    ) {
        let node = &mut self.nodes[src as usize];
        let depart = now.max(node.tx_free_at) + stack::cycles(extra_tx_cycles + stack::PCS_PASS);
        let ser = self.config.link.tx_time_bits(pkt.blocks() * 66);
        node.tx_free_at = depart + ser;
        let arrive = depart + ser + Self::hop();
        q.schedule(
            arrive,
            Ev::SwitchRx {
                src,
                dst,
                msg_id,
                pkt,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn send_to_node(
        &mut self,
        now: Time,
        q: &mut EventQueue<Ev>,
        src: NodeId,
        node: NodeId,
        msg_id: u8,
        pkt: Pkt,
        extra_tx_cycles: u64,
    ) {
        let depart = now.max(self.egress_free_at[node as usize])
            + stack::cycles(extra_tx_cycles + stack::PCS_PASS);
        let ser = self.wire_time(pkt.blocks());
        self.egress_free_at[node as usize] = depart + ser;
        let arrive = depart + ser + Self::hop();
        q.schedule(
            arrive,
            Ev::NodeRx {
                node,
                src,
                msg_id,
                pkt,
            },
        );
    }

    fn schedule_poll(&mut self, q: &mut EventQueue<Ev>, at: Time) {
        if self.poll_scheduled.is_none_or(|t| at < t) {
            self.poll_scheduled = Some(at);
            q.schedule(at, Ev::SchedPoll);
        }
    }

    fn alloc_msg_id(&mut self, node: NodeId) -> u8 {
        let n = &mut self.nodes[node as usize];
        let id = n.next_msg_id;
        n.next_msg_id = n.next_msg_id.wrapping_add(1);
        id
    }

    fn handle_app(
        &mut self,
        now: Time,
        q: &mut EventQueue<Ev>,
        node: NodeId,
        peer: NodeId,
        op: MemOp,
        op_id: u64,
    ) {
        let msg_id = self.alloc_msg_id(node);
        // Requests (reads, RMWs) travel immediately; writes notify first.
        let two_sided = match &op {
            MemOp::Read { len, .. } => Some((*len, "read")),
            MemOp::Rmw { op: rmw_op, .. } => Some((rmw_op.response_bytes(), "rmw")),
            MemOp::Write { .. } => None,
            MemOp::ReadResponse { .. } => panic!("applications issue requests, not responses"),
        };
        match two_sided {
            Some((expected, kind)) => {
                self.nodes[node as usize].tx.insert(
                    msg_id,
                    TxState::Read {
                        expected,
                        received: Vec::new(),
                        op_id,
                        issued: now,
                        kind,
                    },
                );
                self.send_to_switch(
                    now,
                    q,
                    node,
                    peer,
                    msg_id,
                    Pkt::Request { op },
                    stack::host::GEN_NOTIFY_OR_RREQ,
                );
            }
            None => {
                let MemOp::Write { addr, data } = op else {
                    unreachable!()
                };
                let size = data.len() as u32;
                self.nodes[node as usize].tx.insert(
                    msg_id,
                    TxState::Write {
                        peer,
                        addr,
                        data,
                        sent: 0,
                        op_id,
                        issued: now,
                    },
                );
                self.send_to_switch(
                    now,
                    q,
                    node,
                    peer,
                    msg_id,
                    Pkt::Notify { size },
                    stack::host::GEN_NOTIFY_OR_RREQ,
                );
            }
        }
    }

    fn handle_switch_rx(
        &mut self,
        now: Time,
        q: &mut EventQueue<Ev>,
        src: NodeId,
        dst: NodeId,
        msg_id: u8,
        pkt: Pkt,
    ) {
        let rx_cost = stack::cycles(stack::PCS_PASS + stack::switch::IDENTIFY);
        match pkt {
            Pkt::Notify { size } => {
                let t = now + rx_cost + stack::cycles(stack::switch::ENQUEUE_NOTIFICATION);
                self.scheduler
                    .notify(t, Notification::new(src, dst, msg_id, size))
                    .expect("testbed stays under the pair limit");
                self.schedule_poll(q, t);
            }
            Pkt::Request { ref op } => {
                // Implicit notification: demand for the RRES (dst -> src).
                let rres_size = op
                    .response_bytes()
                    .expect("requests carried to the switch elicit responses");
                let t = now + rx_cost + stack::cycles(stack::switch::ENQUEUE_NOTIFICATION);
                self.scheduler
                    .notify(t, Notification::new(dst, src, msg_id, rres_size))
                    .expect("testbed stays under the pair limit");
                // Buffer the request; the first grant releases it.
                self.buffered_rreqs.insert((dst, src, msg_id), (src, pkt));
                self.schedule_poll(q, t);
            }
            Pkt::Grant { .. } => unreachable!("grants originate at the switch"),
            Pkt::WriteChunk { .. } | Pkt::ReadChunk { .. } => {
                // Data path: forward through the virtual circuit.
                let t = now + stack::cycles(stack::PCS_PASS + stack::switch::FORWARD);
                self.send_to_node(t, q, src, dst, msg_id, pkt, 0);
            }
        }
    }

    fn deliver_grant(&mut self, now: Time, q: &mut EventQueue<Ev>, grant: edm_sched::Grant) {
        let key = (grant.src, grant.dest, grant.msg_id);
        if let Some((orig_src, pkt)) = self.buffered_rreqs.remove(&key) {
            // First grant for an RRES: forward the buffered RREQ itself.
            let t = now + stack::cycles(stack::switch::GEN_GRANT);
            self.send_to_node(t, q, orig_src, grant.src, grant.msg_id, pkt, 0);
        } else {
            let t = now + stack::cycles(stack::switch::GEN_GRANT);
            self.send_to_node(
                t,
                q,
                grant.dest,
                grant.src,
                grant.msg_id,
                Pkt::Grant {
                    chunk: grant.chunk_bytes,
                },
                0,
            );
        }
    }

    fn handle_node_rx(
        &mut self,
        now: Time,
        q: &mut EventQueue<Ev>,
        node: NodeId,
        src: NodeId,
        msg_id: u8,
        pkt: Pkt,
    ) {
        let rx_base = stack::cycles(stack::PCS_PASS);
        match pkt {
            Pkt::Request { op } => {
                // Memory node: serve the request. The RREQ's arrival is the
                // implicit grant for the first RRES chunk.
                let t_proc = now + rx_base + stack::cycles(stack::host::RX_RREQ);
                match op {
                    MemOp::Read { addr, len } => {
                        let (data, timing) =
                            self.memories[node as usize].read(t_proc, addr, len as usize);
                        let ready = timing.complete;
                        self.stage_and_send_rres(ready, q, node, src, msg_id, data);
                    }
                    MemOp::Rmw { addr, op } => {
                        let (orig, timing) = self.memories[node as usize]
                            .rmw(t_proc, edm_memory::RmwRequest { addr, op });
                        let data = orig.to_le_bytes().to_vec();
                        self.stage_and_send_rres(timing.complete, q, node, src, msg_id, data);
                    }
                    _ => panic!("only reads/RMWs travel as requests"),
                }
            }
            Pkt::Grant { chunk } => {
                let grant_cost =
                    rx_base + stack::cycles(stack::host::RX_GRANT + stack::host::READ_GRANT_QUEUE);
                // A grant either continues an RRES (we are the memory node;
                // keyed by the requesting peer) or a WREQ (we are the
                // writer).
                if self.nodes[node as usize].rres.contains_key(&(src, msg_id)) {
                    self.send_next_rres_chunk(now + grant_cost, q, node, src, msg_id, chunk);
                } else {
                    self.send_next_write_chunk(now + grant_cost, q, node, msg_id, chunk);
                }
            }
            Pkt::WriteChunk {
                addr,
                offset,
                data,
                last,
            } => {
                let t = now + rx_base + stack::cycles(stack::host::RX_DATA);
                let timing = self.memories[node as usize].write(t, addr + offset as u64, &data);
                if last {
                    // Completion is recorded against the writer.
                    // Find the writer's op bookkeeping via the sender state.
                    if let Some(TxState::Write { op_id, issued, .. }) =
                        self.nodes[src as usize].tx.remove(&msg_id)
                    {
                        self.completions.push(Completion {
                            issuer: src,
                            kind: "write",
                            op_id,
                            issued,
                            completed: timing.complete,
                            data: Vec::new(),
                        });
                    }
                }
            }
            Pkt::ReadChunk { offset, data, last } => {
                let t = now + rx_base + stack::cycles(stack::host::RX_DATA);
                let done = match self.nodes[node as usize].tx.get_mut(&msg_id) {
                    Some(TxState::Read {
                        received, expected, ..
                    }) => {
                        debug_assert_eq!(received.len(), offset as usize, "in-order chunks");
                        received.extend_from_slice(&data);
                        debug_assert!(received.len() <= *expected as usize);
                        last
                    }
                    _ => panic!("RRES chunk for unknown read"),
                };
                if done {
                    if let Some(TxState::Read {
                        received,
                        op_id,
                        issued,
                        kind,
                        ..
                    }) = self.nodes[node as usize].tx.remove(&msg_id)
                    {
                        self.completions.push(Completion {
                            issuer: node,
                            kind,
                            op_id,
                            issued,
                            completed: t,
                            data: received,
                        });
                    }
                }
            }
            Pkt::Notify { .. } => unreachable!("notifications terminate at the switch"),
        }
    }

    fn stage_and_send_rres(
        &mut self,
        now: Time,
        q: &mut EventQueue<Ev>,
        node: NodeId,
        peer: NodeId,
        msg_id: u8,
        data: Vec<u8>,
    ) {
        let chunk = self.config.chunk_bytes;
        self.nodes[node as usize]
            .rres
            .insert((peer, msg_id), RresState { data, sent: 0 });
        // The request's arrival was the grant for chunk 1.
        self.send_next_rres_chunk(now, q, node, peer, msg_id, chunk);
    }

    fn send_next_rres_chunk(
        &mut self,
        now: Time,
        q: &mut EventQueue<Ev>,
        node: NodeId,
        peer: NodeId,
        msg_id: u8,
        chunk: u32,
    ) {
        let pkt = {
            let st = self.nodes[node as usize]
                .rres
                .get_mut(&(peer, msg_id))
                .expect("grant for unknown RRES");
            let total = st.data.len() as u32;
            let offset = st.sent;
            let n = chunk.min(total - offset);
            let slice = st.data[offset as usize..(offset + n) as usize].to_vec();
            st.sent += n;
            Pkt::ReadChunk {
                offset,
                data: slice,
                last: st.sent >= total,
            }
        };
        if matches!(pkt, Pkt::ReadChunk { last: true, .. }) {
            self.nodes[node as usize].rres.remove(&(peer, msg_id));
        }
        self.send_to_switch(now, q, node, peer, msg_id, pkt, stack::host::GEN_DATA_BLOCK);
    }

    fn send_next_write_chunk(
        &mut self,
        now: Time,
        q: &mut EventQueue<Ev>,
        node: NodeId,
        msg_id: u8,
        chunk: u32,
    ) {
        let (pkt, peer) = {
            let st = self.nodes[node as usize]
                .tx
                .get_mut(&msg_id)
                .expect("grant for unknown write");
            match st {
                TxState::Write {
                    peer,
                    addr,
                    data,
                    sent,
                    ..
                } => {
                    let total = data.len() as u32;
                    let offset = *sent;
                    let n = chunk.min(total - offset);
                    let slice = data[offset as usize..(offset + n) as usize].to_vec();
                    *sent += n;
                    let last = *sent >= total;
                    (
                        Pkt::WriteChunk {
                            addr: *addr,
                            offset,
                            data: slice,
                            last,
                        },
                        *peer,
                    )
                }
                TxState::Read { .. } => panic!("write grant routed to a read"),
            }
        };
        self.send_to_switch(now, q, node, peer, msg_id, pkt, stack::host::GEN_DATA_BLOCK);
    }

    fn handle_poll(&mut self, now: Time, q: &mut EventQueue<Ev>) {
        // Drop superseded poll events; only the recorded wake-up runs.
        if self.poll_scheduled != Some(now) {
            return;
        }
        self.poll_scheduled = None;
        let result = self.scheduler.poll(now);
        let grant_time = now + result.sched_latency;
        for g in result.grants {
            self.deliver_grant(grant_time, q, g);
        }
        if let Some(t) = result.next_wakeup {
            self.schedule_poll(q, t);
        }
    }
}

impl World for Testbed {
    type Event = Ev;

    fn handle(&mut self, now: Time, ev: Ev, q: &mut EventQueue<Ev>) {
        match ev {
            Ev::App {
                node,
                peer,
                op,
                op_id,
            } => self.handle_app(now, q, node, peer, op, op_id),
            Ev::SwitchRx {
                src,
                dst,
                msg_id,
                pkt,
            } => self.handle_switch_rx(now, q, src, dst, msg_id, pkt),
            Ev::NodeRx {
                node,
                src,
                msg_id,
                pkt,
            } => self.handle_node_rx(now, q, node, src, msg_id, pkt),
            Ev::SchedPoll => self.handle_poll(now, q),
        }
    }
}

/// A convenient driver around [`Testbed`] + [`Engine`].
pub struct Fabric {
    engine: Engine<Testbed>,
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric").finish_non_exhaustive()
    }
}

impl Fabric {
    /// Builds a fabric from the testbed configuration.
    pub fn new(config: TestbedConfig) -> Self {
        Fabric {
            engine: Engine::new(Testbed::new(config)),
        }
    }

    /// Pre-populates `node`'s local memory (before running traffic).
    pub fn seed_memory(&mut self, node: NodeId, addr: u64, data: &[u8]) {
        self.engine
            .world_mut()
            .memory_mut(node)
            .store_mut()
            .write(addr, data);
    }

    /// Issues a remote read from `node` to `peer` at time `at`.
    /// Returns the operation id.
    pub fn read(&mut self, at: Time, node: NodeId, peer: NodeId, addr: u64, len: u32) -> u64 {
        self.issue(at, node, peer, MemOp::Read { addr, len })
    }

    /// Issues a remote write.
    pub fn write(&mut self, at: Time, node: NodeId, peer: NodeId, addr: u64, data: Vec<u8>) -> u64 {
        self.issue(at, node, peer, MemOp::Write { addr, data })
    }

    /// Issues a remote atomic RMW.
    pub fn rmw(&mut self, at: Time, node: NodeId, peer: NodeId, addr: u64, op: RmwOp) -> u64 {
        self.issue(at, node, peer, MemOp::Rmw { addr, op })
    }

    fn issue(&mut self, at: Time, node: NodeId, peer: NodeId, op: MemOp) -> u64 {
        let world = self.engine.world_mut();
        let op_id = world.next_op_id;
        world.next_op_id += 1;
        self.engine.queue_mut().schedule(
            at,
            Ev::App {
                node,
                peer,
                op,
                op_id,
            },
        );
        op_id
    }

    /// Runs the fabric until all events drain.
    pub fn run(&mut self) {
        self.engine.run();
    }

    /// Completions recorded so far.
    pub fn completions(&self) -> &[Completion] {
        self.engine.world().completions()
    }

    /// The completion with the given op id, if finished.
    pub fn completion(&self, op_id: u64) -> Option<&Completion> {
        self.completions().iter().find(|c| c.op_id == op_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_returns_seeded_data() {
        let mut f = Fabric::new(TestbedConfig::default());
        f.seed_memory(1, 0x1000, &[7u8; 64]);
        let id = f.read(Time::ZERO, 0, 1, 0x1000, 64);
        f.run();
        let c = f.completion(id).expect("read completed");
        assert_eq!(c.data, vec![7u8; 64]);
        assert_eq!(c.kind, "read");
    }

    #[test]
    fn write_lands_then_read_sees_it() {
        let mut f = Fabric::new(TestbedConfig::default());
        let w = f.write(Time::ZERO, 0, 1, 0x2000, vec![9u8; 64]);
        let r = f.read(Time::from_us(5), 0, 1, 0x2000, 64);
        f.run();
        assert!(f.completion(w).is_some());
        assert_eq!(f.completion(r).unwrap().data, vec![9u8; 64]);
    }

    #[test]
    fn unloaded_read_latency_near_table1() {
        let mut f = Fabric::new(TestbedConfig::default());
        f.seed_memory(1, 0, &[1u8; 64]);
        let id = f.read(Time::ZERO, 0, 1, 0, 64);
        f.run();
        let ns = f.completion(id).unwrap().latency().as_ns_f64();
        // Table 1 pipeline latency is 299.52 ns; a full 64 B transaction
        // additionally pays message serialization and the DRAM access,
        // so the end-to-end figure lands a bit above — still ~300 ns,
        // an order of magnitude below RoCEv2's ~2 us.
        assert!(
            (290.0..420.0).contains(&ns),
            "unloaded 64 B read latency {ns} ns"
        );
    }

    #[test]
    fn unloaded_write_latency_near_table1() {
        let mut f = Fabric::new(TestbedConfig::default());
        let id = f.write(Time::ZERO, 0, 1, 0, vec![2u8; 64]);
        f.run();
        let ns = f.completion(id).unwrap().latency().as_ns_f64();
        assert!(
            (290.0..420.0).contains(&ns),
            "unloaded 64 B write latency {ns} ns"
        );
    }

    #[test]
    fn rmw_cas_is_atomic_over_fabric() {
        let mut f = Fabric::new(TestbedConfig::default());
        // Lock word at 0x100 starts 0. Two CAS race from node 0.
        let a = f.rmw(
            Time::ZERO,
            0,
            1,
            0x100,
            RmwOp::CompareAndSwap {
                expected: 0,
                desired: 1,
            },
        );
        let b = f.rmw(
            Time::from_ns(1),
            0,
            1,
            0x100,
            RmwOp::CompareAndSwap {
                expected: 0,
                desired: 2,
            },
        );
        f.run();
        let ra = u64::from_le_bytes(f.completion(a).unwrap().data.clone().try_into().unwrap());
        let rb = u64::from_le_bytes(f.completion(b).unwrap().data.clone().try_into().unwrap());
        // Exactly one saw 0 (success).
        assert!((ra == 0) ^ (rb == 0), "ra={ra} rb={rb}");
    }

    #[test]
    fn large_read_is_chunked_and_complete() {
        let mut f = Fabric::new(TestbedConfig::default());
        let data: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        f.seed_memory(1, 0x8000, &data);
        let id = f.read(Time::ZERO, 0, 1, 0x8000, 4096);
        f.run();
        assert_eq!(f.completion(id).unwrap().data, data);
    }

    #[test]
    fn large_write_chunks_land_in_order() {
        let mut f = Fabric::new(TestbedConfig::default());
        let data: Vec<u8> = (0..2048).map(|i| (i % 199) as u8).collect();
        let w = f.write(Time::ZERO, 0, 1, 0x4000, data.clone());
        let r = f.read(Time::from_us(20), 0, 1, 0x4000, 2048);
        f.run();
        assert!(f.completion(w).is_some());
        assert_eq!(f.completion(r).unwrap().data, data);
    }

    #[test]
    fn concurrent_reads_from_two_nodes() {
        let mut f = Fabric::new(TestbedConfig {
            nodes: 3,
            ..TestbedConfig::default()
        });
        f.seed_memory(2, 0, &[5u8; 64]);
        let a = f.read(Time::ZERO, 0, 2, 0, 64);
        let b = f.read(Time::ZERO, 1, 2, 0, 64);
        f.run();
        assert_eq!(f.completion(a).unwrap().data, vec![5u8; 64]);
        assert_eq!(f.completion(b).unwrap().data, vec![5u8; 64]);
    }

    #[test]
    fn reads_and_writes_have_similar_unloaded_latency() {
        // Table 1: 299.52 vs 296.96 ns — within a few percent.
        let mut f = Fabric::new(TestbedConfig::default());
        f.seed_memory(1, 0, &[0u8; 64]);
        let r = f.read(Time::ZERO, 0, 1, 0, 64);
        let w = f.write(Time::from_us(10), 0, 1, 0x900, vec![0u8; 64]);
        f.run();
        let lr = f.completion(r).unwrap().latency().as_ns_f64();
        let lw = f.completion(w).unwrap().latency().as_ns_f64();
        assert!(
            (lr - lw).abs() / lr < 0.25,
            "read {lr} ns vs write {lw} ns diverge"
        );
    }
}
