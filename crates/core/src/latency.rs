//! Fabric latency composition — the structure of Table 1.
//!
//! A remote access's fabric latency decomposes into per-node protocol,
//! MAC, and PCS costs, switch forwarding, PMA/PMD + transceiver passes,
//! and propagation. [`FabricLatency`] is that decomposition; the EDM rows
//! are derived from [`crate::stack`]'s cycle model, and `edm-baselines`
//! fills in the TCP/IP, RoCEv2, and raw-Ethernet columns with the same
//! structure.

use crate::stack;
use edm_sim::Duration;

/// One direction's per-hop physical-layer constants (Table 1 footer).
pub mod physical {
    use edm_sim::Duration;

    /// PMA + PMD + transceiver latency per TX-or-RX pass: 19 ns.
    pub const PMA_PMD_PASS: Duration = Duration::from_ns(19);
    /// One-hop propagation delay in the testbed: 10 ns.
    pub const PROPAGATION: Duration = Duration::from_ns(10);
}

/// A Table-1-shaped latency breakdown for one operation (read or write).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricLatency {
    /// Stack name, e.g. `"EDM"`.
    pub stack: &'static str,
    /// `"read"` or `"write"`.
    pub op: &'static str,
    /// Protocol-stack latency at the compute node (e.g. RDMA engine).
    pub compute_protocol: Duration,
    /// MAC-layer latency at the compute node.
    pub compute_mac: Duration,
    /// PCS latency at the compute node (incl. EDM logic for EDM).
    pub compute_pcs: Duration,
    /// Layer-2 forwarding latency at the switch (zero for EDM circuits).
    pub switch_l2: Duration,
    /// MAC-layer latency at the switch.
    pub switch_mac: Duration,
    /// PCS latency at the switch (incl. EDM logic for EDM).
    pub switch_pcs: Duration,
    /// Protocol-stack latency at the memory node.
    pub memory_protocol: Duration,
    /// MAC-layer latency at the memory node.
    pub memory_mac: Duration,
    /// PCS latency at the memory node.
    pub memory_pcs: Duration,
    /// Number of PMA/PMD+transceiver passes (8 for request+response
    /// through one switch, 4 for one-way).
    pub pma_pmd_passes: u64,
    /// Number of one-hop propagation delays.
    pub propagation_hops: u64,
}

impl FabricLatency {
    /// The "Network Stack Latency" subtotal (everything above PMA/PMD).
    pub fn network_stack_latency(&self) -> Duration {
        self.compute_protocol
            + self.compute_mac
            + self.compute_pcs
            + self.switch_l2
            + self.switch_mac
            + self.switch_pcs
            + self.memory_protocol
            + self.memory_mac
            + self.memory_pcs
    }

    /// The "Total Fabric Latency" row.
    pub fn total(&self) -> Duration {
        self.network_stack_latency()
            + self.pma_pmd_passes * physical::PMA_PMD_PASS
            + self.propagation_hops * physical::PROPAGATION
    }
}

/// EDM's read-latency breakdown, derived from the cycle model.
pub fn edm_read() -> FabricLatency {
    FabricLatency {
        stack: "EDM",
        op: "read",
        compute_protocol: Duration::ZERO,
        compute_mac: Duration::ZERO,
        compute_pcs: stack::cycles(
            stack::pcs_passes::COMPUTE_READ * stack::PCS_PASS + stack::compute_node_read_cycles(),
        ),
        switch_l2: Duration::ZERO,
        switch_mac: Duration::ZERO,
        switch_pcs: stack::cycles(
            stack::pcs_passes::SWITCH_READ * stack::PCS_PASS + stack::switch_read_cycles(),
        ),
        memory_protocol: Duration::ZERO,
        memory_mac: Duration::ZERO,
        memory_pcs: stack::cycles(
            stack::pcs_passes::MEMORY_READ * stack::PCS_PASS + stack::memory_node_read_cycles(),
        ),
        pma_pmd_passes: 8,
        propagation_hops: 4,
    }
}

/// EDM's write-latency breakdown, derived from the cycle model.
///
/// A write crosses the fabric three times before the data lands (`/N/` up,
/// `/G/` down, WREQ up — §3.1.4's RTT/2 overhead is folded into these
/// passes), so it also pays 8 PMA/PMD passes and 4 propagation hops.
pub fn edm_write() -> FabricLatency {
    FabricLatency {
        stack: "EDM",
        op: "write",
        compute_protocol: Duration::ZERO,
        compute_mac: Duration::ZERO,
        compute_pcs: stack::cycles(
            stack::pcs_passes::COMPUTE_WRITE * stack::PCS_PASS + stack::compute_node_write_cycles(),
        ),
        switch_l2: Duration::ZERO,
        switch_mac: Duration::ZERO,
        switch_pcs: stack::cycles(
            stack::pcs_passes::SWITCH_WRITE * stack::PCS_PASS + stack::switch_write_cycles(),
        ),
        memory_protocol: Duration::ZERO,
        memory_mac: Duration::ZERO,
        memory_pcs: stack::cycles(
            stack::pcs_passes::MEMORY_WRITE * stack::PCS_PASS + stack::memory_node_write_cycles(),
        ),
        pma_pmd_passes: 8,
        propagation_hops: 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edm_read_total_matches_table1() {
        let l = edm_read();
        assert_eq!(l.network_stack_latency().as_ps(), 107_520);
        assert_eq!(l.total().as_ps(), 299_520); // 299.52 ns
    }

    #[test]
    fn edm_write_total_matches_table1() {
        let l = edm_write();
        assert_eq!(l.network_stack_latency().as_ps(), 104_960);
        assert_eq!(l.total().as_ps(), 296_960); // 296.96 ns
    }

    #[test]
    fn edm_pays_no_mac_or_l2_cost() {
        for l in [edm_read(), edm_write()] {
            assert_eq!(l.compute_mac, Duration::ZERO);
            assert_eq!(l.switch_l2, Duration::ZERO);
            assert_eq!(l.memory_mac, Duration::ZERO);
        }
    }

    #[test]
    fn unloaded_latency_about_300ns() {
        // The headline claim: ~300 ns for both reads and writes.
        for l in [edm_read(), edm_write()] {
            let ns = l.total().as_ns_f64();
            assert!(
                (290.0..305.0).contains(&ns),
                "{} {} = {ns} ns",
                l.stack,
                l.op
            );
        }
    }
}
