//! `edm-core` — the paper's primary contribution: the EDM remote-memory
//! fabric (host network stack, switch network stack, and their composition
//! with the in-network scheduler), plus the latency/throughput models and
//! the at-scale simulator agents that the evaluation section is built on.
//!
//! ## Layout
//!
//! * [`message`] — RREQ / WREQ / RMWREQ / RRES message types (§2.3) and
//!   their `/M*/`-payload serialization;
//! * [`stack`] — the cycle-exact cost model of the host and switch EDM
//!   pipelines (§3.2.1–§3.2.2; every constant of Figure 5);
//! * [`latency`] — Table 1's latency composition; the EDM rows are derived
//!   from [`stack`], totaling ~300 ns unloaded;
//! * [`testbed`] — a *functional* fabric (data really moves, RMWs are
//!   atomic) mirroring the paper's three-FPGA testbed;
//! * [`sim`] — the 144-node message-level simulator framework (§4.3)
//!   shared with `edm-baselines`, plus EDM's protocol implementation;
//! * [`throughput`] — the Figure 6 request-rate model;
//! * [`shim`] — the §3.3 load/store application-integration layer
//!   (virtual-to-physical translation, local/remote dispatch);
//! * [`fault`] — the §3.3 fault-tolerance mechanisms (replicated switch
//!   scheduling state, link corruption monitoring, read-timeout guards).
//!
//! ## Quick start
//!
//! ```
//! use edm_core::testbed::{Fabric, TestbedConfig};
//! use edm_sim::Time;
//!
//! let mut fabric = Fabric::new(TestbedConfig::default());
//! fabric.seed_memory(1, 0x1000, b"disaggregated!!!");
//! let op = fabric.read(Time::ZERO, 0, 1, 0x1000, 16);
//! fabric.run();
//! let done = fabric.completion(op).unwrap();
//! assert_eq!(done.data, b"disaggregated!!!");
//! assert!(done.latency().as_ns_f64() < 500.0); // ~300 ns unloaded
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod latency;
pub mod message;
pub mod shim;
pub mod sim;
pub mod stack;
pub mod testbed;
pub mod throughput;

pub use message::MemOp;
pub use testbed::{Fabric, TestbedConfig};
