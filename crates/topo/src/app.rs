//! The closed-loop application tier: tenants driving YCSB ops over the
//! fabric against remote memory nodes, with the memory tier in the loop.
//!
//! # Model
//!
//! `N` tenants ([`TenantSpec`]) run on compute nodes of a [`Topology`].
//! Each keeps at most `mlp` operations outstanding and samples its next
//! op from a YCSB mix ([`edm_workloads::OpMix`]): remote reads, remote
//! updates, NIC-side RMWs (§3.2.1), or local-DRAM accesses (the
//! local:remote split). An op's *arrival time is an output*: completion
//! of a previous op (plus an exponential think time) triggers the next
//! issue, so offered load adapts to fabric and DRAM backpressure exactly
//! the way a real application's bounded MLP window does.
//!
//! Every remote op pays three tiers:
//!
//! 1. **Fabric, request leg.** Reads and RMWs send an 8 B control block
//!    (RREQ/RMWREQ) that rides repurposed IFG slots (§3.2) — latency but
//!    no scheduling, composed by `control_flight`. Updates carry a
//!    payload, so the request is a real [`Flow`] through the per-switch
//!    demand-sparse scheduler.
//! 2. **Memory service.** At the memory node the op pays DDR4 time in a
//!    [`MemoryService`] (banked open-page contention shared by every
//!    tenant hitting that node — hot Zipf keys collide on real banks).
//! 3. **Fabric, response leg.** Reads return `object_bytes` as a
//!    scheduled flow; updates and RMWs return control-block acks.
//!
//! Completion then drives the tenant's next arrival. Request→response
//! latency lands in bounded-memory [`LogHistogram`]s, plus
//! [`Throughput`]/[`Availability`] windows — resident state is O(active
//! ops + active flows), never O(total ops), so million-op campaigns
//! stream like the flow-level ones.
//!
//! # Determinism and sharding
//!
//! The tier is *replicated* app state inside every shard's
//! `TopoWorld`, advanced by `Issue`/`Service`/`Done` events whose
//! order keys (`evord::app_*`) sort after all fabric ranks at one
//! instant — the app observes a settled fabric. Flow-terminal hooks fire
//! from barrier-applied credits whose application order can differ from
//! the emitting shard's settle order, so hooks only write per-op state
//! and schedule canonically-keyed events; all RNG draws, tenant
//! accounting, and stats recording happen inside the replicated events.
//! Events scheduled from those hooks sit at least
//! `min(nic_delay, completion_delay)` in the future, which
//! [`TopoEdm::simulate_app_sharded`] folds into the conservative-window
//! lookahead — the floor that keeps shards 1–4 bit-identical (pinned by
//! `prop_app`).
//!
//! # The CXL-over-Ethernet baseline
//!
//! [`AppTransport::CxlOe`] swaps the fabric tiers for a store-and-forward
//! Ethernet transport on the *identical* topology and routes: every leg
//! (requests, responses, and both RMW directions) is a framed message
//! serialized hop by hop through per-link full-duplex lanes with a
//! per-switch forwarding delay and per-end host/adapter latency — the
//! tunneled-CXL design EDM's Figure 7 compares against. Memory service
//! and the closed loop are shared, so EDM vs CXL-oE differences are
//! transport-only.

use crate::shard::ShardPlan;
use crate::topology::{Endpoint, Topology};
use crate::world::{
    access_half, link_lat, tx8, TopoEdm, TopoEdmConfig, TopoEv, TopoOutcome, TopoStreamStats,
    TopoWorld, NO_SOURCE,
};
use edm_core::sim::{evord, Flow, FlowKind};
use edm_memory::{DramConfig, MemoryService, KV_SLOT_HEADER};
use edm_sim::rng::Zipf;
use edm_sim::sharded::run_sharded;
use edm_sim::{Availability, Duration, Engine, EventQueue, LogHistogram, Rng, Throughput, Time};
use edm_workloads::{OpKind, TenantSpec};
use std::collections::HashMap;
use std::sync::Arc;

/// Type of the absent sink in app runs (outcomes are consumed by the
/// replicated app state, not a callback).
type NoSink = fn(u32, TopoOutcome);
const NO_SINK: Option<NoSink> = None;

/// Which transport carries the ops of a closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AppTransport {
    /// The EDM fabric: scheduled flows for payloads, IFG control blocks
    /// for requests/acks (`control_flight`).
    Edm,
    /// Store-and-forward CXL-over-Ethernet on the same topology.
    CxlOe(CxlOeConfig),
}

/// Constants of the CXL-over-Ethernet baseline transport.
///
/// Defaults are calibrated against the latency stack the analytic
/// baselines use (`edm-baselines`' tunneled-CXL read of ~330 ns with
/// ~100 ns per extra switch): ~100 ns of adapter+stack per host end and
/// a 100 ns store-and-forward switch traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CxlOeConfig {
    /// Adapter + CXL-port + stack latency paid at *each* host end.
    pub host_latency: Duration,
    /// Store-and-forward forwarding latency per switch.
    pub switch_latency: Duration,
    /// Framing bytes added to every message (Ethernet header, CRC,
    /// preamble+IFG, CXL.mem tunnel header).
    pub frame_overhead: u32,
}

impl Default for CxlOeConfig {
    fn default() -> Self {
        CxlOeConfig {
            host_latency: Duration::from_ns(100),
            switch_latency: Duration::from_ns(100),
            frame_overhead: 46,
        }
    }
}

/// Configuration of a closed-loop application run.
#[derive(Debug, Clone)]
pub struct AppConfig {
    /// The tenants (any number per compute node).
    pub tenants: Vec<TenantSpec>,
    /// Nodes acting as memory servers; keys stripe across them. A tenant
    /// whose key lands on its own node serves it locally.
    pub memory_nodes: Vec<usize>,
    /// DRAM timing of every memory node.
    pub dram: DramConfig,
    /// End-to-end latency of a local-DRAM access (Figure 7's ~82 ns:
    /// DRAM + on-chip interconnect).
    pub local_latency: Duration,
    /// Memory-node NIC processing between a request's arrival and the
    /// controller issue. Must be positive — it is one of the two
    /// sharded-lookahead floors.
    pub nic_delay: Duration,
    /// Compute-node delay between a response's arrival and the tenant
    /// observing completion. Must be positive — the other lookahead
    /// floor.
    pub completion_delay: Duration,
    /// Transport under test.
    pub transport: AppTransport,
    /// Base seed; tenant `i` samples from substream `i`.
    pub seed: u64,
    /// Window width of the throughput/availability time series.
    pub stats_window: Duration,
}

impl AppConfig {
    /// A config over `tenants` and `memory_nodes` with the paper-aligned
    /// defaults: DDR4-2400 service, 82 ns local accesses, 25 ns NIC and
    /// completion delays, EDM transport.
    pub fn new(tenants: Vec<TenantSpec>, memory_nodes: Vec<usize>) -> Self {
        AppConfig {
            tenants,
            memory_nodes,
            dram: DramConfig::ddr4_2400(),
            local_latency: Duration::from_ns(82),
            nic_delay: Duration::from_ns(25),
            completion_delay: Duration::from_ns(25),
            transport: AppTransport::Edm,
            seed: 1,
            stats_window: Duration::from_us(10),
        }
    }

    fn validate(&self, topo: &Topology) {
        assert!(
            !self.memory_nodes.is_empty(),
            "a closed loop needs at least one memory node"
        );
        assert!(
            self.memory_nodes.iter().all(|&n| n < topo.nodes()),
            "memory node out of range"
        );
        for t in &self.tenants {
            assert!(t.node < topo.nodes(), "tenant node out of range");
            assert!(t.mlp >= 1, "a tenant needs a window of at least 1");
        }
        // Service/Done events scheduled from flow-terminal hooks land
        // these delays in the future; zero would break the sharded
        // lookahead floor (and a zero-latency NIC is not a NIC).
        assert!(self.nic_delay > Duration::ZERO, "nic_delay must be > 0");
        assert!(
            self.completion_delay > Duration::ZERO,
            "completion_delay must be > 0"
        );
    }
}

/// The result of a closed-loop run: per-op latency/throughput/
/// availability, memory-tier counters, and the fabric-side stream stats.
#[derive(Debug, Clone, PartialEq)]
pub struct AppReport {
    /// Ops issued (= completed + failed at the end of the run).
    pub ops_issued: u64,
    /// Ops whose response reached the tenant.
    pub ops_completed: u64,
    /// Ops lost to partitions (fabric unroutable past the retry budget).
    pub ops_failed: u64,
    /// Request→response latency of every completed op (ps buckets).
    pub lat: LogHistogram,
    /// Latency of completed remote reads.
    pub lat_read: LogHistogram,
    /// Latency of completed remote updates.
    pub lat_update: LogHistogram,
    /// Latency of completed RMWs.
    pub lat_rmw: LogHistogram,
    /// Latency of completed local-DRAM ops.
    pub lat_local: LogHistogram,
    /// Completed-op payload bytes over time.
    pub throughput: Throughput,
    /// Windowed delivery/failure availability.
    pub availability: Availability,
    /// Time of the last completion.
    pub makespan: Duration,
    /// Peak concurrently-outstanding ops — the O(active) memory pin.
    pub ops_high_water: usize,
    /// Summed DRAM row-buffer `(hits, misses, conflicts)` across memory
    /// nodes.
    pub dram_rows: (u64, u64, u64),
    /// Fabric-side counters of the run (flows admitted = request +
    /// response legs; empty under CXL-oE, which bypasses the scheduler).
    pub fabric: TopoStreamStats,
}

/// A closed-loop application step, replicated in every shard.
#[derive(Debug, Clone, Copy)]
pub(crate) enum AppEv {
    /// Tenant `tenant` fills its outstanding window.
    Issue {
        /// Tenant index.
        tenant: u32,
    },
    /// Op `op`'s request reached its memory node's controller.
    Service {
        /// Global op sequence number.
        op: u32,
    },
    /// Op `op`'s completion is observed by its tenant.
    Done {
        /// Global op sequence number.
        op: u32,
    },
}

/// One tenant's runtime state (replicated).
#[derive(Debug)]
struct TenantRt {
    spec: TenantSpec,
    zipf: Zipf,
    rng: Rng,
    issued: u64,
    done: u64,
    outstanding: u32,
}

/// One in-flight op (replicated; removed at `Done`).
#[derive(Debug, Clone, Copy)]
struct OpRt {
    tenant: u32,
    kind: OpKind,
    /// Index into `memory_nodes` (unused for local ops).
    mem: u32,
    /// Slot address on that node.
    addr: u64,
    issued: Time,
    failed: bool,
}

/// The store-and-forward CXL-over-Ethernet transport: per-(link,
/// direction) busy horizons, advanced only from replicated app events —
/// trivially lockstep across shards.
///
/// Each message claims its full serialization on every lane of its route
/// at issue time (a flow-level future-claim approximation of per-frame
/// interleaving: contending messages serialize in issue order, which is
/// deterministic and conservative for the FIFO lanes modeled here).
#[derive(Debug, Clone, PartialEq)]
struct CxlNet {
    cfg: CxlOeConfig,
    /// `busy[link * 2 + dir]`: when that directed lane frees up.
    busy: Vec<Time>,
}

impl CxlNet {
    fn new(cfg: CxlOeConfig, links: usize) -> Self {
        CxlNet {
            cfg,
            busy: vec![Time::ZERO; links * 2],
        }
    }

    /// Serializes `bytes` onto `link` in direction `dir` no earlier than
    /// `t`; returns when the last byte reaches the far end.
    fn cross(&mut self, topo: &Topology, link: u32, dir: usize, t: Time, bytes: u32) -> Time {
        let lane = link as usize * 2 + dir;
        let tx = topo.link(link).params.bandwidth.tx_time_bytes(bytes as u64);
        let begin = self.busy[lane].max(t);
        self.busy[lane] = begin + tx;
        begin + tx + link_lat(topo, link)
    }

    /// Carries a `payload`-byte message from node `from` to node `to`
    /// starting at `start`, store-and-forward per switch. `None` when
    /// the topology cannot route it (partition).
    fn traverse(
        &mut self,
        topo: &Topology,
        from: usize,
        to: usize,
        payload: u32,
        salt: u64,
        start: Time,
    ) -> Option<Time> {
        let route = topo.route(from, to, salt)?;
        let bytes = payload + self.cfg.frame_overhead;
        let mut t = start + self.cfg.host_latency;
        t = self.cross(
            topo,
            route.src_link,
            dir_from_node(topo, route.src_link, from),
            t,
            bytes,
        );
        for h in &route.hops {
            t += self.cfg.switch_latency;
            t = self.cross(
                topo,
                h.out_link,
                dir_from_switch(topo, h.out_link, h.switch),
                t,
                bytes,
            );
        }
        Some(t + self.cfg.host_latency)
    }
}

/// Lane direction for a crossing transmitted by `node` (access links:
/// 0 = up toward the leaf).
fn dir_from_node(topo: &Topology, link: u32, node: usize) -> usize {
    match topo.link(link).a {
        Endpoint::Node(n) if n as usize == node => 0,
        _ => 1,
    }
}

/// Lane direction for a crossing transmitted by switch `sw`.
fn dir_from_switch(topo: &Topology, link: u32, sw: u32) -> usize {
    match topo.link(link).a {
        Endpoint::Port { switch, .. } if switch == sw => 0,
        _ => 1,
    }
}

/// One-way flight of an 8 B control block from node `from` to node `to`:
/// the access half at the source, per-hop forwarding + link flight +
/// serialization, and the ingress pipeline half at the destination.
/// Control blocks ride repurposed IFG slots (§3.2) — latency, no
/// scheduling. `None` on partition.
pub(crate) fn control_flight(
    cfg: &TopoEdmConfig,
    topo: &Topology,
    from: usize,
    to: usize,
    salt: u64,
) -> Option<Duration> {
    let route = topo.route(from, to, salt)?;
    let mut d = access_half(cfg, topo, route.src_link);
    for h in &route.hops {
        d = d + cfg.forward_latency + link_lat(topo, h.out_link) + tx8(topo, h.out_link);
    }
    Some(d + cfg.pipeline_latency / 2)
}

/// Key placement: stripe across memory nodes, fixed-slot addresses
/// within one (the `KvStore` layout: 16 B header + value capacity).
fn placement(memory_nodes: &[usize], key: u64, object_bytes: u32) -> (u32, u64) {
    let n = memory_nodes.len() as u64;
    let m = (key % n) as u32;
    let slot = key / n;
    (m, slot * (KV_SLOT_HEADER as u64 + object_bytes as u64))
}

/// The replicated closed-loop state carried by every shard's
/// `TopoWorld`.
#[derive(Debug)]
pub(crate) struct AppState {
    tenants: Vec<TenantRt>,
    memory_nodes: Vec<usize>,
    mems: Vec<MemoryService>,
    /// `Some` iff the transport is CXL-oE.
    cxl: Option<CxlNet>,
    local_latency: Duration,
    nic_delay: Duration,
    completion_delay: Duration,
    /// First-issue instant per tenant (think-time sampled at build).
    start_at: Vec<Time>,
    /// In-flight ops — O(Σ mlp), never O(total ops).
    ops: HashMap<u32, OpRt>,
    /// Fabric flow id → op id for the op's in-flight leg.
    flow_op: HashMap<u32, u32>,
    next_op: u32,
    /// App flow ids, allocated inside replicated events in canonical
    /// order (the `RtMap` increasing-id invariant).
    next_flow: u32,
    ops_hwm: usize,
    issued: u64,
    completed: u64,
    failed: u64,
    lat: LogHistogram,
    lat_read: LogHistogram,
    lat_update: LogHistogram,
    lat_rmw: LogHistogram,
    lat_local: LogHistogram,
    throughput: Throughput,
    availability: Availability,
    last_done: Time,
}

impl AppState {
    pub(crate) fn new(cfg: &AppConfig, topo: &Topology) -> Self {
        let mut tenants = Vec::with_capacity(cfg.tenants.len());
        let mut start_at = Vec::with_capacity(cfg.tenants.len());
        for (i, &spec) in cfg.tenants.iter().enumerate() {
            let mut rng = Rng::stream(cfg.seed, i as u64);
            start_at.push(if spec.think_mean == Duration::ZERO {
                Time::ZERO
            } else {
                Time::ZERO + rng.exp_duration(spec.think_mean)
            });
            tenants.push(TenantRt {
                spec,
                zipf: Zipf::new(spec.mix.ycsb.keys, spec.mix.ycsb.zipf_theta),
                rng,
                issued: 0,
                done: 0,
                outstanding: 0,
            });
        }
        AppState {
            tenants,
            memory_nodes: cfg.memory_nodes.clone(),
            mems: cfg
                .memory_nodes
                .iter()
                .map(|_| MemoryService::new(cfg.dram))
                .collect(),
            cxl: match cfg.transport {
                AppTransport::Edm => None,
                AppTransport::CxlOe(c) => Some(CxlNet::new(c, topo.links().len())),
            },
            local_latency: cfg.local_latency,
            nic_delay: cfg.nic_delay,
            completion_delay: cfg.completion_delay,
            start_at,
            ops: HashMap::new(),
            flow_op: HashMap::new(),
            next_op: 0,
            next_flow: 0,
            ops_hwm: 0,
            issued: 0,
            completed: 0,
            failed: 0,
            lat: LogHistogram::new(),
            lat_read: LogHistogram::new(),
            lat_update: LogHistogram::new(),
            lat_rmw: LogHistogram::new(),
            lat_local: LogHistogram::new(),
            throughput: Throughput::new(cfg.stats_window),
            availability: Availability::new(cfg.stats_window),
            last_done: Time::ZERO,
        }
    }

    /// Schedules every tenant's first `Issue` (replicated seeding).
    pub(crate) fn seed(&self, q: &mut EventQueue<TopoEv>) {
        for (i, &t) in self.start_at.iter().enumerate() {
            let tenant = i as u32;
            q.schedule_ordered(
                t,
                evord::app_issue(tenant),
                TopoEv::App(AppEv::Issue { tenant }),
            );
        }
    }

    fn insert_op(&mut self, id: u32, rec: OpRt) {
        self.ops.insert(id, rec);
        self.ops_hwm = self.ops_hwm.max(self.ops.len());
    }

    fn into_report(self, fabric: TopoStreamStats) -> AppReport {
        assert!(
            self.ops.is_empty(),
            "an op stalled without a terminal state"
        );
        assert!(self.flow_op.is_empty(), "a leg outlived its op");
        for t in &self.tenants {
            assert_eq!(t.done, t.spec.ops, "a tenant went idle early");
        }
        assert_eq!(self.issued, self.completed + self.failed);
        AppReport {
            ops_issued: self.issued,
            ops_completed: self.completed,
            ops_failed: self.failed,
            lat: self.lat,
            lat_read: self.lat_read,
            lat_update: self.lat_update,
            lat_rmw: self.lat_rmw,
            lat_local: self.lat_local,
            throughput: self.throughput,
            availability: self.availability,
            makespan: self.last_done.saturating_since(Time::ZERO),
            ops_high_water: self.ops_hwm,
            dram_rows: self.mems.iter().fold((0, 0, 0), |(h, m, c), s| {
                let t = s.timing();
                (h + t.row_hits(), m + t.row_misses(), c + t.row_conflicts())
            }),
            fabric,
        }
    }
}

impl<S, I> TopoWorld<S, I>
where
    S: FnMut(u32, TopoOutcome),
    I: Iterator<Item = Flow>,
{
    /// One replicated application-tier event.
    pub(crate) fn app_dispatch(&mut self, now: Time, ev: AppEv, q: &mut EventQueue<TopoEv>) {
        match ev {
            AppEv::Issue { tenant } => self.app_issue(now, tenant, q),
            AppEv::Service { op } => self.app_service(now, op, q),
            AppEv::Done { op } => self.app_complete(now, op, q),
        }
    }

    /// A fabric leg of an app op reached a terminal state at `t`
    /// (delivered or failed). Fires exactly once per shard — from the
    /// local settle on the owning shard, from the barrier credit
    /// elsewhere, or from replicated fail events everywhere — and in a
    /// potentially shard-dependent *order* for same-instant legs, so it
    /// only writes per-op state and schedules canonically-keyed events;
    /// RNG, tenant accounting, and stats live in the events themselves.
    pub(crate) fn app_flow_done(&mut self, fi: u32, t: Time, ok: bool, q: &mut EventQueue<TopoEv>) {
        let Some(app) = self.app.as_mut() else {
            return;
        };
        let Some(op) = app.flow_op.remove(&fi) else {
            return;
        };
        let rec = app.ops.get_mut(&op).expect("a leg's op is in flight");
        if ok && rec.kind == OpKind::Update {
            // Request payload delivered: the memory node's NIC hands it
            // to the controller after its processing delay.
            q.schedule_ordered(
                t + app.nic_delay,
                evord::app_service(op),
                TopoEv::App(AppEv::Service { op }),
            );
        } else {
            debug_assert!(
                !ok || rec.kind == OpKind::Read,
                "only reads and updates have fabric legs"
            );
            rec.failed |= !ok;
            q.schedule_ordered(
                t + app.completion_delay,
                evord::app_done(op),
                TopoEv::App(AppEv::Done { op }),
            );
        }
    }

    /// Fills tenant `ti`'s outstanding window with freshly sampled ops.
    fn app_issue(&mut self, now: Time, ti: u32, q: &mut EventQueue<TopoEv>) {
        let mut app = self.app.take().expect("app events only fire on app runs");
        // Admissions are deferred until `self.app` is restored: `admit`
        // takes `&mut self`, and its unroutable-fail path re-enters
        // `app_flow_done`.
        let mut admissions: Vec<(u32, Flow)> = Vec::new();
        loop {
            let t = &mut app.tenants[ti as usize];
            let spec = t.spec;
            if t.outstanding >= spec.mlp || t.issued >= spec.ops {
                break;
            }
            t.issued += 1;
            t.outstanding += 1;
            let sample = spec.mix.sample(&t.zipf, &mut t.rng);
            let op = app.next_op;
            app.next_op += 1;
            app.issued += 1;
            let (mem, addr) = placement(&app.memory_nodes, sample.key, spec.mix.ycsb.object_bytes);
            let mem_node = app.memory_nodes[mem as usize];
            // A key striped onto the tenant's own node is a local access.
            let kind = if sample.kind != OpKind::Local && mem_node == spec.node {
                OpKind::Local
            } else {
                sample.kind
            };
            let mut rec = OpRt {
                tenant: ti,
                kind,
                mem,
                addr,
                issued: now,
                failed: false,
            };
            match kind {
                OpKind::Local => {
                    app.insert_op(op, rec);
                    q.schedule_ordered(
                        now + app.local_latency,
                        evord::app_done(op),
                        TopoEv::App(AppEv::Done { op }),
                    );
                }
                OpKind::Update if app.cxl.is_none() => {
                    // The update payload is a real scheduled flow.
                    let fid = app.next_flow;
                    app.next_flow += 1;
                    app.flow_op.insert(fid, op);
                    app.insert_op(op, rec);
                    admissions.push((
                        fid,
                        Flow {
                            id: fid as usize,
                            src: spec.node,
                            dst: mem_node,
                            size: spec.mix.ycsb.update_bytes.max(1),
                            arrival: now,
                            kind: FlowKind::Write,
                        },
                    ));
                }
                OpKind::Read | OpKind::Rmw if app.cxl.is_none() => {
                    // RREQ/RMWREQ control block to the memory node.
                    match control_flight(&self.cfg, &self.topo, spec.node, mem_node, op as u64) {
                        Some(f) => {
                            app.insert_op(op, rec);
                            q.schedule_ordered(
                                now + f + app.nic_delay,
                                evord::app_service(op),
                                TopoEv::App(AppEv::Service { op }),
                            );
                        }
                        None => {
                            rec.failed = true;
                            app.insert_op(op, rec);
                            q.schedule_ordered(
                                now + app.completion_delay,
                                evord::app_done(op),
                                TopoEv::App(AppEv::Done { op }),
                            );
                        }
                    }
                }
                _ => {
                    // CXL-oE: every request is a framed message.
                    let req_bytes = match kind {
                        OpKind::Read => 16,
                        OpKind::Update => 16 + spec.mix.ycsb.update_bytes,
                        OpKind::Rmw => 24,
                        OpKind::Local => unreachable!(),
                    };
                    let arrive = app
                        .cxl
                        .as_mut()
                        .expect("transport checked")
                        .traverse(&self.topo, spec.node, mem_node, req_bytes, op as u64, now);
                    match arrive {
                        Some(t) => {
                            app.insert_op(op, rec);
                            q.schedule_ordered(
                                t + app.nic_delay,
                                evord::app_service(op),
                                TopoEv::App(AppEv::Service { op }),
                            );
                        }
                        None => {
                            rec.failed = true;
                            app.insert_op(op, rec);
                            q.schedule_ordered(
                                now + app.completion_delay,
                                evord::app_done(op),
                                TopoEv::App(AppEv::Done { op }),
                            );
                        }
                    }
                }
            }
        }
        self.app = Some(app);
        for (fid, flow) in admissions {
            self.admit(fid, flow, q);
        }
    }

    /// Op `op`'s request reached its memory node: pay DRAM service and
    /// launch the response leg.
    fn app_service(&mut self, now: Time, op: u32, q: &mut EventQueue<TopoEv>) {
        let mut app = self.app.take().expect("app events only fire on app runs");
        let mut admissions: Vec<(u32, Flow)> = Vec::new();
        let rec = *app.ops.get(&op).expect("service for a live op");
        let spec = app.tenants[rec.tenant as usize].spec;
        let mem_node = app.memory_nodes[rec.mem as usize];
        match rec.kind {
            OpKind::Read => {
                let served = app.mems[rec.mem as usize].get(
                    now,
                    rec.addr,
                    spec.mix.ycsb.object_bytes as usize,
                );
                if app.cxl.is_none() {
                    // The RRES payload is a real scheduled flow.
                    let fid = app.next_flow;
                    app.next_flow += 1;
                    app.flow_op.insert(fid, op);
                    admissions.push((
                        fid,
                        Flow {
                            id: fid as usize,
                            src: mem_node,
                            dst: spec.node,
                            size: spec.mix.ycsb.object_bytes.max(1),
                            arrival: served,
                            kind: FlowKind::Write,
                        },
                    ));
                } else {
                    let resp = app.cxl.as_mut().expect("transport checked").traverse(
                        &self.topo,
                        mem_node,
                        spec.node,
                        16 + spec.mix.ycsb.object_bytes,
                        op as u64,
                        served,
                    );
                    finish_leg(&mut app, op, resp, served, q);
                }
            }
            OpKind::Update => {
                let served = app.mems[rec.mem as usize].put(
                    now,
                    rec.addr,
                    spec.mix.ycsb.update_bytes as usize,
                );
                let resp = return_leg(
                    &mut app, &self.cfg, &self.topo, mem_node, spec.node, op, served,
                );
                finish_leg(&mut app, op, resp, served, q);
            }
            OpKind::Rmw => {
                let served = app.mems[rec.mem as usize].rmw(now, rec.addr);
                let resp = return_leg(
                    &mut app, &self.cfg, &self.topo, mem_node, spec.node, op, served,
                );
                finish_leg(&mut app, op, resp, served, q);
            }
            OpKind::Local => unreachable!("local ops never reach a memory node"),
        }
        self.app = Some(app);
        for (fid, flow) in admissions {
            self.admit(fid, flow, q);
        }
    }

    /// Op `op` completes (or fails) at its tenant: record stats, free
    /// the window slot, and trigger the next issue after think time.
    fn app_complete(&mut self, now: Time, op: u32, q: &mut EventQueue<TopoEv>) {
        let mut app = self.app.take().expect("app events only fire on app runs");
        let rec = app.ops.remove(&op).expect("done for a live op");
        let spec = app.tenants[rec.tenant as usize].spec;
        if rec.failed {
            app.failed += 1;
            app.availability.record_failure(now);
        } else {
            let lat = now.saturating_since(rec.issued);
            app.completed += 1;
            app.availability.record_delivery(now);
            app.lat.record_duration(lat);
            match rec.kind {
                OpKind::Read => app.lat_read.record_duration(lat),
                OpKind::Update => app.lat_update.record_duration(lat),
                OpKind::Rmw => app.lat_rmw.record_duration(lat),
                OpKind::Local => app.lat_local.record_duration(lat),
            }
            let bytes = match rec.kind {
                OpKind::Read | OpKind::Local => spec.mix.ycsb.object_bytes,
                OpKind::Update => spec.mix.ycsb.update_bytes,
                OpKind::Rmw => 8,
            };
            app.throughput.record(now, bytes as u64);
        }
        app.last_done = app.last_done.max(now);
        let t = &mut app.tenants[rec.tenant as usize];
        debug_assert!(t.outstanding > 0);
        t.outstanding -= 1;
        t.done += 1;
        if t.issued < t.spec.ops {
            let think = if spec.think_mean == Duration::ZERO {
                Duration::ZERO
            } else {
                t.rng.exp_duration(spec.think_mean)
            };
            q.schedule_ordered(
                now + think,
                evord::app_issue(rec.tenant),
                TopoEv::App(AppEv::Issue { tenant: rec.tenant }),
            );
        }
        self.app = Some(app);
    }
}

/// The ack/RMWRES return leg: an EDM control flight or a 16 B CXL-oE
/// frame, starting when DRAM service completes. `None` on partition.
fn return_leg(
    app: &mut AppState,
    cfg: &TopoEdmConfig,
    topo: &Topology,
    from: usize,
    to: usize,
    op: u32,
    start: Time,
) -> Option<Time> {
    match app.cxl.as_mut() {
        None => control_flight(cfg, topo, from, to, op as u64).map(|f| start + f),
        Some(cxl) => cxl.traverse(topo, from, to, 16, op as u64, start),
    }
}

/// Schedules op completion at the return leg's arrival, or a failed
/// completion at `fallback` when the leg is unroutable.
fn finish_leg(
    app: &mut AppState,
    op: u32,
    arrival: Option<Time>,
    fallback: Time,
    q: &mut EventQueue<TopoEv>,
) {
    let at = match arrival {
        Some(t) => t,
        None => {
            app.ops.get_mut(&op).expect("live op").failed = true;
            fallback
        }
    };
    q.schedule_ordered(
        at + app.completion_delay,
        evord::app_done(op),
        TopoEv::App(AppEv::Done { op }),
    );
}

impl TopoEdm {
    /// Runs a closed-loop application workload to completion on `topo`
    /// and returns its report. Sequential reference path.
    ///
    /// # Panics
    ///
    /// On invalid configs (no memory nodes, out-of-range nodes, zero
    /// NIC/completion delays) and if an op stalls without completing (a
    /// model invariant violation).
    pub fn simulate_app(&self, topo: &Topology, app: &AppConfig) -> AppReport {
        app.validate(topo);
        let plan = Arc::new(ShardPlan::solo(topo.switch_count()));
        let state = AppState::new(app, topo);
        let mut q = EventQueue::new();
        self.seed_faults(&mut q);
        state.seed(&mut q);
        let world = self.build_world(topo, plan, 0, NO_SINK, NO_SOURCE, Some(Box::new(state)));
        let mut engine = Engine::with_queue(world, q);
        engine.run();
        let mut worlds = [engine.into_world()];
        let fabric = TopoEdm::stream_stats(&worlds);
        worlds[0]
            .app
            .take()
            .expect("app runs keep their app state")
            .into_report(fabric)
    }

    /// [`TopoEdm::simulate_app`], sharded over up to `shards` cores —
    /// bit-identical for any shard count (pinned by `prop_app`), with
    /// one diagnostic exception: delivery credits apply at window
    /// barriers, so [`AppReport::fabric`]'s `active_high_water` may
    /// exceed the sequential peak by the not-yet-retired lag (never
    /// undershoot it) — the same caveat as the flow-level streaming
    /// path.
    ///
    /// # Panics
    ///
    /// As [`TopoEdm::simulate_app`].
    pub fn simulate_app_sharded(
        &self,
        topo: &Topology,
        app: &AppConfig,
        shards: usize,
    ) -> AppReport {
        let plan = Arc::new(ShardPlan::new(topo, &self.config, shards));
        if plan.shards() == 1 {
            return self.simulate_app(topo, app);
        }
        app.validate(topo);
        let inputs: Vec<_> = (0..plan.shards() as u32)
            .map(|me| {
                let state = AppState::new(app, topo);
                let mut q = EventQueue::new();
                self.seed_faults(&mut q);
                state.seed(&mut q);
                let world = self.build_world(
                    topo,
                    plan.clone(),
                    me,
                    NO_SINK,
                    NO_SOURCE,
                    Some(Box::new(state)),
                );
                (world, q)
            })
            .collect();
        let mut cfg = self.sharded_config(&plan);
        // Lookahead floor: `Service`/`Done` events scheduled from
        // barrier-applied credit hooks sit `nic_delay` respectively
        // `completion_delay` in the future; the window length must not
        // exceed either, or a receiving shard would be asked to schedule
        // into a window it already closed. Shrinking lookahead is always
        // safe (more barriers, same conservative protocol).
        cfg.lookahead = cfg.lookahead.min(app.nic_delay).min(app.completion_delay);
        let mut worlds = run_sharded(inputs, &cfg);
        let fabric = TopoEdm::stream_stats(&worlds);
        worlds[0]
            .app
            .take()
            .expect("app runs keep their app state")
            .into_report(fabric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LeafSpine;
    use edm_workloads::{OpMix, YcsbWorkload};

    fn leaf_spine() -> Topology {
        Topology::leaf_spine(LeafSpine::symmetric(2, 2, 4, 2))
    }

    fn small_app(transport: AppTransport) -> AppConfig {
        let mix = OpMix::remote(YcsbWorkload::a());
        let tenants = (0..4)
            .map(|i| TenantSpec::saturating(i, mix, 4, 50))
            .collect();
        AppConfig {
            transport,
            ..AppConfig::new(tenants, vec![4, 5, 6, 7])
        }
    }

    #[test]
    fn closed_loop_completes_every_op_on_edm() {
        let topo = leaf_spine();
        let r = TopoEdm::default().simulate_app(&topo, &small_app(AppTransport::Edm));
        assert_eq!(r.ops_issued, 200);
        assert_eq!(r.ops_completed, 200);
        assert_eq!(r.ops_failed, 0);
        assert_eq!(r.lat.count(), 200);
        // Every remote read/update produced exactly one fabric leg.
        let remote_rw = r.lat_read.count() + r.lat_update.count();
        assert_eq!(r.fabric.admitted, remote_rw);
        assert_eq!(r.fabric.delivered, remote_rw);
        // The window pins resident ops: 4 tenants x mlp 4.
        assert!(r.ops_high_water <= 16, "hwm {}", r.ops_high_water);
        assert!(r.makespan > Duration::ZERO);
        assert!(r.dram_rows.0 + r.dram_rows.1 + r.dram_rows.2 > 0);
    }

    #[test]
    fn closed_loop_completes_every_op_on_cxl_oe() {
        let topo = leaf_spine();
        let r = TopoEdm::default().simulate_app(
            &topo,
            &small_app(AppTransport::CxlOe(CxlOeConfig::default())),
        );
        assert_eq!(r.ops_completed, 200);
        // CXL-oE bypasses the scheduler entirely.
        assert_eq!(r.fabric.admitted, 0);
        assert!(r.lat.percentile(50.0) > 0);
    }

    #[test]
    fn sharded_closed_loop_is_bit_identical() {
        let topo = leaf_spine();
        let edm = TopoEdm::default();
        let app = small_app(AppTransport::Edm);
        let seq = edm.simulate_app(&topo, &app);
        for shards in 2..=4 {
            let par = edm.simulate_app_sharded(&topo, &app, shards);
            assert_eq!(seq.lat, par.lat, "{shards} shards diverged");
            assert_eq!(seq.lat_read, par.lat_read);
            assert_eq!(seq.throughput, par.throughput);
            assert_eq!(seq.availability, par.availability);
            assert_eq!(seq.makespan, par.makespan);
            assert_eq!(seq.dram_rows, par.dram_rows);
            assert_eq!(
                (seq.fabric.admitted, seq.fabric.delivered, seq.fabric.failed),
                (par.fabric.admitted, par.fabric.delivered, par.fabric.failed)
            );
        }
    }

    #[test]
    fn rmw_mix_serializes_on_the_memory_banks() {
        let topo = leaf_spine();
        let mix = OpMix::f_rmw();
        let tenants = (0..2)
            .map(|i| TenantSpec::saturating(i, mix, 8, 100))
            .collect();
        let app = AppConfig::new(tenants, vec![6]);
        let r = TopoEdm::default().simulate_app(&topo, &app);
        assert_eq!(r.ops_completed, 200);
        assert!(r.lat_rmw.count() > 0, "workload F must produce RMWs");
        // RMWs return without a data flow; reads still ride the fabric.
        assert_eq!(r.fabric.admitted, r.lat_read.count());
    }

    #[test]
    fn local_split_bypasses_the_fabric() {
        let topo = leaf_spine();
        let mix = OpMix {
            local_fraction: 1.0,
            ..OpMix::remote(YcsbWorkload::a())
        };
        let tenants = vec![TenantSpec::saturating(0, mix, 2, 64)];
        let app = AppConfig::new(tenants, vec![5]);
        let r = TopoEdm::default().simulate_app(&topo, &app);
        assert_eq!(r.ops_completed, 64);
        assert_eq!(r.lat_local.count(), 64);
        assert_eq!(r.fabric.admitted, 0);
        // Local ops pay exactly the configured latency.
        assert_eq!(r.lat_local.max(), app.local_latency.as_ps());
    }

    #[test]
    fn think_time_stretches_the_makespan() {
        let topo = leaf_spine();
        let mix = OpMix::remote(YcsbWorkload::b());
        let fast = AppConfig::new(vec![TenantSpec::saturating(0, mix, 1, 32)], vec![5]);
        let slow = AppConfig::new(
            vec![TenantSpec {
                think_mean: Duration::from_us(1),
                ..TenantSpec::saturating(0, mix, 1, 32)
            }],
            vec![5],
        );
        let edm = TopoEdm::default();
        let f = edm.simulate_app(&topo, &fast);
        let s = edm.simulate_app(&topo, &slow);
        assert!(s.makespan > f.makespan);
    }

    #[test]
    fn control_flight_is_symmetric_in_cost_shape() {
        let topo = leaf_spine();
        let cfg = TopoEdmConfig::default();
        let f = control_flight(&cfg, &topo, 0, 7, 9).expect("routable");
        // Cross-rack: at least the pipeline + three link flights.
        assert!(f > cfg.pipeline_latency);
        let same_leaf = control_flight(&cfg, &topo, 0, 1, 9).expect("routable");
        assert!(same_leaf < f, "fewer hops must cost less");
    }
}
