//! Partitioning one fabric simulation into parallel shards.
//!
//! A [`ShardPlan`] maps every switch (and with it every host, scheduler
//! domain, per-link IP lane, and flow event) to one *logical process* of
//! the conservative parallel engine (`edm_sim::sharded`). Two properties
//! make a partition valid:
//!
//! * **Positive lookahead** — the windows of the conservative protocol
//!   are bounded by the minimum latency of any cross-shard chunk flight.
//!   A trunk with zero propagation delay would give zero lookahead, so
//!   zero-latency trunks are *contracted* first (union–find): switches
//!   joined by them always land in the same shard. When contraction
//!   collapses the whole fabric into one component (in particular any
//!   single-switch topology, which has no trunks at all), the plan
//!   degenerates to one shard and the caller falls back to the
//!   sequential engine.
//! * **Determinism** — the assignment is a pure function of the topology
//!   and the requested shard count: components are placed by
//!   longest-processing-time-first over their port counts (a load
//!   proxy), ties broken by lowest member switch id.
//!
//! The plan's [`lookahead`](ShardPlan::lookahead) adds the protocol's
//! minimum store-and-forward slack on top of the minimum cross-shard
//! trunk propagation: every cross-shard chunk pays at least the granting
//! switch's turnaround (`forward_latency`, or the full pipeline at hop
//! 0) before it even reaches the trunk, so windows can be that much
//! wider at no risk — fewer barriers for the same bit-identical result.

use crate::topology::{Endpoint, Topology};
use crate::world::TopoEdmConfig;
use edm_sim::Duration;

/// A deterministic switch → shard assignment with its lookahead bound.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Shard id per switch.
    assign: Vec<u32>,
    /// Number of shards actually used (≤ requested).
    shards: u32,
    /// Conservative window bound; [`Duration::MAX`] when no trunk
    /// crosses shards (fully independent shards).
    lookahead: Duration,
}

/// Union–find with path halving.
fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        parent[x as usize] = parent[parent[x as usize] as usize];
        x = parent[x as usize];
    }
    x
}

impl ShardPlan {
    /// The trivial one-shard plan (the sequential engine's view).
    pub fn solo(switch_count: usize) -> Self {
        ShardPlan {
            assign: vec![0; switch_count],
            shards: 1,
            lookahead: Duration::MAX,
        }
    }

    /// Plans `requested` shards over `topo`, degenerating to fewer (down
    /// to one) when the topology cannot support them — fewer switches
    /// than shards, or zero-latency trunks contracting everything
    /// together.
    pub fn new(topo: &Topology, cfg: &TopoEdmConfig, requested: usize) -> Self {
        let n = topo.switch_count();
        let requested = requested.clamp(1, n);
        if requested == 1 {
            return ShardPlan::solo(n);
        }
        // 1. Contract zero-propagation trunks: their endpoints must
        //    share a shard or the lookahead would be zero.
        let mut parent: Vec<u32> = (0..n as u32).collect();
        for link in topo.links() {
            if !link.is_trunk() || link.params.propagation > Duration::ZERO {
                continue;
            }
            if let (Endpoint::Port { switch: a, .. }, Endpoint::Port { switch: b, .. }) =
                (link.a, link.b)
            {
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                if ra != rb {
                    // Deterministic union: smaller root wins.
                    let (lo, hi) = (ra.min(rb), ra.max(rb));
                    parent[hi as usize] = lo;
                }
            }
        }
        // 2. Components, keyed by root, weighted by port count.
        let mut comp_of: Vec<u32> = (0..n as u32).map(|s| find(&mut parent, s)).collect();
        let mut comps: Vec<(u32, u64)> = Vec::new(); // (root, weight)
        for (s, &root) in comp_of.iter().enumerate() {
            match comps.iter_mut().find(|(r, _)| *r == root) {
                Some((_, w)) => *w += topo.switch_ports(s as u32) as u64,
                None => comps.push((root, topo.switch_ports(s as u32) as u64)),
            }
        }
        // 3. LPT placement: heaviest component into the lightest bin;
        //    ties by lowest root / lowest bin index.
        comps.sort_by_key(|&(root, w)| (std::cmp::Reverse(w), root));
        let bins = requested.min(comps.len());
        let mut bin_load = vec![0u64; bins];
        let mut bin_of_root: Vec<(u32, u32)> = Vec::with_capacity(comps.len());
        for (root, w) in comps {
            let bin = (0..bins)
                .min_by_key(|&b| (bin_load[b], b))
                .expect("at least one bin");
            bin_load[bin] += w;
            bin_of_root.push((root, bin as u32));
        }
        for c in comp_of.iter_mut() {
            let (_, bin) = bin_of_root
                .iter()
                .find(|(root, _)| root == c)
                .expect("every root placed");
            *c = *bin;
        }
        let shards = bins as u32;
        if shards <= 1 {
            return ShardPlan::solo(n);
        }
        // 4. Lookahead: minimum cross-shard trunk propagation plus the
        //    protocol's minimum pre-trunk turnaround. Hop-0 grants pay
        //    the full pipeline (grant flight + chunk ingress) and
        //    store-and-forward hops pay `forward_latency` before the
        //    chunk reaches any trunk.
        let slack = cfg.forward_latency.min(cfg.pipeline_latency);
        let mut min_prop = Duration::MAX;
        for link in topo.links() {
            if !link.is_trunk() {
                continue;
            }
            if let (Endpoint::Port { switch: a, .. }, Endpoint::Port { switch: b, .. }) =
                (link.a, link.b)
            {
                if comp_of[a as usize] != comp_of[b as usize] {
                    min_prop = min_prop.min(link.params.propagation);
                }
            }
        }
        let lookahead = if min_prop == Duration::MAX {
            Duration::MAX // disjoint shards: windows bounded by cuts only
        } else {
            debug_assert!(min_prop > Duration::ZERO, "zero-prop trunks are contracted");
            min_prop + slack
        };
        ShardPlan {
            assign: comp_of,
            shards,
            lookahead,
        }
    }

    /// Number of shards in the plan.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// The shard owning `switch` (and its attached hosts and links).
    pub fn shard_of(&self, switch: u32) -> u32 {
        self.assign[switch as usize]
    }

    /// The conservative window bound for this plan.
    pub fn lookahead(&self) -> Duration {
        self.lookahead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LeafSpine, LinkParams, Topology};

    #[test]
    fn single_switch_degenerates_to_one_shard() {
        let t = Topology::single_switch(8, LinkParams::default());
        let plan = ShardPlan::new(&t, &TopoEdmConfig::default(), 4);
        assert_eq!(plan.shards(), 1);
    }

    #[test]
    fn leaf_spine_splits_and_balances() {
        let t = Topology::leaf_spine(LeafSpine::symmetric(4, 2, 8, 2));
        let plan = ShardPlan::new(&t, &TopoEdmConfig::default(), 4);
        assert_eq!(plan.shards(), 4);
        // Deterministic: planning twice yields the same assignment.
        let again = ShardPlan::new(&t, &TopoEdmConfig::default(), 4);
        for sw in 0..t.switch_count() as u32 {
            assert_eq!(plan.shard_of(sw), again.shard_of(sw));
        }
        // Lookahead = trunk propagation (10 ns) + min(forward, pipeline).
        let cfg = TopoEdmConfig::default();
        assert_eq!(
            plan.lookahead(),
            LinkParams::default().propagation + cfg.forward_latency.min(cfg.pipeline_latency)
        );
    }

    #[test]
    fn zero_latency_trunks_are_contracted() {
        let zero = LinkParams {
            propagation: Duration::ZERO,
            ..LinkParams::default()
        };
        // Every trunk is zero-latency: the whole fabric contracts into
        // one component and the plan degenerates to one shard.
        let t = Topology::leaf_spine(LeafSpine {
            trunk: zero,
            ..LeafSpine::symmetric(2, 2, 4, 1)
        });
        let plan = ShardPlan::new(&t, &TopoEdmConfig::default(), 4);
        assert_eq!(plan.shards(), 1);
    }

    #[test]
    fn more_shards_than_switches_clamps() {
        let t = Topology::leaf_spine(LeafSpine::symmetric(2, 1, 2, 1));
        let plan = ShardPlan::new(&t, &TopoEdmConfig::default(), 16);
        assert!(plan.shards() <= t.switch_count());
        assert!(plan.shards() >= 2);
    }
}
