//! Background IP traffic sharing egress ports with memory traffic.
//!
//! EDM multiplexes scheduled memory blocks with regular Ethernet frames on
//! the same links (§3.2.3): with intra-frame preemption, a memory block
//! waits at most one 66-bit block time behind an in-flight IP frame; with
//! plain priority queueing it waits for the frame's remaining
//! serialization. This module models that interference deterministically:
//! each link carries an independent Poisson process of fixed-size IP
//! frames at a configured fraction of its capacity, realized lazily from a
//! per-link RNG stream, and each memory-chunk crossing is charged the
//! residual occupancy it observes.
//!
//! The model is interference-only in the memory→IP direction: memory
//! chunks never push IP frames back (under preemption EDM wins the link by
//! construction; the IP goodput loss is reported by the §4.2.1 preemption
//! harness instead).
//!
//! Lanes are *directional on trunks*: a full-duplex inter-switch link
//! carries an independent frame process per direction, keyed by the
//! granting switch's side. This is both physically faithful and what
//! makes the model shard-partitionable — each directional lane is only
//! ever touched by the one switch (hence one shard) that grants onto
//! it. Host access links keep a single lane (both its crossings are
//! charged by the same leaf switch).

use edm_sim::{Bandwidth, Duration, Rng, Time};

/// Background IP traffic configuration.
#[derive(Debug, Clone, Copy)]
pub struct IpTraffic {
    /// Fraction of each link's capacity offered as background IP frames
    /// (0.0 disables the model).
    pub fraction: f64,
    /// IP frame size in bytes (MTU-sized by default).
    pub frame_bytes: u32,
    /// Whether EDM's intra-frame preemption (§3.2.3) is available: if so,
    /// a memory chunk waits at most one 66-bit PHY block behind a frame;
    /// otherwise it waits out the frame's remaining serialization.
    pub preemption: bool,
    /// Seed for the per-link frame processes.
    pub seed: u64,
}

impl Default for IpTraffic {
    fn default() -> Self {
        IpTraffic {
            fraction: 0.0,
            frame_bytes: 1500,
            preemption: true,
            seed: 0x1b,
        }
    }
}

impl IpTraffic {
    /// A convenience constructor: `fraction` of every link busy with MTU
    /// frames, preemption on.
    pub fn load(fraction: f64) -> Self {
        IpTraffic {
            fraction,
            ..IpTraffic::default()
        }
    }
}

/// Lazily-materialized per-link frame process.
#[derive(Debug, Clone)]
struct Lane {
    rng: Rng,
    next_frame: Time,
    busy_until: Time,
}

/// The fabric-wide interference model: one independent lane per
/// (link, direction).
#[derive(Debug)]
pub(crate) struct IpModel {
    cfg: IpTraffic,
    /// Two lane slots per link (`link * 2 + side`); access links only
    /// ever use side 0, trunk sides are keyed by the granting switch.
    lanes: Vec<Option<Lane>>,
    frames: u64,
    delayed: u64,
}

impl IpModel {
    pub(crate) fn new(cfg: IpTraffic, link_count: usize) -> Self {
        assert!(
            (0.0..1.0).contains(&cfg.fraction),
            "IP fraction must be in [0, 1), got {}",
            cfg.fraction
        );
        IpModel {
            cfg,
            lanes: vec![None; link_count * 2],
            frames: 0,
            delayed: 0,
        }
    }

    /// IP frames generated so far (on lanes this model instance owns).
    pub(crate) fn frames(&self) -> u64 {
        self.frames
    }

    /// Chunk crossings that hit an in-flight frame.
    pub(crate) fn delayed(&self) -> u64 {
        self.delayed
    }

    /// The extra latency a memory chunk crossing `link` (direction
    /// `side`) at `at` observes. The lane's frame stream is a pure
    /// function of `(seed, link, side)`, never of which model instance
    /// or shard materializes it.
    pub(crate) fn crossing_delay(
        &mut self,
        link: u32,
        side: u8,
        at: Time,
        bw: Bandwidth,
    ) -> Duration {
        if self.cfg.fraction <= 0.0 {
            return Duration::ZERO;
        }
        let frame_tx = bw.tx_time_bytes(self.cfg.frame_bytes as u64);
        // Offered fraction f at mean inter-arrival gap = frame_tx / f.
        let gap = Duration::from_ps((frame_tx.as_ps() as f64 / self.cfg.fraction).round() as u64);
        let seed = self.cfg.seed;
        let lane = self.lanes[link as usize * 2 + side as usize].get_or_insert_with(|| {
            let stream = (link as u64) << 1 | side as u64;
            let mut rng = Rng::stream(seed, stream);
            let first = Time::ZERO + rng.exp_duration(gap);
            Lane {
                rng,
                next_frame: first,
                busy_until: Time::ZERO,
            }
        });
        while lane.next_frame <= at {
            lane.busy_until = lane.busy_until.max(lane.next_frame) + frame_tx;
            lane.next_frame += lane.rng.exp_duration(gap);
            self.frames += 1;
        }
        if lane.busy_until > at {
            self.delayed += 1;
            let residual = lane.busy_until.saturating_since(at);
            if self.cfg.preemption {
                // Preempt at the next 66-bit block boundary.
                residual.min(bw.tx_time_bits(66))
            } else {
                residual
            }
        } else {
            Duration::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fraction_is_free() {
        let mut m = IpModel::new(IpTraffic::default(), 4);
        let bw = Bandwidth::from_gbps(100);
        assert_eq!(m.crossing_delay(0, 0, Time::from_us(3), bw), Duration::ZERO);
        assert_eq!(m.frames(), 0);
    }

    #[test]
    fn preemption_bounds_delay_to_one_block() {
        let cfg = IpTraffic {
            fraction: 0.8,
            ..IpTraffic::default()
        };
        let mut m = IpModel::new(cfg, 1);
        let bw = Bandwidth::from_gbps(100);
        let block = bw.tx_time_bits(66);
        let mut hit = false;
        for ns in (0..20_000).step_by(37) {
            let d = m.crossing_delay(0, 0, Time::from_ns(ns), bw);
            assert!(d <= block, "delay {d} exceeds a block time {block}");
            hit |= d > Duration::ZERO;
        }
        assert!(hit, "a busy link must delay some crossings");
        assert!(m.frames() > 0);
    }

    #[test]
    fn no_preemption_waits_out_the_frame() {
        let cfg = IpTraffic {
            fraction: 0.8,
            preemption: false,
            ..IpTraffic::default()
        };
        let mut m = IpModel::new(cfg, 1);
        let bw = Bandwidth::from_gbps(100);
        let frame_tx = bw.tx_time_bytes(1500);
        let block = bw.tx_time_bits(66);
        let mut max = Duration::ZERO;
        for ns in (0..50_000).step_by(13) {
            max = max.max(m.crossing_delay(0, 0, Time::from_ns(ns), bw));
        }
        assert!(max > block, "store-and-wait must exceed a block time");
        // The worst wait cannot exceed the residual backlog of a few
        // queued frames; a single lightly-loaded frame is ~120 ns.
        assert!(
            max >= frame_tx / 4,
            "expected a substantial frame wait, got {max}"
        );
    }

    #[test]
    fn lanes_are_independent_and_deterministic() {
        let cfg = IpTraffic {
            fraction: 0.5,
            ..IpTraffic::default()
        };
        let bw = Bandwidth::from_gbps(100);
        let sample = |link: u32, side: u8| {
            let mut m = IpModel::new(cfg, 4);
            (0..2_000)
                .step_by(11)
                .map(|ns| m.crossing_delay(link, side, Time::from_ns(ns), bw).as_ps())
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(1, 0), sample(1, 0), "deterministic per lane");
        assert_ne!(sample(1, 0), sample(2, 0), "independent across links");
        assert_ne!(sample(1, 0), sample(1, 1), "independent across directions");
    }

    #[test]
    fn lanes_do_not_depend_on_the_materializing_instance() {
        // Two model instances each driving a disjoint lane subset see
        // exactly the streams one instance driving both would see — the
        // property that lets shards own disjoint lane sets.
        let cfg = IpTraffic {
            fraction: 0.5,
            ..IpTraffic::default()
        };
        let bw = Bandwidth::from_gbps(100);
        let mut whole = IpModel::new(cfg, 2);
        let mut part_a = IpModel::new(cfg, 2);
        let mut part_b = IpModel::new(cfg, 2);
        let mut frames_whole = Vec::new();
        let mut frames_split = Vec::new();
        for ns in (0..3_000).step_by(17) {
            let t = Time::from_ns(ns);
            frames_whole.push(whole.crossing_delay(0, 0, t, bw).as_ps());
            frames_whole.push(whole.crossing_delay(1, 1, t, bw).as_ps());
            frames_split.push(part_a.crossing_delay(0, 0, t, bw).as_ps());
            frames_split.push(part_b.crossing_delay(1, 1, t, bw).as_ps());
        }
        assert_eq!(frames_whole, frames_split);
        assert_eq!(whole.frames(), part_a.frames() + part_b.frames());
        assert_eq!(whole.delayed(), part_a.delayed() + part_b.delayed());
    }
}
