//! The multi-switch event-driven fabric: one demand-sparse EDM scheduler
//! per switch, hop-by-hop grant coordination, failure injection, and
//! mixed IP+memory traffic — runnable sequentially or sharded across
//! cores with bit-identical results.
//!
//! # Model
//!
//! Each switch runs its own [`SwitchDomain`] (the PR 2 sparse-PIM
//! scheduler plus grant bookkeeping, shared with the single-switch
//! simulator). A flow's data path is a [`Route`] of hops; grants are
//! coordinated *between* switches by chunk arrival — the paper's implicit
//! notification generalized to trunks:
//!
//! * **Hop 0** (the data source's leaf) is the paper's single-switch
//!   protocol verbatim: the demand flight, the grant flight back to the
//!   host, and the chunk's two link crossings cost exactly what
//!   `EdmWorld` charges, so a 1-switch topology is bit-identical to the
//!   legacy path (pinned by proptest).
//! * **Hops ≥ 1**: a chunk arriving on a trunk *is* its own demand
//!   notification at that switch (as an RREQ is at the paper's switch).
//!   The switch schedules it like any message — at most one sender per
//!   egress port, so trunks stay contention-free virtual circuits — and
//!   forwards it after its matching latency plus a store-and-forward
//!   turnaround ([`TopoEdmConfig::forward_latency`]).
//!
//! Trunk-facing pairs aggregate many end-to-end flows, so multi-hop
//! routes are provisioned a larger per-pair X than single-hop access
//! pairs ([`TopoEdmConfig::trunk_max_active_per_pair`], via the
//! scheduler's `notify_with_limit` entry point).
//!
//! # Deterministic event ordering
//!
//! Every event is scheduled with a content-derived order key
//! ([`edm_core::sim::evord`]): at one instant, faults strike first, then
//! reroutes, then demand arrivals, then chunk arrivals (keyed by the
//! granting switch's monotone grant sequence), then scheduler polls.
//! Because the key is a pure function of event content — never of
//! scheduling order — the simulation's outcome is independent of *where*
//! an event was scheduled, which is exactly what lets
//! [`TopoEdm::simulate_sharded`] split one run across cores and still be
//! bit-identical to [`TopoEdm::simulate`] (pinned by the
//! `prop_parallel` lockstep suite).
//!
//! # Parallel execution
//!
//! [`TopoEdm::simulate_sharded`] partitions the switches into shards
//! (`crate::shard::ShardPlan`) and runs one logical process per shard
//! under the conservative window protocol of `edm_sim::sharded`:
//!
//! * Each shard owns the [`SwitchDomain`]s, per-direction IP lanes, and
//!   host events of its switches; a flow's demand/reroute events are
//!   pinned to its hop-0 leaf's shard.
//! * Read-mostly control state — topology, routes, flow epochs and
//!   terminal statuses — is *replicated*: fault and reroute events
//!   execute identically in every shard, and fault times are window
//!   *cuts* so replicas agree before anyone observes the change.
//! * A chunk whose next hop lives in another shard splits into a local
//!   `Settle` (egress bookkeeping at the granting switch) and a mailed
//!   `Arrive` (implicit notification at the next switch), both carrying
//!   the chunk's original order key; a chunk's trunk flight is at least
//!   the plan's lookahead, so the arrival always lands in a later
//!   window.
//! * Final-hop delivery credits broadcast to every shard as state-sync
//!   records, applied in deterministic order at window barriers.
//!
//! # Failures and repairs
//!
//! [`FaultEvent`]s take links or switches down (or degrade link latency)
//! mid-run. A failure bumps the *epoch* of every incomplete flow whose
//! route crosses the failed element; chunks of older epochs drain as
//! blackholed traffic — they consume the bandwidth they were granted but
//! are dropped at their next element. After
//! [`TopoEdmConfig::reroute_delay`], the flow's remaining bytes re-enter
//! on a freshly computed route, or the flow fails deterministically when
//! the fabric is partitioned.
//!
//! The same schedule carries *repairs*: [`FaultKind::LinkUp`] /
//! [`FaultKind::SwitchUp`] bring a dead element back (the revived
//! switch's scheduler cold-starts, [`SwitchDomain::purge`]), and
//! [`FaultKind::RestoreLink`] clears accumulated degradation. A repair
//! bumps — after [`TopoEdmConfig::repair_delay`] — every active flow
//! whose live route is now longer than the healed fabric's shortest
//! path, so traffic detoured around a failure migrates back. With
//! [`TopoEdmConfig::max_retries`] > 0, a flow that finds the fabric
//! partitioned does not fail immediately: it stays active with no route
//! and probes again under exponential backoff
//! ([`TopoEdmConfig::retry_backoff`]), re-admitting deterministically if
//! a repair heals the partition before the budget runs out. Repair
//! times join fault times as conservative-window cuts — both mutate
//! replicated topology state that every shard must observe in lockstep,
//! *after* pending delivery credits have flushed at the barrier.
//!
//! With [`TopoEdmConfig::cancel_stale_demand`] (the default), the epoch
//! bump also *revokes* the bumped flow's unbatched hop-0 message via
//! [`SwitchDomain::cancel`]: the dead path's backlog stops counting as
//! demand, and only chunks already granted at bump time drain as
//! blackholed bandwidth. Disable the flag to model a sender that never
//! revokes announced demand (the pre-cancel pessimism, still used as a
//! lower bound in A/B tests); offers folded into a §3.1.2 mega message
//! keep that pessimism either way, since their notification covers the
//! whole batch.
//!
//! # Streaming flow lifecycle
//!
//! Flow state lives in a base-offset ring keyed by admission index
//! (ids are dense and admitted in order), populated by
//! *admission* and — in fault-free, unbatched runs — drained by
//! *retirement*, so resident state tracks the concurrently-active flow
//! population rather than the total offered load:
//!
//! * **Admission.** [`TopoEdm::simulate_streamed`] pulls arrivals lazily
//!   from a time-ordered iterator (any `edm_workloads` `FlowSource`):
//!   each `Admit` event routes one flow, creates its runtime entry, and
//!   schedules the next arrival's admission — exactly one pending
//!   arrival is materialized at any instant. The materialized
//!   [`TopoEdm::simulate`] path admits its whole slice before the run;
//!   both paths schedule bit-identical demand events.
//! * **Retirement.** When a flow reaches a terminal state and no future
//!   event can reference it — guaranteed when the run has no faults (no
//!   stale-epoch zombie chunks, no reroutes) and no §3.1.2 batching (no
//!   cross-flow mega messages) — its entry is removed between events,
//!   and the per-switch message slots, pair-FIFO links, and backlog
//!   words it held return to the [`SwitchDomain`] free lists. Fault or
//!   batching runs keep terminal entries resident, as before: in-flight
//!   zombie chunks still resolve their path context through them.
//! * **Sinking.** Terminal outcomes stream to a sink callback the moment
//!   they are decided instead of accumulating in a `Vec`. The `Vec`
//!   paths use a collecting sink, preserving their API and results
//!   bit-for-bit; shard 0 holds the sink in sharded runs (it observes
//!   every terminal transition — local settles plus barrier credits).

use crate::app::{AppEv, AppState};
use crate::ip::{IpModel, IpTraffic};
use crate::shard::ShardPlan;
use crate::topology::{Endpoint, Hop, Route, Topology};
use edm_core::sim::{
    evord, ClusterConfig, DomainOffer, EdmProtocol, Flow, FlowKind, FlowOutcome, SimResult,
    SwitchDomain,
};
use edm_sched::{Policy, SchedulerConfig};
use edm_sim::sharded::{run_sharded, Envelope, Recipient, ShardWorld, ShardedConfig};
use edm_sim::{Duration, Engine, EventQueue, Summary, Time, World};
use std::sync::Arc;

/// A failure (or degradation) injected at a point in simulated time.
#[derive(Debug, Clone, Copy)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: Time,
    /// What breaks.
    pub kind: FaultKind,
}

/// The kinds of injectable faults.
#[derive(Debug, Clone, Copy)]
pub enum FaultKind {
    /// A link (access or trunk) goes down.
    LinkDown(u32),
    /// A whole switch goes down, with all queued scheduler state.
    SwitchDown(u32),
    /// A link stays up but gains one-way latency (damaged fiber, FEC
    /// retries); no reroute is triggered.
    DegradeLink {
        /// The link.
        link: u32,
        /// Added one-way latency.
        extra: Duration,
    },
    /// A downed link comes back up. Routes recompute, and flows detoured
    /// onto longer paths migrate back after
    /// [`TopoEdmConfig::repair_delay`]. A no-op if the link is up.
    LinkUp(u32),
    /// A downed switch comes back up with a cold scheduler (its queued
    /// state died with it). A no-op if the switch is up.
    SwitchUp(u32),
    /// Clears all accumulated [`FaultKind::DegradeLink`] latency on a
    /// link (fiber replaced, FEC retrained); latency-only, no reroute.
    RestoreLink(u32),
}

/// Configuration of the multi-switch EDM protocol.
#[derive(Debug, Clone)]
pub struct TopoEdmConfig {
    /// Fixed per-direction fabric pipeline latency (host stacks + switch,
    /// the Table 1 model) — same semantics as `ClusterConfig`.
    pub pipeline_latency: Duration,
    /// Store-and-forward turnaround at an intermediate switch (the egress
    /// half of the pipeline).
    pub forward_latency: Duration,
    /// Scheduler chunk size.
    pub chunk_bytes: u32,
    /// Scheduling policy.
    pub policy: Policy,
    /// X for single-hop (host↔host) pairs — the paper's X=3.
    pub max_active_per_pair: usize,
    /// X for pairs on multi-hop routes: those touch trunk ports, which
    /// aggregate many concurrent end-to-end flows, so they get a larger
    /// share of the notification queue.
    pub trunk_max_active_per_pair: usize,
    /// §3.1.2 mega-batching of same-route backlogged messages.
    pub batch_small_messages: bool,
    /// Detection + recovery time before a failed flow's remaining bytes
    /// re-enter on a new route.
    pub reroute_delay: Duration,
    /// Detection time before flows detoured around a failure migrate
    /// back onto a repaired element's shorter paths ([`FaultKind::LinkUp`]
    /// / [`FaultKind::SwitchUp`]).
    pub repair_delay: Duration,
    /// How many times a flow that finds the fabric partitioned probes
    /// for a route again before failing for good. 0 (the default)
    /// preserves the legacy fail-fast semantics: a partition at reroute
    /// time fails the flow immediately.
    pub max_retries: u32,
    /// Backoff before a partitioned flow's first retry probe; doubles on
    /// every subsequent attempt (the flow-level timeout is the sum of
    /// the exponential series).
    pub retry_backoff: Duration,
    /// Whether an epoch bump revokes the bumped flow's unbatched hop-0
    /// message ([`SwitchDomain::cancel`]), so the dead path's backlog
    /// stops counting as demand. On by default; turn off to model a
    /// sender that never revokes announced demand (the documented
    /// pre-cancel pessimism).
    pub cancel_stale_demand: bool,
    /// Background IP traffic sharing the links.
    pub ip: IpTraffic,
    /// Fault injection plan.
    pub faults: Vec<FaultEvent>,
}

impl Default for TopoEdmConfig {
    fn default() -> Self {
        let pipeline = Duration::from_ns(54); // ClusterConfig's default
        TopoEdmConfig {
            pipeline_latency: pipeline,
            forward_latency: pipeline / 2,
            chunk_bytes: 256,
            policy: Policy::Srpt,
            max_active_per_pair: 3,
            trunk_max_active_per_pair: 16,
            batch_small_messages: false,
            reroute_delay: Duration::from_us(10),
            repair_delay: Duration::from_us(10),
            max_retries: 0,
            retry_backoff: Duration::from_us(20),
            cancel_stale_demand: true,
            ip: IpTraffic::default(),
            faults: Vec::new(),
        }
    }
}

impl TopoEdmConfig {
    /// A configuration matching a legacy (`ClusterConfig`,
    /// [`EdmProtocol`]) pair — the 1-switch equivalence tests and benches
    /// pin `TopoEdm` on [`crate::cluster_topology`] against exactly this.
    pub fn matching(cluster: &ClusterConfig, p: &EdmProtocol) -> Self {
        TopoEdmConfig {
            pipeline_latency: cluster.pipeline_latency,
            forward_latency: cluster.pipeline_latency / 2,
            chunk_bytes: p.chunk_bytes,
            policy: p.policy,
            max_active_per_pair: p.max_active_per_pair,
            batch_small_messages: p.batch_small_messages,
            ..TopoEdmConfig::default()
        }
    }
}

/// Terminal state of one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowStatus {
    /// All bytes reached the destination at this time.
    Delivered(Time),
    /// The flow could not complete (fabric partition); decided at this
    /// time.
    Failed(Time),
}

/// Per-flow outcome of a topology run.
#[derive(Debug, Clone, Copy)]
pub struct TopoOutcome {
    /// The flow.
    pub flow: Flow,
    /// How it ended.
    pub status: FlowStatus,
}

impl TopoOutcome {
    /// Message completion time, if delivered.
    pub fn mct(&self) -> Option<Duration> {
        match self.status {
            FlowStatus::Delivered(t) => Some(t.saturating_since(self.flow.arrival)),
            FlowStatus::Failed(_) => None,
        }
    }
}

/// Result of one multi-switch simulation.
#[derive(Debug, Clone)]
pub struct TopoResult {
    /// Per-flow outcomes, in input order.
    pub outcomes: Vec<TopoOutcome>,
    /// Successful re-routes after faults.
    pub reroutes: u64,
    /// Retry probes scheduled for partitioned flows
    /// ([`TopoEdmConfig::max_retries`]).
    pub retried: u64,
    /// Partitioned flows that found a route again on a retry probe
    /// (after a repair healed the partition).
    pub readmitted: u64,
    /// Background IP frames generated on crossed links.
    pub ip_frames: u64,
    /// Memory-chunk link crossings that hit an in-flight IP frame.
    pub ip_delayed: u64,
    /// Simulation events dispatched (cost proxy; a cross-shard chunk's
    /// settle/arrive pair counts once, and replicated fault/reroute
    /// events count once, so the tally is shard-count independent).
    pub events: u64,
}

impl TopoResult {
    /// Number of delivered flows.
    pub fn delivered(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, FlowStatus::Delivered(_)))
            .count()
    }

    /// Number of failed flows.
    pub fn failed(&self) -> usize {
        self.outcomes.len() - self.delivered()
    }

    /// Mean completion time over delivered flows.
    pub fn mean_mct(&self) -> Duration {
        let (mut total, mut n) = (Duration::ZERO, 0u64);
        for o in &self.outcomes {
            if let Some(mct) = o.mct() {
                total += mct;
                n += 1;
            }
        }
        if n == 0 {
            Duration::ZERO
        } else {
            total / n
        }
    }

    /// Summary of delivered-flow MCTs normalized by `ideal(flow)`.
    pub fn normalized_mct<F: Fn(&Flow) -> Duration>(&self, ideal: F) -> Summary {
        let mut s = Summary::new();
        for o in &self.outcomes {
            if let Some(mct) = o.mct() {
                s.record(mct.ratio(ideal(&o.flow)));
            }
        }
        s
    }

    /// Converts to the shared [`SimResult`] shape; `None` if any flow
    /// failed.
    pub fn to_sim_result(&self, protocol: &'static str) -> Option<SimResult> {
        let mut outcomes = Vec::with_capacity(self.outcomes.len());
        for o in &self.outcomes {
            match o.status {
                FlowStatus::Delivered(t) => outcomes.push(FlowOutcome {
                    flow: o.flow,
                    completed: t,
                }),
                FlowStatus::Failed(_) => return None,
            }
        }
        Some(SimResult { protocol, outcomes })
    }
}

/// Aggregate counters of one streaming run ([`TopoEdm::simulate_streamed`]
/// / [`TopoEdm::simulate_sharded_streamed`]) — everything the run retains
/// once per-flow outcomes have streamed to the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopoStreamStats {
    /// Flows pulled from the source and admitted (delivered + failed once
    /// the run drains).
    pub admitted: u64,
    /// Flows whose every byte reached its destination.
    pub delivered: u64,
    /// Flows that could not complete (unroutable at admission, or fabric
    /// partition mid-run).
    pub failed: u64,
    /// Successful re-routes after faults.
    pub reroutes: u64,
    /// Retry probes scheduled for partitioned flows
    /// ([`TopoEdmConfig::max_retries`]).
    pub retried: u64,
    /// Partitioned flows that found a route again on a retry probe
    /// (after a repair healed the partition).
    pub readmitted: u64,
    /// Background IP frames generated on crossed links.
    pub ip_frames: u64,
    /// Memory-chunk link crossings that hit an in-flight IP frame.
    pub ip_delayed: u64,
    /// Simulation events dispatched (admission events are free: the
    /// materialized path has none, and the tallies must match).
    pub events: u64,
    /// Peak number of concurrently-resident flow entries — with eager
    /// retirement (streamed, unbatched runs; faults included, whose
    /// zombie references drain through per-flow counts) this is the
    /// active-flow population peak, independent of how many flows the
    /// source emits in total. Sharded runs may report slightly more than the
    /// sequential run: delivery credits retire replicas at window
    /// barriers, a beat after the sequential run retires them.
    pub active_high_water: usize,
    /// Peak message-slot slab size summed over every switch scheduler —
    /// proof of slot reuse: with retirement it tracks concurrent
    /// messages, not total messages.
    pub msg_slots_high_water: usize,
}

/// The multi-switch EDM protocol.
///
/// [`TopoEdm::simulate`] runs sequentially; [`TopoEdm::simulate_sharded`]
/// runs the *same* simulation split across cores under conservative
/// windows, bit-identical to the sequential run for every shard count
/// (pinned by the `prop_parallel` lockstep suite). Topologies that
/// cannot support parallelism — a single switch, or zero-latency trunks
/// contracting everything into one component — degenerate to the
/// sequential path.
#[derive(Debug, Clone, Default)]
pub struct TopoEdm {
    /// Configuration.
    pub config: TopoEdmConfig,
}

impl TopoEdm {
    /// Creates the protocol from a configuration.
    pub fn new(config: TopoEdmConfig) -> Self {
        TopoEdm { config }
    }

    /// Simulates `flows` over `topo` (a private copy — fault injection
    /// never mutates the caller's topology).
    ///
    /// # Panics
    ///
    /// Panics on malformed flows (src == dst, out-of-range nodes,
    /// zero-size messages) and if a flow stalls without a terminal state
    /// (a model invariant violation).
    pub fn simulate(&self, topo: &Topology, flows: &[Flow]) -> TopoResult {
        let mut results: Vec<Option<TopoOutcome>> = vec![None; flows.len()];
        let tally = {
            let sink = |id: u32, o: TopoOutcome| results[id as usize] = Some(o);
            let plan = Arc::new(ShardPlan::solo(topo.switch_count()));
            let mut world = self.build_world(topo, plan, 0, Some(sink), NO_SOURCE, None);
            let mut q = EventQueue::new();
            self.seed_faults(&mut q);
            for (i, &f) in flows.iter().enumerate() {
                world.admit(i as u32, f, &mut q);
            }
            let mut engine = Engine::with_queue(world, q);
            engine.run();
            TopoEdm::tally(&[engine.into_world()])
        };
        TopoEdm::into_result(results, tally)
    }

    /// [`TopoEdm::simulate`], sharded over up to `shards` cores.
    ///
    /// The result — flow outcomes, reroute/IP counters, event tally — is
    /// bit-identical to the sequential run for any shard count. When the
    /// plan degenerates to one shard (single switch, zero-latency
    /// trunks, `shards <= 1`), this *is* the sequential run.
    ///
    /// # Panics
    ///
    /// As [`TopoEdm::simulate`].
    pub fn simulate_sharded(&self, topo: &Topology, flows: &[Flow], shards: usize) -> TopoResult {
        let plan = Arc::new(ShardPlan::new(topo, &self.config, shards));
        if plan.shards() == 1 {
            return self.simulate(topo, flows);
        }
        let mut results: Vec<Option<TopoOutcome>> = vec![None; flows.len()];
        let tally = {
            // Shard 0 holds the collecting sink; replicas elsewhere run
            // the same terminal transitions without reporting them.
            let mut sink = Some(|id: u32, o: TopoOutcome| results[id as usize] = Some(o));
            let inputs: Vec<_> = (0..plan.shards() as u32)
                .map(|me| {
                    let mut world =
                        self.build_world(topo, plan.clone(), me, sink.take(), NO_SOURCE, None);
                    let mut q = EventQueue::new();
                    self.seed_faults(&mut q);
                    for (i, &f) in flows.iter().enumerate() {
                        world.admit(i as u32, f, &mut q);
                    }
                    (world, q)
                })
                .collect();
            TopoEdm::tally(&run_sharded(inputs, &self.sharded_config(&plan)))
        };
        TopoEdm::into_result(results, tally)
    }

    /// Streams a simulation: arrivals are pulled lazily from `source`
    /// (must be time-ordered — every `edm_workloads` `FlowSource` is) and
    /// per-flow outcomes are pushed to `sink` the moment they are
    /// decided. With no faults and no §3.1.2 batching, completed flows
    /// *retire* — their routing entry, switch message slots, pair-FIFO
    /// links, and backlog words all return to free lists — so resident
    /// memory tracks the concurrently-active flow population, not the
    /// total flow count ([`TopoStreamStats::active_high_water`]).
    ///
    /// Fault-free streamed runs are bit-identical to materializing the
    /// source and calling [`TopoEdm::simulate`] (pinned by proptest).
    /// With faults, admission routes each flow on the topology *as of
    /// its arrival* — late flows route around known failures — whereas
    /// the materialized path routes everything up front; both are valid
    /// models, but they are not lockstep.
    ///
    /// # Panics
    ///
    /// As [`TopoEdm::simulate`]; additionally if `source` yields
    /// arrivals out of time order.
    pub fn simulate_streamed<I, F>(&self, topo: &Topology, source: I, sink: F) -> TopoStreamStats
    where
        I: Iterator<Item = Flow>,
        F: FnMut(TopoOutcome),
    {
        let mut sink = sink;
        let plan = Arc::new(ShardPlan::solo(topo.switch_count()));
        let mut source = source;
        let first = source.next();
        let mut world = self.build_world(
            topo,
            plan,
            0,
            Some(move |_id: u32, o: TopoOutcome| sink(o)),
            Some((source, 1)),
            None,
        );
        let mut q = EventQueue::new();
        self.seed_faults(&mut q);
        if let Some(f) = first {
            q.schedule_ordered(
                f.arrival,
                evord::demand(0),
                TopoEv::Admit { id: 0, flow: f },
            );
        }
        let mut engine = Engine::with_queue(world, q);
        engine.run();
        world = engine.into_world();
        TopoEdm::stream_stats(&[world])
    }

    /// [`TopoEdm::simulate_streamed`], sharded over up to `shards` cores
    /// — bit-identical to the sequential streamed run (each shard
    /// replays its own clone of the source, so flow-state replicas stay
    /// lockstep; the sink lives in shard 0).
    ///
    /// # Panics
    ///
    /// As [`TopoEdm::simulate_streamed`].
    pub fn simulate_sharded_streamed<I, F>(
        &self,
        topo: &Topology,
        source: I,
        sink: F,
        shards: usize,
    ) -> TopoStreamStats
    where
        I: Iterator<Item = Flow> + Clone + Send,
        F: FnMut(TopoOutcome) + Send,
    {
        let plan = Arc::new(ShardPlan::new(topo, &self.config, shards));
        if plan.shards() == 1 {
            return self.simulate_streamed(topo, source, sink);
        }
        let mut sink = sink;
        let mut sink_slot = Some(move |_id: u32, o: TopoOutcome| sink(o));
        let mut source = source;
        let first = source.next();
        let inputs: Vec<_> = (0..plan.shards() as u32)
            .map(|me| {
                let world = self.build_world(
                    topo,
                    plan.clone(),
                    me,
                    sink_slot.take(),
                    Some((source.clone(), 1)),
                    None,
                );
                let mut q = EventQueue::new();
                self.seed_faults(&mut q);
                if let Some(f) = first {
                    q.schedule_ordered(
                        f.arrival,
                        evord::demand(0),
                        TopoEv::Admit { id: 0, flow: f },
                    );
                }
                (world, q)
            })
            .collect();
        TopoEdm::stream_stats(&run_sharded(inputs, &self.sharded_config(&plan)))
    }

    /// Fault events, replicated into every shard's queue; a fault at
    /// time T precedes any same-instant demand by order-key rank.
    pub(crate) fn seed_faults(&self, q: &mut EventQueue<TopoEv>) {
        for (i, f) in self.config.faults.iter().enumerate() {
            q.schedule_ordered(
                f.at,
                evord::fault(i as u32),
                TopoEv::Fault { idx: i as u32 },
            );
        }
    }

    pub(crate) fn sharded_config(&self, plan: &ShardPlan) -> ShardedConfig {
        let mut cuts: Vec<Time> = self.config.faults.iter().map(|f| f.at).collect();
        cuts.sort_unstable();
        ShardedConfig {
            lookahead: plan.lookahead(),
            cuts,
        }
    }

    /// Builds one shard's world (for the solo plan: the whole world),
    /// with no flows admitted yet. Every shard computes identical
    /// replicated flow state as admissions run; only domain ownership,
    /// demand seeding, and sink placement differ.
    pub(crate) fn build_world<S, I>(
        &self,
        topo: &Topology,
        plan: Arc<ShardPlan>,
        me: u32,
        sink: Option<S>,
        source: Option<(I, u32)>,
        app: Option<Box<AppState>>,
    ) -> TopoWorld<S, I>
    where
        S: FnMut(u32, TopoOutcome),
        I: Iterator<Item = Flow>,
    {
        let topo = topo.clone();
        let link_count = topo.links().len();
        let domains = (0..topo.switch_count() as u32)
            .map(|sw| {
                if plan.shard_of(sw) != me {
                    return None;
                }
                Some(SwitchDomain::new(
                    SchedulerConfig {
                        ports: topo.switch_ports(sw),
                        chunk_bytes: self.config.chunk_bytes,
                        link: topo.reference_bandwidth(sw),
                        policy: self.config.policy,
                        max_active_per_pair: self.config.max_active_per_pair,
                        clock: edm_sched::ASIC_CLOCK,
                    },
                    self.config.batch_small_messages,
                ))
            })
            .collect();
        let gens = vec![0u32; topo.switch_count()];
        TopoWorld {
            ip: IpModel::new(self.config.ip, link_count),
            // A terminal flow retires once its per-flow reference count
            // drains to zero — every resident offer it holds at an
            // owned switch is counted, so zombie chunks of fault runs
            // simply delay retirement instead of disabling it. §3.1.2
            // mega messages are the one remaining exclusion: grants
            // resolve their route through the *head* constituent's
            // entry, which must outlive the whole mega. Retirement only
            // pays on streamed runs — the materialized paths hold an
            // O(flows) results vector regardless, and skipping it keeps
            // `rt` a flat append-only table there.
            // Closed-loop app runs are streamed by construction (flows
            // are admitted as ops issue and retire as legs complete), so
            // they retire eagerly under the same exclusion.
            eager_retire: (source.is_some() || app.is_some()) && !self.config.batch_small_messages,
            cfg: self.config.clone(),
            topo,
            rt: RtMap::default(),
            domains,
            gens,
            plan,
            me,
            reroutes: 0,
            retried: 0,
            readmitted: 0,
            events: 0,
            outbox: Vec::new(),
            sink,
            source,
            retired: Vec::new(),
            admitted: 0,
            delivered_n: 0,
            failed_n: 0,
            active_hwm: 0,
            app,
            app_done_buf: Vec::new(),
        }
    }

    /// Merges per-shard counters. Replicated flow state is identical
    /// across shards (debug-asserted); owned counters sum.
    fn tally<S, I>(worlds: &[TopoWorld<S, I>]) -> TopoTally
    where
        S: FnMut(u32, TopoOutcome),
        I: Iterator<Item = Flow>,
    {
        #[cfg(debug_assertions)]
        for w in &worlds[1..] {
            debug_assert_eq!(worlds[0].rt.len(), w.rt.len(), "resident replica diverged");
            for (fi, a) in worlds[0].rt.iter() {
                let b = &w.rt[fi];
                debug_assert_eq!(a.status, b.status, "flow {fi} status replica diverged");
                debug_assert_eq!(a.epoch, b.epoch, "flow {fi} epoch replica diverged");
                debug_assert_eq!(
                    a.delivered, b.delivered,
                    "flow {fi} credit replica diverged"
                );
            }
        }
        TopoTally {
            reroutes: worlds[0].reroutes,
            retried: worlds[0].retried,
            readmitted: worlds[0].readmitted,
            ip_frames: worlds.iter().map(|w| w.ip.frames()).sum(),
            ip_delayed: worlds.iter().map(|w| w.ip.delayed()).sum(),
            events: worlds.iter().map(|w| w.events).sum(),
        }
    }

    /// Assembles a [`TopoResult`] from the collecting sink's outcomes.
    fn into_result(results: Vec<Option<TopoOutcome>>, t: TopoTally) -> TopoResult {
        let outcomes = results
            .into_iter()
            .enumerate()
            .map(|(i, o)| o.unwrap_or_else(|| panic!("flow {i} stalled without a terminal state")))
            .collect();
        TopoResult {
            outcomes,
            reroutes: t.reroutes,
            retried: t.retried,
            readmitted: t.readmitted,
            ip_frames: t.ip_frames,
            ip_delayed: t.ip_delayed,
            events: t.events,
        }
    }

    /// Assembles the aggregate stats of a streamed run.
    pub(crate) fn stream_stats<S, I>(worlds: &[TopoWorld<S, I>]) -> TopoStreamStats
    where
        S: FnMut(u32, TopoOutcome),
        I: Iterator<Item = Flow>,
    {
        let t = TopoEdm::tally(worlds);
        let w0 = &worlds[0];
        assert_eq!(
            w0.admitted,
            w0.delivered_n + w0.failed_n,
            "a flow stalled without a terminal state"
        );
        // Each switch is owned by exactly one shard, so slab peaks sum.
        let msg_slots_high_water = worlds
            .iter()
            .flat_map(|w| w.domains.iter().flatten())
            .map(|d| d.msg_slab_high_water())
            .sum();
        TopoStreamStats {
            admitted: w0.admitted,
            delivered: w0.delivered_n,
            failed: w0.failed_n,
            reroutes: t.reroutes,
            retried: t.retried,
            readmitted: t.readmitted,
            ip_frames: t.ip_frames,
            ip_delayed: t.ip_delayed,
            events: t.events,
            active_high_water: w0.active_hwm,
            msg_slots_high_water,
        }
    }

    /// The flow's *unloaded* completion time on this topology: the flow
    /// alone, no faults, no background IP — the normalization baseline
    /// (`None` if the pristine topology cannot route it).
    pub fn solo_mct(&self, topo: &Topology, flow: &Flow) -> Option<Duration> {
        let mut cfg = self.config.clone();
        cfg.faults.clear();
        cfg.ip.fraction = 0.0;
        let solo = Flow {
            arrival: Time::ZERO,
            ..*flow
        };
        admission_route(topo, &solo)?;
        TopoEdm::new(cfg).simulate(topo, &[solo]).outcomes[0].mct()
    }
}

/// Merged per-shard counters ([`TopoEdm::tally`]).
#[derive(Debug, Clone, Copy)]
struct TopoTally {
    reroutes: u64,
    retried: u64,
    readmitted: u64,
    ip_frames: u64,
    ip_delayed: u64,
    events: u64,
}

/// Runtime status of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RtStatus {
    Active,
    Done(Time),
    Failed(Time),
}

/// Per-flow runtime state. Replicated in every shard: epochs and routes
/// advance through replicated fault/reroute events, delivery credits
/// through barrier-synced broadcasts.
#[derive(Debug)]
struct FlowRt {
    /// The admitted flow (moved in at admission; the world keeps no
    /// separate flow list).
    flow: Flow,
    /// Route per epoch; `routes[epoch]` is the live one (`None` while a
    /// reroute is pending). Old epochs stay resident so in-flight zombie
    /// chunks can still resolve their path context.
    routes: Vec<Option<Route>>,
    epoch: u32,
    /// Bytes that reached the destination node (current epoch only;
    /// stale-epoch arrivals are retransmitted, never double-counted).
    delivered: u32,
    /// Bytes offered in the current epoch.
    inject_bytes: u32,
    /// Outstanding resident offers this flow holds at switches owned by
    /// *this shard*: +1 per [`SwitchDomain::offer`], −1 when the
    /// sub-offer completes, is cancelled, or dies with a purged switch.
    /// A terminal entry retires (eager mode) once the count drains to
    /// zero — the shard-local proof that no future event can reference
    /// it, which is what lets streamed *fault* runs stay bounded-memory.
    refs: u32,
    status: RtStatus,
}

/// Flow state keyed by admission index: live flows plus — in fault or
/// batching runs — terminal entries whose route context may still be
/// referenced.
///
/// Ids are dense and admitted in increasing order, and retirement is
/// FIFO-ish (flows complete within a bounded window of their arrival),
/// so the store is a base-offset ring of `Option` slots rather than a
/// hash map: O(1) direct indexing on the event hot path (a map's
/// hashing is an order of magnitude slower in unoptimized builds, where
/// the 2× topo-vs-single-switch cost gate runs), memory O(live
/// id-span), and iteration is naturally in admission order — the
/// deterministic order `bump_affected` needs, with no sort.
#[derive(Debug, Default)]
struct RtMap {
    /// Id of slot 0. Advances when the dead prefix is compacted away.
    base: u32,
    slots: Vec<Option<FlowRt>>,
    /// Occupied slots.
    live: usize,
    /// Leading `None` slots (already-retired ids below every live one),
    /// compacted away once they dominate the vector.
    dead_prefix: usize,
}

impl RtMap {
    /// Inserts `rt` for `id`. Ids must be inserted in increasing order
    /// (admission order); skipped ids — flows that failed at admission —
    /// leave holes.
    fn insert(&mut self, id: u32, rt: FlowRt) {
        let idx = (id - self.base) as usize;
        debug_assert!(idx >= self.slots.len(), "ids admit in increasing order");
        self.slots.resize_with(idx, || None);
        self.slots.push(Some(rt));
        self.live += 1;
    }

    fn get(&self, id: u32) -> Option<&FlowRt> {
        match self.slots.get(id.wrapping_sub(self.base) as usize) {
            Some(Some(rt)) => Some(rt),
            _ => None,
        }
    }

    fn get_mut(&mut self, id: u32) -> Option<&mut FlowRt> {
        // `wrapping_sub` folds the `id < base` miss into the bounds
        // check (the wrapped index is astronomically out of range).
        match self.slots.get_mut(id.wrapping_sub(self.base) as usize) {
            Some(Some(rt)) => Some(rt),
            _ => None,
        }
    }

    /// Removes `id`. When retired ids below every live id come to
    /// dominate the vector, the dead prefix is compacted away (amortized
    /// O(1)), so the footprint tracks the live id-span.
    fn remove(&mut self, id: u32) -> Option<FlowRt> {
        let idx = id.checked_sub(self.base)? as usize;
        let rt = self.slots.get_mut(idx)?.take()?;
        self.live -= 1;
        if idx == self.dead_prefix {
            let mut dp = self.dead_prefix + 1;
            while dp < self.slots.len() && self.slots[dp].is_none() {
                dp += 1;
            }
            self.dead_prefix = dp;
            if dp >= 64 && dp * 2 >= self.slots.len() {
                self.slots.drain(..dp);
                self.base += dp as u32;
                self.dead_prefix = 0;
            }
        }
        Some(rt)
    }

    /// Resident (live) entries.
    fn len(&self) -> usize {
        self.live
    }

    /// Live `(id, entry)` pairs in increasing (admission) order.
    fn iter(&self) -> impl Iterator<Item = (u32, &FlowRt)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| s.as_ref().map(|rt| (self.base + i as u32, rt)))
    }

    /// Live ids in increasing (admission) order.
    fn ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.iter().map(|(id, _)| id)
    }
}

impl std::ops::Index<u32> for RtMap {
    type Output = FlowRt;
    fn index(&self, id: u32) -> &FlowRt {
        // One subtraction plus one slice index: the materialized paths
        // never compact (`base` stays 0), so this is as cheap as the
        // flat `Vec<FlowRt>` it replaced — which keeps the leaf-spine
        // per-flow cost inside the `topo_scale` 2x gate in debug builds.
        match self.slots[id.wrapping_sub(self.base) as usize] {
            Some(ref rt) => rt,
            None => panic!("flow {id} is not resident"),
        }
    }
}

/// Type of the absent streaming source in the materialized paths.
pub(crate) type NoSource = std::iter::Empty<Flow>;
pub(crate) const NO_SOURCE: Option<(NoSource, u32)> = None;

#[derive(Debug, Clone, Copy)]
pub(crate) enum TopoEv {
    /// A flow's arrival instant: route it, create its runtime entry,
    /// and pull the next arrival from the streaming source (the
    /// materialized paths admit before the run and never see this).
    Admit { id: u32, flow: Flow },
    /// A flow's demand reaches its hop-0 switch.
    Demand { flow: u32, epoch: u32 },
    /// One switch's scheduler poll.
    Poll { switch: u32 },
    /// A granted chunk's last byte reaches its next element: egress
    /// bookkeeping at the granting switch *and* the implicit
    /// notification at the next one (same-shard / final-hop case).
    /// `gen` is the granting switch's generation at grant time: a chunk
    /// granted before its switch died must never settle into the
    /// revived switch's cold slab.
    Chunk {
        token: u64,
        from_switch: u16,
        slot: u32,
        bytes: u32,
        gen: u32,
    },
    /// The bookkeeping half of a chunk whose next hop lives in another
    /// shard (its `Arrive` half is mailed there with the same order
    /// key).
    Settle {
        token: u64,
        from_switch: u16,
        slot: u32,
        bytes: u32,
        gen: u32,
    },
    /// The notification half of a cross-shard chunk, merged in at a
    /// window barrier.
    Arrive {
        token: u64,
        from_switch: u16,
        bytes: u32,
    },
    /// A planned fault strikes (replicated in every shard).
    Fault { idx: u32 },
    /// A bumped flow re-enters on a fresh route (replicated; only the
    /// new hop-0 shard seeds the demand).
    Reroute { flow: u32, epoch: u32 },
    /// A partitioned flow's bounded-backoff probe for a route
    /// (replicated, [`evord::reroute`]-keyed like the reroute it
    /// follows — at most one recovery event per flow is ever pending).
    Retry { flow: u32, epoch: u32, attempt: u32 },
    /// A closed-loop application-tier step (`crate::app`): replicated in
    /// every shard, keyed by [`evord::app_issue`]/[`evord::app_service`]/
    /// [`evord::app_done`] so it sorts after all fabric events at one
    /// instant — the app observes a settled fabric.
    App(AppEv),
}

/// Cross-shard traffic.
#[derive(Debug, Clone, Copy)]
pub(crate) enum TopoMsg {
    /// A chunk's implicit notification at its next-hop switch.
    Arrive {
        token: u64,
        from_switch: u16,
        bytes: u32,
    },
    /// One completed sub-offer's bytes reached the destination: every
    /// shard replays this against its flow-state replica.
    Credit { flow: u32, bytes: u32 },
}

fn pack(flow: u32, epoch: u32) -> u64 {
    flow as u64 | (epoch as u64) << 32
}

fn unpack(token: u64) -> (u32, u32) {
    (token as u32, (token >> 32) as u32)
}

/// Batching key: flows fold into one mega message only when they share
/// the end-to-end pair and epoch, so a batched chunk never spans two
/// routes.
fn batch_key(flow: &Flow, epoch: u32) -> u64 {
    let (s, d) = flow.data_direction();
    (s as u64) << 48 | (d as u64) << 32 | epoch as u64
}

/// The route the engine assigns `flow` on `topo` — the *pinned* path
/// choice: salted ECMP over the flow's data direction (writes travel
/// src→dst, reads dst→src), salted by the flow id. [`TopoEdm`] routes
/// every admission, re-route, and solo probe through exactly this
/// function, so any engine that wants to agree with the exact
/// simulation's per-flow paths (the `edm-approx` decomposition
/// front-end) must reproduce it bit-identically — `prop_approx` pins
/// that equivalence.
pub fn admission_route(topo: &Topology, flow: &Flow) -> Option<Route> {
    let (ds, dd) = flow.data_direction();
    topo.route(ds as usize, dd as usize, flow.id as u64)
}

/// Per-pair X for a route: single-hop host pairs keep the paper's X;
/// multi-hop routes touch aggregated trunk ports.
fn route_limit(cfg: &TopoEdmConfig, route: &Route) -> usize {
    if route.hops.len() == 1 {
        cfg.max_active_per_pair
    } else {
        cfg.trunk_max_active_per_pair
    }
}

/// One-way latency of a link (propagation + degradation).
pub(crate) fn link_lat(topo: &Topology, link: u32) -> Duration {
    topo.link(link).latency()
}

/// Control-block (8 B) serialization on a link.
pub(crate) fn tx8(topo: &Topology, link: u32) -> Duration {
    topo.link(link).params.bandwidth.tx_time_bytes(8)
}

/// Half-RTT of a control block over an access link: half the pipeline,
/// the link flight, and the block's serialization — identical to the
/// legacy world's `half`.
pub(crate) fn access_half(cfg: &TopoEdmConfig, topo: &Topology, link: u32) -> Duration {
    cfg.pipeline_latency / 2 + link_lat(topo, link) + tx8(topo, link)
}

/// The IP lane side a grant at `granting` charges on `link`: trunk lanes
/// are directional (keyed by the granting end), access links keep one
/// lane — both its crossings are charged by the same leaf switch.
fn lane_side(topo: &Topology, link: u32, granting: u32) -> u8 {
    let l = topo.link(link);
    match (l.a, l.b) {
        (Endpoint::Port { switch: a, .. }, Endpoint::Port { .. }) => u8::from(a != granting),
        _ => 0,
    }
}

pub(crate) struct TopoWorld<S, I> {
    pub(crate) cfg: TopoEdmConfig,
    pub(crate) topo: Topology,
    /// Per-flow runtime state, inserted at admission and — in eager
    /// mode — removed at retirement, so `rt.len()` tracks the *active*
    /// flow population rather than the total offered load.
    rt: RtMap,
    /// `Some` only for switches this shard owns (all of them for the
    /// sequential solo plan).
    domains: Vec<Option<SwitchDomain>>,
    /// Per-switch generation, bumped when the switch dies (replicated —
    /// every shard executes fault events). Chunk/settle events carry
    /// the generation they were granted under; a mismatch fences
    /// pre-outage chunks away from the revived switch's cold domain.
    gens: Vec<u32>,
    ip: IpModel,
    plan: Arc<ShardPlan>,
    me: u32,
    reroutes: u64,
    /// Retry probes scheduled (replicated count, reported once).
    retried: u64,
    /// Partitioned flows re-admitted by a retry probe (replicated).
    readmitted: u64,
    /// Dispatched-event tally mirroring the sequential count: `Arrive`
    /// halves, `Admit`s, and non-primary fault/reroute replicas are not
    /// counted.
    events: u64,
    outbox: Vec<Envelope<TopoMsg>>,
    /// Terminal-outcome sink — `Some` only in shard 0, which observes
    /// every terminal transition (local settles plus barrier credits).
    sink: Option<S>,
    /// Streaming arrival source and the next admission index; `None`
    /// once drained (or always, for the materialized paths).
    source: Option<(I, u32)>,
    /// Whether terminal flows leave `rt` immediately: true only on
    /// streamed runs (the materialized paths are O(flows) resident
    /// anyway) with no faults (no zombie chunks, no reroutes) and no
    /// §3.1.2 batching (no cross-flow megas) — the conditions under
    /// which a terminal entry provably has zero outstanding references.
    eager_retire: bool,
    /// Flows whose terminal transition happened inside the current event
    /// dispatch; drained between events (eager mode only).
    retired: Vec<u32>,
    admitted: u64,
    delivered_n: u64,
    failed_n: u64,
    /// Peak of `rt.len()` — the active-flow high-water mark.
    active_hwm: usize,
    /// The closed-loop application tier, replicated in every shard
    /// (`crate::app`); `None` on plain fabric runs.
    pub(crate) app: Option<Box<AppState>>,
    /// Flows whose terminal delivery was observed inside the current
    /// `settle` (whose delivery pass holds `rt` mutably); drained into
    /// [`TopoWorld::app_flow_done`] immediately after. App runs only.
    app_done_buf: Vec<u32>,
}

impl<S, I> TopoWorld<S, I>
where
    S: FnMut(u32, TopoOutcome),
    I: Iterator<Item = Flow>,
{
    /// Reports one terminal outcome: counted on every replica, pushed to
    /// the sink only where it lives (shard 0).
    fn emit(&mut self, id: u32, outcome: TopoOutcome) {
        match outcome.status {
            FlowStatus::Delivered(_) => self.delivered_n += 1,
            FlowStatus::Failed(_) => self.failed_n += 1,
        }
        if let Some(s) = self.sink.as_mut() {
            s(id, outcome);
        }
    }

    /// Admits one flow: route it, create its runtime entry, and (on the
    /// hop-0 shard) schedule its demand flight. Unroutable flows fail
    /// immediately and never get an entry. The materialized paths call
    /// this for the whole slice before the run; the streaming path calls
    /// it from `Admit` events at each flow's arrival instant — the
    /// demand events produced are bit-identical either way.
    pub(crate) fn admit(&mut self, id: u32, flow: Flow, q: &mut EventQueue<TopoEv>) {
        self.admitted += 1;
        let Some(route) = admission_route(&self.topo, &flow) else {
            if self.cfg.max_retries > 0 {
                // A flow arriving into a partition waits it out like a
                // partitioned reroute does: resident, routeless, with a
                // bounded retry budget.
                self.rt.insert(
                    id,
                    FlowRt {
                        flow,
                        routes: vec![None],
                        epoch: 0,
                        delivered: 0,
                        inject_bytes: flow.size,
                        refs: 0,
                        status: RtStatus::Active,
                    },
                );
                self.active_hwm = self.active_hwm.max(self.rt.len());
                self.retry_or_fail(id, 0, 1, flow.arrival, q);
            } else {
                self.emit(
                    id,
                    TopoOutcome {
                        flow,
                        status: FlowStatus::Failed(flow.arrival),
                    },
                );
                self.app_flow_done(id, flow.arrival, false, q);
            }
            return;
        };
        let h0 = route.hops[0].switch;
        self.rt.insert(
            id,
            FlowRt {
                flow,
                routes: vec![Some(route)],
                epoch: 0,
                delivered: 0,
                inject_bytes: flow.size,
                refs: 0,
                status: RtStatus::Active,
            },
        );
        self.active_hwm = self.active_hwm.max(self.rt.len());
        // Host-node events are pinned to the data source's leaf shard.
        if self.local(h0) {
            let t = self.demand_time(id, flow.arrival);
            q.schedule_ordered(t, evord::demand(id), TopoEv::Demand { flow: id, epoch: 0 });
        }
    }

    /// Pulls the next arrival from the streaming source and schedules its
    /// admission — exactly one pending arrival is materialized at a time.
    fn pull_next(&mut self, now: Time, q: &mut EventQueue<TopoEv>) {
        let Some((source, next_id)) = self.source.as_mut() else {
            return;
        };
        match source.next() {
            Some(flow) => {
                assert!(
                    flow.arrival >= now,
                    "streamed sources must emit time-ordered arrivals"
                );
                let id = *next_id;
                *next_id += 1;
                q.schedule_ordered(flow.arrival, evord::demand(id), TopoEv::Admit { id, flow });
            }
            None => self.source = None,
        }
    }

    /// Removes entries whose terminal transition was observed during the
    /// last event (the list is only ever fed in eager mode).
    #[inline]
    fn flush_retired(&mut self) {
        if self.retired.is_empty() {
            return;
        }
        for id in self.retired.drain(..) {
            let gone = self.rt.remove(id);
            debug_assert!(gone.is_some(), "flow {id} retired twice");
        }
    }
    /// Whether `switch` belongs to this shard.
    fn local(&self, switch: u32) -> bool {
        self.plan.shard_of(switch) == self.me
    }

    /// Releases one resident-offer reference on `fi` (the offer was
    /// cancelled or died with its purged switch — completed offers
    /// release inside the delivery callback instead). Retires the entry
    /// when it was the last reference on a terminal flow.
    fn release_ref(&mut self, fi: u32) {
        let r = self.rt.get_mut(fi).expect("referenced flows are resident");
        debug_assert!(r.refs > 0, "unbalanced reference release");
        r.refs -= 1;
        let retire = r.refs == 0 && r.status != RtStatus::Active;
        if self.eager_retire && retire {
            self.rt.remove(fi);
        }
    }

    /// Tries to re-enter `flow` on a freshly computed route for `epoch`:
    /// fills the route, resets the injection remainder, and (on the new
    /// hop-0 shard) seeds the demand flight. `false` on partition.
    fn re_enter(&mut self, flow: u32, epoch: u32, now: Time, q: &mut EventQueue<TopoEv>) -> bool {
        let f = self.rt[flow].flow;
        let Some(route) = admission_route(&self.topo, &f) else {
            return false;
        };
        let h0 = route.hops[0].switch;
        let r = self
            .rt
            .get_mut(flow)
            .expect("re-entering flows are resident");
        r.routes[epoch as usize] = Some(route);
        debug_assert!(f.size > r.delivered, "completed flows are never bumped");
        r.inject_bytes = f.size - r.delivered;
        if self.local(h0) {
            let base = now.max(f.arrival);
            let t = self.demand_time(flow, base);
            q.schedule_ordered(t, evord::demand(flow), TopoEv::Demand { flow, epoch });
        }
        true
    }

    /// A routeless flow's recovery step: schedules the next bounded,
    /// exponentially backed-off retry probe, or fails the flow for good
    /// once the budget is spent. Replicated — every shard runs it
    /// identically, so the Retry event seeds every queue in lockstep.
    fn retry_or_fail(
        &mut self,
        flow: u32,
        epoch: u32,
        attempt: u32,
        now: Time,
        q: &mut EventQueue<TopoEv>,
    ) {
        if attempt <= self.cfg.max_retries {
            self.retried += 1;
            let wait = self.cfg.retry_backoff * (1u64 << (attempt - 1).min(20));
            q.schedule_ordered(
                now + wait,
                evord::reroute(flow),
                TopoEv::Retry {
                    flow,
                    epoch,
                    attempt,
                },
            );
        } else {
            let r = self.rt.get_mut(flow).expect("failing flows are resident");
            r.status = RtStatus::Failed(now);
            let f = r.flow;
            let retire = r.refs == 0;
            self.emit(
                flow,
                TopoOutcome {
                    flow: f,
                    status: FlowStatus::Failed(now),
                },
            );
            if self.eager_retire && retire {
                self.rt.remove(flow);
            }
            self.app_flow_done(flow, now, false, q);
        }
    }

    /// Cold-starts a dying switch's domain (owner shard only), releasing
    /// the reference of every resident offer that will now never
    /// complete. The generation bump that fences the switch's in-flight
    /// chunks happens at the caller (replicated state).
    fn purge_switch(&mut self, s: u32) {
        let Some(dom) = self.domains[s as usize].as_mut() else {
            return;
        };
        let mut dead = Vec::new();
        dom.purge(&mut dead);
        for tok in dead {
            let (fi, _ep) = unpack(tok);
            self.release_ref(fi);
        }
    }

    /// When a flow's demand reaches its hop-0 switch, issuing at `base`:
    /// one access flight for the write `/N/` or read RREQ, plus — for
    /// reads — the RREQ's forwarding across the trunk path to the
    /// data-source leaf (control blocks ride repurposed IFG slots, §3.2,
    /// so they pay latency but no scheduling).
    fn demand_time(&self, fi: u32, base: Time) -> Time {
        let rt = &self.rt[fi];
        let f = &rt.flow;
        let route = rt.routes[rt.epoch as usize].as_ref().expect("route set");
        let origin_link = self.topo.node_link(f.src);
        let mut t = base + access_half(&self.cfg, &self.topo, origin_link);
        if f.kind == FlowKind::Read {
            for h in &route.hops[..route.hops.len() - 1] {
                t = t
                    + self.cfg.forward_latency
                    + link_lat(&self.topo, h.out_link)
                    + tx8(&self.topo, h.out_link);
            }
        }
        t
    }

    /// Runs one scheduling round at `switch`, translating each grant into
    /// its chunk-flight event (split into settle + mailed arrive when the
    /// next hop lives in another shard). Shared by the Poll event handler
    /// and the uncontended-hop cut-through path.
    fn run_poll(&mut self, switch: u32, now: Time, q: &mut EventQueue<TopoEv>) {
        let TopoWorld {
            domains,
            gens,
            topo,
            rt,
            cfg,
            ip,
            plan,
            me,
            outbox,
            ..
        } = self;
        let dom = domains[switch as usize]
            .as_mut()
            .expect("poll at an owned switch");
        let gen = gens[switch as usize];
        let (grants, sched_latency, next_wakeup) = dom.poll(now);
        for g in grants {
            let (fi, ep) = unpack(g.token);
            // Zombie (stale-epoch) grants still consume their ports: the
            // chunk flies and is dropped downstream. The entry is
            // resident: flows with granted-but-unsettled chunks never
            // retire.
            let route = rt[fi].routes[ep as usize]
                .as_ref()
                .expect("grant for an offered epoch");
            let hop_pos = route
                .hops
                .iter()
                .position(|h| h.switch == switch)
                .expect("grant on the route");
            let h = route.hops[hop_pos];
            debug_assert_eq!(h.out_port, g.dst);
            let turnaround = if hop_pos == 0 {
                // Grant flight to the data source, then the chunk's
                // flight back to the switch — the legacy half + ingress
                // composition.
                access_half(cfg, topo, route.src_link)
                    + cfg.pipeline_latency / 2
                    + link_lat(topo, route.src_link)
            } else {
                cfg.forward_latency
            };
            let emit = now + sched_latency + turnaround;
            let out_bw = topo.link(h.out_link).params.bandwidth;
            let mut extra = Duration::ZERO;
            if hop_pos == 0 {
                let src_bw = topo.link(route.src_link).params.bandwidth;
                extra += ip.crossing_delay(route.src_link, 0, emit, src_bw);
            }
            extra += ip.crossing_delay(
                h.out_link,
                lane_side(topo, h.out_link, switch),
                emit,
                out_bw,
            );
            let arrival = emit
                + extra
                + link_lat(topo, h.out_link)
                + out_bw.tx_time_bytes(g.chunk_bytes as u64);
            let ord = evord::chunk(switch as u16, g.gseq);
            let remote = match topo.link_far_end(h.out_link, switch) {
                Endpoint::Node(_) => None,
                Endpoint::Port { switch: sw2, .. } => {
                    (plan.shard_of(sw2) != *me).then(|| plan.shard_of(sw2))
                }
            };
            match remote {
                None => q.schedule_ordered(
                    arrival,
                    ord,
                    TopoEv::Chunk {
                        token: g.token,
                        from_switch: switch as u16,
                        slot: g.slot,
                        bytes: g.chunk_bytes,
                        gen,
                    },
                ),
                Some(to) => {
                    // The chunk's trunk flight is at least the plan's
                    // lookahead, so the mailed half always lands in a
                    // later window than this one.
                    q.schedule_ordered(
                        arrival,
                        ord,
                        TopoEv::Settle {
                            token: g.token,
                            from_switch: switch as u16,
                            slot: g.slot,
                            bytes: g.chunk_bytes,
                            gen,
                        },
                    );
                    outbox.push(Envelope {
                        to: Recipient::Shard(to),
                        at: arrival,
                        ord,
                        msg: TopoMsg::Arrive {
                            token: g.token,
                            from_switch: switch as u16,
                            bytes: g.chunk_bytes,
                        },
                    });
                }
            }
        }
        if let Some(t) = next_wakeup {
            if dom.note_poll_wanted(t) {
                q.schedule_ordered(t, evord::poll(switch as u16), TopoEv::Poll { switch });
            }
        }
    }

    /// A chunk's egress bookkeeping at its granting switch: the port
    /// really carried it, so the message state advances and backlogged
    /// demand is admitted — also for zombie chunks (blackholed bandwidth
    /// is still spent). Final-hop chunks credit the destination here.
    #[allow(clippy::too_many_arguments)]
    fn settle(
        &mut self,
        now: Time,
        token: u64,
        from_switch: u32,
        slot: u32,
        bytes: u32,
        gen: u32,
        q: &mut EventQueue<TopoEv>,
    ) {
        // Generation fence: a chunk granted before this switch died must
        // never index the revived switch's cold slab. While the switch
        // is still down the fence is redundant with the up-check, but
        // both stay — a revived switch is up again with a new gen.
        if self.gens[from_switch as usize] != gen || !self.topo.switch_up(from_switch) {
            return;
        }
        let is_final = {
            // A missing entry here can only be a cancelled message's
            // draining chunk — cancellation released its reference, so
            // the flow may have retired. Delivery below still runs for
            // slot bookkeeping, but no completion fires for a cancelled
            // message, so the flag's value is irrelevant then.
            let (fi, ep) = unpack(token);
            self.rt.get(fi).is_some_and(|r| {
                let route = r.routes[ep as usize]
                    .as_ref()
                    .expect("chunk of an offered epoch");
                let h = route
                    .hops
                    .iter()
                    .find(|h| h.switch == from_switch)
                    .expect("chunk granted on its route");
                matches!(
                    self.topo.link_far_end(h.out_link, from_switch),
                    Endpoint::Node(_)
                )
            })
        };
        let TopoWorld {
            domains,
            rt,
            plan,
            outbox,
            sink,
            retired,
            eager_retire,
            delivered_n,
            app,
            app_done_buf,
            ..
        } = self;
        let app_on = app.is_some();
        let multi = plan.shards() > 1;
        let dom = domains[from_switch as usize]
            .as_mut()
            .expect("settle at an owned switch");
        let want_poll = dom.deliver(now, slot, bytes, |tok, sub_bytes| {
            let (cfi, cep) = unpack(tok);
            // Every completed sub-offer releases the residency reference
            // it held — stale epochs drain as blackholed bandwidth but
            // still complete at their granting switch, so references
            // drain even on fault runs.
            let r = rt
                .get_mut(cfi)
                .expect("a completed sub-offer holds a reference");
            debug_assert!(r.refs > 0, "unbalanced reference release");
            r.refs -= 1;
            // Late bytes of a pre-fault epoch were already re-sent;
            // crediting them would double-count.
            if is_final && r.epoch == cep && r.status == RtStatus::Active {
                r.delivered += sub_bytes;
                if r.delivered >= r.flow.size {
                    debug_assert_eq!(r.delivered, r.flow.size);
                    r.status = RtStatus::Done(now);
                    *delivered_n += 1;
                    if app_on {
                        // The delivery pass holds `rt` mutably; the app
                        // hook (which schedules the op's next step) runs
                        // from the drain right after it.
                        app_done_buf.push(cfi);
                    }
                    if let Some(s) = sink.as_mut() {
                        s(
                            cfi,
                            TopoOutcome {
                                flow: r.flow,
                                status: FlowStatus::Delivered(now),
                            },
                        );
                    }
                }
                if multi {
                    // Replicate the credit to every other shard's
                    // flow-state replica (applied in deterministic
                    // order at barriers).
                    outbox.push(Envelope {
                        to: Recipient::Broadcast,
                        at: now,
                        ord: evord::credit(cfi),
                        msg: TopoMsg::Credit {
                            flow: cfi,
                            bytes: sub_bytes,
                        },
                    });
                }
            }
            if *eager_retire && r.refs == 0 && r.status != RtStatus::Active {
                // Deferred to the end of this dispatch: `rt` is
                // mutably borrowed for the whole delivery pass.
                retired.push(cfi);
            }
        });
        if want_poll && dom.has_demand() && dom.note_poll_wanted(now) {
            q.schedule_ordered(
                now,
                evord::poll(from_switch as u16),
                TopoEv::Poll {
                    switch: from_switch,
                },
            );
        }
        if !self.app_done_buf.is_empty() {
            let done = std::mem::take(&mut self.app_done_buf);
            for fi in &done {
                self.app_flow_done(*fi, now, true, q);
            }
            // Hand the allocation back for the next settle.
            self.app_done_buf = done;
            self.app_done_buf.clear();
        }
    }

    /// A chunk's implicit notification at its next-hop switch (arrival =
    /// demand), unless the chunk is stale or the switch is gone.
    fn arrive(
        &mut self,
        now: Time,
        token: u64,
        from_switch: u32,
        bytes: u32,
        q: &mut EventQueue<TopoEv>,
    ) {
        let (fi, ep) = unpack(token);
        // A chunk can outlive its flow's replica on this shard: a
        // terminal flow retires here while a zombie chunk is still
        // mailed over from the shard whose switch drains it. Retirement
        // requires a terminal status, and every post-terminal chunk is
        // stale-epoch by construction — drop it exactly as the epoch
        // check below would have.
        let Some(r) = self.rt.get(fi) else {
            return;
        };
        if r.epoch != ep || r.status != RtStatus::Active {
            return;
        }
        let route = r.routes[ep as usize]
            .as_ref()
            .expect("route for the offered epoch");
        let cur = route
            .hops
            .iter()
            .find(|h| h.switch == from_switch)
            .expect("chunk granted on its route");
        let Endpoint::Port { switch: sw2, .. } = self.topo.link_far_end(cur.out_link, from_switch)
        else {
            return; // reached its destination node: settle credited it
        };
        if !self.topo.switch_up(sw2) {
            return;
        }
        let h = *route
            .hops
            .iter()
            .find(|h| h.switch == sw2)
            .expect("chunk follows its route");
        let limit = route_limit(&self.cfg, route);
        let offer = DomainOffer {
            src: h.in_port,
            dst: h.out_port,
            bytes,
            limit,
            // Forwarded chunks carry a single token, so only same-flow
            // chunks may fold into one message — a cross-flow mega would
            // credit every byte to its head flow at the destination.
            batch_key: token,
            token,
        };
        // The resident offer — admitted or backlogged — holds a
        // reference on the flow until it completes, cancels, or dies
        // with a purged switch.
        self.rt.get_mut(fi).expect("checked resident above").refs += 1;
        let dom = self.domains[sw2 as usize]
            .as_mut()
            .expect("arrive at an owned switch");
        if dom.offer(now, offer) {
            // Uncontended store-and-forward hop: the chunk is the
            // switch's only demand and its ports are free, so the
            // round's outcome is forced — run it inline instead of
            // paying a poll event. (Never taken at hop 0, preserving
            // 1-switch bit-identity.)
            if dom.sole_eligible_demand(now, h.in_port, h.out_port) {
                self.run_poll(sw2, now, q);
            } else if dom.note_poll_wanted(now) {
                q.schedule_ordered(now, evord::poll(sw2 as u16), TopoEv::Poll { switch: sw2 });
            }
        }
    }

    /// Bumps the epoch of every incomplete flow whose live route
    /// satisfies `pred`, scheduling its recovery after `delay` and (by
    /// default) revoking its stale hop-0 demand. Fault bumps reroute
    /// flows *off* a dead element; repair bumps migrate flows *onto* a
    /// healed one — same mechanism, different predicate and delay.
    fn bump_affected(
        &mut self,
        now: Time,
        delay: Duration,
        q: &mut EventQueue<TopoEv>,
        pred: impl Fn(&Topology, &Flow, &Route) -> bool,
    ) {
        let reroute_at = now + delay;
        // Bump in admission-index order — the ring iterates ids
        // ascending, so reroute scheduling and demand revocation are
        // deterministic. (Materialized first: the loop mutates entries.)
        let ids: Vec<u32> = self.rt.ids().collect();
        let mut bumped: Vec<(u32, u32, Hop)> = Vec::new();
        for fi in ids {
            let r = self.rt.get_mut(fi).expect("listed above");
            if r.status != RtStatus::Active {
                continue;
            }
            let Some(route) = r.routes[r.epoch as usize].as_ref() else {
                continue;
            };
            if !pred(&self.topo, &r.flow, route) {
                continue;
            }
            bumped.push((fi, r.epoch, route.hops[0]));
            r.epoch += 1;
            r.routes.push(None);
            q.schedule_ordered(
                reroute_at,
                evord::reroute(fi),
                TopoEv::Reroute {
                    flow: fi,
                    epoch: r.epoch,
                },
            );
        }
        if !self.cfg.cancel_stale_demand {
            return;
        }
        // Sender-side revocation: withdraw each bumped flow's unbatched
        // hop-0 message so the dead path's backlog stops counting as
        // demand. In flow order — the same order the sequential run
        // cancels in, so backlog admissions stay deterministic.
        for (flow, old_epoch, h0) in bumped {
            if !self.local(h0.switch) || !self.topo.switch_up(h0.switch) {
                continue;
            }
            let dom = self.domains[h0.switch as usize]
                .as_mut()
                .expect("cancel at an owned switch");
            let cancelled = dom.cancel(now, h0.in_port, h0.out_port, pack(flow, old_epoch));
            let poll = cancelled && dom.has_demand() && dom.note_poll_wanted(now);
            if cancelled {
                // The withdrawn offer's reference releases; the flow
                // itself stays Active (its reroute is pending), so no
                // retirement can trigger here.
                self.release_ref(flow);
            }
            if poll {
                q.schedule_ordered(
                    now,
                    evord::poll(h0.switch as u16),
                    TopoEv::Poll { switch: h0.switch },
                );
            }
        }
    }

    /// One event. The shared core of the sequential [`World`] and the
    /// parallel [`ShardWorld`] drivers.
    fn dispatch(&mut self, now: Time, ev: TopoEv, q: &mut EventQueue<TopoEv>) {
        match ev {
            TopoEv::Admit { id, flow } => {
                // Not counted in `events`: the materialized path admits
                // before the run, and the streamed tally must match it.
                self.admit(id, flow, q);
                self.pull_next(now, q);
            }
            TopoEv::Demand { flow, epoch } => {
                self.events += 1;
                let token = pack(flow, epoch);
                let (h0, bytes, limit, bk) = {
                    // The flow can retire before its demand fires: a
                    // fault between admission and the demand flight
                    // bumps it, and the bumped epoch can fail (and
                    // retire, holding no references yet) before this
                    // event's instant. Stale by construction — drop.
                    let Some(r) = self.rt.get(flow) else {
                        return;
                    };
                    if r.epoch != epoch || r.status != RtStatus::Active {
                        return;
                    }
                    let route = r.routes[epoch as usize].as_ref().expect("active route");
                    // Single-hop messages batch by end-to-end pair (the
                    // legacy §3.1.2 behavior — the whole path delivers
                    // the mega's per-offer boundaries). Multi-hop
                    // messages must never fold with another flow: the
                    // forwarded chunks carry one token each.
                    let bk = if route.hops.len() == 1 {
                        batch_key(&r.flow, epoch)
                    } else {
                        token
                    };
                    (
                        route.hops[0],
                        r.inject_bytes,
                        route_limit(&self.cfg, route),
                        bk,
                    )
                };
                if !self.topo.switch_up(h0.switch) {
                    return; // covered by the epoch bump; defensive
                }
                let offer = DomainOffer {
                    src: h0.in_port,
                    dst: h0.out_port,
                    bytes,
                    limit,
                    batch_key: bk,
                    token,
                };
                // The resident hop-0 offer holds a reference on the flow.
                self.rt.get_mut(flow).expect("checked resident above").refs += 1;
                let dom = self.domains[h0.switch as usize]
                    .as_mut()
                    .expect("demand at an owned switch");
                if dom.offer(now, offer) && dom.note_poll_wanted(now) {
                    q.schedule_ordered(
                        now,
                        evord::poll(h0.switch as u16),
                        TopoEv::Poll { switch: h0.switch },
                    );
                }
            }
            TopoEv::Poll { switch } => {
                self.events += 1;
                if !self.topo.switch_up(switch) {
                    return;
                }
                if !self.domains[switch as usize]
                    .as_mut()
                    .expect("poll at an owned switch")
                    .poll_due(now)
                {
                    return;
                }
                self.run_poll(switch, now, q);
            }
            TopoEv::Chunk {
                token,
                from_switch,
                slot,
                bytes,
                gen,
            } => {
                self.events += 1;
                self.settle(now, token, from_switch as u32, slot, bytes, gen, q);
                self.arrive(now, token, from_switch as u32, bytes, q);
            }
            TopoEv::Settle {
                token,
                from_switch,
                slot,
                bytes,
                gen,
            } => {
                // Counts as the chunk's one event; its mailed Arrive
                // half does not.
                self.events += 1;
                self.settle(now, token, from_switch as u32, slot, bytes, gen, q);
            }
            TopoEv::Arrive {
                token,
                from_switch,
                bytes,
            } => {
                self.arrive(now, token, from_switch as u32, bytes, q);
            }
            TopoEv::Fault { idx } => {
                // Replicated in every shard; counted once.
                if self.me == 0 {
                    self.events += 1;
                }
                let fault = self.cfg.faults[idx as usize];
                let (reroute_delay, repair_delay) = (self.cfg.reroute_delay, self.cfg.repair_delay);
                match fault.kind {
                    FaultKind::LinkDown(l) => {
                        self.topo.set_link_up(l, false);
                        self.bump_affected(now, reroute_delay, q, |_, _, route| route.uses_link(l));
                    }
                    FaultKind::SwitchDown(s) => {
                        // Idempotence guard: a double-down must not bump
                        // the generation again (harmless) or re-purge —
                        // and matches the old behavior, where the second
                        // strike's bump matched nothing.
                        if self.topo.switch_up(s) {
                            self.topo.set_switch_up(s, false);
                            self.gens[s as usize] += 1;
                            self.purge_switch(s);
                            self.bump_affected(now, reroute_delay, q, |_, _, route| {
                                route.uses_switch(s)
                            });
                        }
                    }
                    FaultKind::DegradeLink { link, extra } => {
                        // Latency-only: routes keep flowing, slower.
                        self.topo.degrade_link(link, extra);
                    }
                    FaultKind::LinkUp(l) => {
                        if !self.topo.link(l).is_up() {
                            self.topo.set_link_up(l, true);
                            self.bump_improvable(now, repair_delay, q);
                        }
                    }
                    FaultKind::SwitchUp(s) => {
                        if !self.topo.switch_up(s) {
                            // The owned domain was purged at SwitchDown;
                            // the revived switch starts cold, fenced
                            // from pre-outage chunks by its generation.
                            self.topo.set_switch_up(s, true);
                            self.bump_improvable(now, repair_delay, q);
                        }
                    }
                    FaultKind::RestoreLink(l) => {
                        // Latency-only, like the degradation it clears.
                        self.topo.restore_link(l);
                    }
                }
            }
            TopoEv::Reroute { flow, epoch } => {
                // Replicated in every shard; counted once.
                if self.me == 0 {
                    self.events += 1;
                }
                // A pending reroute pins its flow Active and resident: a
                // routeless epoch can neither deliver nor be bumped
                // again — the lookup cannot miss.
                if self.rt[flow].epoch != epoch || self.rt[flow].status != RtStatus::Active {
                    return;
                }
                if self.re_enter(flow, epoch, now, q) {
                    self.reroutes += 1;
                } else {
                    self.retry_or_fail(flow, epoch, 1, now, q);
                }
            }
            TopoEv::Retry {
                flow,
                epoch,
                attempt,
            } => {
                // Replicated in every shard; counted once.
                if self.me == 0 {
                    self.events += 1;
                }
                // Like a pending reroute, a pending retry pins its flow
                // Active and resident.
                debug_assert_eq!(self.rt[flow].epoch, epoch, "retry for a stale epoch");
                debug_assert_eq!(self.rt[flow].status, RtStatus::Active);
                if self.re_enter(flow, epoch, now, q) {
                    self.readmitted += 1;
                } else {
                    self.retry_or_fail(flow, epoch, attempt + 1, now, q);
                }
            }
            TopoEv::App(ev) => {
                // Replicated in every shard; counted once.
                if self.me == 0 {
                    self.events += 1;
                }
                self.app_dispatch(now, ev, q);
            }
        }
    }

    /// The repair-side epoch bump: flows whose live route is now longer
    /// than the healed fabric's shortest path migrate onto it after the
    /// detection delay. Routeless flows (reroute or retry pending) are
    /// skipped — their own recovery event will find the better fabric.
    fn bump_improvable(&mut self, now: Time, delay: Duration, q: &mut EventQueue<TopoEv>) {
        self.bump_affected(now, delay, q, |topo, flow, route| {
            let (ds, dd) = flow.data_direction();
            let a = topo.attach(ds as usize).0;
            let b = topo.attach(dd as usize).0;
            match topo.switch_distance(a, b) {
                // `dist` trunk hops ⇒ `dist + 1` switches on a shortest
                // path, one `Route::hops` entry each — strictly fewer
                // than the current detour means a bump pays for itself.
                Some(dist) => route.hops.len() > dist + 1,
                None => false,
            }
        });
    }
}

impl<S, I> World for TopoWorld<S, I>
where
    S: FnMut(u32, TopoOutcome),
    I: Iterator<Item = Flow>,
{
    type Event = TopoEv;

    fn handle(&mut self, now: Time, ev: TopoEv, q: &mut EventQueue<TopoEv>) {
        self.dispatch(now, ev, q);
        self.flush_retired();
        debug_assert!(
            self.outbox.is_empty(),
            "sequential run emitted cross-shard traffic"
        );
    }
}

impl<S, I> ShardWorld for TopoWorld<S, I>
where
    S: FnMut(u32, TopoOutcome) + Send,
    I: Iterator<Item = Flow> + Send,
{
    type Event = TopoEv;
    type Msg = TopoMsg;

    fn handle(&mut self, now: Time, ev: TopoEv, q: &mut EventQueue<TopoEv>) {
        self.dispatch(now, ev, q);
        self.flush_retired();
    }

    fn drain_outbox(&mut self, sink: &mut Vec<Envelope<TopoMsg>>) {
        sink.append(&mut self.outbox);
    }

    fn receive(&mut self, at: Time, ord: u64, msg: TopoMsg, q: &mut EventQueue<TopoEv>) {
        match msg {
            TopoMsg::Arrive {
                token,
                from_switch,
                bytes,
            } => q.schedule_ordered(
                at,
                ord,
                TopoEv::Arrive {
                    token,
                    from_switch,
                    bytes,
                },
            ),
            TopoMsg::Credit { flow, bytes } => {
                // State sync: replay the destination shard's credit
                // against this replica. The emitting shard already
                // performed the epoch/status checks at credit time, and
                // replicas are in lockstep at barriers, so the credit
                // applies unconditionally here.
                let r = self.rt.get_mut(flow).expect("credit for a resident flow");
                debug_assert_eq!(r.status, RtStatus::Active, "credit for a settled flow");
                r.delivered += bytes;
                if r.delivered < r.flow.size {
                    return;
                }
                debug_assert_eq!(r.delivered, r.flow.size);
                r.status = RtStatus::Done(at);
                let f = r.flow;
                self.emit(
                    flow,
                    TopoOutcome {
                        flow: f,
                        status: FlowStatus::Delivered(at),
                    },
                );
                // The credit-shard counterpart of the settle-shard's
                // deferred retirement: conservative windows guarantee
                // every chunk event of the flow was dispatched before
                // its final credit crosses a barrier. Outstanding local
                // references (fault-run re-offers still resident in an
                // owned domain here) defer removal to their release.
                let no_refs = self.rt[flow].refs == 0;
                if self.eager_retire && no_refs {
                    self.rt.remove(flow);
                }
                // Barrier credits apply in (time, flow-keyed order), which
                // need not match the emitting shard's local settle order —
                // the hook only writes per-op state and schedules
                // canonical-keyed events, so the divergence is harmless.
                self.app_flow_done(flow, at, true, q);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_topology;
    use crate::topology::{LeafSpine, LinkParams};
    use edm_core::sim::FabricProtocol;

    fn write_flow(id: usize, src: usize, dst: usize, size: u32, at_ns: u64) -> Flow {
        Flow {
            id,
            src,
            dst,
            size,
            arrival: Time::from_ns(at_ns),
            kind: FlowKind::Write,
        }
    }

    #[test]
    fn single_switch_matches_legacy_exactly() {
        let cluster = ClusterConfig {
            nodes: 8,
            ..ClusterConfig::default()
        };
        let mut legacy = EdmProtocol::default();
        let flows: Vec<Flow> = (0..6)
            .map(|i| write_flow(i, i % 4, 4 + (i % 4), 64 + 100 * i as u32, 10 * i as u64))
            .collect();
        let expect = legacy.simulate(&cluster, &flows);
        let topo = cluster_topology(&cluster);
        let cfg = TopoEdmConfig::matching(&cluster, &legacy);
        let got = TopoEdm::new(cfg).simulate(&topo, &flows);
        for (a, b) in expect.outcomes.iter().zip(&got.outcomes) {
            assert_eq!(FlowStatus::Delivered(a.completed), b.status, "{:?}", a.flow);
        }
        assert_eq!(got.reroutes, 0);
    }

    #[test]
    fn cross_leaf_flow_pays_the_extra_hops() {
        let topo = Topology::leaf_spine(LeafSpine::symmetric(2, 2, 4, 2));
        let proto = TopoEdm::default();
        let local = proto.solo_mct(&topo, &write_flow(0, 0, 1, 256, 0)).unwrap();
        let remote = proto.solo_mct(&topo, &write_flow(0, 0, 5, 256, 0)).unwrap();
        assert!(
            remote > local,
            "cross-leaf {remote} must exceed same-leaf {local}"
        );
        // Two extra store-and-forward hops: bounded, not a blowup.
        assert!(remote < 3 * local, "remote {remote} vs local {local}");
    }

    #[test]
    fn reads_cross_the_fabric_too() {
        let topo = Topology::leaf_spine(LeafSpine::symmetric(2, 1, 4, 1));
        let proto = TopoEdm::default();
        let flows = vec![Flow {
            id: 0,
            src: 0,
            dst: 6,
            size: 256,
            arrival: Time::ZERO,
            kind: FlowKind::Read,
        }];
        let r = proto.simulate(&topo, &flows);
        assert_eq!(r.delivered(), 1);
        let mct = r.outcomes[0].mct().unwrap();
        let write_mct = proto.solo_mct(&topo, &write_flow(0, 0, 6, 256, 0)).unwrap();
        // The read pays the RREQ's extra trunk forwarding on top of the
        // write shape.
        assert!(mct > write_mct, "read {mct} vs write {write_mct}");
    }

    #[test]
    fn trunk_contention_serializes_but_completes() {
        // 8 cross-leaf flows share one uplink (1 spine, 1 uplink): the
        // trunk pair aggregates them; everything must drain.
        let topo = Topology::leaf_spine(LeafSpine::symmetric(2, 1, 8, 1));
        let flows: Vec<Flow> = (0..8).map(|i| write_flow(i, i, 8 + i, 4096, 0)).collect();
        let r = TopoEdm::default().simulate(&topo, &flows);
        assert_eq!(r.delivered(), 8);
    }

    #[test]
    fn mixed_ip_traffic_adds_latency_but_everything_completes() {
        let topo = Topology::leaf_spine(LeafSpine::symmetric(4, 2, 8, 4));
        let flows: Vec<Flow> = (0..64)
            .map(|i| write_flow(i, i % 16, 16 + (i % 16), 256, 50 * i as u64))
            .collect();
        let clean = TopoEdm::default().simulate(&topo, &flows);
        let mut cfg = TopoEdmConfig {
            ip: IpTraffic {
                fraction: 0.6,
                preemption: false,
                ..IpTraffic::default()
            },
            ..TopoEdmConfig::default()
        };
        let loaded = TopoEdm::new(cfg.clone()).simulate(&topo, &flows);
        assert_eq!(loaded.delivered(), 64);
        assert!(loaded.ip_frames > 0);
        assert!(
            loaded.mean_mct() > clean.mean_mct(),
            "IP interference must cost latency: {} vs {}",
            loaded.mean_mct(),
            clean.mean_mct()
        );
        // Preemption caps the interference far below frame waits.
        cfg.ip.preemption = true;
        let preempt = TopoEdm::new(cfg).simulate(&topo, &flows);
        assert_eq!(preempt.delivered(), 64);
        assert!(
            preempt.mean_mct() < loaded.mean_mct(),
            "preemption {} must beat store-and-wait {}",
            preempt.mean_mct(),
            loaded.mean_mct()
        );
    }

    #[test]
    fn degraded_trunk_slows_exactly_by_the_added_latency() {
        let topo = Topology::leaf_spine(LeafSpine::symmetric(2, 1, 2, 1));
        let flow = write_flow(0, 0, 2, 64, 0); // one chunk, cross-leaf
        let proto = TopoEdm::default();
        let clean = proto.simulate(&topo, &[flow]).outcomes[0].mct().unwrap();
        let route = topo.route(0, 2, 0).unwrap();
        let extra = Duration::from_ns(500);
        let cfg = TopoEdmConfig {
            faults: vec![FaultEvent {
                at: Time::ZERO,
                kind: FaultKind::DegradeLink {
                    link: route.hops[0].out_link,
                    extra,
                },
            }],
            ..TopoEdmConfig::default()
        };
        let slow = TopoEdm::new(cfg).simulate(&topo, &[flow]).outcomes[0]
            .mct()
            .unwrap();
        // The single chunk crosses the degraded leaf→spine trunk once.
        assert_eq!(slow, clean + extra);
    }

    #[test]
    fn batching_with_cross_leaf_hot_pair_delivers_every_flow() {
        // Regression: X=1 everywhere forces §3.1.2 mega-batching of a hot
        // cross-leaf pair's backlog. Multi-hop messages must not fold
        // distinct flows into one message (the forwarded chunks carry a
        // single token), or every byte is credited to the head flow and
        // the rest stall.
        let topo = Topology::leaf_spine(LeafSpine::symmetric(2, 1, 4, 1));
        let cfg = TopoEdmConfig {
            batch_small_messages: true,
            max_active_per_pair: 1,
            trunk_max_active_per_pair: 1,
            ..TopoEdmConfig::default()
        };
        let flows: Vec<Flow> = (0..5)
            .map(|i| write_flow(i, 0, 4, 4096, i as u64))
            .collect();
        let r = TopoEdm::new(cfg.clone()).simulate(&topo, &flows);
        assert_eq!(r.delivered(), 5, "every batched cross-leaf flow delivers");
        // Same-pair order still holds end-to-end.
        let done = |o: &TopoOutcome| match o.status {
            FlowStatus::Delivered(t) => t,
            FlowStatus::Failed(t) => panic!("unexpected failure at {t}"),
        };
        for w in r.outcomes.windows(2) {
            assert!(done(&w[0]) <= done(&w[1]), "pair order violated");
        }
        // Same-leaf hot pair with batching still folds and delivers too.
        let local: Vec<Flow> = (0..5)
            .map(|i| write_flow(i, 0, 2, 4096, i as u64))
            .collect();
        let r = TopoEdm::new(cfg).simulate(&topo, &local);
        assert_eq!(r.delivered(), 5);
    }

    #[test]
    fn isolated_destination_fails_deterministically() {
        let mut topo = Topology::single_switch(4, LinkParams::default());
        topo.set_link_up(3, false);
        let flows = vec![write_flow(0, 0, 3, 64, 0), write_flow(1, 0, 1, 64, 0)];
        let r = TopoEdm::default().simulate(&topo, &flows);
        assert_eq!(r.outcomes[0].status, FlowStatus::Failed(Time::ZERO));
        assert!(matches!(r.outcomes[1].status, FlowStatus::Delivered(_)));
    }

    #[test]
    fn sharded_run_matches_sequential_on_a_loaded_fabric() {
        let topo = Topology::leaf_spine(LeafSpine::symmetric(4, 2, 8, 4));
        let flows: Vec<Flow> = (0..96)
            .map(|i| {
                write_flow(
                    i,
                    i % 16,
                    16 + ((i * 7) % 16),
                    64 + 512 * (i as u32 % 3),
                    40 * i as u64,
                )
            })
            .collect();
        let proto = TopoEdm::default();
        let seq = proto.simulate(&topo, &flows);
        for shards in [2, 3, 4] {
            let par = proto.simulate_sharded(&topo, &flows, shards);
            assert_eq!(par.outcomes.len(), seq.outcomes.len());
            for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
                assert_eq!(
                    a.status, b.status,
                    "{shards} shards diverged on {:?}",
                    a.flow
                );
            }
            assert_eq!(par.reroutes, seq.reroutes);
            assert_eq!(par.events, seq.events, "{shards}-shard event tally");
        }
    }

    #[test]
    fn streamed_run_is_bit_identical_to_materialized() {
        let topo = Topology::leaf_spine(LeafSpine::symmetric(4, 2, 8, 4));
        let flows: Vec<Flow> = (0..96)
            .map(|i| {
                write_flow(
                    i,
                    i % 16,
                    16 + ((i * 7) % 16),
                    64 + 512 * (i as u32 % 3),
                    40 * i as u64,
                )
            })
            .collect();
        let proto = TopoEdm::default();
        let reference = proto.simulate(&topo, &flows);
        let mut streamed = Vec::new();
        let stats = proto.simulate_streamed(&topo, flows.iter().copied(), |o| streamed.push(o));
        assert_eq!(stats.admitted, 96);
        assert_eq!(stats.delivered, 96);
        assert_eq!(stats.events, reference.events);
        streamed.sort_by_key(|o| o.flow.id);
        for (a, b) in reference.outcomes.iter().zip(&streamed) {
            assert_eq!(a.status, b.status, "streamed diverged on {:?}", a.flow);
        }
        // Retirement really bounded resident state: 96 flows spread over
        // ~4 µs never all overlap.
        assert!(
            stats.active_high_water < 96,
            "no flow retired (HWM {})",
            stats.active_high_water
        );
    }

    /// N well-separated waves of the same 8-flow pattern must reuse the
    /// retired wave's flow entries and switch message slots: the
    /// active-flow and slot high-water marks stay at the single-wave
    /// footprint no matter how many waves stream through.
    #[test]
    fn streamed_waves_bound_resident_state_at_one_wave() {
        let topo = Topology::leaf_spine(LeafSpine::symmetric(2, 1, 4, 1));
        let wave_flows = |waves: usize| -> Vec<Flow> {
            (0..waves)
                .flat_map(|w| {
                    (0..8).map(move |i| {
                        write_flow(w * 8 + i, i % 4, 4 + (i % 4), 2048, 40_000 * w as u64)
                    })
                })
                .collect()
        };
        let run = |waves: usize| {
            let flows = wave_flows(waves);
            TopoEdm::default().simulate_streamed(&topo, flows.iter().copied(), |_| {})
        };
        let one = run(1);
        let many = run(12);
        assert_eq!(many.delivered, 96);
        assert_eq!(
            many.active_high_water, one.active_high_water,
            "flow entries did not recycle across waves"
        );
        assert_eq!(
            many.msg_slots_high_water, one.msg_slots_high_water,
            "switch message slots did not recycle across waves"
        );
    }

    #[test]
    fn streamed_run_with_faults_keeps_context_and_terminates() {
        // A spine dies mid-run: pre-fault flows reroute (zombie context
        // stays resident — retirement is off), post-fault arrivals route
        // around the dead spine at admission.
        let topo = Topology::leaf_spine(LeafSpine::symmetric(2, 2, 4, 2));
        let flows: Vec<Flow> = (0..24)
            .map(|i| write_flow(i, i % 4, 4 + (i % 4), 4096, 2_000 * i as u64))
            .collect();
        let proto = TopoEdm::new(TopoEdmConfig {
            faults: vec![FaultEvent {
                at: Time::from_us(20),
                kind: FaultKind::SwitchDown(2), // first spine
            }],
            reroute_delay: Duration::from_us(2),
            ..TopoEdmConfig::default()
        });
        let mut outcomes = Vec::new();
        let stats = proto.simulate_streamed(&topo, flows.iter().copied(), |o| outcomes.push(o));
        assert_eq!(stats.admitted, 24);
        assert_eq!(
            stats.delivered, 24,
            "the second spine must absorb everything"
        );
        assert_eq!(outcomes.len(), 24);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn streamed_source_must_be_time_ordered() {
        let topo = Topology::leaf_spine(LeafSpine::symmetric(2, 1, 2, 1));
        let flows = vec![write_flow(0, 0, 2, 64, 500), write_flow(1, 1, 3, 64, 0)];
        TopoEdm::default().simulate_streamed(&topo, flows.into_iter(), |_| {});
    }

    #[test]
    fn cancel_on_reroute_frees_the_dead_path_backlog() {
        // A big cross-leaf flow loses its trunk mid-run; a second flow
        // from the same source node starts after the fault. With
        // revocation the stale remainder stops contending on the shared
        // access port, so both flows finish no later — and the victim
        // strictly earlier — than under the never-revoke pessimism.
        let topo = Topology::leaf_spine(LeafSpine::symmetric(2, 2, 4, 1));
        let used = topo.route(0, 4, 0).unwrap().hops[0].out_link;
        let flows = vec![
            write_flow(0, 0, 4, 1_000_000, 0),
            write_flow(1, 0, 2, 200_000, 30_000),
        ];
        let base_cfg = TopoEdmConfig {
            faults: vec![FaultEvent {
                at: Time::from_us(20),
                kind: FaultKind::LinkDown(used),
            }],
            ..TopoEdmConfig::default()
        };
        let with_cancel = TopoEdm::new(base_cfg.clone()).simulate(&topo, &flows);
        let without = TopoEdm::new(TopoEdmConfig {
            cancel_stale_demand: false,
            ..base_cfg
        })
        .simulate(&topo, &flows);
        assert_eq!(with_cancel.delivered(), 2);
        assert_eq!(without.delivered(), 2);
        assert_eq!(with_cancel.reroutes, 1);
        let mct = |r: &TopoResult, i: usize| r.outcomes[i].mct().unwrap();
        assert!(
            mct(&with_cancel, 0) < mct(&without, 0),
            "revocation must beat the blackhole drain: {} vs {}",
            mct(&with_cancel, 0),
            mct(&without, 0)
        );
        assert!(mct(&with_cancel, 1) <= mct(&without, 1));
    }
}
