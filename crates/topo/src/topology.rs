//! The fabric graph: switches, links, node attachment, ECMP routing, and
//! failure state.
//!
//! A [`Topology`] is a static port-level description of the fabric plus
//! mutable element state (links and switches can be taken down, links can
//! be latency-degraded). Routing is recomputed whenever element state
//! changes: a BFS hop-distance matrix over the live inter-switch graph
//! drives a deterministic ECMP walk — at every switch, the next hop is
//! chosen among all live minimal-distance trunks by a caller-supplied
//! salt, so equal-cost paths (spines, parallel trunks) spread by flow id.

use edm_sim::{Bandwidth, Duration};

/// Physical parameters of one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkParams {
    /// Link bandwidth.
    pub bandwidth: Bandwidth,
    /// One-way propagation delay.
    pub propagation: Duration,
}

impl Default for LinkParams {
    fn default() -> Self {
        // The paper's §4.3 scale: 100 Gb/s links, 10 ns propagation.
        LinkParams {
            bandwidth: Bandwidth::from_gbps(100),
            propagation: Duration::from_ns(10),
        }
    }
}

/// Role of a switch in the fabric. Routing is role-agnostic; roles drive
/// construction, reporting, and tier-structure assertions in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchRole {
    /// Hosts attach here (also the single switch of a 1-switch fabric).
    Leaf,
    /// Interconnects leaves; no hosts.
    Spine,
}

/// What one end of a link connects to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// A host node.
    Node(u32),
    /// A switch port.
    Port {
        /// The switch.
        switch: u32,
        /// The port on that switch.
        port: u16,
    },
}

/// One link: a host access link (node ↔ leaf port) or an inter-switch
/// trunk (port ↔ port).
#[derive(Debug, Clone)]
pub struct Link {
    /// One end (the node for access links).
    pub a: Endpoint,
    /// The other end (always a switch port).
    pub b: Endpoint,
    /// Physical parameters.
    pub params: LinkParams,
    up: bool,
    extra_latency: Duration,
}

impl Link {
    /// Whether the link is administratively up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Effective one-way latency: propagation plus any degradation.
    pub fn latency(&self) -> Duration {
        self.params.propagation + self.extra_latency
    }

    /// The degradation currently applied.
    pub fn extra_latency(&self) -> Duration {
        self.extra_latency
    }

    /// Whether this is an inter-switch trunk.
    pub fn is_trunk(&self) -> bool {
        matches!(self.a, Endpoint::Port { .. })
    }
}

#[derive(Debug, Clone)]
struct Switch {
    role: SwitchRole,
    ports: usize,
    up: bool,
}

/// A trunk adjacency entry: `(neighbor switch, link id, local port, far
/// port)`, kept sorted by link id for deterministic candidate ordering.
type TrunkEdge = (u32, u32, u16, u16);

/// One hop of a route: the switch that schedules it and the ingress/egress
/// ports the message crosses there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// The switch.
    pub switch: u32,
    /// Ingress port (the data source's access port at hop 0).
    pub in_port: u16,
    /// Egress port.
    pub out_port: u16,
    /// The link crossed when leaving this switch.
    pub out_link: u32,
}

/// A routed path for one flow's data direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Hops in order; the last hop's out link reaches the destination
    /// node.
    pub hops: Vec<Hop>,
    /// The data-source node's access link (crossed before hop 0).
    pub src_link: u32,
}

impl Route {
    /// Whether the path crosses `link` (including both access links).
    pub fn uses_link(&self, link: u32) -> bool {
        self.src_link == link || self.hops.iter().any(|h| h.out_link == link)
    }

    /// Whether the path is scheduled by `switch`.
    pub fn uses_switch(&self, switch: u32) -> bool {
        self.hops.iter().any(|h| h.switch == switch)
    }
}

/// Hop distance marking "unreachable".
const UNREACH: u16 = u16::MAX;

/// A multi-switch fabric graph with mutable failure state.
#[derive(Debug, Clone)]
pub struct Topology {
    switches: Vec<Switch>,
    /// node → (switch, port).
    node_attach: Vec<(u32, u16)>,
    /// node → access link id.
    node_link: Vec<u32>,
    links: Vec<Link>,
    /// Per switch: trunk adjacency, sorted by link id.
    trunks: Vec<Vec<TrunkEdge>>,
    /// Switch-to-switch hop distance over live elements (row-major).
    dist: Vec<u16>,
}

/// A leaf–spine fabric description.
#[derive(Debug, Clone, Copy)]
pub struct LeafSpine {
    /// Number of leaf switches.
    pub leaves: usize,
    /// Number of spine switches.
    pub spines: usize,
    /// Hosts per leaf.
    pub nodes_per_leaf: usize,
    /// Parallel trunks from each leaf to each spine. Oversubscription is
    /// `nodes_per_leaf / (spines × uplinks_per_spine)` at equal link
    /// speeds.
    pub uplinks_per_spine: usize,
    /// Host access-link parameters.
    pub host: LinkParams,
    /// Trunk parameters.
    pub trunk: LinkParams,
}

impl LeafSpine {
    /// Evaluation-scale defaults for the given shape: 100 G links, 10 ns
    /// propagation everywhere.
    pub fn symmetric(leaves: usize, spines: usize, nodes_per_leaf: usize, uplinks: usize) -> Self {
        LeafSpine {
            leaves,
            spines,
            nodes_per_leaf,
            uplinks_per_spine: uplinks,
            host: LinkParams::default(),
            trunk: LinkParams::default(),
        }
    }

    /// Host-to-uplink capacity ratio per leaf (1.0 = non-blocking).
    pub fn oversubscription(&self) -> f64 {
        let host = self.nodes_per_leaf as f64 * self.host.bandwidth.as_bps() as f64;
        let up =
            (self.spines * self.uplinks_per_spine) as f64 * self.trunk.bandwidth.as_bps() as f64;
        host / up
    }

    /// Total host count.
    pub fn nodes(&self) -> usize {
        self.leaves * self.nodes_per_leaf
    }
}

impl Topology {
    /// The degenerate 1-switch fabric: `nodes` hosts behind one switch —
    /// exactly the legacy `EdmWorld` cluster shape.
    pub fn single_switch(nodes: usize, host: LinkParams) -> Self {
        assert!(nodes >= 2, "need at least two nodes");
        let mut t = Topology {
            switches: vec![Switch {
                role: SwitchRole::Leaf,
                ports: nodes,
                up: true,
            }],
            node_attach: Vec::with_capacity(nodes),
            node_link: Vec::with_capacity(nodes),
            links: Vec::with_capacity(nodes),
            trunks: vec![Vec::new()],
            dist: Vec::new(),
        };
        for n in 0..nodes {
            t.node_attach.push((0, n as u16));
            t.node_link.push(n as u32);
            t.links.push(Link {
                a: Endpoint::Node(n as u32),
                b: Endpoint::Port {
                    switch: 0,
                    port: n as u16,
                },
                params: host,
                up: true,
                extra_latency: Duration::ZERO,
            });
        }
        t.recompute_routes();
        t
    }

    /// A two-tier leaf–spine fabric. Hosts are attached contiguously:
    /// node `n` sits on leaf `n / nodes_per_leaf`. Leaf ports are hosts
    /// first, then uplinks grouped by spine; spine `s` is switch
    /// `leaves + s`.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate shape (zero leaves/spines/hosts/uplinks).
    pub fn leaf_spine(spec: LeafSpine) -> Self {
        assert!(
            spec.leaves >= 1 && spec.spines >= 1,
            "need at least one leaf and one spine"
        );
        assert!(
            spec.nodes_per_leaf >= 1 && spec.uplinks_per_spine >= 1,
            "need hosts and uplinks"
        );
        let uplinks = spec.spines * spec.uplinks_per_spine;
        let mut switches = Vec::with_capacity(spec.leaves + spec.spines);
        for _ in 0..spec.leaves {
            switches.push(Switch {
                role: SwitchRole::Leaf,
                ports: spec.nodes_per_leaf + uplinks,
                up: true,
            });
        }
        for _ in 0..spec.spines {
            switches.push(Switch {
                role: SwitchRole::Spine,
                ports: spec.leaves * spec.uplinks_per_spine,
                up: true,
            });
        }
        let mut t = Topology {
            switches,
            node_attach: Vec::new(),
            node_link: Vec::new(),
            links: Vec::new(),
            trunks: vec![Vec::new(); spec.leaves + spec.spines],
            dist: Vec::new(),
        };
        for n in 0..spec.nodes() {
            let leaf = (n / spec.nodes_per_leaf) as u32;
            let port = (n % spec.nodes_per_leaf) as u16;
            t.node_attach.push((leaf, port));
            t.node_link.push(t.links.len() as u32);
            t.links.push(Link {
                a: Endpoint::Node(n as u32),
                b: Endpoint::Port { switch: leaf, port },
                params: spec.host,
                up: true,
                extra_latency: Duration::ZERO,
            });
        }
        for l in 0..spec.leaves {
            for s in 0..spec.spines {
                for k in 0..spec.uplinks_per_spine {
                    let leaf_port = (spec.nodes_per_leaf + s * spec.uplinks_per_spine + k) as u16;
                    let spine_port = (l * spec.uplinks_per_spine + k) as u16;
                    t.add_trunk(
                        l as u32,
                        leaf_port,
                        (spec.leaves + s) as u32,
                        spine_port,
                        spec.trunk,
                    );
                }
            }
        }
        t.recompute_routes();
        t
    }

    /// An arbitrary-adjacency fabric: `attach[n]` names node `n`'s switch,
    /// `trunk_pairs` the inter-switch links. Ports are assigned hosts
    /// first, then trunk endpoints in `trunk_pairs` order. Switches with
    /// hosts are leaves; the rest are spines.
    ///
    /// # Panics
    ///
    /// Panics if an attachment or trunk endpoint is out of range.
    pub fn from_adjacency(
        switch_count: usize,
        attach: &[u32],
        trunk_pairs: &[(u32, u32)],
        host: LinkParams,
        trunk: LinkParams,
    ) -> Self {
        assert!(switch_count >= 1, "need a switch");
        let mut host_counts = vec![0usize; switch_count];
        for &sw in attach {
            host_counts[sw as usize] += 1;
        }
        let mut switches: Vec<Switch> = host_counts
            .iter()
            .map(|&hosts| Switch {
                role: if hosts > 0 {
                    SwitchRole::Leaf
                } else {
                    SwitchRole::Spine
                },
                ports: hosts,
                up: true,
            })
            .collect();
        let mut t = Topology {
            node_attach: Vec::new(),
            node_link: Vec::new(),
            links: Vec::new(),
            trunks: vec![Vec::new(); switch_count],
            dist: Vec::new(),
            switches: Vec::new(),
        };
        let mut next_port = vec![0u16; switch_count];
        for (n, &sw) in attach.iter().enumerate() {
            let port = next_port[sw as usize];
            next_port[sw as usize] += 1;
            t.node_attach.push((sw, port));
            t.node_link.push(t.links.len() as u32);
            t.links.push(Link {
                a: Endpoint::Node(n as u32),
                b: Endpoint::Port { switch: sw, port },
                params: host,
                up: true,
                extra_latency: Duration::ZERO,
            });
        }
        for &(x, y) in trunk_pairs {
            assert!(
                (x as usize) < switch_count && (y as usize) < switch_count && x != y,
                "bad trunk ({x}, {y})"
            );
            let px = next_port[x as usize];
            next_port[x as usize] += 1;
            let py = next_port[y as usize];
            next_port[y as usize] += 1;
            switches[x as usize].ports += 1;
            switches[y as usize].ports += 1;
            t.add_trunk(x, px, y, py, trunk);
        }
        for (sw, used) in switches.iter_mut().zip(&next_port) {
            sw.ports = sw.ports.max(*used as usize);
        }
        t.switches = switches;
        t.recompute_routes();
        t
    }

    fn add_trunk(&mut self, x: u32, px: u16, y: u32, py: u16, params: LinkParams) {
        let id = self.links.len() as u32;
        self.links.push(Link {
            a: Endpoint::Port {
                switch: x,
                port: px,
            },
            b: Endpoint::Port {
                switch: y,
                port: py,
            },
            params,
            up: true,
            extra_latency: Duration::ZERO,
        });
        self.trunks[x as usize].push((y, id, px, py));
        self.trunks[y as usize].push((x, id, py, px));
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Port count of a switch.
    pub fn switch_ports(&self, switch: u32) -> usize {
        self.switches[switch as usize].ports
    }

    /// Role of a switch.
    pub fn switch_role(&self, switch: u32) -> SwitchRole {
        self.switches[switch as usize].role
    }

    /// Whether a switch is up.
    pub fn switch_up(&self, switch: u32) -> bool {
        self.switches[switch as usize].up
    }

    /// Number of host nodes.
    pub fn nodes(&self) -> usize {
        self.node_attach.len()
    }

    /// Node `n`'s (switch, port) attachment.
    pub fn attach(&self, node: usize) -> (u32, u16) {
        self.node_attach[node]
    }

    /// Node `n`'s access link.
    pub fn node_link(&self, node: usize) -> u32 {
        self.node_link[node]
    }

    /// The links, by id.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// One link by id.
    pub fn link(&self, id: u32) -> &Link {
        &self.links[id as usize]
    }

    /// The far end of `link` as seen from `from_switch`.
    ///
    /// # Panics
    ///
    /// Panics if `from_switch` is not an endpoint of the link.
    pub fn link_far_end(&self, link: u32, from_switch: u32) -> Endpoint {
        let l = &self.links[link as usize];
        match (l.a, l.b) {
            (a, Endpoint::Port { switch, .. }) if switch == from_switch => a,
            (Endpoint::Port { switch, .. }, b) if switch == from_switch => b,
            _ => panic!("switch {from_switch} is not an endpoint of link {link}"),
        }
    }

    /// The reference bandwidth for a switch's scheduler busy-release
    /// timer: the bandwidth of its lowest-id attached link (all links of
    /// one tier are homogeneous in the fabrics modeled here).
    pub fn reference_bandwidth(&self, switch: u32) -> Bandwidth {
        self.links
            .iter()
            .find_map(|l| match (l.a, l.b) {
                (Endpoint::Port { switch: s, .. }, _) | (_, Endpoint::Port { switch: s, .. })
                    if s == switch =>
                {
                    Some(l.params.bandwidth)
                }
                _ => None,
            })
            .expect("switch has at least one link")
    }

    /// Takes a switch up or down and recomputes routing.
    pub fn set_switch_up(&mut self, switch: u32, up: bool) {
        self.switches[switch as usize].up = up;
        self.recompute_routes();
    }

    /// Takes a link up or down and recomputes routing.
    pub fn set_link_up(&mut self, link: u32, up: bool) {
        self.links[link as usize].up = up;
        self.recompute_routes();
    }

    /// Adds `extra` one-way latency to a link (persistent physical
    /// degradation; stacks with previous degradation).
    pub fn degrade_link(&mut self, link: u32, extra: Duration) {
        let l = &mut self.links[link as usize];
        l.extra_latency += extra;
    }

    /// Clears all accumulated degradation on a link (fiber replaced, FEC
    /// retrains): its latency returns to the configured propagation.
    pub fn restore_link(&mut self, link: u32) {
        self.links[link as usize].extra_latency = Duration::ZERO;
    }

    /// Recomputes the live-element BFS distance matrix. Called by the
    /// failure setters; only needed directly after manual state edits.
    pub fn recompute_routes(&mut self) {
        let n = self.switches.len();
        self.dist = vec![UNREACH; n * n];
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            if !self.switches[start].up {
                continue;
            }
            let row = start * n;
            self.dist[row + start] = 0;
            queue.clear();
            queue.push_back(start as u32);
            while let Some(cur) = queue.pop_front() {
                let d = self.dist[row + cur as usize];
                for &(nb, link, _, _) in &self.trunks[cur as usize] {
                    if !self.links[link as usize].up || !self.switches[nb as usize].up {
                        continue;
                    }
                    if self.dist[row + nb as usize] == UNREACH {
                        self.dist[row + nb as usize] = d + 1;
                        queue.push_back(nb);
                    }
                }
            }
        }
    }

    /// Live hop distance between two switches.
    pub fn switch_distance(&self, a: u32, b: u32) -> Option<usize> {
        let d = self.dist[a as usize * self.switches.len() + b as usize];
        (d != UNREACH).then_some(d as usize)
    }

    /// FNV-1a digest of every ECMP decision row, row-major
    /// `switch_count() × switch_count()`. Row `(s, d)` captures exactly
    /// what [`route`](Self::route) consults when standing at switch `s`
    /// bound for destination switch `d`: the live hop distance and the
    /// eligible minimal-distance trunk list in adjacency order. Two
    /// topology states with equal digests for every row a path visits —
    /// and equal endpoint liveness — route that path identically, which
    /// is what lets what-if sweeps re-resolve only the flows a fault
    /// actually touches.
    pub fn route_digests(&self) -> Vec<u64> {
        let n = self.switches.len();
        let mut out = vec![0u64; n * n];
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                let mut mix = |v: u64| h = (h ^ v).wrapping_mul(0x100_0000_01b3);
                let d_here = self.dist[s * n + d];
                mix(d_here as u64);
                if d_here != UNREACH && d_here != 0 {
                    for &(nb, link, _, _) in &self.trunks[s] {
                        if self.links[link as usize].up
                            && self.switches[nb as usize].up
                            && self.dist[nb as usize * n + d] as u32 + 1 == d_here as u32
                        {
                            mix(link as u64 + 1);
                        }
                    }
                }
                out[s * n + d] = h;
            }
        }
        out
    }

    /// Routes `src` → `dst` (data direction), spreading equal-cost
    /// choices by `salt`. `None` when no live path exists (failed access
    /// link, dead attach switch, or partitioned fabric).
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either node is out of range.
    pub fn route(&self, src: usize, dst: usize, salt: u64) -> Option<Route> {
        assert_ne!(src, dst, "a flow needs two distinct nodes");
        let (s_sw, s_port) = self.node_attach[src];
        let (d_sw, d_port) = self.node_attach[dst];
        let src_link = self.node_link[src];
        let dst_link = self.node_link[dst];
        if !self.switches[s_sw as usize].up
            || !self.switches[d_sw as usize].up
            || !self.links[src_link as usize].up
            || !self.links[dst_link as usize].up
        {
            return None;
        }
        let n = self.switches.len();
        let mut hops = Vec::with_capacity(3);
        let mut cur = s_sw;
        let mut in_port = s_port;
        loop {
            if cur == d_sw {
                hops.push(Hop {
                    switch: cur,
                    in_port,
                    out_port: d_port,
                    out_link: dst_link,
                });
                return Some(Route { hops, src_link });
            }
            let d_here = self.dist[cur as usize * n + d_sw as usize];
            if d_here == UNREACH {
                return None;
            }
            // ECMP: all live minimal-distance trunks are equal candidates;
            // the salt picks one. Adjacency is link-id sorted, so the
            // candidate order — and thus the pick — is deterministic.
            // Two passes (count, then select) keep the walk allocation-free
            // — this runs once per flow on the simulator hot path.
            let eligible = |&&(nb, link, _, _): &&TrunkEdge| {
                self.links[link as usize].up
                    && self.switches[nb as usize].up
                    && self.dist[nb as usize * n + d_sw as usize] + 1 == d_here
            };
            let count = self.trunks[cur as usize].iter().filter(eligible).count();
            if count == 0 {
                return None;
            }
            let &(nb, link, local, far) = self.trunks[cur as usize]
                .iter()
                .filter(eligible)
                .nth((salt % count as u64) as usize)
                .expect("pick is within the candidate count");
            hops.push(Hop {
                switch: cur,
                in_port,
                out_port: local,
                out_link: link,
            });
            cur = nb;
            in_port = far;
            debug_assert!(hops.len() <= n, "routing walked a loop");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_switch_routes_one_hop() {
        let t = Topology::single_switch(8, LinkParams::default());
        let r = t.route(0, 7, 0).expect("route exists");
        assert_eq!(r.hops.len(), 1);
        assert_eq!(
            r.hops[0],
            Hop {
                switch: 0,
                in_port: 0,
                out_port: 7,
                out_link: 7,
            }
        );
        assert_eq!(r.src_link, 0);
    }

    #[test]
    fn leaf_spine_shape() {
        let spec = LeafSpine::symmetric(4, 2, 8, 2);
        assert_eq!(spec.nodes(), 32);
        assert!((spec.oversubscription() - 2.0).abs() < 1e-9);
        let t = Topology::leaf_spine(spec);
        assert_eq!(t.switch_count(), 6);
        assert_eq!(t.switch_role(0), SwitchRole::Leaf);
        assert_eq!(t.switch_role(4), SwitchRole::Spine);
        assert_eq!(t.switch_ports(0), 8 + 4);
        assert_eq!(t.switch_ports(4), 8);
        // Same-leaf: one hop; cross-leaf: leaf → spine → leaf.
        assert_eq!(t.route(0, 7, 0).unwrap().hops.len(), 1);
        assert_eq!(t.route(0, 8, 0).unwrap().hops.len(), 3);
        assert_eq!(t.switch_distance(0, 1), Some(2));
        assert_eq!(t.switch_distance(0, 4), Some(1));
    }

    #[test]
    fn ecmp_salt_spreads_across_spines() {
        let t = Topology::leaf_spine(LeafSpine::symmetric(2, 2, 4, 1));
        let spines: std::collections::BTreeSet<u32> = (0..16)
            .map(|salt| t.route(0, 4, salt).unwrap().hops[1].switch)
            .collect();
        assert_eq!(spines.len(), 2, "both spines must carry traffic");
    }

    #[test]
    fn spine_down_removes_candidates() {
        let mut t = Topology::leaf_spine(LeafSpine::symmetric(2, 2, 4, 1));
        t.set_switch_up(2, false); // spine 0 (switches: leaves 0..2, spines 2..4)
        for salt in 0..8 {
            let r = t.route(0, 4, salt).unwrap();
            assert_eq!(r.hops[1].switch, 3, "all routes must use spine 1");
        }
        t.set_switch_up(3, false);
        assert!(t.route(0, 4, 0).is_none(), "partitioned");
        assert!(t.route(0, 3, 0).is_some(), "same-leaf unaffected");
    }

    #[test]
    fn access_link_down_kills_routes() {
        let mut t = Topology::single_switch(4, LinkParams::default());
        t.set_link_up(2, false);
        assert!(t.route(0, 2, 0).is_none());
        assert!(t.route(2, 1, 0).is_none());
        assert!(t.route(0, 1, 0).is_some());
    }

    #[test]
    fn degrade_accumulates_latency() {
        let mut t = Topology::single_switch(4, LinkParams::default());
        t.degrade_link(1, Duration::from_ns(100));
        t.degrade_link(1, Duration::from_ns(50));
        assert_eq!(t.link(1).latency(), Duration::from_ns(160));
        assert_eq!(t.link(0).latency(), Duration::from_ns(10));
        t.restore_link(1);
        assert_eq!(t.link(1).latency(), Duration::from_ns(10));
        assert_eq!(t.link(1).extra_latency(), Duration::ZERO);
    }

    #[test]
    fn elements_come_back_up_and_routes_return() {
        let mut t = Topology::leaf_spine(LeafSpine::symmetric(2, 2, 4, 1));
        t.set_switch_up(2, false);
        t.set_switch_up(3, false);
        assert!(t.route(0, 4, 0).is_none(), "partitioned");
        t.set_switch_up(3, true);
        let r = t.route(0, 4, 0).expect("healed partition routes again");
        assert_eq!(r.hops[1].switch, 3);
        t.set_switch_up(2, true);
        let spines: std::collections::BTreeSet<u32> = (0..16)
            .map(|salt| t.route(0, 4, salt).unwrap().hops[1].switch)
            .collect();
        assert_eq!(spines.len(), 2, "revived spine rejoins ECMP");
    }

    #[test]
    fn adjacency_builder_routes_a_line() {
        // 3 switches in a line, one node on each end switch.
        let t = Topology::from_adjacency(
            3,
            &[0, 2],
            &[(0, 1), (1, 2)],
            LinkParams::default(),
            LinkParams::default(),
        );
        assert_eq!(t.switch_role(1), SwitchRole::Spine);
        let r = t.route(0, 1, 9).unwrap();
        assert_eq!(r.hops.len(), 3);
        assert_eq!(
            r.hops.iter().map(|h| h.switch).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn far_end_resolution() {
        let t = Topology::leaf_spine(LeafSpine::symmetric(2, 1, 2, 1));
        let r = t.route(0, 2, 0).unwrap();
        // Hop 0 leaves leaf 0 over a trunk toward the spine.
        match t.link_far_end(r.hops[0].out_link, 0) {
            Endpoint::Port { switch, port } => {
                assert_eq!(switch, 2);
                assert_eq!(port, r.hops[1].in_port);
            }
            other => panic!("expected trunk far end, got {other:?}"),
        }
        // The last hop's out link reaches the destination node.
        match t.link_far_end(r.hops[2].out_link, 1) {
            Endpoint::Node(n) => assert_eq!(n, 2),
            other => panic!("expected node, got {other:?}"),
        }
    }
}
