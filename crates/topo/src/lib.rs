//! `edm-topo` — multi-switch fabric topologies for EDM.
//!
//! The paper evaluates EDM behind a single switch (144 nodes, §4.3); this
//! crate grows the simulator to datacenter shape, where remote-memory
//! traffic crosses multiple switch hops and competes with regular IP
//! traffic — the regime in-network memory management (MIND, SOSP '21) and
//! CXL-over-Ethernet target:
//!
//! * [`topology`] — the fabric graph: single-switch, leaf–spine with
//!   configurable oversubscription ([`Topology::leaf_spine`]), or
//!   arbitrary adjacency ([`Topology::from_adjacency`]); per-link
//!   bandwidth/latency, deterministic salted ECMP over equal-cost paths,
//!   and mutable element state (links/switches down, degraded links).
//! * [`world`] — the multi-switch event-driven world: one demand-sparse
//!   EDM scheduler (`edm_core::sim::SwitchDomain`, the PR 2 sparse PIM
//!   core) per switch, with inter-switch grant coordination by chunk
//!   arrival, failure injection with deterministic reroute-or-fail
//!   semantics (and sender-side demand revocation on reroute), and a
//!   mixed-traffic mode where background IP flows share egress ports
//!   with memory traffic ([`ip`]).
//! * [`shard`] — partitioning one simulation across cores:
//!   [`TopoEdm::simulate_sharded`] runs the same world as several
//!   conservative logical processes (`edm_sim::sharded`), bit-identical
//!   to the sequential run at any shard count; [`ShardPlan`] derives the
//!   switch partition and the trunk-latency lookahead.
//! * [`app`] — the closed-loop application tier on top of all of it:
//!   [`TopoEdm::simulate_app`] runs N tenants issuing YCSB-mix
//!   read/update/RMW operations with think times and bounded MLP
//!   windows against remote memory nodes (DDR4 service via
//!   `edm_memory::MemoryService`), over EDM's in-PHY transport or a
//!   store-and-forward CXL-over-Ethernet baseline on the identical
//!   fabric; [`TopoEdm::simulate_app_sharded`] is bit-identical at any
//!   shard count.
//!
//! A 1-switch [`Topology`] is the *degenerate* case: [`TopoEdm`] on
//! [`cluster_topology`] is bit-identical to the legacy single-switch
//! `EdmProtocol`, pinned by proptest.
//!
//! # Example
//!
//! ```
//! use edm_topo::{LeafSpine, Topology, TopoEdm};
//! use edm_core::sim::{Flow, FlowKind};
//! use edm_sim::Time;
//!
//! // 4 racks × 4 hosts, 2 spines, non-blocking.
//! let topo = Topology::leaf_spine(LeafSpine::symmetric(4, 2, 4, 2));
//! let flow = Flow {
//!     id: 0, src: 0, dst: 12, size: 256,
//!     arrival: Time::ZERO, kind: FlowKind::Write,
//! };
//! let result = TopoEdm::default().simulate(&topo, &[flow]);
//! assert_eq!(result.delivered(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod ip;
pub mod shard;
pub mod topology;
pub mod world;

pub use app::{AppConfig, AppReport, AppTransport, CxlOeConfig};
pub use ip::IpTraffic;
pub use shard::ShardPlan;
pub use topology::{Endpoint, Hop, LeafSpine, Link, LinkParams, Route, SwitchRole, Topology};
pub use world::{
    admission_route, FaultEvent, FaultKind, FlowStatus, TopoEdm, TopoEdmConfig, TopoOutcome,
    TopoResult, TopoStreamStats,
};

use edm_core::sim::ClusterConfig;

/// The 1-switch [`Topology`] equivalent to a legacy [`ClusterConfig`]:
/// `nodes` hosts on `cluster.link` access links with `cluster.prop_delay`
/// propagation. `TopoEdm` on this topology (with
/// [`TopoEdmConfig::matching`]) reproduces `EdmProtocol` bit-for-bit.
pub fn cluster_topology(cluster: &ClusterConfig) -> Topology {
    Topology::single_switch(
        cluster.nodes,
        LinkParams {
            bandwidth: cluster.link,
            propagation: cluster.prop_delay,
        },
    )
}
