//! Lockstep pins for the streaming flow lifecycle: pulling arrivals
//! lazily from a source, sinking outcomes as they are decided, and
//! retiring completed flows mid-run must not perturb a single result.
//! A fault-free streamed run is *bit-identical* to materializing the
//! same arrivals and running the `Vec` path — per-flow statuses and
//! completion times, IP counters, and the dispatched-event tally — and
//! the sharded streamed run is bit-identical to the sequential streamed
//! run for every shard count.

use edm_core::sim::{Flow, FlowKind};
use edm_sim::{Duration, Time};
use edm_topo::{
    FaultEvent, FaultKind, FlowStatus, IpTraffic, LeafSpine, TopoEdm, TopoEdmConfig, Topology,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// Decodes flow specs against a node count (src ≠ dst guaranteed) and
/// sorts them by arrival — streaming sources emit time-ordered flows.
fn decode_sorted_flows(specs: &[(u64, u64, u32, u64, bool)], nodes: usize) -> Vec<Flow> {
    let mut flows: Vec<Flow> = specs
        .iter()
        .enumerate()
        .map(|(id, &(s, d, size, at, is_write))| {
            let src = (s % nodes as u64) as usize;
            let mut dst = (d % nodes as u64) as usize;
            if dst == src {
                dst = (dst + 1) % nodes;
            }
            Flow {
                id,
                src,
                dst,
                size: 1 + size % 8192,
                arrival: Time::from_ns(at % 30_000),
                kind: if is_write {
                    FlowKind::Write
                } else {
                    FlowKind::Read
                },
            }
        })
        .collect();
    flows.sort_by_key(|f| f.arrival);
    flows
}

proptest! {
    /// Random leaf–spine fabrics under random time-ordered workloads and
    /// config corners (batching, X bounds, background IP): the streamed
    /// run matches the materialized run flow-for-flow, and the sharded
    /// streamed run matches the sequential streamed run.
    #[test]
    fn streamed_lockstep_with_materialized(
        leaves in 2usize..5,
        spines in 1usize..3,
        npl in 2usize..5,
        uplinks in 1usize..3,
        flow_specs in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u32>(), any::<u64>(), any::<bool>()),
            1..24,
        ),
        shards in 1usize..=4,
        batching in any::<bool>(),
        x in 1usize..4,
        ip_on in any::<bool>(),
    ) {
        let topo = Topology::leaf_spine(LeafSpine::symmetric(leaves, spines, npl, uplinks));
        let flows = decode_sorted_flows(&flow_specs, topo.nodes());
        let proto = TopoEdm::new(TopoEdmConfig {
            batch_small_messages: batching,
            max_active_per_pair: x,
            ip: if ip_on { IpTraffic::load(0.3) } else { IpTraffic::default() },
            ..TopoEdmConfig::default()
        });

        let reference = proto.simulate(&topo, &flows);
        let by_id: HashMap<usize, FlowStatus> = reference
            .outcomes
            .iter()
            .map(|o| (o.flow.id, o.status))
            .collect();

        let mut streamed = Vec::new();
        let stats = proto.simulate_streamed(&topo, flows.iter().copied(), |o| streamed.push(o));
        prop_assert_eq!(stats.admitted as usize, flows.len());
        prop_assert_eq!(stats.delivered + stats.failed, stats.admitted);
        prop_assert_eq!(stats.events, reference.events, "event tally diverged");
        prop_assert_eq!(stats.ip_frames, reference.ip_frames);
        prop_assert_eq!(stats.ip_delayed, reference.ip_delayed);
        prop_assert!(stats.active_high_water <= flows.len());
        prop_assert_eq!(streamed.len(), reference.outcomes.len());
        for o in &streamed {
            prop_assert_eq!(by_id[&o.flow.id], o.status, "streamed diverged on {:?}", o.flow);
        }

        let mut par = Vec::new();
        let pstats = proto.simulate_sharded_streamed(
            &topo,
            flows.iter().copied(),
            |o| par.push(o),
            shards,
        );
        prop_assert_eq!(pstats.admitted, stats.admitted);
        prop_assert_eq!(pstats.delivered, stats.delivered);
        prop_assert_eq!(pstats.failed, stats.failed);
        prop_assert_eq!(pstats.events, stats.events, "sharded event tally diverged");
        prop_assert_eq!(pstats.ip_frames, stats.ip_frames);
        prop_assert_eq!(pstats.ip_delayed, stats.ip_delayed);
        // Per-switch scheduler behavior is bit-identical, so the summed
        // slab peaks are too.
        prop_assert_eq!(pstats.msg_slots_high_water, stats.msg_slots_high_water);
        // Credits apply at window barriers, so a sharded replica may
        // momentarily hold a few extra not-yet-retired entries — never
        // fewer, and never more than the total admitted.
        prop_assert!(pstats.active_high_water >= stats.active_high_water);
        prop_assert!(pstats.active_high_water <= flows.len());
        prop_assert_eq!(par.len(), reference.outcomes.len());
        for o in &par {
            prop_assert_eq!(by_id[&o.flow.id], o.status, "sharded streamed diverged on {:?}", o.flow);
        }
    }

    /// Streamed runs under random fault *and repair* schedules with
    /// bounded retries: every admitted flow reaches a terminal state,
    /// retirement keeps running (the entry high-water can stay below the
    /// admitted count), and the sharded streamed run is bit-identical to
    /// the sequential streamed run at every shard count.
    #[test]
    fn streamed_fault_repair_lockstep_across_shards(
        leaves in 2usize..5,
        spines in 1usize..3,
        npl in 2usize..5,
        uplinks in 1usize..3,
        flow_specs in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u32>(), any::<u64>(), any::<bool>()),
            1..24,
        ),
        fault_specs in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..4),
        shards in 1usize..=4,
        batching in any::<bool>(),
        retries in 0u32..3,
    ) {
        let topo = Topology::leaf_spine(LeafSpine::symmetric(leaves, spines, npl, uplinks));
        let flows = decode_sorted_flows(&flow_specs, topo.nodes());
        let links = topo.links().len() as u64;
        let switches = topo.switch_count() as u64;
        let faults = fault_specs.iter().map(|&(kind, target, at)| FaultEvent {
            at: Time::from_ns(2_000 + at % 40_000),
            kind: match kind % 6 {
                0 => FaultKind::LinkDown((target % links) as u32),
                1 => FaultKind::SwitchDown((target % switches) as u32),
                2 => FaultKind::DegradeLink {
                    link: (target % links) as u32,
                    extra: Duration::from_ns(50 + at % 500),
                },
                3 => FaultKind::LinkUp((target % links) as u32),
                4 => FaultKind::SwitchUp((target % switches) as u32),
                _ => FaultKind::RestoreLink((target % links) as u32),
            },
        }).collect::<Vec<_>>();
        let proto = TopoEdm::new(TopoEdmConfig {
            batch_small_messages: batching,
            faults,
            reroute_delay: Duration::from_us(2),
            max_retries: retries,
            retry_backoff: Duration::from_us(5),
            ..TopoEdmConfig::default()
        });

        let mut seq = Vec::new();
        let stats = proto.simulate_streamed(&topo, flows.iter().copied(), |o| seq.push(o));
        prop_assert_eq!(stats.admitted as usize, flows.len());
        prop_assert_eq!(
            stats.delivered + stats.failed,
            stats.admitted,
            "every flow must reach a terminal state under faults"
        );
        prop_assert!(stats.active_high_water <= flows.len());
        let by_id: HashMap<usize, FlowStatus> =
            seq.iter().map(|o| (o.flow.id, o.status)).collect();
        prop_assert_eq!(by_id.len(), flows.len(), "each flow decided exactly once");

        let mut par = Vec::new();
        let pstats = proto.simulate_sharded_streamed(
            &topo,
            flows.iter().copied(),
            |o| par.push(o),
            shards,
        );
        prop_assert_eq!(pstats.admitted, stats.admitted);
        prop_assert_eq!(pstats.delivered, stats.delivered);
        prop_assert_eq!(pstats.failed, stats.failed);
        prop_assert_eq!(pstats.retried, stats.retried, "retry count diverged");
        prop_assert_eq!(pstats.readmitted, stats.readmitted, "re-admission count diverged");
        prop_assert_eq!(pstats.events, stats.events, "sharded event tally diverged");
        prop_assert_eq!(pstats.ip_frames, stats.ip_frames);
        prop_assert_eq!(pstats.ip_delayed, stats.ip_delayed);
        prop_assert!(pstats.active_high_water >= stats.active_high_water);
        prop_assert_eq!(par.len(), seq.len());
        for o in &par {
            prop_assert_eq!(
                by_id[&o.flow.id], o.status,
                "sharded streamed fault run diverged on {:?}", o.flow
            );
        }
    }
}
