//! The parallel-DES lockstep suite: a sharded run must be *bit-identical*
//! to the sequential run — flow statuses and completion times, reroute
//! and fault outcomes, IP interference counters, and the dispatched-event
//! tally — for every shard count, across random topologies, workloads,
//! fault schedules, and configuration corners (batching, X bounds,
//! demand revocation, background IP).
//!
//! Also pins the degenerate cases: a single-switch fabric has no trunks
//! (zero lookahead), so a sharded request must fall back to one shard;
//! zero-latency trunks contract their endpoints into one shard for the
//! same reason.

use edm_core::sim::{Flow, FlowKind};
use edm_sim::{Duration, Time};
use edm_topo::{
    FaultEvent, FaultKind, IpTraffic, LeafSpine, LinkParams, ShardPlan, TopoEdm, TopoEdmConfig,
    Topology,
};
use proptest::prelude::*;

/// Runs both engines and requires bit-identical results.
fn assert_lockstep(
    proto: &TopoEdm,
    topo: &Topology,
    flows: &[Flow],
    shards: usize,
) -> Result<(), TestCaseError> {
    let seq = proto.simulate(topo, flows);
    let par = proto.simulate_sharded(topo, flows, shards);
    prop_assert_eq!(par.outcomes.len(), seq.outcomes.len());
    for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
        prop_assert_eq!(
            a.status,
            b.status,
            "{} shards diverged on flow {:?}",
            shards,
            a.flow
        );
    }
    prop_assert_eq!(par.reroutes, seq.reroutes, "reroute count diverged");
    prop_assert_eq!(par.retried, seq.retried, "retry count diverged");
    prop_assert_eq!(
        par.readmitted,
        seq.readmitted,
        "re-admission count diverged"
    );
    prop_assert_eq!(par.ip_frames, seq.ip_frames, "IP frame count diverged");
    prop_assert_eq!(par.ip_delayed, seq.ip_delayed, "IP delay count diverged");
    prop_assert_eq!(par.events, seq.events, "event tally diverged");
    Ok(())
}

/// Decodes flow specs against a node count (src ≠ dst guaranteed).
fn decode_flows(specs: &[(u64, u64, u32, u64, bool)], nodes: usize) -> Vec<Flow> {
    specs
        .iter()
        .enumerate()
        .map(|(id, &(s, d, size, at, is_write))| {
            let src = (s % nodes as u64) as usize;
            let mut dst = (d % nodes as u64) as usize;
            if dst == src {
                dst = (dst + 1) % nodes;
            }
            Flow {
                id,
                src,
                dst,
                size: 1 + size % 8192,
                arrival: Time::from_ns(at % 30_000),
                kind: if is_write {
                    FlowKind::Write
                } else {
                    FlowKind::Read
                },
            }
        })
        .collect()
}

/// Decodes fault specs against a topology (valid link/switch targets;
/// leaf switches are spared from SwitchDown so sources keep existing —
/// killing a leaf is exercised through its links instead).
fn decode_faults(specs: &[(u8, u64, u64)], topo: &Topology) -> Vec<FaultEvent> {
    let links = topo.links().len() as u64;
    let switches = topo.switch_count() as u64;
    specs
        .iter()
        .map(|&(kind, target, at)| FaultEvent {
            at: Time::from_ns(2_000 + at % 40_000),
            kind: match kind % 6 {
                0 => FaultKind::LinkDown((target % links) as u32),
                1 => FaultKind::SwitchDown((target % switches) as u32),
                2 => FaultKind::DegradeLink {
                    link: (target % links) as u32,
                    extra: Duration::from_ns(50 + at % 500),
                },
                // Repairs: revivals of elements that may or may not be
                // down (no-op when up), so schedules fuzz flap orderings
                // including up-before-down and double-up.
                3 => FaultKind::LinkUp((target % links) as u32),
                4 => FaultKind::SwitchUp((target % switches) as u32),
                _ => FaultKind::RestoreLink((target % links) as u32),
            },
        })
        .collect()
}

proptest! {
    /// Random leaf–spine fabrics under random workloads, faults, and
    /// config corners: every shard count in 1..=4 is bit-identical to
    /// the sequential run.
    #[test]
    fn lockstep_on_leaf_spine(
        leaves in 2usize..5,
        spines in 1usize..3,
        npl in 2usize..5,
        uplinks in 1usize..3,
        flow_specs in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u32>(), any::<u64>(), any::<bool>()),
            1..24,
        ),
        fault_specs in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..4),
        shards in 1usize..=4,
        batching in any::<bool>(),
        x in 1usize..4,
        cancel in any::<bool>(),
        ip_on in any::<bool>(),
        retries in 0u32..3,
    ) {
        let topo = Topology::leaf_spine(LeafSpine::symmetric(leaves, spines, npl, uplinks));
        let flows = decode_flows(&flow_specs, topo.nodes());
        let proto = TopoEdm::new(TopoEdmConfig {
            batch_small_messages: batching,
            max_active_per_pair: x,
            cancel_stale_demand: cancel,
            ip: if ip_on { IpTraffic::load(0.3) } else { IpTraffic::default() },
            faults: decode_faults(&fault_specs, &topo),
            reroute_delay: Duration::from_us(2),
            max_retries: retries,
            retry_backoff: Duration::from_us(5),
            ..TopoEdmConfig::default()
        });
        assert_lockstep(&proto, &topo, &flows, shards)?;
    }

    /// Random connected arbitrary-adjacency fabrics (a spanning tree
    /// plus extra trunks), including zero-propagation trunks that force
    /// shard contraction, under random workloads and faults.
    #[test]
    fn lockstep_on_arbitrary_adjacency(
        switches in 2usize..7,
        tree_seed in any::<u64>(),
        extra in proptest::collection::vec((0u32..7, 0u32..7), 0..5),
        trunk_prop_sel in 0u8..3,
        flow_specs in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u32>(), any::<u64>(), any::<bool>()),
            1..16,
        ),
        fault_specs in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..4),
        shards in 2usize..=4,
        retries in 0u32..3,
    ) {
        // Two nodes per switch so every switch is a leaf and every pair
        // of hosts can talk; a pseudo-random parent chain guarantees
        // connectivity.
        let attach: Vec<u32> = (0..switches as u32).flat_map(|s| [s, s]).collect();
        let mut trunks: Vec<(u32, u32)> = (1..switches as u32).map(|s| {
            let parent = (tree_seed
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(s as u64 * 7)
                % s as u64) as u32;
            (parent, s)
        }).collect();
        for &(a, b) in &extra {
            let (a, b) = (a % switches as u32, b % switches as u32);
            if a != b {
                trunks.push((a.min(b), a.max(b)));
            }
        }
        let trunk_prop_ns = [0u64, 2, 10][trunk_prop_sel as usize];
        let trunk = LinkParams {
            propagation: Duration::from_ns(trunk_prop_ns),
            ..LinkParams::default()
        };
        let topo = Topology::from_adjacency(
            switches,
            &attach,
            &trunks,
            LinkParams::default(),
            trunk,
        );
        if trunk_prop_ns == 0 {
            // Zero-latency trunks contract everything into one shard.
            prop_assert_eq!(
                ShardPlan::new(&topo, &TopoEdmConfig::default(), shards).shards(),
                1
            );
        }
        let flows = decode_flows(&flow_specs, topo.nodes());
        let proto = TopoEdm::new(TopoEdmConfig {
            faults: decode_faults(&fault_specs, &topo),
            reroute_delay: Duration::from_us(2),
            max_retries: retries,
            retry_backoff: Duration::from_us(5),
            ..TopoEdmConfig::default()
        });
        assert_lockstep(&proto, &topo, &flows, shards)?;
    }

    /// A single-switch topology has no trunks — zero lookahead — so a
    /// sharded request must refuse parallelism (degenerate to 1 shard)
    /// and still produce the sequential result.
    #[test]
    fn zero_lookahead_degenerates_to_sequential(
        nodes in 2usize..10,
        flow_specs in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u32>(), any::<u64>(), any::<bool>()),
            1..16,
        ),
        shards in 2usize..=4,
    ) {
        let topo = Topology::single_switch(nodes, LinkParams::default());
        prop_assert_eq!(
            ShardPlan::new(&topo, &TopoEdmConfig::default(), shards).shards(),
            1
        );
        let flows = decode_flows(&flow_specs, nodes);
        assert_lockstep(&TopoEdm::default(), &topo, &flows, shards)?;
    }
}

/// Fixed-workload lockstep at the benchmark scale: the 288-node
/// leaf–spine fabric under rack-aware load with a mid-run spine
/// kill-and-revival flap and background IP. Named so CI can invoke the
/// 2- and 4-shard checks directly.
fn lockstep_288(shards: usize) {
    let topo = Topology::leaf_spine(LeafSpine::symmetric(4, 2, 72, 36));
    let flows = edm_workloads::RackAwareWorkload {
        nodes: 288,
        racks: 4,
        link: edm_sim::Bandwidth::from_gbps(100),
        load: 0.6,
        size: 64,
        write_fraction: 0.5,
        local_fraction: 0.5,
        count: 400,
    }
    .generate(42);
    let span = flows.last().unwrap().arrival.saturating_since(Time::ZERO);
    let proto = TopoEdm::new(TopoEdmConfig {
        ip: IpTraffic::load(0.25),
        faults: vec![
            FaultEvent {
                at: Time::ZERO + span / 2,
                kind: FaultKind::SwitchDown(4),
            },
            FaultEvent {
                at: Time::ZERO + (span / 4) * 3,
                kind: FaultKind::SwitchUp(4),
            },
        ],
        reroute_delay: Duration::from_us(2),
        max_retries: 2,
        retry_backoff: Duration::from_us(5),
        ..TopoEdmConfig::default()
    });
    let seq = proto.simulate(&topo, &flows);
    let par = proto.simulate_sharded(&topo, &flows, shards);
    for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
        assert_eq!(
            a.status, b.status,
            "{shards} shards diverged on {:?}",
            a.flow
        );
    }
    assert_eq!(par.reroutes, seq.reroutes);
    assert_eq!(par.retried, seq.retried);
    assert_eq!(par.readmitted, seq.readmitted);
    assert_eq!(par.ip_frames, seq.ip_frames);
    assert_eq!(par.ip_delayed, seq.ip_delayed);
    assert_eq!(par.events, seq.events);
    assert!(seq.reroutes > 0, "the spine kill must land mid-run");
}

#[test]
fn lockstep_at_2_shards_288_nodes() {
    lockstep_288(2);
}

#[test]
fn lockstep_at_4_shards_288_nodes() {
    lockstep_288(4);
}
