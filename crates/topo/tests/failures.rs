//! Failure injection at scale: spine/link kills mid-run must reroute or
//! fail affected flows deterministically while leaving disjoint flows'
//! latencies bit-identical to a fault-free run.

use edm_core::sim::{Flow, FlowKind};
use edm_sim::{Duration, Time};
use edm_topo::{
    FaultEvent, FaultKind, FlowStatus, LeafSpine, LinkParams, TopoEdm, TopoEdmConfig, Topology,
};
use edm_workloads::SyntheticWorkload;

fn write_flow(id: usize, src: usize, dst: usize, size: u32, at_ns: u64) -> Flow {
    Flow {
        id,
        src,
        dst,
        size,
        arrival: Time::from_ns(at_ns),
        kind: FlowKind::Write,
    }
}

/// 4 leaves × 4 hosts, 2 spines (switches 4 and 5), one uplink each.
/// ECMP salt is the flow id: even ids ride spine 4, odd ids spine 5.
fn fabric() -> Topology {
    Topology::leaf_spine(LeafSpine::symmetric(4, 2, 4, 1))
}

/// The three probes: A crosses spine 4 (leaves 0→1), B crosses spine 5
/// (leaves 2→3), C stays inside leaf 3 — A is disjoint from B and C in
/// every switch and link it touches.
fn probes() -> Vec<Flow> {
    vec![
        write_flow(0, 0, 4, 2_000_000, 0),  // A: via spine 4, long-lived
        write_flow(1, 8, 12, 2_000_000, 0), // B: via spine 5, long-lived
        write_flow(3, 13, 14, 4096, 5_000), // C: same-leaf mouse
    ]
}

#[test]
fn spine_kill_reroutes_affected_and_leaves_others_bit_identical() {
    let topo = fabric();
    let flows = probes();
    let base = TopoEdm::default().simulate(&topo, &flows);
    assert_eq!(base.delivered(), 3);

    let cfg = TopoEdmConfig {
        faults: vec![FaultEvent {
            at: Time::from_us(20),
            kind: FaultKind::SwitchDown(4),
        }],
        ..TopoEdmConfig::default()
    };
    let hit = TopoEdm::new(cfg).simulate(&topo, &flows);
    assert_eq!(hit.delivered(), 3, "spine 5 remains: everything reroutes");
    assert_eq!(hit.reroutes, 1, "only flow A crossed spine 4");

    // A is mid-flight at the kill: it must finish later than fault-free.
    let (base_a, hit_a) = (
        base.outcomes[0].mct().unwrap(),
        hit.outcomes[0].mct().unwrap(),
    );
    assert!(
        hit_a > base_a,
        "rerouted flow must pay for the failure: {hit_a} vs {base_a}"
    );

    // B and C share no switch or link with A: their completion times are
    // bit-identical to the fault-free run.
    for i in [1, 2] {
        assert_eq!(
            base.outcomes[i].status, hit.outcomes[i].status,
            "disjoint flow {i} must be unaffected"
        );
    }
}

#[test]
fn fabric_partition_fails_deterministically() {
    let topo = fabric();
    let flows = probes();
    let fault_at = Time::from_us(20);
    let cfg = TopoEdmConfig {
        faults: vec![
            FaultEvent {
                at: fault_at,
                kind: FaultKind::SwitchDown(4),
            },
            FaultEvent {
                at: fault_at,
                kind: FaultKind::SwitchDown(5),
            },
        ],
        ..TopoEdmConfig::default()
    };
    let base = TopoEdm::default().simulate(&topo, &flows);
    let hit = TopoEdm::new(cfg.clone()).simulate(&topo, &flows);
    // Both cross-leaf flows are cut mid-flight; the exact failure instant
    // is the fault plus the detection delay.
    let expect_fail = FlowStatus::Failed(fault_at + cfg.reroute_delay);
    assert_eq!(hit.outcomes[0].status, expect_fail);
    assert_eq!(hit.outcomes[1].status, expect_fail);
    // The same-leaf mouse never touches a spine.
    assert_eq!(hit.outcomes[2].status, base.outcomes[2].status);
    assert_eq!(hit.reroutes, 0);
}

#[test]
fn trunk_link_down_reroutes_over_the_parallel_trunk() {
    // Two parallel uplinks per spine: killing one trunk leaves a
    // same-spine alternative.
    let topo = Topology::leaf_spine(LeafSpine::symmetric(2, 1, 4, 2));
    let flow = write_flow(0, 0, 4, 2_000_000, 0);
    let base = TopoEdm::default().simulate(&topo, &[flow]);
    let used = topo.route(0, 4, 0).unwrap().hops[0].out_link;
    let cfg = TopoEdmConfig {
        faults: vec![FaultEvent {
            at: Time::from_us(20),
            kind: FaultKind::LinkDown(used),
        }],
        ..TopoEdmConfig::default()
    };
    let hit = TopoEdm::new(cfg).simulate(&topo, &[flow]);
    assert_eq!(hit.delivered(), 1);
    assert_eq!(hit.reroutes, 1);
    assert!(hit.outcomes[0].mct().unwrap() > base.outcomes[0].mct().unwrap());
}

#[test]
fn healed_partition_readmits_timed_out_flows() {
    // Both spines die at 20µs, severing every cross-leaf flow. With
    // retries enabled the partitioned flows back off exponentially
    // (reroute probe at 30µs, retries at 50µs, 90µs, 170µs); spine 5
    // comes back at 120µs, so the third retry finds a route and the
    // flows deliver instead of failing.
    let topo = fabric();
    let flows = probes();
    let cfg = TopoEdmConfig {
        faults: vec![
            FaultEvent {
                at: Time::from_us(20),
                kind: FaultKind::SwitchDown(4),
            },
            FaultEvent {
                at: Time::from_us(20),
                kind: FaultKind::SwitchDown(5),
            },
            FaultEvent {
                at: Time::from_us(120),
                kind: FaultKind::SwitchUp(5),
            },
        ],
        max_retries: 8,
        retry_backoff: Duration::from_us(20),
        ..TopoEdmConfig::default()
    };
    let a = TopoEdm::new(cfg.clone()).simulate(&topo, &flows);
    assert_eq!(a.delivered(), 3, "the healed partition re-admits A and B");
    assert_eq!(a.readmitted, 2, "both cross-leaf flows re-enter");
    assert_eq!(a.retried, 6, "three backoff probes each before the heal");

    // Re-admission is deterministic: bit-identical outcomes on a second
    // run and under the sharded engine.
    let b = TopoEdm::new(cfg.clone()).simulate(&topo, &flows);
    let c = TopoEdm::new(cfg.clone()).simulate_sharded(&topo, &flows, 4);
    for (x, (y, z)) in a.outcomes.iter().zip(b.outcomes.iter().zip(&c.outcomes)) {
        assert_eq!(x.status, y.status, "re-admission must be deterministic");
        assert_eq!(x.status, z.status, "sharded run must match sequential");
    }
    assert_eq!(a.readmitted, c.readmitted);
    assert_eq!(a.retried, c.retried);

    // If the fabric never heals, the same retry budget runs dry and the
    // flows still fail deterministically.
    let dead = TopoEdmConfig {
        faults: cfg.faults[..2].to_vec(),
        ..cfg
    };
    let d = TopoEdm::new(dead).simulate(&topo, &flows);
    assert_eq!(d.delivered(), 1, "only the same-leaf mouse survives");
    assert_eq!(d.readmitted, 0);
    assert!(matches!(d.outcomes[0].status, FlowStatus::Failed(_)));
}

/// Two hosts on switches 0 and 1: a direct trunk plus a two-hop detour
/// through switch 2. Killing the direct trunk forces the long way round;
/// reviving it must migrate the flow back.
fn detour_fabric() -> Topology {
    Topology::from_adjacency(
        3,
        &[0, 1],
        &[(0, 1), (0, 2), (2, 1)],
        LinkParams::default(),
        LinkParams::default(),
    )
}

#[test]
fn repaired_trunk_pulls_detoured_flows_back_onto_the_short_path() {
    let topo = detour_fabric();
    let direct = topo.route(0, 1, 0).unwrap().hops[0].out_link;
    assert_eq!(topo.route(0, 1, 0).unwrap().hops.len(), 2);
    let flow = write_flow(0, 0, 1, 2_000_000, 0);
    // Make the detour visibly expensive: both of its trunks carry 50µs
    // of accumulated degradation, so every chunk settling over it pays
    // a tax the repaired direct trunk does not.
    let slow_detour = |link| FaultEvent {
        at: Time::from_ns(1),
        kind: FaultKind::DegradeLink {
            link,
            extra: Duration::from_us(50),
        },
    };
    let down = FaultEvent {
        at: Time::from_us(20),
        kind: FaultKind::LinkDown(direct),
    };
    let up = FaultEvent {
        at: Time::from_us(60),
        kind: FaultKind::LinkUp(direct),
    };
    let flapped = TopoEdm::new(TopoEdmConfig {
        // The duplicate LinkUp is a no-op: repairs are idempotent.
        faults: vec![slow_detour(3), slow_detour(4), down, up, up],
        ..TopoEdmConfig::default()
    })
    .simulate(&topo, &[flow]);
    assert_eq!(flapped.delivered(), 1);
    assert_eq!(
        flapped.reroutes, 2,
        "one bump onto the detour, one back onto the repaired trunk"
    );

    let dead = TopoEdm::new(TopoEdmConfig {
        faults: vec![slow_detour(3), slow_detour(4), down],
        ..TopoEdmConfig::default()
    })
    .simulate(&topo, &[flow]);
    assert_eq!(dead.delivered(), 1);
    assert_eq!(dead.reroutes, 1);
    assert!(
        flapped.outcomes[0].mct().unwrap() < dead.outcomes[0].mct().unwrap(),
        "migrating back onto the short path must beat the detour"
    );
}

#[test]
fn equal_length_revival_does_not_churn_detoured_flows() {
    // Spine 4 dies and comes back; flow A detours to spine 5, an
    // equal-length path, so the revival must not bump it again — the
    // run is bit-identical to one where the spine stays dead.
    let topo = fabric();
    let flows = probes();
    let kill = FaultEvent {
        at: Time::from_us(20),
        kind: FaultKind::SwitchDown(4),
    };
    let revive = FaultEvent {
        at: Time::from_us(60),
        kind: FaultKind::SwitchUp(4),
    };
    let flapped = TopoEdm::new(TopoEdmConfig {
        faults: vec![kill, revive],
        ..TopoEdmConfig::default()
    })
    .simulate(&topo, &flows);
    let dead = TopoEdm::new(TopoEdmConfig {
        faults: vec![kill],
        ..TopoEdmConfig::default()
    })
    .simulate(&topo, &flows);
    assert_eq!(flapped.reroutes, 1, "no migration between equal paths");
    for (x, y) in flapped.outcomes.iter().zip(&dead.outcomes) {
        assert_eq!(x.status, y.status);
    }
}

#[test]
fn restored_link_sheds_accumulated_degradation() {
    // The probe flow arrives after the restore: the credit-clocked
    // pipeline never recovers a mid-flight latency bubble, so a flow
    // already streaming cannot observe the retrain — one admitted
    // afterwards rides the clean trunk while the degraded-only run
    // still pays the tax.
    let topo = Topology::leaf_spine(LeafSpine::symmetric(2, 1, 4, 1));
    let trunk = topo.route(0, 4, 0).unwrap().hops[0].out_link;
    let flow = write_flow(0, 0, 4, 200_000, 50_000);
    let degrade = FaultEvent {
        at: Time::from_us(10),
        kind: FaultKind::DegradeLink {
            link: trunk,
            extra: Duration::from_us(2),
        },
    };
    let restore = FaultEvent {
        at: Time::from_us(40),
        kind: FaultKind::RestoreLink(trunk),
    };
    let healed = TopoEdm::new(TopoEdmConfig {
        faults: vec![degrade, restore],
        ..TopoEdmConfig::default()
    })
    .simulate(&topo, &[flow]);
    let sick = TopoEdm::new(TopoEdmConfig {
        faults: vec![degrade],
        ..TopoEdmConfig::default()
    })
    .simulate(&topo, &[flow]);
    assert_eq!(healed.delivered(), 1);
    assert_eq!(sick.delivered(), 1);
    assert!(
        healed.outcomes[0].mct().unwrap() < sick.outcomes[0].mct().unwrap(),
        "the retrained link stops paying the degradation tax"
    );
}

#[test]
fn spine_kill_at_scale_is_deterministic_and_total() {
    // 72 nodes across 4 leaves, 2 spines — a loaded fabric with hundreds
    // of concurrent flows when spine 4 dies mid-run. Every flow must
    // reach a terminal state (spine 5 absorbs everything reroutable) and
    // the whole run must be bit-reproducible.
    let topo = Topology::leaf_spine(LeafSpine::symmetric(4, 2, 18, 9));
    let flows = SyntheticWorkload {
        nodes: 72,
        link: edm_sim::Bandwidth::from_gbps(100),
        load: 0.5,
        size: 1024,
        write_fraction: 0.5,
        count: 600,
    }
    .generate(42);
    let span = flows.last().unwrap().arrival;
    let cfg = TopoEdmConfig {
        faults: vec![FaultEvent {
            at: Time::ZERO + span.saturating_since(Time::ZERO) / 3,
            kind: FaultKind::SwitchDown(4),
        }],
        reroute_delay: Duration::from_us(2),
        ..TopoEdmConfig::default()
    };
    let a = TopoEdm::new(cfg.clone()).simulate(&topo, &flows);
    assert_eq!(
        a.delivered(),
        600,
        "one live spine still connects all leaves"
    );
    assert!(a.reroutes > 0, "the kill must land mid-run");
    let b = TopoEdm::new(cfg.clone()).simulate(&topo, &flows);
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.status, y.status, "simulation must be deterministic");
    }
    assert_eq!(a.reroutes, b.reroutes);
    // The sharded engine survives the same mid-run spine kill with
    // bit-identical outcomes.
    let c = TopoEdm::new(cfg).simulate_sharded(&topo, &flows, 4);
    for (x, y) in a.outcomes.iter().zip(&c.outcomes) {
        assert_eq!(x.status, y.status, "sharded run must match sequential");
    }
    assert_eq!(a.reroutes, c.reroutes);
}
