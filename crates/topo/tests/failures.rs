//! Failure injection at scale: spine/link kills mid-run must reroute or
//! fail affected flows deterministically while leaving disjoint flows'
//! latencies bit-identical to a fault-free run.

use edm_core::sim::{Flow, FlowKind};
use edm_sim::{Duration, Time};
use edm_topo::{FaultEvent, FaultKind, FlowStatus, LeafSpine, TopoEdm, TopoEdmConfig, Topology};
use edm_workloads::SyntheticWorkload;

fn write_flow(id: usize, src: usize, dst: usize, size: u32, at_ns: u64) -> Flow {
    Flow {
        id,
        src,
        dst,
        size,
        arrival: Time::from_ns(at_ns),
        kind: FlowKind::Write,
    }
}

/// 4 leaves × 4 hosts, 2 spines (switches 4 and 5), one uplink each.
/// ECMP salt is the flow id: even ids ride spine 4, odd ids spine 5.
fn fabric() -> Topology {
    Topology::leaf_spine(LeafSpine::symmetric(4, 2, 4, 1))
}

/// The three probes: A crosses spine 4 (leaves 0→1), B crosses spine 5
/// (leaves 2→3), C stays inside leaf 3 — A is disjoint from B and C in
/// every switch and link it touches.
fn probes() -> Vec<Flow> {
    vec![
        write_flow(0, 0, 4, 2_000_000, 0),  // A: via spine 4, long-lived
        write_flow(1, 8, 12, 2_000_000, 0), // B: via spine 5, long-lived
        write_flow(3, 13, 14, 4096, 5_000), // C: same-leaf mouse
    ]
}

#[test]
fn spine_kill_reroutes_affected_and_leaves_others_bit_identical() {
    let topo = fabric();
    let flows = probes();
    let base = TopoEdm::default().simulate(&topo, &flows);
    assert_eq!(base.delivered(), 3);

    let cfg = TopoEdmConfig {
        faults: vec![FaultEvent {
            at: Time::from_us(20),
            kind: FaultKind::SwitchDown(4),
        }],
        ..TopoEdmConfig::default()
    };
    let hit = TopoEdm::new(cfg).simulate(&topo, &flows);
    assert_eq!(hit.delivered(), 3, "spine 5 remains: everything reroutes");
    assert_eq!(hit.reroutes, 1, "only flow A crossed spine 4");

    // A is mid-flight at the kill: it must finish later than fault-free.
    let (base_a, hit_a) = (
        base.outcomes[0].mct().unwrap(),
        hit.outcomes[0].mct().unwrap(),
    );
    assert!(
        hit_a > base_a,
        "rerouted flow must pay for the failure: {hit_a} vs {base_a}"
    );

    // B and C share no switch or link with A: their completion times are
    // bit-identical to the fault-free run.
    for i in [1, 2] {
        assert_eq!(
            base.outcomes[i].status, hit.outcomes[i].status,
            "disjoint flow {i} must be unaffected"
        );
    }
}

#[test]
fn fabric_partition_fails_deterministically() {
    let topo = fabric();
    let flows = probes();
    let fault_at = Time::from_us(20);
    let cfg = TopoEdmConfig {
        faults: vec![
            FaultEvent {
                at: fault_at,
                kind: FaultKind::SwitchDown(4),
            },
            FaultEvent {
                at: fault_at,
                kind: FaultKind::SwitchDown(5),
            },
        ],
        ..TopoEdmConfig::default()
    };
    let base = TopoEdm::default().simulate(&topo, &flows);
    let hit = TopoEdm::new(cfg.clone()).simulate(&topo, &flows);
    // Both cross-leaf flows are cut mid-flight; the exact failure instant
    // is the fault plus the detection delay.
    let expect_fail = FlowStatus::Failed(fault_at + cfg.reroute_delay);
    assert_eq!(hit.outcomes[0].status, expect_fail);
    assert_eq!(hit.outcomes[1].status, expect_fail);
    // The same-leaf mouse never touches a spine.
    assert_eq!(hit.outcomes[2].status, base.outcomes[2].status);
    assert_eq!(hit.reroutes, 0);
}

#[test]
fn trunk_link_down_reroutes_over_the_parallel_trunk() {
    // Two parallel uplinks per spine: killing one trunk leaves a
    // same-spine alternative.
    let topo = Topology::leaf_spine(LeafSpine::symmetric(2, 1, 4, 2));
    let flow = write_flow(0, 0, 4, 2_000_000, 0);
    let base = TopoEdm::default().simulate(&topo, &[flow]);
    let used = topo.route(0, 4, 0).unwrap().hops[0].out_link;
    let cfg = TopoEdmConfig {
        faults: vec![FaultEvent {
            at: Time::from_us(20),
            kind: FaultKind::LinkDown(used),
        }],
        ..TopoEdmConfig::default()
    };
    let hit = TopoEdm::new(cfg).simulate(&topo, &[flow]);
    assert_eq!(hit.delivered(), 1);
    assert_eq!(hit.reroutes, 1);
    assert!(hit.outcomes[0].mct().unwrap() > base.outcomes[0].mct().unwrap());
}

#[test]
fn spine_kill_at_scale_is_deterministic_and_total() {
    // 72 nodes across 4 leaves, 2 spines — a loaded fabric with hundreds
    // of concurrent flows when spine 4 dies mid-run. Every flow must
    // reach a terminal state (spine 5 absorbs everything reroutable) and
    // the whole run must be bit-reproducible.
    let topo = Topology::leaf_spine(LeafSpine::symmetric(4, 2, 18, 9));
    let flows = SyntheticWorkload {
        nodes: 72,
        link: edm_sim::Bandwidth::from_gbps(100),
        load: 0.5,
        size: 1024,
        write_fraction: 0.5,
        count: 600,
    }
    .generate(42);
    let span = flows.last().unwrap().arrival;
    let cfg = TopoEdmConfig {
        faults: vec![FaultEvent {
            at: Time::ZERO + span.saturating_since(Time::ZERO) / 3,
            kind: FaultKind::SwitchDown(4),
        }],
        reroute_delay: Duration::from_us(2),
        ..TopoEdmConfig::default()
    };
    let a = TopoEdm::new(cfg.clone()).simulate(&topo, &flows);
    assert_eq!(
        a.delivered(),
        600,
        "one live spine still connects all leaves"
    );
    assert!(a.reroutes > 0, "the kill must land mid-run");
    let b = TopoEdm::new(cfg.clone()).simulate(&topo, &flows);
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.status, y.status, "simulation must be deterministic");
    }
    assert_eq!(a.reroutes, b.reroutes);
    // The sharded engine survives the same mid-run spine kill with
    // bit-identical outcomes.
    let c = TopoEdm::new(cfg).simulate_sharded(&topo, &flows, 4);
    for (x, y) in a.outcomes.iter().zip(&c.outcomes) {
        assert_eq!(x.status, y.status, "sharded run must match sequential");
    }
    assert_eq!(a.reroutes, c.reroutes);
}
