//! The closed-loop lockstep suite: a sharded application run must be
//! *bit-identical* to the sequential run — every latency histogram,
//! throughput/availability window, the makespan, the DRAM row-buffer
//! tallies, and the fabric counters — for every shard count, across
//! random tenant populations, topologies, memory placements, fault
//! schedules, and both transports (EDM and CXL-over-Ethernet).
//!
//! Also pins the closed-loop resource model: the op population is
//! bounded by the summed MLP windows (`ops_high_water ≤ Σ mlp`, the
//! O(active ops) memory claim), op accounting conserves
//! (`issued = completed + failed`, per-kind histograms partition the
//! completions), and a run is a pure function of its config.

use edm_sim::{Duration, Time};
use edm_topo::{
    AppConfig, AppReport, AppTransport, CxlOeConfig, FaultEvent, FaultKind, LeafSpine, TopoEdm,
    TopoEdmConfig, Topology,
};
use edm_workloads::{OpMix, TenantSpec, YcsbWorkload};
use proptest::prelude::*;

/// Raw per-tenant spec: (node, workload, mlp, think, ops, mix-selector).
/// The final byte packs the RMW share (low digit base 5) and local split
/// (next digit base 5).
type TenantRaw = (u64, u8, u32, u8, u64, u8);

/// Decodes tenant specs against a node count. Workloads rotate through
/// YCSB A/B/F; RMW share is quantized to {0, ¼, ½, ¾, 1} and the local
/// split to {0 … ½}; think times are 0–300 ns exponentials.
fn decode_tenants(specs: &[TenantRaw], nodes: usize) -> Vec<TenantSpec> {
    specs
        .iter()
        .map(|&(node, wl, mlp, think, ops, mixsel)| {
            let ycsb = match wl % 3 {
                0 => YcsbWorkload::a(),
                1 => YcsbWorkload::b(),
                _ => YcsbWorkload::f(),
            };
            TenantSpec {
                node: (node % nodes as u64) as usize,
                mix: OpMix {
                    ycsb,
                    rmw_fraction: f64::from(mixsel % 5) / 4.0,
                    local_fraction: f64::from((mixsel / 5) % 5) / 8.0,
                },
                mlp: 1 + mlp % 8,
                think_mean: Duration::from_ns(u64::from(think % 4) * 100),
                ops: 5 + ops % 40,
            }
        })
        .collect()
}

/// Decodes a memory placement: 1–3 distinct nodes scattered by `sel`.
/// Tenants may land on memory nodes — colocated keys collapse to local
/// service, which the suite deliberately exercises.
fn decode_memory(sel: u64, nodes: usize) -> Vec<usize> {
    let count = 1 + (sel % 3) as usize;
    let mut v: Vec<usize> = (0..count)
        .map(|i| ((sel >> (8 * i)) as usize + 3 * i) % nodes)
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Decodes fault specs against a topology (same scheme as the flow-level
/// lockstep suite: valid targets, leaf switches spared from SwitchDown,
/// repairs included so schedules fuzz flap orderings).
fn decode_faults(specs: &[(u8, u64, u64)], topo: &Topology) -> Vec<FaultEvent> {
    let links = topo.links().len() as u64;
    let switches = topo.switch_count() as u64;
    specs
        .iter()
        .map(|&(kind, target, at)| FaultEvent {
            at: Time::from_ns(500 + at % 20_000),
            kind: match kind % 6 {
                0 => FaultKind::LinkDown((target % links) as u32),
                1 => FaultKind::SwitchDown((target % switches) as u32),
                2 => FaultKind::DegradeLink {
                    link: (target % links) as u32,
                    extra: Duration::from_ns(50 + at % 500),
                },
                3 => FaultKind::LinkUp((target % links) as u32),
                4 => FaultKind::SwitchUp((target % switches) as u32),
                _ => FaultKind::RestoreLink((target % links) as u32),
            },
        })
        .collect()
}

/// Runs the sequential reference, checks the closed-loop invariants, and
/// requires the sharded run to be bit-identical (whole-report equality —
/// [`AppReport`] derives `PartialEq` over every histogram and counter).
///
/// One field carries the same caveat as the flow-level streaming suite:
/// delivery credits apply at window barriers, so the sharded fabric may
/// momentarily hold a few extra not-yet-retired flow entries at its
/// peak — `fabric.active_high_water` is asserted `>=` the sequential
/// value, then normalized before the whole-report comparison.
fn assert_app_lockstep(
    proto: &TopoEdm,
    topo: &Topology,
    app: &AppConfig,
    shards: usize,
) -> Result<AppReport, TestCaseError> {
    let seq = proto.simulate_app(topo, app);

    // Op conservation: everything issued either completed or failed,
    // and the per-kind histograms partition the completions.
    prop_assert_eq!(seq.ops_issued, seq.ops_completed + seq.ops_failed);
    prop_assert_eq!(seq.lat.count(), seq.ops_completed);
    prop_assert_eq!(
        seq.lat_read.count() + seq.lat_update.count() + seq.lat_rmw.count() + seq.lat_local.count(),
        seq.ops_completed
    );
    let expected: u64 = app.tenants.iter().map(|t| t.ops).sum();
    prop_assert_eq!(seq.ops_issued, expected);

    // The O(active ops) pin: residency never exceeds the summed windows.
    let window: usize = app.tenants.iter().map(|t| t.mlp as usize).sum();
    prop_assert!(
        seq.ops_high_water <= window,
        "high water {} exceeds the summed MLP window {}",
        seq.ops_high_water,
        window
    );

    let mut par = proto.simulate_app_sharded(topo, app, shards);
    prop_assert!(
        par.fabric.active_high_water >= seq.fabric.active_high_water,
        "sharded fabric HWM {} below sequential {}",
        par.fabric.active_high_water,
        seq.fabric.active_high_water
    );
    par.fabric.active_high_water = seq.fabric.active_high_water;
    prop_assert_eq!(&seq, &par, "{} shards diverged", shards);
    Ok(seq)
}

/// The minimized prop case that first exposed the barrier-retirement
/// lag: a 2-shard run under a late `SwitchUp` no-op repair peaked one
/// fabric entry higher than the sequential run (7 vs 8) while every
/// other field stayed bit-identical. Frozen so the `>=`-then-normalize
/// handling above keeps covering a case known to exercise it.
#[test]
fn switch_up_repair_lags_fabric_high_water_only() {
    let topo = Topology::leaf_spine(LeafSpine::symmetric(3, 2, 4, 1));
    let tenant_specs: Vec<TenantRaw> = vec![
        (
            16866233618211394498,
            89,
            2726632075,
            126,
            4732504266746743135,
            44,
        ),
        (
            13959263807622716692,
            134,
            4075348012,
            164,
            12258084017111600074,
            28,
        ),
    ];
    let fault_specs = [(118u8, 8431016496129557699u64, 18268930609113135721u64)];
    let proto = TopoEdm::new(TopoEdmConfig {
        batch_small_messages: false,
        max_active_per_pair: 2,
        faults: decode_faults(&fault_specs, &topo),
        reroute_delay: Duration::from_us(2),
        max_retries: 2,
        retry_backoff: Duration::from_us(5),
        ..TopoEdmConfig::default()
    });
    let app = AppConfig {
        seed: 206,
        ..AppConfig::new(
            decode_tenants(&tenant_specs, topo.nodes()),
            decode_memory(1805203425391136382, topo.nodes()),
        )
    };
    let seq = proto.simulate_app(&topo, &app);
    let mut par = proto.simulate_app_sharded(&topo, &app, 2);
    assert!(par.fabric.active_high_water >= seq.fabric.active_high_water);
    par.fabric.active_high_water = seq.fabric.active_high_water;
    assert_eq!(seq, par);
}

proptest! {
    /// Random leaf–spine fabrics under random tenant populations,
    /// memory placements, faults, and scheduler corners: the sharded
    /// closed loop over EDM is bit-identical to the sequential run.
    #[test]
    fn closed_loop_lockstep_on_edm(
        leaves in 2usize..4,
        spines in 1usize..3,
        npl in 2usize..5,
        uplinks in 1usize..3,
        tenant_specs in proptest::collection::vec((any::<u64>(), any::<u8>(), any::<u32>(), any::<u8>(), any::<u64>(), any::<u8>()), 1..6),
        mem_sel in any::<u64>(),
        fault_specs in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..3),
        shards in 1usize..=4,
        batching in any::<bool>(),
        x in 1usize..4,
        seed in 0u64..1_000,
        retries in 0u32..3,
    ) {
        let topo = Topology::leaf_spine(LeafSpine::symmetric(leaves, spines, npl, uplinks));
        let proto = TopoEdm::new(TopoEdmConfig {
            batch_small_messages: batching,
            max_active_per_pair: x,
            faults: decode_faults(&fault_specs, &topo),
            reroute_delay: Duration::from_us(2),
            max_retries: retries,
            retry_backoff: Duration::from_us(5),
            ..TopoEdmConfig::default()
        });
        let app = AppConfig {
            seed,
            ..AppConfig::new(
                decode_tenants(&tenant_specs, topo.nodes()),
                decode_memory(mem_sel, topo.nodes()),
            )
        };
        let seq = assert_app_lockstep(&proto, &topo, &app, shards)?;
        if proto.config.faults.is_empty() {
            // A healthy fabric admits exactly one payload leg per remote
            // read/update and loses nothing.
            prop_assert_eq!(seq.ops_failed, 0);
            prop_assert_eq!(
                seq.fabric.admitted,
                seq.lat_read.count() + seq.lat_update.count()
            );
            prop_assert_eq!(seq.fabric.admitted, seq.fabric.delivered);
        }
    }

    /// The CXL-over-Ethernet baseline on the same random populations:
    /// bit-identical under sharding, and it never touches the scheduler.
    #[test]
    fn closed_loop_lockstep_on_cxl_oe(
        leaves in 2usize..4,
        spines in 1usize..3,
        npl in 2usize..5,
        tenant_specs in proptest::collection::vec((any::<u64>(), any::<u8>(), any::<u32>(), any::<u8>(), any::<u64>(), any::<u8>()), 1..6),
        mem_sel in any::<u64>(),
        fault_specs in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..3),
        shards in 1usize..=4,
        seed in 0u64..1_000,
    ) {
        let topo = Topology::leaf_spine(LeafSpine::symmetric(leaves, spines, npl, 2));
        let proto = TopoEdm::new(TopoEdmConfig {
            faults: decode_faults(&fault_specs, &topo),
            reroute_delay: Duration::from_us(2),
            ..TopoEdmConfig::default()
        });
        let app = AppConfig {
            seed,
            transport: AppTransport::CxlOe(CxlOeConfig::default()),
            ..AppConfig::new(
                decode_tenants(&tenant_specs, topo.nodes()),
                decode_memory(mem_sel, topo.nodes()),
            )
        };
        let seq = assert_app_lockstep(&proto, &topo, &app, shards)?;
        prop_assert_eq!(seq.fabric.admitted, 0, "CXL-oE must bypass the scheduler");
    }

    /// A closed-loop run is a pure function of its config: re-running
    /// the identical config reproduces the identical report.
    #[test]
    fn closed_loop_is_deterministic(
        tenant_specs in proptest::collection::vec((any::<u64>(), any::<u8>(), any::<u32>(), any::<u8>(), any::<u64>(), any::<u8>()), 1..4),
        mem_sel in any::<u64>(),
        seed in any::<u64>(),
        cxl in any::<bool>(),
    ) {
        let topo = Topology::leaf_spine(LeafSpine::symmetric(2, 2, 3, 2));
        let proto = TopoEdm::default();
        let app = AppConfig {
            seed,
            transport: if cxl {
                AppTransport::CxlOe(CxlOeConfig::default())
            } else {
                AppTransport::Edm
            },
            ..AppConfig::new(
                decode_tenants(&tenant_specs, topo.nodes()),
                decode_memory(mem_sel, topo.nodes()),
            )
        };
        let a = proto.simulate_app(&topo, &app);
        let b = proto.simulate_app(&topo, &app);
        prop_assert_eq!(a, b);
    }
}
