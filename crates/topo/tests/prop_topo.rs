//! Property-based tests for the topology subsystem: every (src, dst)
//! pair routes over a valid path, hop counts match the tier structure,
//! and the 1-switch topology is bit-identical to the legacy single-switch
//! `EdmWorld` path.

use edm_core::sim::{ClusterConfig, EdmProtocol, FabricProtocol, Flow, FlowKind};
use edm_sim::Time;
use edm_topo::world::FlowStatus;
use edm_topo::{cluster_topology, Endpoint, LeafSpine, Route, TopoEdm, TopoEdmConfig, Topology};
use proptest::prelude::*;

/// Structural validity of one route: every hop's ports are in range, the
/// out link really connects hop k to hop k+1 (matching ports), the first
/// hop starts at the source's attachment, and the last hop's out link
/// reaches the destination node.
fn assert_route_valid(t: &Topology, src: usize, dst: usize, r: &Route) {
    assert_eq!(r.src_link, t.node_link(src), "hop 0 starts at the source");
    let (s_sw, s_port) = t.attach(src);
    assert_eq!((r.hops[0].switch, r.hops[0].in_port), (s_sw, s_port));
    for h in &r.hops {
        assert!(t.switch_up(h.switch), "route crosses a live switch");
        assert!((h.in_port as usize) < t.switch_ports(h.switch));
        assert!((h.out_port as usize) < t.switch_ports(h.switch));
        assert!(t.link(h.out_link).is_up(), "route crosses live links");
    }
    for w in r.hops.windows(2) {
        match t.link_far_end(w[0].out_link, w[0].switch) {
            Endpoint::Port { switch, port } => {
                assert_eq!(switch, w[1].switch, "links connect consecutive hops");
                assert_eq!(port, w[1].in_port, "far port is the next in_port");
            }
            Endpoint::Node(n) => panic!("mid-route link ends at node {n}"),
        }
    }
    let last = r.hops.last().unwrap();
    match t.link_far_end(last.out_link, last.switch) {
        Endpoint::Node(n) => assert_eq!(n as usize, dst, "route reaches dst"),
        other => panic!("route ends at {other:?}, not node {dst}"),
    }
}

proptest! {
    /// Leaf–spine fabrics of random shape: every ordered pair routes,
    /// same-leaf pairs in one hop, cross-leaf pairs in exactly three
    /// (leaf → spine → leaf), and every route is structurally valid.
    #[test]
    fn leaf_spine_routing_matches_tiers(
        leaves in 2usize..6,
        spines in 1usize..4,
        npl in 2usize..6,
        uplinks in 1usize..3,
        salt in any::<u64>(),
    ) {
        let t = Topology::leaf_spine(LeafSpine::symmetric(leaves, spines, npl, uplinks));
        let nodes = leaves * npl;
        for src in 0..nodes {
            for dst in 0..nodes {
                if src == dst {
                    continue;
                }
                let r = t.route(src, dst, salt).expect("healthy fabric routes all pairs");
                let same_leaf = src / npl == dst / npl;
                prop_assert_eq!(r.hops.len(), if same_leaf { 1 } else { 3 });
                assert_route_valid(&t, src, dst, &r);
            }
        }
    }

    /// Arbitrary connected adjacency: a random spanning path plus random
    /// extra trunks; all pairs must route over valid paths no longer than
    /// the switch count.
    #[test]
    fn arbitrary_adjacency_routes_all_pairs(
        switches in 2usize..7,
        attach_seed in any::<u64>(),
        extra in proptest::collection::vec((0u32..7, 0u32..7), 0..6),
        salt in any::<u64>(),
    ) {
        // One node per switch guarantees every switch is a leaf; a
        // spanning path guarantees connectivity.
        let attach: Vec<u32> = (0..switches as u32).collect();
        let mut trunks: Vec<(u32, u32)> = (1..switches as u32).map(|s| {
            // Each switch links to a pseudo-random earlier one: a tree.
            let parent = (attach_seed.wrapping_mul(0x9E37_79B9).wrapping_add(s as u64 * 7) % s as u64) as u32;
            (parent, s)
        }).collect();
        for &(a, b) in &extra {
            let (a, b) = (a % switches as u32, b % switches as u32);
            if a != b {
                trunks.push((a.min(b), a.max(b)));
            }
        }
        let t = Topology::from_adjacency(
            switches,
            &attach,
            &trunks,
            Default::default(),
            Default::default(),
        );
        for src in 0..switches {
            for dst in 0..switches {
                if src == dst {
                    continue;
                }
                let r = t.route(src, dst, salt).expect("connected graph routes all pairs");
                prop_assert!(r.hops.len() <= switches, "no loops");
                let expect_hops = t.switch_distance(attach[src], attach[dst]).unwrap() + 1;
                prop_assert_eq!(r.hops.len(), expect_hops, "route follows shortest paths");
                assert_route_valid(&t, src, dst, &r);
            }
        }
    }

    /// The degenerate 1-switch topology is bit-identical to the legacy
    /// single-switch simulator: same flows, exactly equal per-flow
    /// completion times — including the X-limit backlog and §3.1.2
    /// mega-batching paths.
    #[test]
    fn single_switch_bit_identical_to_legacy(
        specs in proptest::collection::vec(
            (0usize..8, 8usize..16, 1u32..4096, 0u64..10_000, any::<bool>()),
            1..40,
        ),
        batching in any::<bool>(),
        x in 1usize..5,
    ) {
        let cluster = ClusterConfig { nodes: 16, ..ClusterConfig::default() };
        let flows: Vec<Flow> = specs
            .iter()
            .enumerate()
            .map(|(id, &(src, dst, size, at, is_write))| Flow {
                id,
                src,
                dst,
                size,
                arrival: Time::from_ns(at),
                kind: if is_write { FlowKind::Write } else { FlowKind::Read },
            })
            .collect();
        let mut legacy = EdmProtocol {
            batch_small_messages: batching,
            max_active_per_pair: x,
            ..EdmProtocol::default()
        };
        let expect = legacy.simulate(&cluster, &flows);
        let got = TopoEdm::new(TopoEdmConfig::matching(&cluster, &legacy))
            .simulate(&cluster_topology(&cluster), &flows);
        prop_assert_eq!(got.outcomes.len(), expect.outcomes.len());
        for (a, b) in expect.outcomes.iter().zip(&got.outcomes) {
            prop_assert_eq!(
                FlowStatus::Delivered(a.completed),
                b.status,
                "flow {:?} diverged",
                a.flow
            );
        }
        prop_assert_eq!(got.reroutes, 0);
        prop_assert_eq!(got.failed(), 0);
    }

    /// ECMP determinism: the same (topology, flow, salt) always yields
    /// the same route, and routes never cross down elements.
    #[test]
    fn routing_is_deterministic_and_avoids_down_elements(
        kill_spine in 0usize..3,
        salt in any::<u64>(),
    ) {
        let mut t = Topology::leaf_spine(LeafSpine::symmetric(3, 3, 3, 2));
        let dead = (3 + kill_spine) as u32;
        t.set_switch_up(dead, false);
        for (src, dst) in [(0usize, 4usize), (1, 7), (8, 2)] {
            let a = t.route(src, dst, salt).expect("two spines remain");
            let b = t.route(src, dst, salt).unwrap();
            prop_assert_eq!(&a, &b, "same salt, same route");
            prop_assert!(!a.uses_switch(dead), "route avoids the dead spine");
            assert_route_valid(&t, src, dst, &a);
        }
    }
}
