//! The full grant engine (§3.1.1): demand notification queues, chunked
//! grants, timed busy release, and the FCFS/SRPT priority policies.
//!
//! Life of a message through the scheduler:
//!
//! 1. A sender announces demand ([`Scheduler::notify`]) — explicitly for
//!    writes (`/N/` block), implicitly for reads (the RREQ itself).
//! 2. At each [`Scheduler::poll`], the scheduler frees ports whose chunk
//!    timers expired, runs priority PIM over all eligible demand, and
//!    issues one [`Grant`] of up to `chunk_bytes` per matched pair.
//! 3. A granted port pair is *busy* for exactly `chunk/B` — the paper's
//!    step (7): releasing after the chunk's transmission time (not its
//!    arrival) keeps the pipe full despite propagation delay.
//! 4. When a message's remaining bytes reach zero it leaves the queue.

use crate::ordered_list::OrderedList;
use crate::pim::{self, PimConfig, PimRunner};
use edm_sim::{Bandwidth, Duration, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Scheduling priority policy (§3.1.1, property 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// First-come-first-serve: priority = notification time. Optimal for
    /// light-tailed workloads.
    Fcfs,
    /// Shortest remaining processing time: priority = remaining bytes.
    /// Optimal for heavy-tailed workloads. Applied only *across*
    /// source–destination pairs; messages within a pair stay in order.
    #[default]
    Srpt,
}

/// A demand notification: source port, destination port, message id, size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Notification {
    /// Source switch port.
    pub src: u16,
    /// Destination switch port.
    pub dest: u16,
    /// Message id (unique within the source–destination pair).
    pub msg_id: u8,
    /// Message size in bytes.
    pub size_bytes: u32,
}

impl Notification {
    /// Creates a notification.
    pub fn new(src: u16, dest: u16, msg_id: u8, size_bytes: u32) -> Self {
        Notification {
            src,
            dest,
            msg_id,
            size_bytes,
        }
    }
}

/// A grant: permission for `src` to send a chunk of message `msg_id`
/// toward `dest`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Source port being granted.
    pub src: u16,
    /// Destination port of the granted message.
    pub dest: u16,
    /// Message id of the granted message.
    pub msg_id: u8,
    /// Granted bytes (≤ configured chunk size).
    pub chunk_bytes: u32,
    /// Bytes remaining in the message *after* this chunk.
    pub remaining_after: u32,
    /// When the grant was issued.
    pub issued_at: Time,
}

impl Grant {
    /// Whether this grant completes its message.
    pub fn is_final(&self) -> bool {
        self.remaining_after == 0
    }
}

/// Why a notification was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotifyError {
    /// The source–destination pair already has X active notifications
    /// (§3.1.2: senders rate-limit to X per destination).
    PairLimitReached {
        /// The configured X.
        limit: usize,
    },
    /// A port index is out of range.
    BadPort {
        /// The offending port number.
        port: u16,
    },
    /// Zero-byte messages carry no demand.
    EmptyMessage,
}

impl fmt::Display for NotifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NotifyError::PairLimitReached { limit } => {
                write!(f, "pair already has {limit} active notifications")
            }
            NotifyError::BadPort { port } => write!(f, "port {port} out of range"),
            NotifyError::EmptyMessage => write!(f, "zero-byte message"),
        }
    }
}

impl std::error::Error for NotifyError {}

/// Outcome of a [`Scheduler::cancel`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The message's ungranted remainder was withdrawn (from the
    /// notification queue or the pair's waiting FIFO) and its admission
    /// slot freed.
    Cancelled {
        /// Bytes that will now never be granted.
        remaining: u32,
    },
    /// No queued or waiting message matched — it was already fully
    /// granted (or never notified).
    NotQueued,
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Number of switch ports.
    pub ports: usize,
    /// Maximum chunk size in bytes (§3.1.3 sets 128 B minimum for a
    /// 512×100G switch; the evaluation uses 256 B).
    pub chunk_bytes: u32,
    /// Link bandwidth (used for the busy-release timer `chunk/B`).
    pub link: Bandwidth,
    /// Priority policy.
    pub policy: Policy,
    /// X — max active notifications per source–destination pair (§3.1.2;
    /// the evaluation found X=3 works best).
    pub max_active_per_pair: usize,
    /// Scheduler pipeline clock period (ASIC: 1/3 ns).
    pub clock: Duration,
}

impl SchedulerConfig {
    /// The evaluation-section defaults for an `n`-port switch:
    /// 100 Gb/s links, 256 B chunks, SRPT, X=3, 3 GHz clock.
    pub fn default_for_ports(n: usize) -> Self {
        SchedulerConfig {
            ports: n,
            chunk_bytes: 256,
            link: Bandwidth::from_gbps(100),
            policy: Policy::Srpt,
            max_active_per_pair: 3,
            clock: crate::ASIC_CLOCK,
        }
    }
}

/// A queued message inside a notification queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueuedMsg {
    src: u16,
    msg_id: u8,
    remaining: u32,
    notified_at: Time,
}

/// Result of one [`Scheduler::poll`].
#[derive(Debug, Clone, Default)]
pub struct PollResult {
    /// Grants issued by this poll (one per matched port pair).
    pub grants: Vec<Grant>,
    /// PIM iterations this poll used.
    pub pim_iterations: usize,
    /// The matching latency this poll would take in hardware.
    pub sched_latency: Duration,
    /// Earliest future time at which polling again can make progress
    /// (next busy-timer expiry), if demand remains.
    pub next_wakeup: Option<Time>,
}

/// EDM's centralized in-network scheduler.
pub struct Scheduler {
    config: SchedulerConfig,
    /// Per-destination notification queues, priority-keyed per policy.
    queues: Vec<OrderedList<QueuedMsg>>,
    /// Per-port TX busy-until (source role; host uplink).
    src_busy_until: Vec<Time>,
    /// Per-port RX busy-until (destination role; host downlink).
    dst_busy_until: Vec<Time>,
    /// Per-pair admission state, packed into one word per pair: bits
    /// 0..32 the active-notification count (X bound), bit 32 whether the
    /// pair's head message is in a notification queue (in-order delivery,
    /// §3.1.1 property 5). `vec![0u64]` stays a calloc, so untouched
    /// pairs cost nothing at any port count.
    pair_adm: Vec<u64>,
    /// Per-pair waiting-FIFO endpoints, packed head (low 32) / tail
    /// (high 32), both wait-slab index + 1 with 0 = empty.
    pair_wait: Vec<u64>,
    /// Same-pair messages waiting behind their head, linked per pair.
    wait_slab: Vec<WaitNode>,
    /// Free-list head into `wait_slab` (index + 1; 0 = none).
    wait_free: u32,
    pim: PimRunner,
    /// Total grants issued (stats).
    grants_issued: u64,
    /// Total bytes granted (stats).
    bytes_granted: u64,
    /// Reusable demand-snapshot buffers (avoids per-poll allocation).
    demand_scratch: Vec<Vec<(u64, usize)>>,
    /// Whether a destination's queue changed since its snapshot was last
    /// rebuilt. Wake-up polls mostly observe unchanged queues, so the
    /// snapshot survives across rounds instead of being re-walked.
    row_dirty: Vec<bool>,
    /// Destinations with a non-empty notification queue, maintained
    /// incrementally so `poll` visits only ports with live demand.
    active_dests: Vec<u32>,
    /// Position of each destination in `active_dests` (`NOT_ACTIVE` when
    /// its queue is empty).
    dest_active_pos: Vec<u32>,
    /// Running count of queued messages (= Σ queue lengths).
    pending: usize,
    /// Busy-timer expiries of issued grants (src and dst share one entry);
    /// stale entries are discarded lazily. Replaces the O(2·ports)
    /// `next_wakeup` scan.
    busy_expiry: BinaryHeap<Reverse<Time>>,
    /// Scratch: destinations eligible for PIM this round.
    pim_dests: Vec<usize>,
    /// Scratch: matched pairs from the last PIM run.
    pairs_scratch: Vec<(usize, usize)>,
}

/// Sentinel for "destination not in the active list".
const NOT_ACTIVE: u32 = u32::MAX;

/// Bit 32 of a `pair_adm` word: the pair's head message is queued.
const HEAD_IN_QUEUE: u64 = 1 << 32;

/// A same-pair message waiting behind its pair's queued head.
#[derive(Debug, Clone, Copy)]
struct WaitNode {
    msg: QueuedMsg,
    /// Next waiter of the same pair, or next free slot when on the free
    /// list (slab index + 1; 0 = none).
    next: u32,
}

/// Demand-row depth offered to PIM per destination. The hardware presents
/// the whole queue in parallel; in the software model a deep row only
/// matters when more than this many distinct sources contend for one
/// destination *and* all earlier ones are busy — beyond any realistic
/// matching fallback depth.
const PIM_ROW_DEPTH: usize = 64;

impl fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler")
            .field("ports", &self.config.ports)
            .field("pending", &self.pending_messages())
            .field("grants_issued", &self.grants_issued)
            .finish()
    }
}

impl Scheduler {
    /// Creates a scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `config.ports` is zero or `chunk_bytes` is zero.
    pub fn new(config: SchedulerConfig) -> Self {
        assert!(config.ports > 0, "need at least one port");
        assert!(config.chunk_bytes > 0, "chunk size must be positive");
        Scheduler {
            queues: (0..config.ports).map(|_| OrderedList::new()).collect(),
            src_busy_until: vec![Time::ZERO; config.ports],
            dst_busy_until: vec![Time::ZERO; config.ports],
            pair_adm: vec![0; config.ports * config.ports],
            pair_wait: vec![0; config.ports * config.ports],
            wait_slab: Vec::new(),
            wait_free: 0,
            pim: PimRunner::new(PimConfig::for_ports(config.ports)),
            demand_scratch: (0..config.ports).map(|_| Vec::new()).collect(),
            row_dirty: vec![false; config.ports],
            active_dests: Vec::new(),
            dest_active_pos: vec![NOT_ACTIVE; config.ports],
            pending: 0,
            busy_expiry: BinaryHeap::new(),
            pim_dests: Vec::new(),
            pairs_scratch: Vec::new(),
            config,
            grants_issued: 0,
            bytes_granted: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Messages currently queued across all destinations. O(1): a running
    /// counter replaces the former O(ports) sum.
    pub fn pending_messages(&self) -> usize {
        self.pending
    }

    /// Total grants issued so far.
    pub fn grants_issued(&self) -> u64 {
        self.grants_issued
    }

    /// Total bytes granted so far.
    pub fn bytes_granted(&self) -> u64 {
        self.bytes_granted
    }

    /// Active notifications for a (src, dest) pair.
    pub fn active_for_pair(&self, src: u16, dest: u16) -> usize {
        (self.pair_adm[self.pair_idx(src, dest)] as u32) as usize
    }

    /// Whether a port's TX (source role) is free at `now`.
    pub fn src_port_free(&self, port: u16, now: Time) -> bool {
        self.src_busy_until[port as usize] <= now
    }

    /// Whether a port's RX (destination role) is free at `now`.
    pub fn dst_port_free(&self, port: u16, now: Time) -> bool {
        self.dst_busy_until[port as usize] <= now
    }

    fn pair_idx(&self, src: u16, dest: u16) -> usize {
        src as usize * self.config.ports + dest as usize
    }

    fn priority_key(&self, msg: &QueuedMsg) -> u64 {
        match self.config.policy {
            Policy::Fcfs => msg.notified_at.as_ps(),
            Policy::Srpt => msg.remaining as u64,
        }
    }

    /// Inserts into a destination queue, keeping the active-dest list and
    /// the pending counter in sync.
    fn queue_insert(&mut self, dest: usize, key: u64, msg: QueuedMsg) {
        if self.queues[dest].is_empty() {
            debug_assert_eq!(self.dest_active_pos[dest], NOT_ACTIVE);
            self.dest_active_pos[dest] = self.active_dests.len() as u32;
            self.active_dests.push(dest as u32);
        }
        self.queues[dest].insert(key, msg);
        self.row_dirty[dest] = true;
        self.pending += 1;
    }

    /// Appends a message to its pair's waiting FIFO.
    fn push_waiting(&mut self, pair: usize, msg: QueuedMsg) {
        let node = WaitNode { msg, next: 0 };
        let slot = if self.wait_free != 0 {
            let i = (self.wait_free - 1) as usize;
            self.wait_free = self.wait_slab[i].next;
            self.wait_slab[i] = node;
            i as u32 + 1
        } else {
            self.wait_slab.push(node);
            self.wait_slab.len() as u32
        };
        let w = self.pair_wait[pair];
        let (head, tail) = (w as u32, (w >> 32) as u32);
        if head == 0 {
            self.pair_wait[pair] = slot as u64 | (slot as u64) << 32;
        } else {
            self.wait_slab[(tail - 1) as usize].next = slot;
            self.pair_wait[pair] = head as u64 | (slot as u64) << 32;
        }
    }

    /// Pops the oldest waiting message of a pair, if any.
    fn pop_waiting(&mut self, pair: usize) -> Option<QueuedMsg> {
        let w = self.pair_wait[pair];
        let head = w as u32;
        if head == 0 {
            return None;
        }
        let i = (head - 1) as usize;
        let node = self.wait_slab[i];
        self.pair_wait[pair] = if node.next == 0 {
            0
        } else {
            node.next as u64 | (w & 0xFFFF_FFFF_0000_0000)
        };
        self.wait_slab[i].next = self.wait_free;
        self.wait_free = head;
        Some(node.msg)
    }

    /// Drops a destination from the active list once its queue drains.
    fn deactivate_if_empty(&mut self, dest: usize) {
        if !self.queues[dest].is_empty() {
            return;
        }
        let pos = self.dest_active_pos[dest] as usize;
        debug_assert_eq!(self.active_dests[pos], dest as u32);
        self.active_dests.swap_remove(pos);
        if let Some(&moved) = self.active_dests.get(pos) {
            self.dest_active_pos[moved as usize] = pos as u32;
        }
        self.dest_active_pos[dest] = NOT_ACTIVE;
    }

    /// Registers demand for a message (§3.1.1, "Notification").
    ///
    /// # Errors
    ///
    /// Rejects out-of-range ports, zero-size messages, and notifications
    /// beyond the per-pair X bound.
    pub fn notify(&mut self, now: Time, n: Notification) -> Result<(), NotifyError> {
        self.notify_with_limit(now, n, self.config.max_active_per_pair)
    }

    /// [`Scheduler::notify`] with an explicit per-pair X bound for *this*
    /// pair, overriding `config.max_active_per_pair`.
    ///
    /// Multi-switch fabrics need this: an inter-switch trunk pair
    /// aggregates many end-to-end flows, so it is provisioned with a
    /// larger notification-queue share than a single host pair (the
    /// queue bound stays X·N entries — the caller picks how X is split).
    ///
    /// # Errors
    ///
    /// Same as [`Scheduler::notify`], with `limit` as the X bound.
    pub fn notify_with_limit(
        &mut self,
        now: Time,
        n: Notification,
        limit: usize,
    ) -> Result<(), NotifyError> {
        if n.src as usize >= self.config.ports {
            return Err(NotifyError::BadPort { port: n.src });
        }
        if n.dest as usize >= self.config.ports {
            return Err(NotifyError::BadPort { port: n.dest });
        }
        if n.size_bytes == 0 {
            return Err(NotifyError::EmptyMessage);
        }
        let idx = self.pair_idx(n.src, n.dest);
        if (self.pair_adm[idx] as u32) as usize >= limit {
            return Err(NotifyError::PairLimitReached { limit });
        }
        self.pair_adm[idx] += 1;
        let msg = QueuedMsg {
            src: n.src,
            msg_id: n.msg_id,
            remaining: n.size_bytes,
            notified_at: now,
        };
        if self.pair_adm[idx] & HEAD_IN_QUEUE != 0 {
            // In-order within a pair: wait behind the current head.
            self.push_waiting(idx, msg);
        } else {
            self.pair_adm[idx] |= HEAD_IN_QUEUE;
            let key = self.priority_key(&msg);
            self.queue_insert(n.dest as usize, key, msg);
        }
        Ok(())
    }

    /// Withdraws a message's *ungranted* remainder (sender-side demand
    /// revocation).
    ///
    /// This is the recovery primitive multi-switch fabrics need: when a
    /// flow is rerouted off a dead path, its stale notification would
    /// otherwise keep drawing grants and draining the whole remainder
    /// into the failure as blackholed bandwidth. Cancelling removes the
    /// message from wherever it queues — the destination's notification
    /// queue (possibly mid-message, after some chunks were granted) or
    /// the pair's in-order waiting FIFO — frees its admission slot, and
    /// leaves already-granted chunks untouched (they are in flight; the
    /// caller models their fate).
    ///
    /// Returns [`CancelOutcome::NotQueued`] when no matching message is
    /// queued or waiting — it was fully granted or never notified.
    pub fn cancel(&mut self, src: u16, dest: u16, msg_id: u8) -> CancelOutcome {
        if src as usize >= self.config.ports || dest as usize >= self.config.ports {
            return CancelOutcome::NotQueued;
        }
        let idx = self.pair_idx(src, dest);
        let d = dest as usize;
        // Only the pair's head message can be in the notification queue.
        if self.pair_adm[idx] & HEAD_IN_QUEUE != 0 {
            if let Some((_, msg)) =
                self.queues[d].remove_first(|m| m.src == src && m.msg_id == msg_id)
            {
                self.row_dirty[d] = true;
                self.pending -= 1;
                self.pair_adm[idx] -= 1;
                // Promote the pair's next waiter (same as a completion).
                match self.pop_waiting(idx) {
                    Some(next) => {
                        let key = self.priority_key(&next);
                        self.queues[d].insert(key, next);
                        self.pending += 1;
                    }
                    None => self.pair_adm[idx] &= !HEAD_IN_QUEUE,
                }
                self.deactivate_if_empty(d);
                return CancelOutcome::Cancelled {
                    remaining: msg.remaining,
                };
            }
        }
        // Not the head: search the pair's waiting FIFO.
        let w = self.pair_wait[idx];
        let (head, tail) = (w as u32, (w >> 32) as u32);
        let mut prev: u32 = 0;
        let mut cur = head;
        while cur != 0 {
            let i = (cur - 1) as usize;
            let node = self.wait_slab[i];
            if node.msg.src == src && node.msg.msg_id == msg_id {
                // Unlink from the pair FIFO and recycle the slab node.
                if prev == 0 {
                    self.pair_wait[idx] = if node.next == 0 {
                        0
                    } else {
                        node.next as u64 | (tail as u64) << 32
                    };
                } else {
                    self.wait_slab[(prev - 1) as usize].next = node.next;
                    let new_tail = if cur == tail { prev } else { tail };
                    self.pair_wait[idx] = head as u64 | (new_tail as u64) << 32;
                }
                self.wait_slab[i].next = self.wait_free;
                self.wait_free = cur;
                self.pair_adm[idx] -= 1;
                return CancelOutcome::Cancelled {
                    remaining: node.msg.remaining,
                };
            }
            prev = cur;
            cur = node.next;
        }
        CancelOutcome::NotQueued
    }

    /// Runs one scheduling round at time `now` (§3.1.1, "Grant").
    pub fn poll(&mut self, now: Time) -> PollResult {
        let mut out = PollResult::default();
        self.poll_into(now, &mut out);
        out
    }

    /// [`Scheduler::poll`] into a caller-owned result, reusing its grant
    /// buffer — the allocation-free form the simulator hot loop uses.
    ///
    /// Work is proportional to the *active* demand (destinations with
    /// queued notifications), not the port count, mirroring the hardware:
    /// the switch only touches ports with queued notifications (§3.1.2).
    pub fn poll_into(&mut self, now: Time, out: &mut PollResult) {
        out.grants.clear();

        // Destinations eligible this round: live demand and a free RX
        // port. Sorted so the matching is bit-identical to a dense scan.
        self.pim_dests.clear();
        for &d in &self.active_dests {
            if self.dst_busy_until[d as usize] <= now {
                self.pim_dests.push(d as usize);
            }
        }
        self.pim_dests.sort_unstable();

        // Refresh demand snapshots only for eligible destinations whose
        // queue changed since the last rebuild (rows of inactive dests are
        // stale but never read by PIM; clean rows are byte-identical to a
        // fresh walk).
        for &d in &self.pim_dests {
            if !self.row_dirty[d] {
                continue;
            }
            self.row_dirty[d] = false;
            let row = &mut self.demand_scratch[d];
            row.clear();
            row.extend(
                self.queues[d]
                    .iter()
                    .map(|(k, m)| (k, m.src as usize))
                    .take(PIM_ROW_DEPTH),
            );
        }

        let src_busy_until = &self.src_busy_until;
        let outcome = self.pim.run_sparse(
            &self.pim_dests,
            &self.demand_scratch,
            |s| src_busy_until[s] <= now,
            &mut self.pairs_scratch,
        );

        let pairs = std::mem::take(&mut self.pairs_scratch);
        out.grants.reserve(pairs.len());
        for &(s, d) in &pairs {
            // Take the highest-priority message s->d from d's queue.
            let (_, mut msg) = self.queues[d]
                .remove_first(|m| m.src as usize == s)
                .expect("PIM matched an edge that must exist in the queue");
            self.row_dirty[d] = true;
            self.pending -= 1;
            let l = msg.remaining.min(self.config.chunk_bytes);
            msg.remaining -= l;
            let remaining_after = msg.remaining;
            if msg.remaining > 0 {
                let key = self.priority_key(&msg);
                self.queues[d].insert(key, msg);
                self.pending += 1;
            } else {
                let idx = self.pair_idx(msg.src, d as u16);
                self.pair_adm[idx] -= 1;
                // The head finished: promote the pair's next message.
                match self.pop_waiting(idx) {
                    Some(next) => {
                        let key = self.priority_key(&next);
                        self.queues[d].insert(key, next);
                        self.pending += 1;
                    }
                    None => self.pair_adm[idx] &= !HEAD_IN_QUEUE,
                }
            }
            self.deactivate_if_empty(d);
            // Busy for the chunk's transmission time (step 7).
            let busy = self.config.link.tx_time_bytes(l as u64);
            let until = now + busy;
            self.src_busy_until[s] = until;
            self.dst_busy_until[d] = until;
            self.busy_expiry.push(Reverse(until));
            self.grants_issued += 1;
            self.bytes_granted += l as u64;
            out.grants.push(Grant {
                src: s as u16,
                dest: d as u16,
                msg_id: msg.msg_id,
                chunk_bytes: l,
                remaining_after,
                issued_at: now,
            });
        }
        self.pairs_scratch = pairs;

        // Next wakeup: earliest busy expiry strictly after now, but only if
        // demand remains. Expired entries are discarded lazily; an entry
        // still in the future always equals its port's live busy-until,
        // because a port is only re-granted after its previous expiry.
        while let Some(&Reverse(t)) = self.busy_expiry.peek() {
            if t <= now {
                self.busy_expiry.pop();
            } else {
                break;
            }
        }
        out.next_wakeup = if self.pending > 0 {
            self.busy_expiry.peek().map(|&Reverse(t)| t)
        } else {
            None
        };
        out.pim_iterations = outcome.iterations;
        out.sched_latency = Duration::from_ps(outcome.cycles * self.config.clock.as_ps());
    }

    /// The average-case matching latency for this configuration (§3.1.3).
    pub fn nominal_sched_latency(&self) -> Duration {
        pim::scheduling_latency(self.config.ports, self.config.clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(ports: usize, chunk: u32, policy: Policy) -> Scheduler {
        Scheduler::new(SchedulerConfig {
            ports,
            chunk_bytes: chunk,
            link: Bandwidth::from_gbps(100),
            policy,
            max_active_per_pair: 3,
            clock: crate::ASIC_CLOCK,
        })
    }

    #[test]
    fn single_message_single_chunk() {
        let mut s = sched(4, 256, Policy::Srpt);
        s.notify(Time::ZERO, Notification::new(0, 1, 7, 200))
            .unwrap();
        let r = s.poll(Time::ZERO);
        assert_eq!(r.grants.len(), 1);
        let g = r.grants[0];
        assert_eq!((g.src, g.dest, g.msg_id), (0, 1, 7));
        assert_eq!(g.chunk_bytes, 200);
        assert!(g.is_final());
        assert_eq!(s.pending_messages(), 0);
    }

    #[test]
    fn multi_chunk_message_conserves_bytes() {
        let mut s = sched(4, 256, Policy::Srpt);
        s.notify(Time::ZERO, Notification::new(0, 1, 0, 1000))
            .unwrap();
        let mut granted = 0u64;
        let mut now = Time::ZERO;
        let mut polls = 0;
        while s.pending_messages() > 0 || granted < 1000 {
            let r = s.poll(now);
            for g in &r.grants {
                granted += g.chunk_bytes as u64;
                assert!(g.chunk_bytes <= 256);
            }
            match r.next_wakeup {
                Some(t) => now = t,
                None => break,
            }
            polls += 1;
            assert!(polls < 100, "did not converge");
        }
        assert_eq!(granted, 1000);
        assert_eq!(s.bytes_granted(), 1000);
        // 1000 B in 256 B chunks = 4 grants.
        assert_eq!(s.grants_issued(), 4);
    }

    #[test]
    fn busy_release_is_back_to_back() {
        // Grants for consecutive chunks must be spaced exactly l/B apart.
        let mut s = sched(2, 256, Policy::Fcfs);
        s.notify(Time::ZERO, Notification::new(0, 1, 0, 512))
            .unwrap();
        let r1 = s.poll(Time::ZERO);
        assert_eq!(r1.grants.len(), 1);
        let gap = s.config().link.tx_time_bytes(256);
        assert_eq!(r1.next_wakeup, Some(Time::ZERO + gap));
        // Polling too early yields nothing.
        let r_early = s.poll(Time::ZERO + Duration::from_ps(1));
        assert!(r_early.grants.is_empty());
        let r2 = s.poll(Time::ZERO + gap);
        assert_eq!(r2.grants.len(), 1);
        assert_eq!(r2.grants[0].issued_at, Time::ZERO + gap);
    }

    #[test]
    fn no_receiver_sharing() {
        // Two sources to one destination: only one granted per round.
        let mut s = sched(4, 64, Policy::Fcfs);
        s.notify(Time::from_ns(1), Notification::new(0, 2, 0, 64))
            .unwrap();
        s.notify(Time::from_ns(2), Notification::new(1, 2, 0, 64))
            .unwrap();
        let r = s.poll(Time::from_ns(2));
        assert_eq!(r.grants.len(), 1);
        // FCFS: the earlier notification wins.
        assert_eq!(r.grants[0].src, 0);
    }

    #[test]
    fn srpt_prefers_short_messages() {
        let mut s = sched(4, 64, Policy::Srpt);
        s.notify(Time::ZERO, Notification::new(0, 2, 0, 4096))
            .unwrap();
        s.notify(Time::ZERO, Notification::new(1, 2, 0, 64))
            .unwrap();
        let r = s.poll(Time::ZERO);
        assert_eq!(r.grants.len(), 1);
        assert_eq!(r.grants[0].src, 1, "SRPT must pick the 64 B message");
    }

    #[test]
    fn fcfs_is_arrival_ordered() {
        let mut s = sched(4, 64, Policy::Fcfs);
        s.notify(Time::from_ns(5), Notification::new(0, 2, 0, 4096))
            .unwrap();
        s.notify(Time::from_ns(9), Notification::new(1, 2, 0, 64))
            .unwrap();
        let r = s.poll(Time::from_ns(10));
        assert_eq!(r.grants[0].src, 0, "FCFS must pick the earlier arrival");
    }

    #[test]
    fn parallel_pairs_granted_together() {
        let mut s = sched(4, 256, Policy::Srpt);
        s.notify(Time::ZERO, Notification::new(0, 1, 0, 100))
            .unwrap();
        s.notify(Time::ZERO, Notification::new(2, 3, 0, 100))
            .unwrap();
        let r = s.poll(Time::ZERO);
        assert_eq!(r.grants.len(), 2, "disjoint pairs must match in parallel");
    }

    #[test]
    fn pair_limit_enforced() {
        let mut s = sched(4, 256, Policy::Srpt);
        for i in 0..3 {
            s.notify(Time::ZERO, Notification::new(0, 1, i, 64))
                .unwrap();
        }
        assert_eq!(
            s.notify(Time::ZERO, Notification::new(0, 1, 3, 64)),
            Err(NotifyError::PairLimitReached { limit: 3 })
        );
        // Other pairs unaffected.
        s.notify(Time::ZERO, Notification::new(0, 2, 0, 64))
            .unwrap();
        assert_eq!(s.active_for_pair(0, 1), 3);
        assert_eq!(s.active_for_pair(0, 2), 1);
    }

    #[test]
    fn pair_slot_freed_on_completion() {
        let mut s = sched(4, 256, Policy::Srpt);
        for i in 0..3 {
            s.notify(Time::ZERO, Notification::new(0, 1, i, 64))
                .unwrap();
        }
        let mut now = Time::ZERO;
        for _ in 0..3 {
            let r = s.poll(now);
            if let Some(t) = r.next_wakeup {
                now = t;
            }
        }
        assert!(s.active_for_pair(0, 1) < 3);
        assert!(s.notify(now, Notification::new(0, 1, 9, 64)).is_ok());
    }

    #[test]
    fn per_pair_limit_override() {
        // A trunk pair provisioned with X=5 admits past the config's X=3;
        // pairs using the plain entry point keep the configured bound.
        let mut s = sched(4, 256, Policy::Srpt);
        for i in 0..5 {
            s.notify_with_limit(Time::ZERO, Notification::new(0, 1, i, 64), 5)
                .unwrap();
        }
        assert_eq!(
            s.notify_with_limit(Time::ZERO, Notification::new(0, 1, 5, 64), 5),
            Err(NotifyError::PairLimitReached { limit: 5 })
        );
        for i in 0..3 {
            s.notify(Time::ZERO, Notification::new(2, 3, i, 64))
                .unwrap();
        }
        assert_eq!(
            s.notify(Time::ZERO, Notification::new(2, 3, 3, 64)),
            Err(NotifyError::PairLimitReached { limit: 3 })
        );
        assert_eq!(s.active_for_pair(0, 1), 5);
    }

    #[test]
    fn validation_errors() {
        let mut s = sched(4, 256, Policy::Srpt);
        assert_eq!(
            s.notify(Time::ZERO, Notification::new(4, 0, 0, 1)),
            Err(NotifyError::BadPort { port: 4 })
        );
        assert_eq!(
            s.notify(Time::ZERO, Notification::new(0, 9, 0, 1)),
            Err(NotifyError::BadPort { port: 9 })
        );
        assert_eq!(
            s.notify(Time::ZERO, Notification::new(0, 1, 0, 0)),
            Err(NotifyError::EmptyMessage)
        );
    }

    #[test]
    fn in_order_within_pair_under_srpt() {
        // §3.1.1 property 5: SRPT applies across pairs; within a pair the
        // scheduler must preserve order. Model: two messages of one pair,
        // the second smaller. Because the pair queue uses remaining bytes,
        // a naive SRPT would reorder; EDM guards by granting the pair's
        // messages in notification order. Our implementation achieves this
        // because only one message per pair can be in flight per round and
        // the smaller one is only preferred across different pairs.
        let mut s = sched(4, 64, Policy::Srpt);
        s.notify(Time::ZERO, Notification::new(0, 1, 0, 64))
            .unwrap();
        s.notify(Time::ZERO, Notification::new(0, 1, 1, 32))
            .unwrap();
        let r = s.poll(Time::ZERO);
        assert_eq!(r.grants.len(), 1);
        // Both candidates are from the same pair; grant must not starve
        // either, and bytes must conserve overall.
        let first = r.grants[0].msg_id;
        let mut now = r.next_wakeup.unwrap();
        let mut ids = vec![first];
        loop {
            let r = s.poll(now);
            ids.extend(r.grants.iter().map(|g| g.msg_id));
            match r.next_wakeup {
                Some(t) => now = t,
                None => break,
            }
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids, vec![0, 1], "both messages eventually granted");
    }

    #[test]
    fn cancel_withdraws_queued_remainder() {
        let mut s = sched(4, 256, Policy::Srpt);
        s.notify(Time::ZERO, Notification::new(0, 1, 7, 1000))
            .unwrap();
        // One chunk granted, 744 B remain queued.
        let r = s.poll(Time::ZERO);
        assert_eq!(r.grants.len(), 1);
        assert_eq!(
            s.cancel(0, 1, 7),
            CancelOutcome::Cancelled { remaining: 744 }
        );
        assert_eq!(s.pending_messages(), 0);
        assert_eq!(s.active_for_pair(0, 1), 0);
        // The admission slot is free again.
        s.notify(Time::ZERO, Notification::new(0, 1, 8, 64))
            .unwrap();
        assert_eq!(s.active_for_pair(0, 1), 1);
        // Cancelling again finds nothing.
        assert_eq!(s.cancel(0, 1, 7), CancelOutcome::NotQueued);
    }

    #[test]
    fn cancel_promotes_the_pair_waiter() {
        let mut s = sched(4, 64, Policy::Fcfs);
        s.notify(Time::from_ns(1), Notification::new(0, 1, 0, 64))
            .unwrap();
        s.notify(Time::from_ns(2), Notification::new(0, 1, 1, 64))
            .unwrap();
        // Cancel the queued head: the waiter must take its place and be
        // granted next.
        assert_eq!(
            s.cancel(0, 1, 0),
            CancelOutcome::Cancelled { remaining: 64 }
        );
        assert_eq!(s.pending_messages(), 1);
        let r = s.poll(Time::from_ns(2));
        assert_eq!(r.grants.len(), 1);
        assert_eq!(r.grants[0].msg_id, 1);
    }

    #[test]
    fn cancel_unlinks_a_mid_fifo_waiter() {
        let mut s = sched(4, 64, Policy::Fcfs);
        for i in 0..3 {
            s.notify(Time::from_ns(i as u64), Notification::new(0, 1, i, 64))
                .unwrap();
        }
        // msg 1 waits behind the head; cancel it specifically.
        assert_eq!(
            s.cancel(0, 1, 1),
            CancelOutcome::Cancelled { remaining: 64 }
        );
        assert_eq!(s.active_for_pair(0, 1), 2);
        // Remaining messages grant in order 0 then 2, skipping 1.
        let mut ids = Vec::new();
        let mut now = Time::from_ns(3);
        for _ in 0..4 {
            let r = s.poll(now);
            ids.extend(r.grants.iter().map(|g| g.msg_id));
            match r.next_wakeup {
                Some(t) => now = t,
                None => break,
            }
        }
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn cancel_rejects_unknown_targets() {
        let mut s = sched(4, 256, Policy::Srpt);
        assert_eq!(s.cancel(9, 0, 0), CancelOutcome::NotQueued);
        assert_eq!(s.cancel(0, 1, 3), CancelOutcome::NotQueued);
        // Fully granted message: nothing left to withdraw.
        s.notify(Time::ZERO, Notification::new(0, 1, 0, 64))
            .unwrap();
        let r = s.poll(Time::ZERO);
        assert!(r.grants[0].is_final());
        assert_eq!(s.cancel(0, 1, 0), CancelOutcome::NotQueued);
    }

    #[test]
    fn nominal_latency_reported() {
        let s = sched(512, 256, Policy::Srpt);
        assert!((s.nominal_sched_latency().as_ns_f64() - 9.0).abs() < 0.1);
    }

    #[test]
    fn poll_reports_pim_cost() {
        let mut s = sched(8, 256, Policy::Srpt);
        s.notify(Time::ZERO, Notification::new(0, 1, 0, 64))
            .unwrap();
        let r = s.poll(Time::ZERO);
        assert!(r.pim_iterations >= 1);
        assert_eq!(
            r.sched_latency.as_ps(),
            r.pim_iterations as u64 * 3 * crate::ASIC_CLOCK.as_ps()
        );
    }
}
