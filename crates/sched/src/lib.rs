//! `edm-sched` — EDM's centralized in-network memory-traffic scheduler
//! (§3.1 of the paper).
//!
//! The scheduler lives in the PHY of the Ethernet switch. Senders announce
//! demand (explicitly with `/N/` blocks for writes, implicitly via the read
//! request itself for reads), and the scheduler runs a **priority-augmented
//! Parallel Iterative Matching (PIM)** over the demand to issue grants that
//! create contention-free virtual circuits: at most one sender transmits to
//! any receiver at a time, so the switch needs no queues and no layer-2
//! processing on the memory path.
//!
//! The crate models both the *algorithm* and the *hardware pipeline* that
//! makes it run at line rate:
//!
//! * [`ordered_list`] — the constant-time hardware ordered-list structure
//!   (2-cycle pipelined insert/delete, 1-cycle peek) used for the demand
//!   notification queues;
//! * [`priority_encoder`] — the 1-cycle most-significant-bit resolver used
//!   to pick the highest-priority matching request per source port;
//! * [`pim`] — priority PIM: each iteration completes in exactly 3 clock
//!   cycles, and a maximal matching takes ~log2(N) iterations on average;
//! * [`scheduler`] — the full grant engine: per-destination notification
//!   queues bounded to X·N entries, chunked grants, and the timed busy
//!   release (a port is re-eligible `chunk/B` after its grant, §3.1.1
//!   step 7) that keeps links saturated despite propagation delay.
//!
//! # Example
//!
//! ```
//! use edm_sched::scheduler::{Scheduler, SchedulerConfig, Notification};
//! use edm_sim::Time;
//!
//! let mut s = Scheduler::new(SchedulerConfig::default_for_ports(4));
//! s.notify(Time::ZERO, Notification::new(0, 1, 0, 256)).unwrap();
//! let grants = s.poll(Time::ZERO).grants;
//! assert_eq!(grants.len(), 1);
//! assert_eq!(grants[0].chunk_bytes, 256); // fits in one chunk
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ordered_list;
pub mod pim;
pub mod priority_encoder;
pub mod scheduler;

pub use ordered_list::OrderedList;
pub use pim::{Matching, PimConfig, PimRunner, SparseOutcome};
pub use priority_encoder::PriorityEncoder;
pub use scheduler::{
    CancelOutcome, Grant, Notification, NotifyError, Policy, PollResult, Scheduler, SchedulerConfig,
};

/// The scheduler pipeline's clock period on the projected ASIC: 3 GHz
/// (§4.1), i.e. one cycle every 1/3 ns. We round to exact picoseconds.
pub const ASIC_CLOCK: edm_sim::Duration = edm_sim::Duration::from_ps(333);
