//! Priority-augmented Parallel Iterative Matching (§3.1.2).
//!
//! Classic PIM \[Anderson et al., TOCS'93\] forms a maximal bipartite
//! matching between input and output ports iteratively: unmatched outputs
//! propose, inputs resolve conflicts, matched pairs drop out. EDM extends
//! it with *priorities* — conflicts resolve in favour of the
//! highest-priority message — and implements each iteration in exactly
//! **3 clock cycles**:
//!
//! 1. each destination port picks its highest-priority eligible message
//!    (1 cycle — notification queue head lookup);
//! 2. each source port resolves the contending requests with a priority
//!    encoder over its sorted destination array (1 cycle);
//! 3. matched ports are marked busy (1 cycle).
//!
//! A maximal matching takes ~log2(N) iterations on average (§3.1.3), giving
//! a scheduling latency of `3·log2(N)/R` at clock rate `R`.

use crate::priority_encoder::PriorityEncoder;

/// Cycles per PIM iteration (fixed by the hardware pipeline design).
pub const CYCLES_PER_ITERATION: u64 = 3;

/// PIM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PimConfig {
    /// Number of switch ports (both sides of the bipartite graph).
    pub ports: usize,
    /// Iteration cap. `None` runs until no iteration adds a match, which
    /// is the maximal matching the grant loop needs.
    pub max_iterations: Option<usize>,
}

impl PimConfig {
    /// Configuration for an `n`-port switch, iterating to maximality.
    pub fn for_ports(n: usize) -> Self {
        PimConfig {
            ports: n,
            max_iterations: None,
        }
    }
}

/// The result of one PIM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// Matched `(source, destination)` port pairs.
    pub pairs: Vec<(usize, usize)>,
    /// Iterations executed.
    pub iterations: usize,
    /// Hardware cycles consumed (`3 × iterations`).
    pub cycles: u64,
}

impl Matching {
    /// Whether `src` appears as a source in the matching.
    pub fn matches_source(&self, src: usize) -> bool {
        self.pairs.iter().any(|&(s, _)| s == src)
    }

    /// Whether `dst` appears as a destination in the matching.
    pub fn matches_dest(&self, dst: usize) -> bool {
        self.pairs.iter().any(|&(_, d)| d == dst)
    }
}

/// Outcome of a [`PimRunner::run_sparse`] call, whose matched pairs are
/// written into a caller-owned buffer instead of a fresh allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseOutcome {
    /// Iterations executed.
    pub iterations: usize,
    /// Hardware cycles consumed (`3 × iterations`).
    pub cycles: u64,
}

/// Runs priority PIM over demand snapshots.
#[derive(Debug)]
pub struct PimRunner {
    config: PimConfig,
    encoders: Vec<PriorityEncoder>,
    /// Reused per-source proposal buffers (cleared each iteration).
    proposals: Vec<Vec<(u64, usize)>>,
    /// Sources that received proposals this iteration.
    proposed_srcs: Vec<usize>,
    /// Destinations still participating (avail, demand not exhausted).
    active_dests: Vec<usize>,
    /// Double buffer for the surviving active destinations.
    next_active: Vec<usize>,
    /// Epoch stamps marking sources matched in the current run; comparing
    /// against `epoch` avoids clearing an O(ports) array per run.
    src_matched: Vec<u32>,
    /// Epoch stamps marking destinations matched in the current run.
    dst_matched: Vec<u32>,
    /// Current run's epoch (stamps from older runs never compare equal).
    epoch: u32,
}

impl PimRunner {
    /// Creates a runner for the given configuration.
    pub fn new(config: PimConfig) -> Self {
        // Encoders start at width 0 and grow on first contention: an
        // O(ports²)-bit up-front allocation would defeat the sparse model.
        let encoders = (0..config.ports).map(|_| PriorityEncoder::new(0)).collect();
        PimRunner {
            config,
            encoders,
            proposals: (0..config.ports).map(|_| Vec::new()).collect(),
            proposed_srcs: Vec::new(),
            active_dests: Vec::new(),
            next_active: Vec::new(),
            src_matched: vec![0; config.ports],
            dst_matched: vec![0; config.ports],
            epoch: 0,
        }
    }

    /// The configuration this runner was built with.
    pub fn config(&self) -> PimConfig {
        self.config
    }

    /// Forms a priority-respecting maximal matching.
    ///
    /// `demand[d]` lists `(priority_key, src)` candidates destined to port
    /// `d`, sorted ascending by key (lower key = higher priority) — the
    /// order the notification queue maintains. `src_free[s]` /
    /// `dst_free[d]` give initial eligibility (ports already busy with an
    /// in-flight chunk are excluded).
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree with `config.ports` or a demand names
    /// an out-of-range source.
    pub fn run(
        &mut self,
        demand: &[Vec<(u64, usize)>],
        src_free: &[bool],
        dst_free: &[bool],
    ) -> Matching {
        let n = self.config.ports;
        assert_eq!(demand.len(), n, "demand rows must equal port count");
        assert_eq!(src_free.len(), n);
        assert_eq!(dst_free.len(), n);

        // Dense entry point: derive the active-destination list by scanning
        // all ports, then defer to the sparse core. The demand-sparse
        // scheduler skips this scan by maintaining the list incrementally.
        let active: Vec<usize> = (0..n)
            .filter(|&d| dst_free[d] && !demand[d].is_empty())
            .collect();
        let mut pairs = Vec::new();
        let outcome = self.run_sparse(&active, demand, |s| src_free[s], &mut pairs);
        Matching {
            pairs,
            iterations: outcome.iterations,
            cycles: outcome.cycles,
        }
    }

    /// Demand-sparse PIM: forms the same matching as [`PimRunner::run`]
    /// while touching only the destinations in `active_dests` — the
    /// hardware behaviour, where ports without queued notifications never
    /// participate (§3.1.2). Cost is `O(active · depth)` per iteration
    /// instead of `O(ports)`.
    ///
    /// `active_dests` must list destinations that are available this round
    /// and have a non-empty `demand` row; for bit-identical results with
    /// the dense path it must be in ascending order. `src_free(s)` reports
    /// initial source eligibility and is consulted only for sources that
    /// appear in active rows. Matched pairs are appended to `pairs`
    /// (cleared first), so steady-state runs are allocation-free.
    ///
    /// # Panics
    ///
    /// Panics (debug) if an active row names an out-of-range source.
    pub fn run_sparse<F: FnMut(usize) -> bool>(
        &mut self,
        active_dests: &[usize],
        demand: &[Vec<(u64, usize)>],
        mut src_free: F,
        pairs: &mut Vec<(usize, usize)>,
    ) -> SparseOutcome {
        pairs.clear();
        let n = self.config.ports;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap-around: old stamps could collide; reset them.
            self.src_matched.iter_mut().for_each(|e| *e = 0);
            self.dst_matched.iter_mut().for_each(|e| *e = 0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        let mut iterations = 0usize;

        // Only destinations that are available and have demand can ever
        // propose; once a destination fails to find an eligible source it
        // can be dropped permanently (sources only become *less* available
        // within a run).
        self.active_dests.clear();
        self.active_dests.extend_from_slice(active_dests);

        loop {
            if let Some(cap) = self.config.max_iterations {
                if iterations >= cap {
                    break;
                }
            }
            // --- Cycle 1: each active destination proposes its highest-
            // priority message whose source is still available.
            // proposals[s] collects (priority, dest) requests for source s.
            for &s in &self.proposed_srcs {
                self.proposals[s].clear();
            }
            self.proposed_srcs.clear();
            self.next_active.clear();
            for &d in &self.active_dests {
                debug_assert!(self.dst_matched[d] != epoch);
                let proposal = demand[d].iter().find(|&&(_, s)| {
                    debug_assert!(s < n, "source {s} out of range");
                    self.src_matched[s] != epoch && src_free(s)
                });
                // A destination with no eligible source left is
                // permanently out.
                if let Some(&(prio, s)) = proposal {
                    if self.proposals[s].is_empty() {
                        self.proposed_srcs.push(s);
                    }
                    self.proposals[s].push((prio, d));
                    self.next_active.push(d);
                }
            }
            if self.next_active.is_empty() {
                break;
            }
            std::mem::swap(&mut self.active_dests, &mut self.next_active);
            iterations += 1;

            // --- Cycle 2: each contended source resolves by priority.
            // The hardware keeps a per-source array of destinations sorted
            // by priority and a priority encoder over it; we model that by
            // sorting the (tiny) proposal set and asserting encoder bits.
            for i in 0..self.proposed_srcs.len() {
                let s = self.proposed_srcs[i];
                let mut reqs = std::mem::take(&mut self.proposals[s]);
                reqs.sort_unstable(); // (priority, dest): ascending = best first
                let enc = &mut self.encoders[s];
                if enc.width() < reqs.len() {
                    *enc = PriorityEncoder::new(reqs.len().next_power_of_two());
                }
                enc.clear();
                for (rank, _) in reqs.iter().enumerate() {
                    enc.set(rank);
                }
                let winner = enc.resolve().expect("at least one request");
                let (_, d) = reqs[winner];
                self.proposals[s] = reqs;

                // --- Cycle 3: mark the matched pair busy.
                debug_assert!(self.src_matched[s] != epoch && self.dst_matched[d] != epoch);
                self.src_matched[s] = epoch;
                self.dst_matched[d] = epoch;
                pairs.push((s, d));
            }
            // Matched destinations drop out of the active set.
            let dst_matched = &self.dst_matched;
            self.active_dests.retain(|&d| dst_matched[d] != epoch);
        }

        SparseOutcome {
            iterations,
            cycles: iterations as u64 * CYCLES_PER_ITERATION,
        }
    }
}

/// Average-case scheduling latency for an `n`-port switch at `clock`
/// period: `3·log2(n)` cycles (§3.1.3).
pub fn scheduling_latency(ports: usize, clock: edm_sim::Duration) -> edm_sim::Duration {
    let log = (usize::BITS - ports.next_power_of_two().leading_zeros() - 1) as u64;
    CYCLES_PER_ITERATION * log.max(1) * clock
}

/// Minimum chunk size (bytes) for line-rate scheduling: the chunk's
/// transmission time must cover the matching latency (§3.1.3).
pub fn min_chunk_for_line_rate(
    ports: usize,
    clock: edm_sim::Duration,
    link: edm_sim::Bandwidth,
) -> u64 {
    let t = scheduling_latency(ports, clock);
    link.bytes_in(t).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_sim::{Bandwidth, Duration};

    fn all_free(n: usize) -> Vec<bool> {
        vec![true; n]
    }

    /// Checks the matching is valid (injective both ways) and maximal with
    /// respect to the demand.
    fn assert_valid_maximal(m: &Matching, demand: &[Vec<(u64, usize)>]) {
        let mut src_used = std::collections::HashSet::new();
        let mut dst_used = std::collections::HashSet::new();
        for &(s, d) in &m.pairs {
            assert!(src_used.insert(s), "source {s} matched twice");
            assert!(dst_used.insert(d), "dest {d} matched twice");
        }
        // Maximality: no demand edge with both endpoints unmatched.
        for (d, row) in demand.iter().enumerate() {
            if dst_used.contains(&d) {
                continue;
            }
            for &(_, s) in row {
                assert!(
                    src_used.contains(&s),
                    "edge {s}->{d} left unmatched but both free"
                );
            }
        }
    }

    #[test]
    fn single_demand_matches() {
        let mut pim = PimRunner::new(PimConfig::for_ports(4));
        let mut demand = vec![Vec::new(); 4];
        demand[2].push((10, 0));
        let m = pim.run(&demand, &all_free(4), &all_free(4));
        assert_eq!(m.pairs, vec![(0, 2)]);
        assert_eq!(m.iterations, 1);
        assert_eq!(m.cycles, 3);
    }

    #[test]
    fn conflict_resolved_by_priority() {
        // Two destinations want the same source; lower key wins.
        let mut pim = PimRunner::new(PimConfig::for_ports(4));
        let mut demand = vec![Vec::new(); 4];
        demand[1].push((50, 0));
        demand[2].push((10, 0)); // higher priority
        let m = pim.run(&demand, &all_free(4), &all_free(4));
        assert!(m.pairs.contains(&(0, 2)));
        assert!(!m.pairs.contains(&(0, 1)));
    }

    #[test]
    fn loser_matches_in_later_iteration() {
        // dest1 loses src0 to dest2 but can fall back to src3.
        let mut pim = PimRunner::new(PimConfig::for_ports(4));
        let mut demand = vec![Vec::new(); 4];
        demand[1] = vec![(5, 0), (80, 3)];
        demand[2] = vec![(1, 0)];
        let m = pim.run(&demand, &all_free(4), &all_free(4));
        assert_valid_maximal(&m, &demand);
        assert!(m.pairs.contains(&(0, 2)));
        assert!(m.pairs.contains(&(3, 1)));
        assert_eq!(m.iterations, 2);
    }

    #[test]
    fn busy_ports_excluded() {
        let mut pim = PimRunner::new(PimConfig::for_ports(3));
        let mut demand = vec![Vec::new(); 3];
        demand[1].push((1, 0));
        demand[2].push((1, 0));
        let mut src_free = all_free(3);
        src_free[0] = false; // source busy: nothing can match
        let m = pim.run(&demand, &src_free, &all_free(3));
        assert!(m.pairs.is_empty());
        assert_eq!(m.iterations, 0);

        let mut dst_free = all_free(3);
        dst_free[1] = false;
        let m = pim.run(&demand, &all_free(3), &dst_free);
        assert_eq!(m.pairs, vec![(0, 2)]);
    }

    #[test]
    fn permutation_demand_matches_fully_in_one_iteration() {
        let n = 16;
        let mut pim = PimRunner::new(PimConfig::for_ports(n));
        let mut demand = vec![Vec::new(); n];
        for (d, row) in demand.iter_mut().enumerate() {
            row.push((d as u64, (d + 1) % n));
        }
        let m = pim.run(&demand, &all_free(n), &all_free(n));
        assert_eq!(m.pairs.len(), n);
        assert_eq!(m.iterations, 1, "disjoint demand needs one iteration");
    }

    #[test]
    fn random_demand_valid_and_maximal() {
        let n = 32;
        let mut rng = edm_sim::Rng::seed_from(99);
        for trial in 0..50 {
            let mut demand = vec![Vec::new(); n];
            for (d, row) in demand.iter_mut().enumerate() {
                let k = rng.below(5);
                for _ in 0..k {
                    let s = rng.below(n as u64) as usize;
                    row.push((rng.below(1000), s));
                }
                row.sort_unstable();
                let _ = d;
            }
            let mut pim = PimRunner::new(PimConfig::for_ports(n));
            let m = pim.run(&demand, &all_free(n), &all_free(n));
            assert_valid_maximal(&m, &demand);
            assert!(
                m.iterations <= n,
                "trial {trial}: {} iterations absurd",
                m.iterations
            );
        }
    }

    #[test]
    fn average_iterations_near_log_n() {
        // All-to-all uniform demand: PIM should converge in O(log N)
        // iterations on average. For N=64 expect well under N/2.
        let n = 64;
        let mut rng = edm_sim::Rng::seed_from(7);
        let mut total_iters = 0usize;
        let trials = 30;
        for _ in 0..trials {
            let mut demand = vec![Vec::new(); n];
            for row in demand.iter_mut() {
                for s in 0..n {
                    row.push((rng.below(10_000), s));
                }
                row.sort_unstable();
            }
            let mut pim = PimRunner::new(PimConfig::for_ports(n));
            let m = pim.run(&demand, &all_free(n), &all_free(n));
            assert_eq!(m.pairs.len(), n, "full demand must match all ports");
            total_iters += m.iterations;
        }
        let avg = total_iters as f64 / trials as f64;
        assert!(
            avg <= 2.0 * (n as f64).log2(),
            "avg iterations {avg} should be O(log n) = {}",
            (n as f64).log2()
        );
    }

    #[test]
    fn iteration_cap_respected() {
        let n = 8;
        let mut demand = vec![Vec::new(); n];
        for (d, row) in demand.iter_mut().enumerate() {
            for s in 0..n {
                row.push(((s + d) as u64, s));
            }
            row.sort_unstable();
        }
        let mut pim = PimRunner::new(PimConfig {
            ports: n,
            max_iterations: Some(1),
        });
        let m = pim.run(&demand, &all_free(n), &all_free(n));
        assert_eq!(m.iterations, 1);
    }

    #[test]
    fn scheduling_latency_formula() {
        // 512 ports at 3 GHz: 3*log2(512)=27 cycles ≈ 9 ns (§3.1.3).
        let t = scheduling_latency(512, crate::ASIC_CLOCK);
        let ns = t.as_ns_f64();
        assert!((ns - 9.0).abs() < 0.1, "got {ns} ns, expected ~9 ns");
    }

    #[test]
    fn min_chunk_for_512x100g() {
        // §3.1.3: "to achieve line rate scheduling for 512x100 Gbps switch,
        // EDM would set the minimum chunk size to 128 B."
        let c = min_chunk_for_line_rate(512, crate::ASIC_CLOCK, Bandwidth::from_gbps(100));
        assert_eq!(c, 128);
    }

    #[test]
    fn scheduling_latency_monotone_in_ports() {
        let clock = Duration::from_ps(333);
        let l16 = scheduling_latency(16, clock);
        let l512 = scheduling_latency(512, clock);
        assert!(l16 < l512);
    }
}
