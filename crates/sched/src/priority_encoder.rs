//! A priority encoder: resolves the most-significant asserted bit of a
//! request vector in a single clock cycle (§3.1.2).
//!
//! During the second cycle of each PIM iteration, every source port must
//! pick the highest-priority destination among those that requested it.
//! EDM keeps, per source port, an array of destination ports sorted by
//! priority; destinations assert their index, and this encoder returns the
//! most significant asserted index — 1 cycle, independent of how many bits
//! are set.

/// Cycle cost of one resolution.
pub const RESOLVE_CYCLES: u64 = 1;

/// A fixed-width priority encoder with cycle accounting.
#[derive(Debug, Clone)]
pub struct PriorityEncoder {
    bits: Vec<bool>,
    cycles: u64,
}

impl PriorityEncoder {
    /// Creates an encoder over `width` request lines, all deasserted.
    pub fn new(width: usize) -> Self {
        PriorityEncoder {
            bits: vec![false; width],
            cycles: 0,
        }
    }

    /// Number of request lines.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Total cycles consumed by [`PriorityEncoder::resolve`] calls.
    pub fn cycles_consumed(&self) -> u64 {
        self.cycles
    }

    /// Asserts request line `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set(&mut self, idx: usize) {
        self.bits[idx] = true;
    }

    /// Deasserts all request lines.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|b| *b = false);
    }

    /// Returns the most significant asserted index (1 cycle), or `None`.
    ///
    /// Index 0 is the *most significant* position: in EDM's layout the
    /// per-source array is sorted with the highest-priority destination at
    /// index 0.
    pub fn resolve(&mut self) -> Option<usize> {
        self.cycles += RESOLVE_CYCLES;
        self.bits.iter().position(|&b| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_most_significant() {
        let mut pe = PriorityEncoder::new(8);
        pe.set(5);
        pe.set(2);
        pe.set(7);
        assert_eq!(pe.resolve(), Some(2));
    }

    #[test]
    fn empty_resolves_none() {
        let mut pe = PriorityEncoder::new(4);
        assert_eq!(pe.resolve(), None);
        assert_eq!(pe.cycles_consumed(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut pe = PriorityEncoder::new(4);
        pe.set(0);
        pe.clear();
        assert_eq!(pe.resolve(), None);
    }

    #[test]
    fn one_cycle_per_resolve_regardless_of_population() {
        let mut pe = PriorityEncoder::new(512);
        for i in 0..512 {
            pe.set(i);
        }
        let before = pe.cycles_consumed();
        pe.resolve();
        assert_eq!(pe.cycles_consumed() - before, 1);
    }

    #[test]
    #[should_panic]
    fn out_of_range_set_panics() {
        let mut pe = PriorityEncoder::new(2);
        pe.set(2);
    }
}
