//! Hardware ordered-list model (§3.1.2).
//!
//! EDM's notification queues use "recent hardware data structures for
//! ordered lists" \[57–59, 63\] that sustain priority-queue operations in a
//! constant number of clock cycles: inserts and deletes have a 2-cycle
//! latency and are fully pipelined (one new operation may issue every
//! cycle), and reading the highest-priority element takes 1 cycle.
//!
//! The functional behaviour here is a stable priority queue; the hardware
//! cost model is exposed through [`OrderedList::cycles_consumed`] so the
//! scheduler pipeline (and tests) can account time exactly as the paper
//! does. Lower keys are higher priority; ties break FIFO.

/// Cycle cost of an insert (pipelined, 2-cycle latency).
pub const INSERT_CYCLES: u64 = 2;
/// Cycle cost of a delete (pipelined, 2-cycle latency).
pub const DELETE_CYCLES: u64 = 2;
/// Cycle cost of reading the head (highest priority element).
pub const PEEK_CYCLES: u64 = 1;

/// A constant-time hardware ordered list: a stable min-priority queue with
/// cycle accounting.
///
/// ```
/// use edm_sched::OrderedList;
/// let mut l = OrderedList::new();
/// l.insert(5, "b");
/// l.insert(3, "a");
/// assert_eq!(l.peek(), Some((3, &"a")));
/// assert_eq!(l.cycles_consumed(), 2 + 2 + 1);
/// ```
#[derive(Debug, Clone)]
pub struct OrderedList<V> {
    /// Entries sorted by (key, seq): seq preserves FIFO among equal keys.
    entries: Vec<Entry<V>>,
    seq: u64,
    cycles: u64,
}

#[derive(Debug, Clone)]
struct Entry<V> {
    key: u64,
    seq: u64,
    value: V,
}

impl<V> OrderedList<V> {
    /// Creates an empty list.
    pub fn new() -> Self {
        OrderedList {
            entries: Vec::new(),
            seq: 0,
            cycles: 0,
        }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total hardware cycles consumed by operations so far.
    ///
    /// Because the structure is fully pipelined, back-to-back operations
    /// overlap in real hardware; this counter is the *occupancy* cost used
    /// by the scheduler pipeline model (one issue slot per cycle).
    pub fn cycles_consumed(&self) -> u64 {
        self.cycles
    }

    /// Inserts `value` with priority `key` (lower = higher priority).
    /// 2 cycles.
    pub fn insert(&mut self, key: u64, value: V) {
        self.cycles += INSERT_CYCLES;
        let seq = self.seq;
        self.seq += 1;
        let pos = self
            .entries
            .partition_point(|e| (e.key, e.seq) <= (key, seq));
        self.entries.insert(pos, Entry { key, seq, value });
    }

    /// The highest-priority `(key, value)`, if any. 1 cycle.
    pub fn peek(&mut self) -> Option<(u64, &V)> {
        self.cycles += PEEK_CYCLES;
        self.entries.first().map(|e| (e.key, &e.value))
    }

    /// Removes and returns the highest-priority element. 2 cycles.
    pub fn pop(&mut self) -> Option<(u64, V)> {
        self.cycles += DELETE_CYCLES;
        if self.entries.is_empty() {
            return None;
        }
        let e = self.entries.remove(0);
        Some((e.key, e.value))
    }

    /// Removes the first element matching `pred` (in priority order).
    /// 2 cycles (a keyed delete in the hardware structure).
    pub fn remove_first<F: FnMut(&V) -> bool>(&mut self, mut pred: F) -> Option<(u64, V)> {
        self.cycles += DELETE_CYCLES;
        let idx = self.entries.iter().position(|e| pred(&e.value))?;
        let e = self.entries.remove(idx);
        Some((e.key, e.value))
    }

    /// Finds the highest-priority element satisfying `pred` without
    /// removing it.
    ///
    /// In the hardware design this parallel filtered read is what the
    /// per-destination queue performs in the first PIM cycle ("choose the
    /// highest priority *eligible* message"); it is a single-cycle parallel
    /// comparison across the list.
    pub fn peek_where<F: FnMut(&V) -> bool>(&mut self, mut pred: F) -> Option<(u64, &V)> {
        self.cycles += PEEK_CYCLES;
        self.entries
            .iter()
            .find(|e| pred(&e.value))
            .map(|e| (e.key, &e.value))
    }

    /// Re-keys the first element matching `pred` (e.g. SRPT remaining-bytes
    /// update). 2 cycles (delete + pipelined re-insert overlap).
    pub fn rekey_first<F: FnMut(&V) -> bool>(&mut self, mut pred: F, new_key: u64) -> bool {
        self.cycles += DELETE_CYCLES;
        if let Some(idx) = self.entries.iter().position(|e| pred(&e.value)) {
            let mut e = self.entries.remove(idx);
            e.key = new_key;
            e.seq = self.seq;
            self.seq += 1;
            let pos = self
                .entries
                .partition_point(|x| (x.key, x.seq) <= (e.key, e.seq));
            self.entries.insert(pos, e);
            true
        } else {
            false
        }
    }

    /// Iterates entries in priority order (no cycle cost: debug/test aid).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.entries.iter().map(|e| (e.key, &e.value))
    }
}

impl<V> Default for OrderedList<V> {
    fn default() -> Self {
        OrderedList::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_key() {
        let mut l = OrderedList::new();
        for (k, v) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
            l.insert(k, v);
        }
        assert_eq!(l.pop(), Some((10, 'a')));
        assert_eq!(l.pop(), Some((20, 'b')));
        assert_eq!(l.pop(), Some((30, 'c')));
        assert_eq!(l.pop(), None);
    }

    #[test]
    fn equal_keys_are_fifo() {
        let mut l = OrderedList::new();
        l.insert(5, 'x');
        l.insert(5, 'y');
        l.insert(5, 'z');
        assert_eq!(l.pop().unwrap().1, 'x');
        assert_eq!(l.pop().unwrap().1, 'y');
        assert_eq!(l.pop().unwrap().1, 'z');
    }

    #[test]
    fn cycle_accounting_matches_paper() {
        let mut l = OrderedList::new();
        l.insert(1, ());
        assert_eq!(l.cycles_consumed(), 2);
        l.peek();
        assert_eq!(l.cycles_consumed(), 3);
        l.pop();
        assert_eq!(l.cycles_consumed(), 5);
    }

    #[test]
    fn peek_where_filters() {
        let mut l = OrderedList::new();
        l.insert(1, 10);
        l.insert(2, 20);
        l.insert(3, 30);
        // Highest-priority even-valued entry that is not 10.
        let got = l.peek_where(|v| *v > 10).map(|(k, v)| (k, *v));
        assert_eq!(got, Some((2, 20)));
    }

    #[test]
    fn remove_first_by_predicate() {
        let mut l = OrderedList::new();
        l.insert(1, "keep");
        l.insert(2, "drop");
        l.insert(3, "drop");
        assert_eq!(l.remove_first(|v| *v == "drop"), Some((2, "drop")));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn rekey_moves_entry() {
        let mut l = OrderedList::new();
        l.insert(10, "a");
        l.insert(20, "b");
        assert!(l.rekey_first(|v| *v == "b", 5));
        assert_eq!(l.peek().unwrap().1, &"b");
        assert!(!l.rekey_first(|v| *v == "zzz", 1));
    }

    #[test]
    fn iter_is_priority_ordered() {
        let mut l = OrderedList::new();
        for k in [9u64, 1, 5, 3, 7] {
            l.insert(k, k * 2);
        }
        let keys: Vec<u64> = l.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
    }
}
