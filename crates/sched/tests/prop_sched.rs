//! Property-based tests for the scheduler: the ordered list behaves like
//! a reference sorted model, PIM always emits valid maximal matchings,
//! and the grant engine conserves bytes and never double-books a port.

use edm_sched::scheduler::{Notification, Policy, Scheduler, SchedulerConfig};
use edm_sched::{OrderedList, PimConfig, PimRunner};
use edm_sim::{Bandwidth, Time};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// OrderedList pops in exactly the order of a reference stable sort.
    #[test]
    fn ordered_list_matches_reference(ops in proptest::collection::vec((0u64..100, any::<u16>()), 1..200)) {
        let mut list = OrderedList::new();
        let mut reference: Vec<(u64, usize, u16)> = Vec::new();
        for (i, &(k, v)) in ops.iter().enumerate() {
            list.insert(k, v);
            reference.push((k, i, v));
        }
        reference.sort_by_key(|&(k, i, _)| (k, i));
        for &(k, _, v) in &reference {
            let (got_k, got_v) = list.pop().expect("same length");
            prop_assert_eq!((got_k, got_v), (k, v));
        }
        prop_assert!(list.is_empty());
    }

    /// PIM output is always a valid matching (no port appears twice) and
    /// maximal (no leftover edge between two unmatched, free ports).
    #[test]
    fn pim_valid_and_maximal(
        ports in 2usize..24,
        edges in proptest::collection::vec((0usize..24, 0usize..24, 0u64..1000), 0..80),
        busy_bits in any::<u32>(),
    ) {
        let mut demand = vec![Vec::new(); ports];
        for &(d, s, prio) in &edges {
            let (d, s) = (d % ports, s % ports);
            demand[d].push((prio, s));
        }
        for row in demand.iter_mut() {
            row.sort_unstable();
        }
        let src_free: Vec<bool> = (0..ports).map(|i| busy_bits & (1 << i) == 0).collect();
        let dst_free: Vec<bool> = (0..ports).map(|i| busy_bits & (1 << (i + 8)) == 0 || i >= 24).collect();
        let mut pim = PimRunner::new(PimConfig::for_ports(ports));
        let m = pim.run(&demand, &src_free, &dst_free);

        let mut srcs = HashSet::new();
        let mut dsts = HashSet::new();
        for &(s, d) in &m.pairs {
            prop_assert!(src_free[s], "matched busy source {s}");
            prop_assert!(dst_free[d], "matched busy dest {d}");
            prop_assert!(srcs.insert(s), "source {s} matched twice");
            prop_assert!(dsts.insert(d), "dest {d} matched twice");
            prop_assert!(
                demand[d].iter().any(|&(_, ss)| ss == s),
                "matched edge {s}->{d} not in demand"
            );
        }
        // Maximality.
        for (d, row) in demand.iter().enumerate() {
            if !dst_free[d] || dsts.contains(&d) {
                continue;
            }
            for &(_, s) in row {
                prop_assert!(
                    !src_free[s] || srcs.contains(&s),
                    "edge {s}->{d} left unmatched though both free"
                );
            }
        }
        prop_assert_eq!(m.cycles, m.iterations as u64 * 3);
    }

    /// The grant engine conserves bytes exactly: total granted equals the
    /// total notified, every grant respects the chunk cap, and no port is
    /// granted twice in one poll round.
    #[test]
    fn scheduler_conserves_bytes(
        msgs in proptest::collection::vec((0u16..8, 0u16..8, 1u32..5000), 1..40),
        chunk in prop::sample::select(vec![64u32, 128, 256, 512]),
        srpt in any::<bool>(),
    ) {
        let mut s = Scheduler::new(SchedulerConfig {
            ports: 8,
            chunk_bytes: chunk,
            link: Bandwidth::from_gbps(100),
            policy: if srpt { Policy::Srpt } else { Policy::Fcfs },
            max_active_per_pair: usize::MAX, // admit everything
            clock: edm_sched::ASIC_CLOCK,
        });
        let mut expected = 0u64;
        for (i, &(src, dst, size)) in msgs.iter().enumerate() {
            let dst = if src == dst { (dst + 1) % 8 } else { dst };
            s.notify(Time::from_ns(i as u64), Notification::new(src, dst, i as u8, size))
                .expect("admitted");
            expected += size as u64;
        }
        let mut now = Time::from_ns(msgs.len() as u64);
        let mut rounds = 0;
        loop {
            let r = s.poll(now);
            let mut srcs = HashSet::new();
            let mut dsts = HashSet::new();
            for g in &r.grants {
                prop_assert!(g.chunk_bytes <= chunk);
                prop_assert!(g.chunk_bytes > 0);
                prop_assert!(srcs.insert(g.src), "src granted twice in a round");
                prop_assert!(dsts.insert(g.dest), "dst granted twice in a round");
            }
            match r.next_wakeup {
                Some(t) => now = t,
                None => break,
            }
            rounds += 1;
            prop_assert!(rounds < 100_000, "scheduler failed to drain");
        }
        prop_assert_eq!(s.bytes_granted(), expected);
        prop_assert_eq!(s.pending_messages(), 0);
    }

    /// The X bound is enforced exactly: the (X+1)-th concurrent
    /// notification for one pair is rejected, all others admitted.
    #[test]
    fn pair_limit_exact(x in 1usize..6, extra in 1usize..5) {
        let mut s = Scheduler::new(SchedulerConfig {
            ports: 4,
            chunk_bytes: 256,
            link: Bandwidth::from_gbps(100),
            policy: Policy::Srpt,
            max_active_per_pair: x,
            clock: edm_sched::ASIC_CLOCK,
        });
        for i in 0..x {
            prop_assert!(s
                .notify(Time::ZERO, Notification::new(0, 1, i as u8, 64))
                .is_ok());
        }
        for i in 0..extra {
            prop_assert!(s
                .notify(Time::ZERO, Notification::new(0, 1, (x + i) as u8, 64))
                .is_err());
        }
        // A different pair is unaffected.
        prop_assert!(s.notify(Time::ZERO, Notification::new(2, 3, 0, 64)).is_ok());
    }
}
