//! Property-based tests for the scheduler: the ordered list behaves like
//! a reference sorted model, PIM always emits valid maximal matchings,
//! the grant engine conserves bytes and never double-books a port, pairs
//! stay FIFO, and the demand-sparse `poll` is equivalent to a dense
//! reference implementation on randomized notify/poll scripts.

use edm_sched::scheduler::{Notification, Policy, Scheduler, SchedulerConfig};
use edm_sched::{OrderedList, PimConfig, PimRunner};
use edm_sim::{Bandwidth, Time};
use proptest::prelude::*;
use std::collections::HashSet;

/// The pre-sparse scheduler, kept as an executable specification: dense
/// O(ports) scans per poll, per-poll allocations, `HashMap` pair state.
/// The production scheduler must produce bit-identical `PollResult`s.
mod reference {
    use edm_sched::scheduler::{
        Grant, Notification, NotifyError, Policy, PollResult, SchedulerConfig,
    };
    use edm_sched::OrderedList;
    use edm_sim::{Duration, Time};
    use std::collections::{HashMap, VecDeque};

    /// Demand-row depth offered to PIM (matches the production constant).
    const PIM_ROW_DEPTH: usize = 64;

    /// A frozen copy of the pre-refactor dense priority-PIM loop. It must
    /// NOT call into the production `PimRunner` (whose dense `run` now
    /// delegates to the rewritten sparse core) — sharing it would let a
    /// matching bug cancel out of the equivalence test. Returns the
    /// matched pairs and the iteration count.
    ///
    /// The per-source priority encoder of the original always resolves
    /// rank 0 of the sorted request array, i.e. the smallest
    /// `(priority, dest)` proposal wins.
    fn dense_pim(
        ports: usize,
        demand: &[Vec<(u64, usize)>],
        src_free: &[bool],
        dst_free: &[bool],
    ) -> (Vec<(usize, usize)>, usize) {
        let mut src_avail = src_free.to_vec();
        let mut dst_avail = dst_free.to_vec();
        let mut pairs = Vec::new();
        let mut iterations = 0usize;
        let mut active: Vec<usize> = (0..ports)
            .filter(|&d| dst_avail[d] && !demand[d].is_empty())
            .collect();
        loop {
            let mut proposals: Vec<Vec<(u64, usize)>> = vec![Vec::new(); ports];
            let mut proposed_srcs = Vec::new();
            let mut next_active = Vec::new();
            for &d in &active {
                if let Some(&(prio, s)) = demand[d].iter().find(|&&(_, s)| src_avail[s]) {
                    if proposals[s].is_empty() {
                        proposed_srcs.push(s);
                    }
                    proposals[s].push((prio, d));
                    next_active.push(d);
                }
            }
            if next_active.is_empty() {
                break;
            }
            active = next_active;
            iterations += 1;
            for &s in &proposed_srcs {
                let mut reqs = std::mem::take(&mut proposals[s]);
                reqs.sort_unstable();
                let (_, d) = reqs[0];
                src_avail[s] = false;
                dst_avail[d] = false;
                pairs.push((s, d));
            }
            active.retain(|&d| dst_avail[d]);
        }
        (pairs, iterations)
    }

    pub struct DenseScheduler {
        config: SchedulerConfig,
        queues: Vec<OrderedList<QueuedMsg>>,
        src_busy_until: Vec<Time>,
        dst_busy_until: Vec<Time>,
        active_per_pair: HashMap<(u16, u16), u32>,
        head_in_queue: HashMap<(u16, u16), bool>,
        pair_waiting: HashMap<(u16, u16), VecDeque<QueuedMsg>>,
    }

    #[derive(Debug, Clone, Copy)]
    struct QueuedMsg {
        src: u16,
        msg_id: u8,
        remaining: u32,
        notified_at: Time,
    }

    impl DenseScheduler {
        pub fn new(config: SchedulerConfig) -> Self {
            DenseScheduler {
                queues: (0..config.ports).map(|_| OrderedList::new()).collect(),
                src_busy_until: vec![Time::ZERO; config.ports],
                dst_busy_until: vec![Time::ZERO; config.ports],
                active_per_pair: HashMap::new(),
                head_in_queue: HashMap::new(),
                pair_waiting: HashMap::new(),
                config,
            }
        }

        pub fn pending_messages(&self) -> usize {
            self.queues.iter().map(|q| q.len()).sum()
        }

        fn priority_key(&self, msg: &QueuedMsg) -> u64 {
            match self.config.policy {
                Policy::Fcfs => msg.notified_at.as_ps(),
                Policy::Srpt => msg.remaining as u64,
            }
        }

        pub fn notify(&mut self, now: Time, n: Notification) -> Result<(), NotifyError> {
            if n.src as usize >= self.config.ports {
                return Err(NotifyError::BadPort { port: n.src });
            }
            if n.dest as usize >= self.config.ports {
                return Err(NotifyError::BadPort { port: n.dest });
            }
            if n.size_bytes == 0 {
                return Err(NotifyError::EmptyMessage);
            }
            let pair = (n.src, n.dest);
            let active = self.active_per_pair.entry(pair).or_insert(0);
            if *active as usize >= self.config.max_active_per_pair {
                return Err(NotifyError::PairLimitReached {
                    limit: self.config.max_active_per_pair,
                });
            }
            *active += 1;
            let msg = QueuedMsg {
                src: n.src,
                msg_id: n.msg_id,
                remaining: n.size_bytes,
                notified_at: now,
            };
            if *self.head_in_queue.entry(pair).or_insert(false) {
                self.pair_waiting.entry(pair).or_default().push_back(msg);
            } else {
                self.head_in_queue.insert(pair, true);
                let key = self.priority_key(&msg);
                self.queues[n.dest as usize].insert(key, msg);
            }
            Ok(())
        }

        pub fn poll(&mut self, now: Time) -> PollResult {
            let src_free: Vec<bool> = self.src_busy_until.iter().map(|&t| t <= now).collect();
            let dst_free: Vec<bool> = self.dst_busy_until.iter().map(|&t| t <= now).collect();
            let mut demand: Vec<Vec<(u64, usize)>> = vec![Vec::new(); self.config.ports];
            for (d, row) in demand.iter_mut().enumerate() {
                if !dst_free[d] {
                    continue;
                }
                row.extend(
                    self.queues[d]
                        .iter()
                        .map(|(k, m)| (k, m.src as usize))
                        .take(PIM_ROW_DEPTH),
                );
            }
            let (matched_pairs, iterations) =
                dense_pim(self.config.ports, &demand, &src_free, &dst_free);
            let mut grants = Vec::with_capacity(matched_pairs.len());
            for &(s, d) in &matched_pairs {
                let (_, mut msg) = self.queues[d]
                    .remove_first(|m| m.src as usize == s)
                    .expect("matched edge must exist");
                let l = msg.remaining.min(self.config.chunk_bytes);
                msg.remaining -= l;
                let remaining_after = msg.remaining;
                if msg.remaining > 0 {
                    let key = self.priority_key(&msg);
                    self.queues[d].insert(key, msg);
                } else {
                    let pair = (msg.src, d as u16);
                    *self.active_per_pair.get_mut(&pair).unwrap() -= 1;
                    match self.pair_waiting.entry(pair).or_default().pop_front() {
                        Some(next) => {
                            let key = self.priority_key(&next);
                            self.queues[d].insert(key, next);
                        }
                        None => {
                            self.head_in_queue.insert(pair, false);
                        }
                    }
                }
                let busy = self.config.link.tx_time_bytes(l as u64);
                self.src_busy_until[s] = now + busy;
                self.dst_busy_until[d] = now + busy;
                grants.push(Grant {
                    src: s as u16,
                    dest: d as u16,
                    msg_id: msg.msg_id,
                    chunk_bytes: l,
                    remaining_after,
                    issued_at: now,
                });
            }
            let next_wakeup = if self.pending_messages() > 0 {
                self.src_busy_until
                    .iter()
                    .chain(self.dst_busy_until.iter())
                    .filter(|&&t| t > now)
                    .min()
                    .copied()
            } else {
                None
            };
            PollResult {
                grants,
                pim_iterations: iterations,
                sched_latency: Duration::from_ps(iterations as u64 * 3 * self.config.clock.as_ps()),
                next_wakeup,
            }
        }
    }
}

proptest! {
    /// OrderedList pops in exactly the order of a reference stable sort.
    #[test]
    fn ordered_list_matches_reference(ops in proptest::collection::vec((0u64..100, any::<u16>()), 1..200)) {
        let mut list = OrderedList::new();
        let mut reference: Vec<(u64, usize, u16)> = Vec::new();
        for (i, &(k, v)) in ops.iter().enumerate() {
            list.insert(k, v);
            reference.push((k, i, v));
        }
        reference.sort_by_key(|&(k, i, _)| (k, i));
        for &(k, _, v) in &reference {
            let (got_k, got_v) = list.pop().expect("same length");
            prop_assert_eq!((got_k, got_v), (k, v));
        }
        prop_assert!(list.is_empty());
    }

    /// PIM output is always a valid matching (no port appears twice) and
    /// maximal (no leftover edge between two unmatched, free ports).
    #[test]
    fn pim_valid_and_maximal(
        ports in 2usize..24,
        edges in proptest::collection::vec((0usize..24, 0usize..24, 0u64..1000), 0..80),
        busy_bits in any::<u32>(),
    ) {
        let mut demand = vec![Vec::new(); ports];
        for &(d, s, prio) in &edges {
            let (d, s) = (d % ports, s % ports);
            demand[d].push((prio, s));
        }
        for row in demand.iter_mut() {
            row.sort_unstable();
        }
        let src_free: Vec<bool> = (0..ports).map(|i| busy_bits & (1 << i) == 0).collect();
        let dst_free: Vec<bool> = (0..ports).map(|i| busy_bits & (1 << (i + 8)) == 0 || i >= 24).collect();
        let mut pim = PimRunner::new(PimConfig::for_ports(ports));
        let m = pim.run(&demand, &src_free, &dst_free);

        let mut srcs = HashSet::new();
        let mut dsts = HashSet::new();
        for &(s, d) in &m.pairs {
            prop_assert!(src_free[s], "matched busy source {s}");
            prop_assert!(dst_free[d], "matched busy dest {d}");
            prop_assert!(srcs.insert(s), "source {s} matched twice");
            prop_assert!(dsts.insert(d), "dest {d} matched twice");
            prop_assert!(
                demand[d].iter().any(|&(_, ss)| ss == s),
                "matched edge {s}->{d} not in demand"
            );
        }
        // Maximality.
        for (d, row) in demand.iter().enumerate() {
            if !dst_free[d] || dsts.contains(&d) {
                continue;
            }
            for &(_, s) in row {
                prop_assert!(
                    !src_free[s] || srcs.contains(&s),
                    "edge {s}->{d} left unmatched though both free"
                );
            }
        }
        prop_assert_eq!(m.cycles, m.iterations as u64 * 3);
    }

    /// The grant engine conserves bytes exactly: total granted equals the
    /// total notified, every grant respects the chunk cap, and no port is
    /// granted twice in one poll round.
    #[test]
    fn scheduler_conserves_bytes(
        msgs in proptest::collection::vec((0u16..8, 0u16..8, 1u32..5000), 1..40),
        chunk in prop::sample::select(vec![64u32, 128, 256, 512]),
        srpt in any::<bool>(),
    ) {
        let mut s = Scheduler::new(SchedulerConfig {
            ports: 8,
            chunk_bytes: chunk,
            link: Bandwidth::from_gbps(100),
            policy: if srpt { Policy::Srpt } else { Policy::Fcfs },
            max_active_per_pair: usize::MAX, // admit everything
            clock: edm_sched::ASIC_CLOCK,
        });
        let mut expected = 0u64;
        for (i, &(src, dst, size)) in msgs.iter().enumerate() {
            let dst = if src == dst { (dst + 1) % 8 } else { dst };
            s.notify(Time::from_ns(i as u64), Notification::new(src, dst, i as u8, size))
                .expect("admitted");
            expected += size as u64;
        }
        let mut now = Time::from_ns(msgs.len() as u64);
        let mut rounds = 0;
        loop {
            let r = s.poll(now);
            let mut srcs = HashSet::new();
            let mut dsts = HashSet::new();
            for g in &r.grants {
                prop_assert!(g.chunk_bytes <= chunk);
                prop_assert!(g.chunk_bytes > 0);
                prop_assert!(srcs.insert(g.src), "src granted twice in a round");
                prop_assert!(dsts.insert(g.dest), "dst granted twice in a round");
            }
            match r.next_wakeup {
                Some(t) => now = t,
                None => break,
            }
            rounds += 1;
            prop_assert!(rounds < 100_000, "scheduler failed to drain");
        }
        prop_assert_eq!(s.bytes_granted(), expected);
        prop_assert_eq!(s.pending_messages(), 0);
    }

    /// The demand-sparse scheduler is observationally equivalent to the
    /// dense reference: on any monotone script of notifies and polls, both
    /// produce identical notify results and bit-identical `PollResult`s
    /// (grants with order, iteration counts, latency, next wakeup).
    #[test]
    fn sparse_poll_equivalent_to_dense_reference(
        ports in 2usize..12,
        script in proptest::collection::vec(
            (any::<bool>(), 0u16..12, 0u16..12, 1u32..2048, 0u64..60),
            1..100,
        ),
        chunk in prop::sample::select(vec![64u32, 256]),
        srpt in any::<bool>(),
        x in 1usize..4,
    ) {
        let cfg = SchedulerConfig {
            ports,
            chunk_bytes: chunk,
            link: Bandwidth::from_gbps(100),
            policy: if srpt { Policy::Srpt } else { Policy::Fcfs },
            max_active_per_pair: x,
            clock: edm_sched::ASIC_CLOCK,
        };
        let mut sparse = Scheduler::new(cfg);
        let mut dense = reference::DenseScheduler::new(cfg);
        let mut now = Time::ZERO;
        let mut msg_id = 0u8;
        for &(is_poll, src, dst, size, dt) in &script {
            now += edm_sim::Duration::from_ns(dt);
            if is_poll {
                let a = sparse.poll(now);
                let b = dense.poll(now);
                prop_assert_eq!(&a.grants, &b.grants);
                prop_assert_eq!(a.pim_iterations, b.pim_iterations);
                prop_assert_eq!(a.sched_latency, b.sched_latency);
                prop_assert_eq!(a.next_wakeup, b.next_wakeup);
            } else {
                let src = src % ports as u16;
                let dst = dst % ports as u16;
                let dst = if src == dst { (dst + 1) % ports as u16 } else { dst };
                let n = Notification::new(src, dst, msg_id, size);
                msg_id = msg_id.wrapping_add(1);
                prop_assert_eq!(sparse.notify(now, n), dense.notify(now, n));
            }
            prop_assert_eq!(sparse.pending_messages(), dense.pending_messages());
        }
        // Drain both to the end and compare the tail too.
        let mut rounds = 0;
        loop {
            let a = sparse.poll(now);
            let b = dense.poll(now);
            prop_assert_eq!(&a.grants, &b.grants);
            prop_assert_eq!(a.next_wakeup, b.next_wakeup);
            match a.next_wakeup {
                Some(t) => now = t,
                None => break,
            }
            rounds += 1;
            prop_assert!(rounds < 100_000, "drain did not converge");
        }
        prop_assert_eq!(sparse.pending_messages(), 0);
    }

    /// Within one (src, dest) pair, messages are granted strictly in
    /// notification order (§3.1.1 property 5): each pair's grant stream
    /// starts message k only after message k-1 delivered its final chunk,
    /// regardless of policy or message sizes.
    #[test]
    fn per_pair_grants_are_fifo(
        msgs in proptest::collection::vec((0u16..6, 0u16..6, 1u32..3000), 1..60),
        srpt in any::<bool>(),
    ) {
        let ports = 6;
        let mut s = Scheduler::new(SchedulerConfig {
            ports,
            chunk_bytes: 256,
            link: Bandwidth::from_gbps(100),
            policy: if srpt { Policy::Srpt } else { Policy::Fcfs },
            max_active_per_pair: usize::MAX,
            clock: edm_sched::ASIC_CLOCK,
        });
        // Per-pair msg_id allocation in notification order.
        let mut next_id = std::collections::HashMap::new();
        for (i, &(src, dst, size)) in msgs.iter().enumerate() {
            let dst = if src == dst { (dst + 1) % ports as u16 } else { dst };
            let id = next_id.entry((src, dst)).or_insert(0u8);
            s.notify(Time::from_ns(i as u64), Notification::new(src, dst, *id, size))
                .expect("admitted");
            *id = id.wrapping_add(1);
        }
        // Drain, checking each pair's grant stream: chunks of message k
        // are contiguous and followed by message k+1.
        let mut now = Time::from_ns(msgs.len() as u64);
        let mut expect_id: std::collections::HashMap<(u16, u16), u8> =
            std::collections::HashMap::new();
        let mut rounds = 0;
        loop {
            let r = s.poll(now);
            for g in &r.grants {
                let cur = expect_id.entry((g.src, g.dest)).or_insert(0);
                prop_assert_eq!(
                    g.msg_id, *cur,
                    "pair ({}, {}) granted message {} while {} is in flight",
                    g.src, g.dest, g.msg_id, *cur
                );
                if g.is_final() {
                    *cur = cur.wrapping_add(1);
                }
            }
            match r.next_wakeup {
                Some(t) => now = t,
                None => break,
            }
            rounds += 1;
            prop_assert!(rounds < 100_000, "scheduler failed to drain");
        }
        // Every notified message completed, in order.
        for (pair, id) in next_id {
            prop_assert_eq!(expect_id.get(&pair).copied(), Some(id));
        }
    }

    /// The X bound is enforced exactly: the (X+1)-th concurrent
    /// notification for one pair is rejected, all others admitted.
    #[test]
    fn pair_limit_exact(x in 1usize..6, extra in 1usize..5) {
        let mut s = Scheduler::new(SchedulerConfig {
            ports: 4,
            chunk_bytes: 256,
            link: Bandwidth::from_gbps(100),
            policy: Policy::Srpt,
            max_active_per_pair: x,
            clock: edm_sched::ASIC_CLOCK,
        });
        for i in 0..x {
            prop_assert!(s
                .notify(Time::ZERO, Notification::new(0, 1, i as u8, 64))
                .is_ok());
        }
        for i in 0..extra {
            prop_assert!(s
                .notify(Time::ZERO, Notification::new(0, 1, (x + i) as u8, 64))
                .is_err());
        }
        // A different pair is unaffected.
        prop_assert!(s.notify(Time::ZERO, Notification::new(2, 3, 0, 64)).is_ok());
    }
}
