//! Criterion bench for the PHY substrate (Figures 5–6 foundations):
//! 64b/66b encode/decode, scrambling, and the preemption multiplexer.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use edm_phy::frame::{decode_frame, encode_frame};
use edm_phy::mem_codec::{decode_message, encode_message, MemMessage};
use edm_phy::preempt::{PreemptMux, RxReorderBuffer, TxPolicy};
use edm_phy::scramble::{Descrambler, Scrambler};
use std::hint::black_box;

fn bench_frame_codec(c: &mut Criterion) {
    let frame = vec![0xA5u8; 1500];
    let blocks = encode_frame(&frame).expect("valid");
    let mut g = c.benchmark_group("phy/frame_codec");
    g.throughput(Throughput::Bytes(1500));
    g.bench_function("encode_1500B", |b| {
        b.iter(|| black_box(encode_frame(black_box(&frame)).expect("valid")))
    });
    g.bench_function("decode_1500B", |b| {
        b.iter(|| black_box(decode_frame(black_box(&blocks)).expect("valid")))
    });
    g.finish();
}

fn bench_mem_codec(c: &mut Criterion) {
    let msg = MemMessage::new(1, 0, vec![0x5Au8; 64]);
    let blocks = encode_message(&msg);
    let mut g = c.benchmark_group("phy/mem_codec");
    g.throughput(Throughput::Bytes(64));
    g.bench_function("encode_64B", |b| {
        b.iter(|| black_box(encode_message(black_box(&msg))))
    });
    g.bench_function("decode_64B", |b| {
        b.iter(|| black_box(decode_message(black_box(&blocks)).expect("valid")))
    });
    g.finish();
}

fn bench_scrambler(c: &mut Criterion) {
    let mut g = c.benchmark_group("phy/scrambler");
    g.throughput(Throughput::Bytes(8 * 1024));
    g.bench_function("scramble_1k_blocks", |b| {
        b.iter(|| {
            let mut tx = Scrambler::default();
            let mut acc = 0u64;
            for i in 0..1024u64 {
                acc ^= tx.scramble(i);
            }
            black_box(acc)
        })
    });
    g.bench_function("roundtrip_1k_blocks", |b| {
        b.iter(|| {
            let mut tx = Scrambler::default();
            let mut rx = Descrambler::default();
            let mut acc = 0u64;
            for i in 0..1024u64 {
                acc ^= rx.descramble(tx.scramble(i));
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_preemption(c: &mut Criterion) {
    c.bench_function("phy/preempt_1500B_frame_plus_8_messages", |b| {
        b.iter(|| {
            let mut mux = PreemptMux::new(TxPolicy::Fair);
            mux.enqueue_frame(encode_frame(&[0u8; 1500]).expect("valid"));
            for _ in 0..8 {
                mux.enqueue_memory(encode_message(&MemMessage::new(1, 0, vec![1; 8])));
            }
            let mut rx = RxReorderBuffer::new();
            let mut frames = 0;
            for blk in mux.drain() {
                if rx.push(blk).expect("legal").frame.is_some() {
                    frames += 1;
                }
            }
            black_box(frames)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_frame_codec, bench_mem_codec, bench_scrambler, bench_preemption
}
criterion_main!(benches);
