//! Criterion bench for the Figure 8 simulation engine: events/second for
//! each protocol on a 144-node microbenchmark slice.

use criterion::{criterion_group, criterion_main, Criterion};
use edm_baselines::prelude::*;
use edm_core::sim::{ClusterConfig, EdmProtocol, FabricProtocol};
use edm_workloads::SyntheticWorkload;
use std::hint::black_box;

fn flows() -> Vec<edm_core::sim::Flow> {
    SyntheticWorkload::paper_default(0.8, 0.5, 500).generate(42)
}

fn bench_protocols(c: &mut Criterion) {
    let cluster = ClusterConfig::default();
    let workload = flows();
    let mut g = c.benchmark_group("fig8/simulate_500_flows");
    g.bench_function("EDM", |b| {
        b.iter(|| {
            black_box(
                EdmProtocol::default()
                    .simulate(&cluster, &workload)
                    .outcomes
                    .len(),
            )
        })
    });
    g.bench_function("IRD", |b| {
        b.iter(|| {
            black_box(
                IrdProtocol::default()
                    .simulate(&cluster, &workload)
                    .outcomes
                    .len(),
            )
        })
    });
    g.bench_function("DCTCP", |b| {
        b.iter(|| {
            black_box(
                QueueFabric::new(QueueConfig::dctcp())
                    .simulate(&cluster, &workload)
                    .outcomes
                    .len(),
            )
        })
    });
    g.bench_function("CXL", |b| {
        b.iter(|| {
            black_box(
                CxlProtocol::default()
                    .simulate(&cluster, &workload)
                    .outcomes
                    .len(),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_protocols
}
criterion_main!(benches);
