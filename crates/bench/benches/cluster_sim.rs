//! Criterion bench for the Figure 8 simulation engine: events/second for
//! each protocol on a 144-node microbenchmark slice.

use criterion::{criterion_group, criterion_main, Criterion};
use edm_baselines::prelude::*;
use edm_bench::scenarios;
use edm_core::sim::{ClusterConfig, EdmProtocol, FabricProtocol};
use edm_topo::TopoEdm;
use std::hint::black_box;

fn bench_protocols(c: &mut Criterion) {
    let cluster = ClusterConfig::default();
    let workload = scenarios::fig8_flows(500);
    let mut g = c.benchmark_group("fig8/simulate_500_flows");
    g.bench_function("EDM", |b| {
        b.iter(|| {
            black_box(
                EdmProtocol::default()
                    .simulate(&cluster, &workload)
                    .outcomes
                    .len(),
            )
        })
    });
    g.bench_function("IRD", |b| {
        b.iter(|| {
            black_box(
                IrdProtocol::default()
                    .simulate(&cluster, &workload)
                    .outcomes
                    .len(),
            )
        })
    });
    g.bench_function("DCTCP", |b| {
        b.iter(|| {
            black_box(
                QueueFabric::new(QueueConfig::dctcp())
                    .simulate(&cluster, &workload)
                    .outcomes
                    .len(),
            )
        })
    });
    g.bench_function("CXL", |b| {
        b.iter(|| {
            black_box(
                CxlProtocol::default()
                    .simulate(&cluster, &workload)
                    .outcomes
                    .len(),
            )
        })
    });
    g.finish();
}

/// The sparse regime: 144 ports but only a few flows in flight. EDM's
/// control loop must cost close to the passive baselines here — the
/// scheduler only touches ports with queued notifications.
fn bench_sparse_regime(c: &mut Criterion) {
    let cluster = ClusterConfig::default();
    for flows in [2usize, 16] {
        let workload = scenarios::sparse_flows(flows);
        let group_name = format!("fig8/simulate_{flows}_flows");
        let mut g = c.benchmark_group(&group_name);
        g.bench_function("EDM", |b| {
            b.iter(|| {
                black_box(
                    EdmProtocol::default()
                        .simulate(&cluster, &workload)
                        .outcomes
                        .len(),
                )
            })
        });
        g.bench_function("DCTCP", |b| {
            b.iter(|| {
                black_box(
                    QueueFabric::new(QueueConfig::dctcp())
                        .simulate(&cluster, &workload)
                        .outcomes
                        .len(),
                )
            })
        });
        g.finish();
    }
}

/// Multi-switch end-to-end: the 288-node leaf–spine acceptance scenario
/// (4 leaves x 72 hosts, 2 spines, 50% rack-local traffic at load 0.6).
/// Every chunk hop pays the event queue several times, so this is the
/// fabric-side view of event-engine cost.
fn bench_topo(c: &mut Criterion) {
    let topo = scenarios::leaf_spine_288(1);
    let flows = scenarios::rack_flows_288(0.6, 0.5, 500);
    let mut g = c.benchmark_group("topo/leaf_spine_288");
    g.bench_function("500_flows", |b| {
        b.iter(|| black_box(TopoEdm::default().simulate(&topo, &flows).delivered()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_protocols, bench_sparse_regime, bench_topo
}
criterion_main!(benches);
