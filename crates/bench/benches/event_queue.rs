//! Criterion bench for the DES event queue: the classic *hold model*
//! (steady-state pop-one/schedule-one churn at a fixed queue size N,
//! from [`edm_bench::hold`]) for the calendar queue against the dense
//! binary-heap reference it replaced. The calendar queue's point is
//! that per-op cost stays flat as N grows while the heap pays log N.

use criterion::{criterion_group, criterion_main, Criterion};
use edm_bench::hold;
use edm_sim::{BinaryHeapEventQueue, EventQueue};
use std::hint::black_box;

/// Hold operations per timed batch.
const HOLD_OPS: usize = 1_024;

fn bench_hold(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/event_queue");
    for &n in &[64usize, 1_024, 16_384, 131_072] {
        // The queue persists across iterations (hold is balanced, so the
        // size stays at n): this measures warm steady-state churn, not
        // the cost of first-touching a freshly built queue.
        g.bench_function(format!("calendar_hold/{n}"), |b| {
            let (mut q, mut rng) = hold::prefill::<EventQueue<u64>>(n);
            b.iter(|| black_box(hold::run(&mut q, &mut rng, HOLD_OPS)))
        });
        g.bench_function(format!("binary_heap_hold/{n}"), |b| {
            let (mut q, mut rng) = hold::prefill::<BinaryHeapEventQueue<u64>>(n);
            b.iter(|| black_box(hold::run(&mut q, &mut rng, HOLD_OPS)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hold
}
criterion_main!(benches);
