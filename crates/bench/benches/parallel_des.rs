//! Criterion bench for the parallel conservative DES: wall-clock of one
//! 288-node leaf–spine simulation, sequential vs sharded across cores.
//!
//! The sharded runs are bit-identical to the sequential one (pinned by
//! `prop_parallel`), so every point simulates exactly the same events —
//! the only variable is the engine. On a single-core container the
//! sharded points measure protocol overhead rather than speedup; read
//! them as same-machine A/B pairs.

use criterion::{criterion_group, criterion_main, Criterion};
use edm_bench::scenarios;
use edm_topo::TopoEdm;
use std::hint::black_box;

fn bench_parallel_des(c: &mut Criterion) {
    let topo = scenarios::leaf_spine_288(1);
    let flows = scenarios::rack_flows_288(0.6, 0.5, 500);
    let proto = TopoEdm::default();
    let mut g = c.benchmark_group("topo/parallel_des_288/500_flows");
    g.bench_function("sequential", |b| {
        b.iter(|| black_box(proto.simulate(&topo, &flows).delivered()))
    });
    for shards in [2usize, 4] {
        g.bench_function(format!("shards_{shards}"), |b| {
            b.iter(|| black_box(proto.simulate_sharded(&topo, &flows, shards).delivered()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallel_des);
criterion_main!(benches);
