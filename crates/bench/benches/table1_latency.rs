//! Criterion bench backing **Table 1**: evaluating the latency
//! composition model (all four stacks) and the end-to-end functional
//! testbed transaction that realizes the EDM column.

use criterion::{criterion_group, criterion_main, Criterion};
use edm_baselines::stacks;
use edm_core::latency::{edm_read, edm_write};
use edm_core::testbed::{Fabric, TestbedConfig};
use edm_sim::Time;
use std::hint::black_box;

fn bench_latency_model(c: &mut Criterion) {
    c.bench_function("table1/compose_all_stacks", |b| {
        b.iter(|| {
            let total = edm_read().total()
                + edm_write().total()
                + stacks::tcp_read().total()
                + stacks::tcp_write().total()
                + stacks::rocev2_read().total()
                + stacks::rocev2_write().total()
                + stacks::raw_ethernet_read().total()
                + stacks::raw_ethernet_write().total();
            black_box(total)
        })
    });
}

fn bench_testbed_transaction(c: &mut Criterion) {
    c.bench_function("table1/edm_64B_read_transaction", |b| {
        b.iter(|| {
            let mut f = Fabric::new(TestbedConfig::default());
            f.seed_memory(1, 0, &[7u8; 64]);
            let id = f.read(Time::ZERO, 0, 1, 0, 64);
            f.run();
            black_box(f.completion(id).expect("done").latency())
        })
    });
    c.bench_function("table1/edm_64B_write_transaction", |b| {
        b.iter(|| {
            let mut f = Fabric::new(TestbedConfig::default());
            let id = f.write(Time::ZERO, 0, 1, 0, vec![7u8; 64]);
            f.run();
            black_box(f.completion(id).expect("done").latency())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_latency_model, bench_testbed_transaction
}
criterion_main!(benches);
