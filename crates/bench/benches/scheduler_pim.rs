//! Criterion bench for the in-network scheduler (§3.1, Figure 8's
//! engine): PIM matching at various port counts and full grant rounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edm_bench::scenarios;
use edm_sched::pim::{PimConfig, PimRunner};
use edm_sched::scheduler::{Scheduler, SchedulerConfig};
use edm_sim::{Rng, Time};
use std::hint::black_box;

fn full_demand(ports: usize, rng: &mut Rng) -> Vec<Vec<(u64, usize)>> {
    (0..ports)
        .map(|_| {
            let mut row: Vec<(u64, usize)> =
                (0..ports).map(|s| (rng.below(1_000_000), s)).collect();
            row.sort_unstable();
            row
        })
        .collect()
}

fn bench_pim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched/pim_maximal_matching");
    let mut rng = Rng::seed_from(5);
    for ports in [16usize, 64, 144, 512] {
        let demand = full_demand(ports, &mut rng);
        let free = vec![true; ports];
        g.bench_with_input(BenchmarkId::from_parameter(ports), &ports, |b, _| {
            let mut pim = PimRunner::new(PimConfig::for_ports(ports));
            b.iter(|| black_box(pim.run(&demand, &free, &free).pairs.len()))
        });
    }
    g.finish();
}

fn bench_grant_rounds(c: &mut Criterion) {
    c.bench_function("sched/grant_round_144_ports", |b| {
        b.iter_batched(
            scenarios::grant_round_scheduler,
            |mut s| black_box(s.poll(Time::ZERO).grants.len()),
            criterion::BatchSize::SmallInput,
        )
    });
}

/// The demand-sparse regime the hardware is built around: a big switch
/// with only a handful of active flows. Steady state: each iteration
/// notifies `flows` disjoint single-chunk messages, polls once (granting
/// them all), then advances time past the busy window — so the measured
/// cost is notify + poll + drain for the *active* demand, with no
/// per-iteration scheduler construction. Cost must track `flows`, not
/// `ports`.
fn bench_sparse_poll(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched/sparse_poll");
    for &(ports, flows) in &[(144usize, 2usize), (144, 16), (512, 2), (512, 16)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{ports}_ports_{flows}_flows")),
            &(),
            |b, _| {
                let mut s = Scheduler::new(SchedulerConfig::default_for_ports(ports));
                let mut now = Time::ZERO;
                let step = edm_sim::Duration::from_ns(100); // > 256 B busy window
                b.iter(|| {
                    let granted = scenarios::sparse_poll_round(&mut s, now, flows);
                    assert_eq!(granted, flows, "disjoint pairs all grant in one round");
                    now += step;
                    black_box(granted)
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_pim, bench_grant_rounds, bench_sparse_poll
}
criterion_main!(benches);
