//! Criterion bench for the in-network scheduler (§3.1, Figure 8's
//! engine): PIM matching at various port counts and full grant rounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edm_sched::pim::{PimConfig, PimRunner};
use edm_sched::scheduler::{Notification, Scheduler, SchedulerConfig};
use edm_sim::{Rng, Time};
use std::hint::black_box;

fn full_demand(ports: usize, rng: &mut Rng) -> Vec<Vec<(u64, usize)>> {
    (0..ports)
        .map(|_| {
            let mut row: Vec<(u64, usize)> =
                (0..ports).map(|s| (rng.below(1_000_000), s)).collect();
            row.sort_unstable();
            row
        })
        .collect()
}

fn bench_pim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched/pim_maximal_matching");
    let mut rng = Rng::seed_from(5);
    for ports in [16usize, 64, 144, 512] {
        let demand = full_demand(ports, &mut rng);
        let free = vec![true; ports];
        g.bench_with_input(BenchmarkId::from_parameter(ports), &ports, |b, _| {
            let mut pim = PimRunner::new(PimConfig::for_ports(ports));
            b.iter(|| black_box(pim.run(&demand, &free, &free).pairs.len()))
        });
    }
    g.finish();
}

fn bench_grant_rounds(c: &mut Criterion) {
    c.bench_function("sched/grant_round_144_ports", |b| {
        b.iter_batched(
            || {
                let mut s = Scheduler::new(SchedulerConfig::default_for_ports(144));
                let mut rng = Rng::seed_from(9);
                for i in 0..200u32 {
                    let src = rng.below(72) as u16;
                    let dst = 72 + rng.below(72) as u16;
                    let _ = s.notify(
                        Time::ZERO,
                        Notification::new(src, dst, i as u8, 64 + rng.below(4096) as u32),
                    );
                }
                s
            },
            |mut s| black_box(s.poll(Time::ZERO).grants.len()),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_pim, bench_grant_rounds
}
criterion_main!(benches);
