//! The closed-loop application benchmark behind the `app_sweep` binary
//! and `bench_json`'s `app` group: tenant-driven YCSB over the 288-node
//! leaf–spine fabric.
//!
//! Two artefacts, both on the identical topology so the comparison is
//! apples-to-apples:
//!
//! * **Transport comparison** — EDM's in-PHY fabric vs store-and-forward
//!   CXL-over-Ethernet serving the same tenant population (request
//!   latency percentiles and sustained op rate);
//! * **Slowdown grid** — the EDAN-style sensitivity sweep: application
//!   slowdown (makespan normalized to the all-local run at the same
//!   window and think time) over MLP ∈ {1, 2, 4, 8, 16} × local:remote
//!   split × offered load (saturating vs think-limited).
//!
//! Tenants live on racks 0–1 (nodes 0..144), memory nodes on racks 2–3,
//! so every remote op crosses the spines. Grid points fan out one thread
//! each via [`crate::par_sweep`]; each point is a deterministic
//! closed-loop run (seed fixed by config), so the emitted
//! `BENCH_app.json` is reproducible bit-for-bit at a given scale.

use crate::mem::peak_rss_kb;
use crate::scenarios;
use edm_sim::Duration;
use edm_topo::{AppConfig, AppReport, AppTransport, CxlOeConfig, TopoEdm, Topology};
use edm_workloads::{OpMix, TenantSpec, YcsbWorkload};

/// Sweep scale knobs (the committed artefact uses [`AppScale::full`];
/// CI smoke shrinks everything).
#[derive(Debug, Clone, Copy)]
pub struct AppScale {
    /// Closed-loop tenants, spread over the compute racks.
    pub tenants: usize,
    /// Operations each tenant issues.
    pub ops_per_tenant: u64,
    /// Shard count for every run (1 = sequential).
    pub shards: usize,
    /// Full grid (5 MLPs × 3 splits × 2 loads) or the reduced smoke grid
    /// (3 MLPs × 2 splits × 1 load).
    pub full_grid: bool,
}

impl AppScale {
    /// The committed-artefact scale.
    pub fn full() -> Self {
        AppScale {
            tenants: 24,
            ops_per_tenant: 200,
            shards: 1,
            full_grid: true,
        }
    }

    /// The CI smoke scale.
    pub fn smoke() -> Self {
        AppScale {
            tenants: 8,
            ops_per_tenant: 60,
            shards: 1,
            full_grid: false,
        }
    }
}

/// One measured closed-loop run.
#[derive(Debug, Clone)]
pub struct AppPoint {
    /// Point label (transport name or grid coordinates).
    pub label: String,
    /// Median request→response latency, ns.
    pub p50_ns: f64,
    /// Tail request→response latency, ns.
    pub p99_ns: f64,
    /// Sustained completed-op rate over the makespan.
    pub ops_per_sec: f64,
    /// Run makespan, ns.
    pub makespan_ns: f64,
    /// Ops completed / failed.
    pub completed: u64,
    /// Ops lost to partitions (0 on a healthy fabric).
    pub failed: u64,
    /// Peak concurrently-resident ops — the O(active ops) memory pin.
    pub ops_high_water: usize,
}

impl AppPoint {
    fn from_report(label: String, r: &AppReport) -> Self {
        let makespan_ns = r.makespan.as_ns_f64();
        AppPoint {
            label,
            p50_ns: r.lat.percentile(50.0) as f64 / 1000.0,
            p99_ns: r.lat.percentile(99.0) as f64 / 1000.0,
            ops_per_sec: r.ops_completed as f64 / (makespan_ns / 1e9),
            makespan_ns,
            completed: r.ops_completed,
            failed: r.ops_failed,
            ops_high_water: r.ops_high_water,
        }
    }
}

/// One slowdown-grid cell: [`AppPoint`] plus its coordinates and the
/// makespan ratio against the all-local baseline at the same window and
/// think time.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// The measured remote-serving run.
    pub point: AppPoint,
    /// Tenant MLP window.
    pub mlp: u32,
    /// Local:remote split (fraction served by node-local DRAM).
    pub local: f64,
    /// Load label (`"sat"` or `"think2us"`).
    pub load: &'static str,
    /// Makespan / all-local makespan (≥ ~1; EDAN's slowdown metric).
    pub slowdown: f64,
}

/// The sweep result: the transport comparison plus the slowdown grid.
#[derive(Debug, Clone)]
pub struct AppSweepReport {
    /// Scale the sweep ran at.
    pub scale: AppScale,
    /// EDM first, CXL-oE second — same tenants, same topology.
    pub comparison: Vec<AppPoint>,
    /// Slowdown grid, row-major in (load, local, mlp).
    pub grid: Vec<GridPoint>,
    /// Process peak RSS after the sweep (None off-procfs).
    pub peak_rss_kb: Option<u64>,
}

/// The closed-loop config for one point: `tenants` YCSB-B tenants spread
/// over racks 0–1, 16 memory nodes spread over racks 2–3.
pub fn paper_app(
    scale: AppScale,
    transport: AppTransport,
    mlp: u32,
    local: f64,
    think: Duration,
) -> AppConfig {
    let mix = OpMix {
        local_fraction: local,
        ..OpMix::remote(YcsbWorkload::b())
    };
    let tenants = (0..scale.tenants)
        .map(|i| TenantSpec {
            node: i * 144 / scale.tenants,
            mix,
            mlp,
            think_mean: think,
            ops: scale.ops_per_tenant,
        })
        .collect();
    let memory_nodes = (0..16).map(|i| 144 + i * 9).collect();
    AppConfig {
        transport,
        ..AppConfig::new(tenants, memory_nodes)
    }
}

fn run(topo: &Topology, app: &AppConfig, shards: usize) -> AppReport {
    let proto = TopoEdm::default();
    if shards > 1 {
        proto.simulate_app_sharded(topo, app, shards)
    } else {
        proto.simulate_app(topo, app)
    }
}

/// Runs the full sweep at `scale` on the 288-node leaf–spine.
pub fn measure(scale: AppScale) -> AppSweepReport {
    let topo = scenarios::leaf_spine_288(1);

    // Transport comparison: MLP 4, fully remote, saturating.
    let comparison: Vec<AppPoint> = crate::par_sweep(
        vec![
            ("edm", AppTransport::Edm),
            ("cxl_oe", AppTransport::CxlOe(CxlOeConfig::default())),
        ],
        |(label, transport)| {
            let app = paper_app(scale, transport, 4, 0.0, Duration::ZERO);
            AppPoint::from_report(label.to_string(), &run(&topo, &app, scale.shards))
        },
    );

    // Slowdown grid. The all-local baseline divides out everything that
    // is not remote-memory exposure, so cache one per (mlp, load).
    let (mlps, locals, loads): (&[u32], &[f64], &[(&'static str, Duration)]) = if scale.full_grid {
        (
            &[1, 2, 4, 8, 16],
            &[0.0, 0.25, 0.5],
            &[("sat", Duration::ZERO), ("think2us", Duration::from_us(2))],
        )
    } else {
        (&[1, 4, 16], &[0.0, 0.5], &[("sat", Duration::ZERO)])
    };
    let baselines: Vec<f64> = crate::par_sweep(
        loads
            .iter()
            .flat_map(|&(_, think)| mlps.iter().map(move |&mlp| (mlp, think)))
            .collect(),
        |(mlp, think)| {
            let app = paper_app(scale, AppTransport::Edm, mlp, 1.0, think);
            run(&topo, &app, scale.shards).makespan.as_ns_f64()
        },
    );
    let mut cells = Vec::new();
    for (li, &(load, think)) in loads.iter().enumerate() {
        for &local in locals {
            for (mi, &mlp) in mlps.iter().enumerate() {
                cells.push((mlp, local, load, think, baselines[li * mlps.len() + mi]));
            }
        }
    }
    let grid = crate::par_sweep(cells, |(mlp, local, load, think, baseline_ns)| {
        let app = paper_app(scale, AppTransport::Edm, mlp, local, think);
        let point = AppPoint::from_report(
            format!("mlp{mlp}/local{local}/{load}"),
            &run(&topo, &app, scale.shards),
        );
        let slowdown = point.makespan_ns / baseline_ns;
        GridPoint {
            point,
            mlp,
            local,
            load,
            slowdown,
        }
    });

    AppSweepReport {
        scale,
        comparison,
        grid,
        peak_rss_kb: peak_rss_kb(),
    }
}

impl AppSweepReport {
    /// The EDM and CXL-oE comparison rows.
    pub fn edm(&self) -> &AppPoint {
        &self.comparison[0]
    }

    /// The CXL-over-Ethernet comparison row.
    pub fn cxl(&self) -> &AppPoint {
        &self.comparison[1]
    }

    /// Serializes the report as the `BENCH_app.json` document.
    pub fn to_json(&self) -> String {
        let mut j = String::new();
        j.push_str("{\n  \"group\": \"app\",\n  \"topology\": \"leaf_spine_288\",\n");
        j.push_str(&format!(
            "  \"scale\": {{\"tenants\": {}, \"ops_per_tenant\": {}, \"shards\": {}, \"grid\": \"{}\"}},\n",
            self.scale.tenants,
            self.scale.ops_per_tenant,
            self.scale.shards,
            if self.scale.full_grid { "full" } else { "smoke" }
        ));
        j.push_str("  \"comparison\": [\n");
        for (i, p) in self.comparison.iter().enumerate() {
            let comma = if i + 1 < self.comparison.len() {
                ","
            } else {
                ""
            };
            j.push_str(&format!(
                "    {{\"transport\": \"{}\", \"p50_ns\": {:.1}, \"p99_ns\": {:.1}, \
                 \"ops_per_sec\": {:.1}, \"completed\": {}, \"failed\": {}, \
                 \"ops_high_water\": {}}}{comma}\n",
                p.label, p.p50_ns, p.p99_ns, p.ops_per_sec, p.completed, p.failed, p.ops_high_water
            ));
        }
        j.push_str("  ],\n  \"slowdown_grid\": [\n");
        for (i, g) in self.grid.iter().enumerate() {
            let comma = if i + 1 < self.grid.len() { "," } else { "" };
            j.push_str(&format!(
                "    {{\"mlp\": {}, \"local\": {}, \"load\": \"{}\", \"slowdown\": {:.3}, \
                 \"p50_ns\": {:.1}, \"p99_ns\": {:.1}, \"ops_per_sec\": {:.1}, \
                 \"makespan_ns\": {:.1}}}{comma}\n",
                g.mlp,
                g.local,
                g.load,
                g.slowdown,
                g.point.p50_ns,
                g.point.p99_ns,
                g.point.ops_per_sec,
                g.point.makespan_ns
            ));
        }
        j.push_str("  ],\n");
        match self.peak_rss_kb {
            Some(kb) => j.push_str(&format!("  \"peak_rss_kb\": {kb}\n")),
            None => j.push_str("  \"peak_rss_kb\": null\n"),
        }
        j.push_str("}\n");
        j
    }

    /// Writes `BENCH_app.json` into `dir`.
    pub fn write(&self, dir: &std::path::Path) {
        let path = dir.join("BENCH_app.json");
        std::fs::write(&path, self.to_json()).expect("write baseline file");
        println!("wrote {}", path.display());
    }
}
