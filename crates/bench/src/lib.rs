//! `edm-bench` — experiment harnesses that regenerate every table and
//! figure of the paper's evaluation (§4), plus Criterion micro-benchmarks.
//!
//! | Binary | Artefact |
//! |--------|----------|
//! | `table1` | Table 1 — unloaded fabric latency, four stacks |
//! | `fig5` | Figure 5 — EDM cycle-level latency breakdown |
//! | `fig6` | Figure 6 — YCSB throughput, EDM vs RDMA |
//! | `fig7` | Figure 7 — end-to-end latency vs local:remote split |
//! | `fig8a` | Figure 8a — normalized latency vs load (+ `--mix` panel) |
//! | `fig8b` | Figure 8b — normalized MCT on application traces |
//! | `preemption` | §4.2.1 ablation — interference from IP traffic |
//! | `sched_scaling` | §3.1.3 ablation — scheduling latency vs port count |
//! | `topo_sweep` | Multi-switch leaf–spine × oversubscription × IP sweep |
//! | `million_flows` | Streaming-lifecycle memory benchmark → `BENCH_mem.json` |
//! | `chaos_sweep` | Seeded fault/repair campaign → `BENCH_faults.json` |
//! | `bench_json` | Machine-readable `BENCH_*.json` perf baselines |
//!
//! Each binary prints a self-describing table; every multi-point sweep
//! fans out one thread per point via [`par_sweep`].

#![forbid(unsafe_code)]

use edm_core::sim::{solo_mct, ClusterConfig, FabricProtocol, Flow, FlowKind};
use edm_sim::{Duration, Time};

pub mod app;
pub mod faults;
pub mod mem;

pub mod scenarios {
    //! Shared benchmark scenarios. The criterion benches and the
    //! `bench_json` baseline emitter must measure the *same* workloads
    //! under the same names, so both build them from here.

    use edm_core::sim::Flow;
    use edm_sched::scheduler::{Notification, Scheduler, SchedulerConfig};
    use edm_sim::{Rng, Time};
    use edm_workloads::SyntheticWorkload;

    /// The fig8 microbenchmark slice: `count` flows at load 0.8, 50:50
    /// read/write mix, seed 42.
    pub fn fig8_flows(count: usize) -> Vec<Flow> {
        SyntheticWorkload::paper_default(0.8, 0.5, count).generate(42)
    }

    /// The demand-sparse regime slice: `count` flows at load 0.1 on the
    /// full 144-node cluster (ports ≫ active flows), seed 7.
    pub fn sparse_flows(count: usize) -> Vec<Flow> {
        SyntheticWorkload::paper_default(0.1, 0.5, count).generate(7)
    }

    /// A 144-port scheduler pre-loaded with the dense grant-round demand:
    /// 200 random notifications, 72 senders → 72 receivers, seed 9.
    pub fn grant_round_scheduler() -> Scheduler {
        let mut s = Scheduler::new(SchedulerConfig::default_for_ports(144));
        let mut rng = Rng::seed_from(9);
        for i in 0..200u32 {
            let src = rng.below(72) as u16;
            let dst = 72 + rng.below(72) as u16;
            let _ = s.notify(
                Time::ZERO,
                Notification::new(src, dst, i as u8, 64 + rng.below(4096) as u32),
            );
        }
        s
    }

    /// One steady-state sparse round: notify `flows` disjoint
    /// single-chunk messages at `now`, poll once, return the grant count
    /// (always `flows` — disjoint pairs all match in one round).
    pub fn sparse_poll_round(s: &mut Scheduler, now: Time, flows: usize) -> usize {
        for f in 0..flows {
            let (src, dst) = ((2 * f) as u16, (2 * f + 1) as u16);
            s.notify(now, Notification::new(src, dst, 0, 256)).unwrap();
        }
        s.poll(now).grants.len()
    }

    /// The topo benchmark fabric's shape: 288 nodes as 4 leaves × 72
    /// hosts with 2 spines. `oversub` divides the uplink capacity (1 =
    /// non-blocking 36 uplinks per spine per leaf, 2 = 2:1, 4 = 4:1).
    /// Normalization probes must use this same spec (see `topo_sweep`).
    pub fn leaf_spine_288_spec(oversub: usize) -> edm_topo::LeafSpine {
        assert!(36 % oversub == 0, "oversub must divide 36");
        edm_topo::LeafSpine::symmetric(4, 2, 72, 36 / oversub)
    }

    /// The topo benchmark fabric built from [`leaf_spine_288_spec`].
    pub fn leaf_spine_288(oversub: usize) -> edm_topo::Topology {
        edm_topo::Topology::leaf_spine(leaf_spine_288_spec(oversub))
    }

    /// The rack-aware workload spec behind [`rack_flows_288`]: `local` of
    /// each compute node's requests stay in-rack, the rest cross the
    /// spines. 64 B messages, 50:50 read/write. Call `.generate(42)` to
    /// materialize or `.source(42)` to stream the identical flows.
    pub fn rack_workload_288(
        load: f64,
        local: f64,
        count: usize,
    ) -> edm_workloads::RackAwareWorkload {
        edm_workloads::RackAwareWorkload {
            nodes: 288,
            racks: 4,
            link: edm_sim::Bandwidth::from_gbps(100),
            load,
            size: 64,
            write_fraction: 0.5,
            local_fraction: local,
            count,
        }
    }

    /// Rack-aware traffic for [`leaf_spine_288`], materialized (seed 42).
    pub fn rack_flows_288(load: f64, local: f64, count: usize) -> Vec<Flow> {
        rack_workload_288(load, local, count).generate(42)
    }
}

pub mod hold {
    //! The event-queue *hold model*: steady-state pop-one/schedule-one
    //! churn at a fixed queue size. The `sim/event_queue` criterion
    //! bench and `bench_json` must time the same loop under the same
    //! names, so both build it from here.

    use edm_sim::{BinaryHeapEventQueue, Duration, EventQueue, Rng, Time};

    /// Mean inter-event gap in picoseconds (gaps uniform on `0..2*MEAN`).
    pub const MEAN_GAP_PS: u64 = 5_120;

    /// The common surface of the two `edm-sim` queue implementations.
    pub trait Queue: Default {
        /// Schedules `ev` at `at`.
        fn schedule(&mut self, at: Time, ev: u64);
        /// Pops the earliest event.
        fn pop(&mut self) -> Option<(Time, u64)>;
    }

    impl Queue for EventQueue<u64> {
        fn schedule(&mut self, at: Time, ev: u64) {
            EventQueue::schedule(self, at, ev);
        }
        fn pop(&mut self) -> Option<(Time, u64)> {
            EventQueue::pop(self)
        }
    }

    impl Queue for BinaryHeapEventQueue<u64> {
        fn schedule(&mut self, at: Time, ev: u64) {
            BinaryHeapEventQueue::schedule(self, at, ev);
        }
        fn pop(&mut self) -> Option<(Time, u64)> {
            BinaryHeapEventQueue::pop(self)
        }
    }

    /// Fills a queue with `n` events at deterministic pseudo-random
    /// offsets, then churns one full turnover so the calendar geometry
    /// has settled at size `n` before anything is timed.
    pub fn prefill<Q: Queue>(n: usize) -> (Q, Rng) {
        let mut q = Q::default();
        let mut rng = Rng::seed_from(0xED31);
        let mut t = Time::ZERO;
        for i in 0..n {
            t += Duration::from_ps(rng.below(2 * MEAN_GAP_PS));
            q.schedule(t, i as u64);
        }
        for _ in 0..n {
            let (at, ev) = q.pop().expect("steady state");
            q.schedule(at + Duration::from_ps(rng.below(2 * MEAN_GAP_PS)), ev);
        }
        (q, rng)
    }

    /// One timed batch: `ops` pop+schedule pairs at constant size.
    pub fn run<Q: Queue>(q: &mut Q, rng: &mut Rng, ops: usize) -> u64 {
        let mut acc = 0u64;
        for _ in 0..ops {
            let (at, ev) = q.pop().expect("steady state");
            acc ^= ev;
            q.schedule(at + Duration::from_ps(rng.below(2 * MEAN_GAP_PS)), ev);
        }
        acc
    }
}

/// Runs one closure per sweep point on its own OS thread and returns the
/// results in input order.
///
/// The fig8-style sweeps are embarrassingly parallel: every
/// (protocol, load) point simulates an independent cluster. One thread per
/// point is the right grain here — points are few (tens) and each runs for
/// milliseconds to seconds.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn par_sweep<T, R, F>(points: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = points
            .into_iter()
            .map(|p| scope.spawn(move || f(p)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
}

/// Prints a row of right-aligned cells under a fixed layout.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:<22}");
    for c in cells {
        print!(" {c:>10}");
    }
    println!();
}

/// Formats a nanosecond quantity compactly.
pub fn ns(d: Duration) -> String {
    let v = d.as_ns_f64();
    if v >= 1000.0 {
        format!("{:.2} us", v / 1000.0)
    } else {
        format!("{v:.1} ns")
    }
}

/// A per-protocol unloaded-latency curve over message sizes, used to
/// normalize heavy-tailed trace MCTs the way the paper does ("the time it
/// would take for that message to complete if it were the only message in
/// the network").
///
/// Solo latencies are measured at log-spaced probe sizes and interpolated
/// linearly in between (completion time is piecewise linear in size for
/// every protocol here: fixed overhead + serialization).
pub struct SoloCurve {
    /// (size, solo MCT in ns), ascending by size.
    points: Vec<(u32, f64)>,
}

impl SoloCurve {
    /// Measures the curve for `protocol` over sizes 8 B – `max_size`.
    pub fn measure<P: FabricProtocol + ?Sized>(
        protocol: &mut P,
        cluster: &ClusterConfig,
        kind: FlowKind,
        max_size: u32,
    ) -> Self {
        let mut sizes = vec![8u32, 64, 256, 1024];
        let mut s = 4096u32;
        while s < max_size {
            sizes.push(s);
            s = s.saturating_mul(4);
        }
        sizes.push(max_size);
        sizes.dedup();
        let points = sizes
            .into_iter()
            .map(|size| {
                let flow = Flow {
                    id: 0,
                    src: 0,
                    dst: cluster.nodes - 1,
                    size,
                    arrival: Time::ZERO,
                    kind,
                };
                let mct = solo_mct(protocol, cluster, &flow);
                (size, mct.as_ns_f64())
            })
            .collect();
        SoloCurve { points }
    }

    /// The interpolated solo MCT for a message of `size` bytes.
    pub fn solo_ns(&self, size: u32) -> f64 {
        let pts = &self.points;
        if size <= pts[0].0 {
            return pts[0].1;
        }
        for w in pts.windows(2) {
            let (s0, v0) = w[0];
            let (s1, v1) = w[1];
            if size <= s1 {
                let f = (size - s0) as f64 / (s1 - s0) as f64;
                return v0 + f * (v1 - v0);
            }
        }
        pts.last().expect("non-empty").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_core::sim::EdmProtocol;

    #[test]
    fn solo_curve_monotone_in_size() {
        let cluster = ClusterConfig {
            nodes: 16,
            ..ClusterConfig::default()
        };
        let mut p = EdmProtocol::default();
        let curve = SoloCurve::measure(&mut p, &cluster, FlowKind::Write, 65536);
        let a = curve.solo_ns(64);
        let b = curve.solo_ns(4096);
        let c = curve.solo_ns(65536);
        assert!(a < b && b < c, "{a} {b} {c}");
    }

    #[test]
    fn solo_curve_interpolates_between_probes() {
        let cluster = ClusterConfig {
            nodes: 16,
            ..ClusterConfig::default()
        };
        let mut p = EdmProtocol::default();
        let curve = SoloCurve::measure(&mut p, &cluster, FlowKind::Write, 65536);
        let mid = curve.solo_ns(640);
        assert!(mid >= curve.solo_ns(256) && mid <= curve.solo_ns(1024));
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(ns(Duration::from_ns(300)), "300.0 ns");
        assert_eq!(ns(Duration::from_us(2)), "2.00 us");
    }

    #[test]
    fn par_sweep_preserves_order() {
        let got = par_sweep((0..32).collect(), |i: u32| i * i);
        assert_eq!(got, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_sweep_runs_simulations() {
        let cluster = ClusterConfig {
            nodes: 8,
            ..ClusterConfig::default()
        };
        let sizes = vec![64u32, 256, 1024];
        let mcts = par_sweep(sizes, |size| {
            let flow = Flow {
                id: 0,
                src: 0,
                dst: 7,
                size,
                arrival: Time::ZERO,
                kind: FlowKind::Write,
            };
            solo_mct(&mut EdmProtocol::default(), &cluster, &flow).as_ns_f64()
        });
        assert!(mcts.windows(2).all(|w| w[0] < w[1]), "{mcts:?}");
    }
}
