//! Seeded chaos scenarios for the failure-regime benchmarks.
//!
//! Each builder derives a deterministic fault *and repair* schedule from
//! a topology, a simulated span, and a seed, so the `chaos_sweep`
//! campaign, the `million_flows` fault knob, and the CI smoke all replay
//! bit-identical schedules. Times are expressed as fractions of the
//! workload's arrival span: faults land mid-run and heal before the
//! arrival process ends, which is where recovery is observable.

use edm_sim::{Duration, Rng, Time};
use edm_topo::{FaultEvent, FaultKind, SwitchRole, Topology};

/// Trunk link ids of a topology (the only links worth flapping — an
/// access link's death just strands its host).
fn trunk_links(topo: &Topology) -> Vec<u32> {
    (0..topo.links().len() as u32)
        .filter(|&l| topo.link(l).is_trunk())
        .collect()
}

/// Switch ids by role.
fn switches_of(topo: &Topology, role: SwitchRole) -> Vec<u32> {
    (0..topo.switch_count() as u32)
        .filter(|&s| topo.switch_role(s) == role)
        .collect()
}

/// A point on the span, `num/den` of the way in.
fn frac(span: Duration, num: u64, den: u64) -> Time {
    Time::ZERO + (span * num) / den
}

/// `n` independent single-link flaps: random trunk links go down at
/// seeded instants in the middle of the span and come back a tenth of
/// the span later.
pub fn single_link_flaps(topo: &Topology, span: Duration, n: usize, seed: u64) -> Vec<FaultEvent> {
    let trunks = trunk_links(topo);
    let mut rng = Rng::seed_from(seed);
    let mut ev = Vec::new();
    for _ in 0..n {
        let link = trunks[rng.below(trunks.len() as u64) as usize];
        // Down somewhere in [0.2, 0.7) of the span, up a tenth later.
        let at = frac(span, 20 + rng.below(50), 100);
        ev.push(FaultEvent {
            at,
            kind: FaultKind::LinkDown(link),
        });
        ev.push(FaultEvent {
            at: at + span / 10,
            kind: FaultKind::LinkUp(link),
        });
    }
    ev.sort_by_key(|f| f.at);
    ev
}

/// One spine dies at 30% of the span and revives at 60%: the classic
/// mid-run capacity loss with full recovery.
pub fn spine_kill_revive(topo: &Topology, span: Duration, seed: u64) -> Vec<FaultEvent> {
    let spines = switches_of(topo, SwitchRole::Spine);
    assert!(!spines.is_empty(), "scenario needs a spine to kill");
    let spine = spines[Rng::seed_from(seed).below(spines.len() as u64) as usize];
    vec![
        FaultEvent {
            at: frac(span, 3, 10),
            kind: FaultKind::SwitchDown(spine),
        },
        FaultEvent {
            at: frac(span, 6, 10),
            kind: FaultKind::SwitchUp(spine),
        },
    ]
}

/// Rolling rack outages: each leaf switch goes down in turn, staggered
/// across the middle of the span, and revives after a tenth of it —
/// flows sourced at a dead rack fail or retry until their rack heals.
pub fn rolling_rack_outages(topo: &Topology, span: Duration) -> Vec<FaultEvent> {
    let leaves = switches_of(topo, SwitchRole::Leaf);
    let n = leaves.len() as u64;
    let mut ev = Vec::new();
    for (i, &leaf) in leaves.iter().enumerate() {
        // Outage windows tile [0.2, 0.8) of the span without overlap.
        let at = frac(span, 20 + (60 * i as u64) / n, 100);
        ev.push(FaultEvent {
            at,
            kind: FaultKind::SwitchDown(leaf),
        });
        ev.push(FaultEvent {
            at: at + span / 10,
            kind: FaultKind::SwitchUp(leaf),
        });
    }
    ev.sort_by_key(|f| f.at);
    ev
}

/// Correlated degradation: a seeded quarter of the trunk links pick up
/// `extra` latency at 25% of the span (one failing optics batch), all
/// retrained back to healthy at 75%.
pub fn correlated_degradation(
    topo: &Topology,
    span: Duration,
    extra: Duration,
    seed: u64,
) -> Vec<FaultEvent> {
    let mut trunks = trunk_links(topo);
    let mut rng = Rng::seed_from(seed);
    // Deterministic partial shuffle: pick max(1, n/4) distinct victims.
    let victims = (trunks.len() / 4).max(1);
    for i in 0..victims {
        let j = i + rng.below((trunks.len() - i) as u64) as usize;
        trunks.swap(i, j);
    }
    let mut ev = Vec::new();
    for &link in &trunks[..victims] {
        ev.push(FaultEvent {
            at: frac(span, 1, 4),
            kind: FaultKind::DegradeLink { link, extra },
        });
        ev.push(FaultEvent {
            at: frac(span, 3, 4),
            kind: FaultKind::RestoreLink(link),
        });
    }
    ev
}

/// The `million_flows` fault knob: one spine flaps mid-run — down at
/// half the span, up at three quarters.
pub fn mid_run_spine_flap(topo: &Topology, span: Duration) -> Vec<FaultEvent> {
    let spines = switches_of(topo, SwitchRole::Spine);
    assert!(!spines.is_empty(), "fault knob needs a spine");
    vec![
        FaultEvent {
            at: frac(span, 1, 2),
            kind: FaultKind::SwitchDown(spines[0]),
        },
        FaultEvent {
            at: frac(span, 3, 4),
            kind: FaultKind::SwitchUp(spines[0]),
        },
    ]
}

/// First fault instant of a schedule (the campaign's incident time for
/// recovery measurement).
pub fn first_incident(faults: &[FaultEvent]) -> Option<Time> {
    faults.iter().map(|f| f.at).min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    #[test]
    fn schedules_are_deterministic_and_heal_everything() {
        let topo = scenarios::leaf_spine_288(1);
        let span = Duration::from_us(500);
        let a = single_link_flaps(&topo, span, 3, 42);
        let b = single_link_flaps(&topo, span, 3, 42);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
        }
        // Every down has a matching up, every degrade a restore.
        for sched in [
            a,
            spine_kill_revive(&topo, span, 42),
            rolling_rack_outages(&topo, span),
            correlated_degradation(&topo, span, Duration::from_us(1), 42),
            mid_run_spine_flap(&topo, span),
        ] {
            let (mut broken, mut healed) = (0usize, 0usize);
            for f in &sched {
                match f.kind {
                    FaultKind::LinkDown(_)
                    | FaultKind::SwitchDown(_)
                    | FaultKind::DegradeLink { .. } => broken += 1,
                    FaultKind::LinkUp(_) | FaultKind::SwitchUp(_) | FaultKind::RestoreLink(_) => {
                        healed += 1
                    }
                }
            }
            assert_eq!(broken, healed, "unbalanced schedule");
            assert!(first_incident(&sched).unwrap() > Time::ZERO);
        }
    }

    #[test]
    fn rolling_outages_cover_every_rack_without_overlap() {
        let topo = scenarios::leaf_spine_288(1);
        let span = Duration::from_us(1000);
        let ev = rolling_rack_outages(&topo, span);
        assert_eq!(ev.len(), 8, "4 leaves x down+up");
        let downs: Vec<_> = ev
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::SwitchDown(_)))
            .collect();
        for w in downs.windows(2) {
            // The next rack goes down only after the previous healed.
            assert!(w[1].at >= w[0].at + span / 10, "overlapping outages");
        }
    }
}
