//! The streaming-lifecycle memory benchmark behind the `million_flows`
//! binary and `bench_json`'s `BENCH_mem.json` group.
//!
//! One measurement is two runs of the same rack-aware leaf–spine workload
//! through [`edm_topo::TopoEdm`]'s streaming path — a baseline at `N/10`
//! flows and the full run at `N` — with per-flow MCTs folded into a
//! bounded [`LogHistogram`] + [`Throughput`] instead of a retained
//! `Vec`. Because arrivals stream in and completed flows retire, the
//! resident state tracks the *active*-flow population: the full run's
//! active-flow high-water mark and peak RSS should sit next to the
//! baseline's even though it pushes 10× the flows through.
//!
//! The baseline run doubles as the accuracy check: small enough to also
//! feed an exact [`Summary`], it pins the streamed percentiles to the
//! exact ones within [`LogHistogram::MAX_RELATIVE_ERROR`].

use crate::scenarios;
use edm_sim::{Duration, LogHistogram, Summary, Throughput};
use edm_topo::{FaultEvent, FlowStatus, TopoEdm, TopoEdmConfig, TopoStreamStats};

/// Peak resident-set size of this process so far, in kB (`VmHWM` from
/// `/proc/self/status`). `None` where procfs is unavailable.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The percentiles reported for streamed MCTs, in ascending order.
pub const PERCENTILES: [f64; 4] = [50.0, 99.0, 99.9, 99.99];

/// One streamed run at one scale.
pub struct ScaleRun {
    /// Total flows the source emitted.
    pub flows: usize,
    /// The run's aggregate counters.
    pub stats: TopoStreamStats,
    /// Streamed MCT distribution (picosecond buckets).
    pub hist: LogHistogram,
    /// Completions per 1 µs window of simulated time.
    pub throughput: Throughput,
    /// `VmHWM` in kB when the run finished, if procfs is available.
    pub peak_rss_kb: Option<u64>,
}

impl ScaleRun {
    /// Streamed MCT percentile in nanoseconds.
    pub fn percentile_ns(&self, p: f64) -> f64 {
        self.hist.percentile(p) as f64 / 1000.0
    }
}

/// The full measurement: baseline and full-scale runs plus the
/// baseline-scale exact-vs-streamed percentile cross-check.
pub struct MemReport {
    /// Shard count both runs used.
    pub shards: usize,
    /// The `flows/10` run (also the accuracy-check scale).
    pub baseline: ScaleRun,
    /// The full run.
    pub full: ScaleRun,
    /// Exact nearest-rank `[p50, p99, p99.9]` of the baseline run's MCTs
    /// in nanoseconds, from a retained [`Summary`].
    pub exact_ns: [f64; 3],
    /// The baseline histogram's same three percentiles in nanoseconds.
    pub streamed_ns: [f64; 3],
}

/// Runs the workload at `flows` scale through the streaming path,
/// folding MCTs into a histogram (and `also` — the exact oracle — when
/// given).
fn run_scale(
    flows: usize,
    shards: usize,
    faults: &[FaultEvent],
    mut also: Option<&mut Summary>,
) -> ScaleRun {
    let topo = scenarios::leaf_spine_288(1);
    let wl = scenarios::rack_workload_288(0.6, 0.5, flows);
    let proto = TopoEdm::new(TopoEdmConfig {
        faults: faults.to_vec(),
        max_retries: 3,
        ..TopoEdmConfig::default()
    });
    let mut hist = LogHistogram::new();
    let mut throughput = Throughput::new(Duration::from_us(1));
    let stats = {
        let sink = |o: edm_topo::TopoOutcome| {
            if let (Some(mct), FlowStatus::Delivered(at)) = (o.mct(), o.status) {
                hist.record_duration(mct);
                throughput.record(at, o.flow.size as u64);
                if let Some(exact) = also.as_deref_mut() {
                    exact.record_duration(mct);
                }
            }
        };
        if shards > 1 {
            proto.simulate_sharded_streamed(&topo, wl.source(42), sink, shards)
        } else {
            proto.simulate_streamed(&topo, wl.source(42), sink)
        }
    };
    ScaleRun {
        flows,
        stats,
        hist,
        throughput,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Measures the streaming lifecycle at `flows` total flows (baseline at
/// a tenth of that) on `shards` shards.
///
/// # Panics
///
/// Panics if the streamed percentiles leave the documented
/// [`LogHistogram::MAX_RELATIVE_ERROR`] band around the exact ones, or
/// if the full run's resident high-water marks are not flat relative to
/// the baseline's (checked once the baseline is large enough to outlive
/// the arrival ramp) — the two properties the streaming lifecycle exists
/// to provide.
pub fn measure(flows: usize, shards: usize) -> MemReport {
    measure_with(flows, shards, &[])
}

/// Simulated-time span of the baseline (`flows/10`) arrival process —
/// the anchor for placing fault schedules so the *same* absolute-time
/// schedule lands mid-stream in both the baseline and the full run.
pub fn baseline_span(flows: usize) -> Duration {
    let baseline_flows = (flows / 10).max(1);
    let last = scenarios::rack_workload_288(0.6, 0.5, baseline_flows)
        .source(42)
        .last()
        .expect("non-empty workload");
    last.arrival.saturating_since(edm_sim::Time::ZERO)
}

/// [`measure`], but both runs replay the given fault/repair schedule
/// (with bounded retries) — the fault-path variant of the flatness and
/// accuracy gates. The schedule applies at identical absolute times in
/// both runs; place it inside [`baseline_span`] so the baseline sees it
/// too.
pub fn measure_with(flows: usize, shards: usize, faults: &[FaultEvent]) -> MemReport {
    let baseline_flows = (flows / 10).max(1);
    let mut exact = Summary::new();
    let baseline = run_scale(baseline_flows, shards, faults, Some(&mut exact));
    let full = run_scale(flows, shards, faults, None);

    let mut exact_ns = [0.0; 3];
    let mut streamed_ns = [0.0; 3];
    for (i, &p) in PERCENTILES[..3].iter().enumerate() {
        exact_ns[i] = exact.percentile(p);
        streamed_ns[i] = baseline.percentile_ns(p);
        // Both are nearest-rank, so the histogram's bucket upper bound
        // brackets the exact sample from above within one bucket width.
        assert!(
            streamed_ns[i] >= exact_ns[i] - 1e-9
                && streamed_ns[i] <= exact_ns[i] * (1.0 + LogHistogram::MAX_RELATIVE_ERROR),
            "p{p}: streamed {} ns vs exact {} ns exceeds the documented bound",
            streamed_ns[i],
            exact_ns[i],
        );
    }

    // Flatness: 10× the flows must not grow the resident footprint —
    // high-water marks track the active population, which the arrival
    // process (not the total count) determines. The longer run samples
    // the population peak more often, so allow modest growth, never the
    // ~10× a leak would show. Only demonstrable once the baseline run
    // outlives the arrival ramp — its HWM strictly below its own flow
    // count means the steady-state population, not the workload size,
    // set the peak; tiny smoke scales skip the gate.
    if baseline.stats.active_high_water < baseline.flows {
        assert!(
            full.stats.active_high_water <= 2 * baseline.stats.active_high_water,
            "active-flow HWM grew {} -> {} over a 10x run: flows are not retiring",
            baseline.stats.active_high_water,
            full.stats.active_high_water,
        );
        assert!(
            full.stats.msg_slots_high_water <= 2 * baseline.stats.msg_slots_high_water,
            "msg-slot HWM grew {} -> {} over a 10x run: slots are not recycling",
            baseline.stats.msg_slots_high_water,
            full.stats.msg_slots_high_water,
        );
    }

    MemReport {
        shards,
        baseline,
        full,
        exact_ns,
        streamed_ns,
    }
}

impl MemReport {
    /// Renders the report as the `BENCH_mem.json` document.
    pub fn to_json(&self) -> String {
        let rss = |r: &ScaleRun| {
            r.peak_rss_kb
                .map(|kb| kb.to_string())
                .unwrap_or_else(|| "null".into())
        };
        let mut json = String::from("{\n  \"group\": \"mem\",\n");
        json.push_str(&format!(
            "  \"flows\": {},\n  \"baseline_flows\": {},\n  \"shards\": {},\n",
            self.full.flows, self.baseline.flows, self.shards
        ));
        // Per-point stream-stat records: one per measured run, so memory
        // regressions (HWM creep, stalled retirement) are visible in the
        // committed artifact itself, not only in CI assertion failures.
        json.push_str("  \"points\": [\n");
        for (i, (name, r)) in [("baseline", &self.baseline), ("full", &self.full)]
            .iter()
            .enumerate()
        {
            let s = &r.stats;
            let comma = if i == 0 { "," } else { "" };
            json.push_str(&format!(
                "    {{\"name\": \"{name}\", \"flows\": {}, \"active_high_water\": {}, \
                 \"msg_slots_high_water\": {}, \"admitted\": {}, \"retired\": {}, \
                 \"delivered\": {}, \"failed\": {}, \"reroutes\": {}, \"retried\": {}, \
                 \"readmitted\": {}, \"events\": {}, \"peak_rss_kb\": {}}}{comma}\n",
                r.flows,
                s.active_high_water,
                s.msg_slots_high_water,
                s.admitted,
                s.delivered + s.failed,
                s.delivered,
                s.failed,
                s.reroutes,
                s.retried,
                s.readmitted,
                s.events,
                rss(r),
            ));
        }
        json.push_str("  ],\n");
        json.push_str(&format!(
            "  \"peak_rss_kb\": {},\n  \"baseline_peak_rss_kb\": {},\n",
            rss(&self.full),
            rss(&self.baseline)
        ));
        json.push_str(&format!(
            "  \"active_flow_hwm\": {},\n  \"baseline_active_flow_hwm\": {},\n",
            self.full.stats.active_high_water, self.baseline.stats.active_high_water
        ));
        json.push_str(&format!(
            "  \"msg_slots_hwm\": {},\n  \"delivered\": {},\n  \"failed\": {},\n  \"events\": {},\n",
            self.full.stats.msg_slots_high_water,
            self.full.stats.delivered,
            self.full.stats.failed,
            self.full.stats.events
        ));
        json.push_str(&format!(
            "  \"mct_ns\": {{\"p50\": {:.1}, \"p99\": {:.1}, \"p99_9\": {:.1}, \"p99_99\": {:.1}, \"max\": {:.1}}},\n",
            self.full.percentile_ns(50.0),
            self.full.percentile_ns(99.0),
            self.full.percentile_ns(99.9),
            self.full.percentile_ns(99.99),
            self.full.hist.max() as f64 / 1000.0
        ));
        json.push_str(&format!(
            "  \"exact_check_ns\": {{\"p50\": {:.1}, \"p99\": {:.1}, \"p99_9\": {:.1}, \"streamed_p50\": {:.1}, \"streamed_p99\": {:.1}, \"streamed_p99_9\": {:.1}, \"max_relative_error\": {}}},\n",
            self.exact_ns[0],
            self.exact_ns[1],
            self.exact_ns[2],
            self.streamed_ns[0],
            self.streamed_ns[1],
            self.streamed_ns[2],
            LogHistogram::MAX_RELATIVE_ERROR
        ));
        json.push_str(&format!(
            "  \"throughput\": {{\"window_us\": 1, \"windows\": {}, \"peak_ops_per_window\": {}, \"total_ops\": {}}}\n",
            self.full.throughput.windows(),
            self.full.throughput.peak_ops(),
            self.full.throughput.total_ops()
        ));
        json.push_str("}\n");
        json
    }

    /// Writes `BENCH_mem.json` into `dir`.
    pub fn write(&self, dir: &std::path::Path) {
        let path = dir.join("BENCH_mem.json");
        std::fs::write(&path, self.to_json()).expect("write baseline file");
        println!("wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_readable_and_plausible() {
        let kb = peak_rss_kb().expect("procfs on linux");
        // A running test binary occupies at least a megabyte and (sanity
        // cap) less than a terabyte.
        assert!(kb > 1_024 && kb < 1 << 30, "{kb}");
    }

    #[test]
    fn fault_path_stays_flat_and_terminal() {
        // A mid-run spine flap must not break the flatness gates inside
        // measure_with (they assert), and every flow still terminates.
        let topo = scenarios::leaf_spine_288(1);
        let faults = crate::faults::mid_run_spine_flap(&topo, baseline_span(20_000));
        let report = measure_with(20_000, 1, &faults);
        assert_eq!(
            report.full.stats.delivered + report.full.stats.failed,
            20_000
        );
        assert!(report.full.stats.active_high_water < 5_000);
    }

    #[test]
    fn small_scale_report_is_consistent() {
        // 20k flows is past the arrival ramp (steady-state active
        // population ≈ 3.5k), so retirement is observable: the HWM must
        // sit far below the total flow count.
        let report = measure(20_000, 1);
        assert_eq!(report.baseline.flows, 2_000);
        assert_eq!(
            report.full.stats.delivered + report.full.stats.failed,
            20_000
        );
        assert!(report.full.stats.active_high_water < 5_000);
        let json = report.to_json();
        assert!(json.contains("\"group\": \"mem\""));
        assert!(json.contains("\"flows\": 20000"));
        // Both runs appear as per-point stream-stat records.
        assert!(json.contains("\"name\": \"baseline\""));
        assert!(json.contains("\"name\": \"full\""));
        assert!(json.contains("\"retired\": 20000"));
    }
}
