//! Regenerates **Figure 5**: the cycle-level breakdown of EDM's fabric
//! latency for a 64 B read and write (one clock cycle = 2.56 ns).
//!
//! Run: `cargo run --release -p edm-bench --bin fig5`

use edm_core::stack::{self, cycles};

fn stage(name: &str, cy: u64) {
    println!("  {name:<46} {cy:>3} cycles = {}", cycles(cy));
}

fn main() {
    println!("Figure 5: EDM latency breakdown, 64 B read/write (cycle = 2.56 ns)");
    println!();
    println!("READ (RREQ -> RRES):");
    stage(
        "compute TX: generate RREQ /M*/",
        stack::host::GEN_NOTIFY_OR_RREQ,
    );
    stage(
        "switch: identify + notification enqueue + fwd",
        stack::switch_read_cycles(),
    );
    stage(
        "memory RX: parse RREQ, to mem controller",
        stack::host::RX_RREQ,
    );
    stage("memory TX: grant queue read", stack::host::READ_GRANT_QUEUE);
    stage(
        "memory TX: generate RRES data blocks",
        stack::host::GEN_DATA_BLOCK,
    );
    stage("compute RX: parse RRES, deliver", stack::host::RX_DATA);
    println!(
        "  EDM logic total (read): {} cycles = {}",
        stack::compute_node_read_cycles()
            + stack::switch_read_cycles()
            + stack::memory_node_read_cycles(),
        cycles(
            stack::compute_node_read_cycles()
                + stack::switch_read_cycles()
                + stack::memory_node_read_cycles()
        )
    );
    println!();
    println!("WRITE (/N/ -> /G/ -> WREQ):");
    stage("compute TX: generate /N/", stack::host::GEN_NOTIFY_OR_RREQ);
    stage(
        "switch: /N/ identify + enqueue",
        stack::switch::IDENTIFY + stack::switch::ENQUEUE_NOTIFICATION,
    );
    stage(
        "switch: generate /G/ (+ scheduler pop)",
        stack::switch::GEN_GRANT + 3,
    );
    stage("compute RX: process /G/", stack::host::RX_GRANT);
    stage(
        "compute TX: grant queue read",
        stack::host::READ_GRANT_QUEUE,
    );
    stage(
        "compute TX: generate WREQ data blocks",
        stack::host::GEN_DATA_BLOCK,
    );
    stage("switch: forward WREQ RX->TX", stack::switch::FORWARD);
    stage(
        "memory RX: parse WREQ, to mem controller",
        stack::host::RX_DATA,
    );
    println!(
        "  EDM logic total (write): {} cycles = {}",
        stack::compute_node_write_cycles()
            + stack::switch_write_cycles()
            + stack::memory_node_write_cycles(),
        cycles(
            stack::compute_node_write_cycles()
                + stack::switch_write_cycles()
                + stack::memory_node_write_cycles()
        )
    );
    println!();
    println!("Per-node Table-1 'blue' entries (EDM logic only):");
    for (label, cy) in [
        ("compute node, read", stack::compute_node_read_cycles()),
        ("compute node, write", stack::compute_node_write_cycles()),
        ("switch, read", stack::switch_read_cycles()),
        ("switch, write", stack::switch_write_cycles()),
        ("memory node, read", stack::memory_node_read_cycles()),
        ("memory node, write", stack::memory_node_write_cycles()),
    ] {
        println!("  {label:<22} {cy:>3} cycles = {}", cycles(cy));
    }
    println!();
    println!(
        "network stack totals: read {}, write {} (paper: 107.52 ns / 104.96 ns)",
        stack::network_stack_read_latency(),
        stack::network_stack_write_latency()
    );
}
