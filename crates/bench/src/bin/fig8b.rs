//! Regenerates **Figure 8b**: mean message completion time (MCT) on
//! heavy-tailed disaggregated-application traces, normalized by the ideal
//! (solo) completion time per message, for all seven protocols.
//!
//! Run: `cargo run --release -p edm-bench --bin fig8b`
//!
//! Optional env: `EDM_FLOWS` (default 3000), `EDM_SEED` (default 42),
//! `EDM_LOAD` (default 0.8).

use edm_baselines::prelude::*;
use edm_bench::SoloCurve;
use edm_core::sim::{ClusterConfig, EdmProtocol, FlowKind};
use edm_sim::{Bandwidth, Summary};
use edm_workloads::AppTrace;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let count = env_f64("EDM_FLOWS", 3000.0) as usize;
    let seed = env_f64("EDM_SEED", 42.0) as u64;
    let load = env_f64("EDM_LOAD", 0.8);
    let cluster = ClusterConfig::default();
    let link = Bandwidth::from_gbps(100);

    println!("Figure 8b: normalized mean MCT on application traces (load {load})");
    println!();
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "application", "EDM", "IRD", "pFabric", "PFC", "DCTCP", "CXL", "Fastpass"
    );

    // One thread per (application, protocol) point: each point is an
    // independent simulation, so they fan out across cores. Each app's
    // trace is generated once and shared by its seven protocol points.
    let apps = AppTrace::all();
    let n_protocols = all_protocols().len();
    let traces: Vec<_> = apps
        .iter()
        .map(|app| app.generate(cluster.nodes, link, load, count, seed))
        .collect();
    let points: Vec<(usize, usize)> = (0..apps.len())
        .flat_map(|ai| (0..n_protocols).map(move |pi| (ai, pi)))
        .collect();
    let cells = edm_bench::par_sweep(points, |(ai, pi)| {
        let app = &apps[ai];
        let flows = &traces[ai];
        let max_size = app.cdf().max_value() as u32;
        let mut protocol = all_protocols().swap_remove(pi);
        let protocol = protocol.as_mut();
        let write_curve = SoloCurve::measure(protocol, &cluster, FlowKind::Write, max_size);
        let read_curve = SoloCurve::measure(protocol, &cluster, FlowKind::Read, max_size);
        let solo = |f: &edm_core::sim::Flow| {
            let ns = match f.kind {
                FlowKind::Write => write_curve.solo_ns(f.size),
                FlowKind::Read => read_curve.solo_ns(f.size),
            };
            edm_sim::Duration::from_ns_f64(ns)
        };
        let norm = if protocol.name() == "EDM" {
            // The EDM point streams the trace through the lazy-admission
            // path (bit-identical to the materialized run), retiring
            // flows as they complete instead of retaining every outcome.
            let mut norm = Summary::new();
            EdmProtocol::default().simulate_streamed(&cluster, flows.iter().copied(), |o| {
                norm.record(o.mct().ratio(solo(&o.flow)));
            });
            norm
        } else {
            protocol.simulate(&cluster, flows).normalized_mct(solo)
        };
        format!("{:.2}", norm.mean())
    });
    for (ai, app) in apps.iter().enumerate() {
        print!("{:<22}", app.name());
        for c in &cells[ai * n_protocols..(ai + 1) * n_protocols] {
            print!(" {c:>9}");
        }
        println!();
    }
    println!();
    println!(
        "paper shape: EDM 1.26-1.47x ideal (best); CXL and Fastpass \
         degrade most (HOL blocking / control bottleneck), with CXL MCT up \
         to ~8x EDM's."
    );
}
