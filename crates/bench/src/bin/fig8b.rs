//! Regenerates **Figure 8b**: mean message completion time (MCT) on
//! heavy-tailed disaggregated-application traces, normalized by the ideal
//! (solo) completion time per message, for all seven protocols.
//!
//! Run: `cargo run --release -p edm-bench --bin fig8b`
//!
//! Optional env: `EDM_FLOWS` (default 3000), `EDM_SEED` (default 42),
//! `EDM_LOAD` (default 0.8).

use edm_baselines::prelude::*;
use edm_bench::SoloCurve;
use edm_core::sim::{ClusterConfig, FlowKind};
use edm_sim::Bandwidth;
use edm_workloads::AppTrace;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let count = env_f64("EDM_FLOWS", 3000.0) as usize;
    let seed = env_f64("EDM_SEED", 42.0) as u64;
    let load = env_f64("EDM_LOAD", 0.8);
    let cluster = ClusterConfig::default();
    let link = Bandwidth::from_gbps(100);

    println!("Figure 8b: normalized mean MCT on application traces (load {load})");
    println!();
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "application", "EDM", "IRD", "pFabric", "PFC", "DCTCP", "CXL", "Fastpass"
    );

    for app in AppTrace::all() {
        let max_size = app.cdf().max_value() as u32;
        let flows = app.generate(cluster.nodes, link, load, count, seed);
        let mut cells = Vec::new();
        for mut protocol in all_protocols() {
            let write_curve =
                SoloCurve::measure(protocol.as_mut(), &cluster, FlowKind::Write, max_size);
            let read_curve =
                SoloCurve::measure(protocol.as_mut(), &cluster, FlowKind::Read, max_size);
            let result = protocol.simulate(&cluster, &flows);
            let norm = result.normalized_mct(|f| {
                let solo = match f.kind {
                    FlowKind::Write => write_curve.solo_ns(f.size),
                    FlowKind::Read => read_curve.solo_ns(f.size),
                };
                edm_sim::Duration::from_ns_f64(solo)
            });
            cells.push(format!("{:.2}", norm.mean()));
        }
        print!("{:<22}", app.name());
        for c in cells {
            print!(" {c:>9}");
        }
        println!();
    }
    println!();
    println!(
        "paper shape: EDM 1.26-1.47x ideal (best); CXL and Fastpass \
         degrade most (HOL blocking / control bottleneck), with CXL MCT up \
         to ~8x EDM's."
    );
}
