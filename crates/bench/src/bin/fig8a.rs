//! Regenerates **Figure 8a**: average latency of random 64 B remote reads
//! and writes on a 144-node cluster, normalized by each protocol's own
//! unloaded latency, across network loads — and (with `--mix`) the
//! write:read mixture panel at load 0.8.
//!
//! Run:
//!   `cargo run --release -p edm-bench --bin fig8a`
//!   `cargo run --release -p edm-bench --bin fig8a -- --mix`
//!
//! Optional env: `EDM_FLOWS` (default 4000), `EDM_SEED` (default 42).

use edm_baselines::prelude::*;
use edm_core::sim::{solo_mct, ClusterConfig, EdmProtocol, FlowKind};
use edm_sim::Summary;
use edm_workloads::SyntheticWorkload;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run_panel(loads_or_mixes: &[(f64, f64, String)], count: usize, seed: u64) {
    let cluster = ClusterConfig::default();
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "", "EDM", "IRD", "pFabric", "PFC", "DCTCP", "CXL", "Fastpass"
    );
    // One thread per (load, protocol) point: the sweeps are independent
    // simulations, so they fan out across cores. Each load row's workload
    // is generated once and shared by its seven protocol points.
    let n_protocols = all_protocols().len();
    let workloads: Vec<Vec<edm_core::sim::Flow>> = loads_or_mixes
        .iter()
        .map(|&(load, wf, _)| SyntheticWorkload::paper_default(load, wf, count).generate(seed))
        .collect();
    let points: Vec<(usize, usize)> = (0..loads_or_mixes.len())
        .flat_map(|ri| (0..n_protocols).map(move |pi| (ri, pi)))
        .collect();
    let cells = edm_bench::par_sweep(points, |(ri, pi)| {
        let flows = &workloads[ri];
        let mut protocol = all_protocols().swap_remove(pi);
        let protocol = protocol.as_mut();
        // Normalize by the protocol's own unloaded latency (one write
        // and one read probe; weight by the mix).
        let probe_w = edm_core::sim::Flow {
            id: 0,
            src: 0,
            dst: cluster.nodes - 1,
            size: 64,
            arrival: edm_sim::Time::ZERO,
            kind: FlowKind::Write,
        };
        let probe_r = edm_core::sim::Flow {
            kind: FlowKind::Read,
            ..probe_w
        };
        let solo_w = solo_mct(protocol, &cluster, &probe_w);
        let solo_r = solo_mct(protocol, &cluster, &probe_r);
        let norm = if protocol.name() == "EDM" {
            // The EDM point pulls its arrivals lazily from the workload
            // source (bit-identical to the materialized run) so the
            // harness holds O(active flows) instead of the whole trace,
            // like the topo-scale streaming harnesses.
            let (load, wf, _) = &loads_or_mixes[ri];
            let wl = SyntheticWorkload::paper_default(*load, *wf, count);
            let mut norm = Summary::new();
            EdmProtocol::default().simulate_streamed(&cluster, wl.source(seed), |o| {
                norm.record(o.mct().ratio(match o.flow.kind {
                    FlowKind::Write => solo_w,
                    FlowKind::Read => solo_r,
                }));
            });
            norm
        } else {
            protocol
                .simulate(&cluster, flows)
                .normalized_mct(|f| match f.kind {
                    FlowKind::Write => solo_w,
                    FlowKind::Read => solo_r,
                })
        };
        format!("{:.2}", norm.mean())
    });
    for (ri, (_, _, label)) in loads_or_mixes.iter().enumerate() {
        print!("{label:<12}");
        for c in &cells[ri * n_protocols..(ri + 1) * n_protocols] {
            print!(" {c:>9}");
        }
        println!();
    }
}

fn main() {
    let count = env_u64("EDM_FLOWS", 4000) as usize;
    let seed = env_u64("EDM_SEED", 42);
    let mix_panel = std::env::args().any(|a| a == "--mix");

    if mix_panel {
        println!("Figure 8a (right): write:read mixes at load 0.8, normalized mean latency");
        println!();
        let mixes: Vec<(f64, f64, String)> = [(100, 0), (80, 20), (50, 50), (20, 80), (0, 100)]
            .iter()
            .map(|&(w, r)| (0.8, w as f64 / 100.0, format!("{w}:{r}")))
            .collect();
        run_panel(&mixes, count, seed);
        println!();
        println!("paper shape: EDM stays ~1.2-1.35x across all mixes.");
    } else {
        println!("Figure 8a: 64 B all-to-all, normalized mean latency vs load");
        println!();
        println!("--- writes (WREQ 64 B) ---");
        let loads: Vec<(f64, f64, String)> = [0.2, 0.4, 0.6, 0.8, 0.9]
            .iter()
            .map(|&l| (l, 1.0, format!("load {l}")))
            .collect();
        run_panel(&loads, count, seed);
        println!();
        println!("--- reads (8 B RREQ -> 64 B RRES) ---");
        let loads: Vec<(f64, f64, String)> = [0.2, 0.4, 0.6, 0.8, 0.9]
            .iter()
            .map(|&l| (l, 0.0, format!("load {l}")))
            .collect();
        run_panel(&loads, count, seed);
        println!();
        println!(
            "paper shape: EDM reads within 1.2x / writes within 1.4x of \
             unloaded at every load; IRD close at low load but degrading; \
             reactive protocols (pFabric/PFC/DCTCP, identical here because \
             flows are single-packet) worse; CXL degrades via HOL blocking; \
             Fastpass orders of magnitude worse (control-channel bottleneck)."
        );
    }
}
