//! Ablation (§3.1.2 / §4.3): the X parameter — maximum active
//! notifications per source–destination pair. The paper: "we empirically
//! find that the value of X = 3 works best".
//!
//! Sweeps X over the all-to-all microbenchmark at load 0.8 and reports
//! the normalized mean/p99 latency, plus the notification-queue SRAM the
//! switch must provision (K·N·X bytes).
//!
//! Run: `cargo run --release -p edm-bench --bin x_sweep`

use edm_core::sim::{solo_mct, ClusterConfig, EdmProtocol, FabricProtocol, Flow, FlowKind};
use edm_workloads::SyntheticWorkload;

fn main() {
    // A hot 16-node cluster so that source-destination pairs actually
    // carry several concurrent messages (on 144 nodes with uniform
    // destinations, pairs are too cold for X to bind).
    let cluster = ClusterConfig {
        nodes: 16,
        ..ClusterConfig::default()
    };
    let flows = SyntheticWorkload {
        nodes: 16,
        link: cluster.link,
        load: 0.9,
        size: 64,
        write_fraction: 0.5,
        count: 6000,
    }
    .generate(42);
    println!("X-parameter sweep: 64 B all-to-all, 16 hot nodes, load 0.9 (paper: X=3 best)");
    println!();
    println!(
        "{:<4} {:>12} {:>12} {:>18}",
        "X", "norm. mean", "norm. p99", "queue bound/port"
    );
    // One thread per X value: independent simulations fan out via
    // par_sweep, printed in input order.
    let rows = edm_bench::par_sweep(vec![1usize, 2, 3, 4, 6, 8], |x| {
        let mut p = EdmProtocol {
            max_active_per_pair: x,
            ..EdmProtocol::default()
        };
        let probe = flows[0];
        let solo_w = solo_mct(
            &mut p,
            &cluster,
            &Flow {
                kind: FlowKind::Write,
                ..probe
            },
        );
        let solo_r = solo_mct(
            &mut p,
            &cluster,
            &Flow {
                kind: FlowKind::Read,
                ..probe
            },
        );
        let r = p.simulate(&cluster, &flows);
        let mut norm = r.normalized_mct(|f| match f.kind {
            FlowKind::Write => solo_w,
            FlowKind::Read => solo_r,
        });
        // §3.1.2: queue bound X*N entries; §4.1: K*N^2 bytes total SRAM
        // (K = notification length ≈ 8 B including metadata).
        let entries = x * cluster.nodes;
        format!(
            "{:<4} {:>12.3} {:>12.3} {:>13} ents",
            x,
            norm.mean(),
            norm.percentile(99.0),
            entries
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!();
    println!(
        "expected shape: X=1 leaves tail latency on the table (a hot pair \
         stalls between its messages); X=3 recovers it; larger X only \
         grows switch SRAM — the paper's knee."
    );
}
