//! Regenerates **Table 1**: Ethernet fabric latency for remote read and
//! write, for TCP/IP (hardware), RoCEv2, raw Ethernet, and EDM.
//!
//! The EDM column is *derived* from the per-stage cycle model
//! (`edm_core::stack`); the baselines use the per-layer constants the
//! paper measured. Run: `cargo run --release -p edm-bench --bin table1`

use edm_baselines::stacks;
use edm_bench::{ns, row};
use edm_core::latency::{edm_read, edm_write, FabricLatency};

fn main() {
    let columns: Vec<FabricLatency> = vec![
        stacks::tcp_read(),
        stacks::tcp_write(),
        stacks::rocev2_read(),
        stacks::rocev2_write(),
        stacks::raw_ethernet_read(),
        stacks::raw_ethernet_write(),
        edm_read(),
        edm_write(),
    ];

    println!("Table 1: Ethernet fabric latency for remote read/write");
    println!();
    row(
        "",
        &columns
            .iter()
            .map(|c| c.stack.split(' ').next().unwrap_or(c.stack).to_string())
            .collect::<Vec<_>>(),
    );
    row(
        "",
        &columns.iter().map(|c| c.op.to_string()).collect::<Vec<_>>(),
    );
    println!("{}", "-".repeat(22 + 11 * columns.len()));
    type FieldOf = fn(&FabricLatency) -> edm_sim::Duration;
    let fields: [(&str, FieldOf); 9] = [
        ("compute protocol", |c| c.compute_protocol),
        ("compute MAC", |c| c.compute_mac),
        ("compute PCS", |c| c.compute_pcs),
        ("switch L2 fwd", |c| c.switch_l2),
        ("switch MAC", |c| c.switch_mac),
        ("switch PCS", |c| c.switch_pcs),
        ("memory protocol", |c| c.memory_protocol),
        ("memory MAC", |c| c.memory_mac),
        ("memory PCS", |c| c.memory_pcs),
    ];
    for (label, f) in fields {
        row(label, &columns.iter().map(|c| ns(f(c))).collect::<Vec<_>>());
    }
    println!("{}", "-".repeat(22 + 11 * columns.len()));
    row(
        "network stack",
        &columns
            .iter()
            .map(|c| ns(c.network_stack_latency()))
            .collect::<Vec<_>>(),
    );
    row(
        "PMA/PMD passes",
        &columns
            .iter()
            .map(|c| format!("{}x19 ns", c.pma_pmd_passes))
            .collect::<Vec<_>>(),
    );
    row(
        "propagation",
        &columns
            .iter()
            .map(|c| format!("{}x10 ns", c.propagation_hops))
            .collect::<Vec<_>>(),
    );
    println!("{}", "=".repeat(22 + 11 * columns.len()));
    row(
        "TOTAL fabric latency",
        &columns.iter().map(|c| ns(c.total())).collect::<Vec<_>>(),
    );

    println!();
    println!("EDM speedup factors (paper: raw 3.7x/1.9x, RoCE 6.8x/3.4x, TCP 12.7x/6.4x):");
    let er = edm_read().total().as_ns_f64();
    let ew = edm_write().total().as_ns_f64();
    for (name, r, w) in [
        (
            "raw Ethernet",
            stacks::raw_ethernet_read().total().as_ns_f64(),
            stacks::raw_ethernet_write().total().as_ns_f64(),
        ),
        (
            "RoCEv2",
            stacks::rocev2_read().total().as_ns_f64(),
            stacks::rocev2_write().total().as_ns_f64(),
        ),
        (
            "TCP/IP (hw)",
            stacks::tcp_read().total().as_ns_f64(),
            stacks::tcp_write().total().as_ns_f64(),
        ),
    ] {
        println!("  vs {name:<13}: read {:.1}x, write {:.1}x", r / er, w / ew);
    }
}
