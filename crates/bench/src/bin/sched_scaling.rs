//! Ablation (§3.1.3): scheduler matching latency and minimum chunk size
//! as the switch scales from 16 to 512 ports, plus measured PIM iteration
//! counts under full demand.
//!
//! Run: `cargo run --release -p edm-bench --bin sched_scaling`

use edm_sched::pim::{min_chunk_for_line_rate, scheduling_latency, PimConfig, PimRunner};
use edm_sched::ASIC_CLOCK;
use edm_sim::{Bandwidth, Rng};

fn main() {
    let link = Bandwidth::from_gbps(100);
    println!("Scheduler scaling (3 GHz ASIC pipeline, 3 cycles/iteration):");
    println!();
    println!(
        "{:<8} {:>14} {:>14} {:>18}",
        "ports", "sched latency", "min chunk", "measured PIM iters"
    );
    let mut rng = Rng::seed_from(7);
    for ports in [16usize, 32, 64, 128, 256, 512] {
        // Measure average iterations to maximal matching under full
        // uniform demand (the hardest case).
        let trials = 20;
        let mut total_iters = 0usize;
        for _ in 0..trials {
            let mut demand = vec![Vec::new(); ports];
            for row in demand.iter_mut() {
                for s in 0..ports {
                    row.push((rng.below(1_000_000), s));
                }
                row.sort_unstable();
            }
            let mut pim = PimRunner::new(PimConfig::for_ports(ports));
            let all = vec![true; ports];
            let m = pim.run(&demand, &all, &all);
            assert_eq!(m.pairs.len(), ports, "full demand must match fully");
            total_iters += m.iterations;
        }
        let avg = total_iters as f64 / trials as f64;
        println!(
            "{:<8} {:>14} {:>12} B {:>18.1}",
            ports,
            format!("{}", scheduling_latency(ports, ASIC_CLOCK)),
            min_chunk_for_line_rate(ports, ASIC_CLOCK, link),
            avg
        );
    }
    println!();
    println!(
        "paper anchor (§3.1.3): a 512-port switch needs ~9 ns per maximal \
         matching (3*log2(512) cycles at 3 GHz) and therefore a 128 B \
         minimum chunk for line-rate scheduling at 100 Gb/s."
    );
}
