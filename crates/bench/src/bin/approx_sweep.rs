//! Approximate-engine validation and what-if grid harness.
//!
//! Two parts, one artifact:
//!
//! **Validation (part A)** — on the overlap sizes both engines can run
//! (144-node single switch, 288-node leaf–spine), simulate the same
//! flow set exactly and through [`edm_approx::ApproxEngine`], record
//! p50/p99 FCT error per point, and assert the documented
//! [`edm_approx::P99_ERROR_BOUND`] envelope at the calibrated loads
//! {0.4, 0.7} plus a trunk-fault scenario. One deliberately
//! out-of-envelope point (4 KiB messages at load 0.7) is recorded with
//! `in_envelope: false` so the estimator's breakdown regime stays
//! visible in committed artifacts. The same run times the exact engine
//! at 288 nodes for every grid load (the per-flow A/B behind the
//! reported extrapolation) and then runs the exact engine *directly* on
//! the full 1024-host fabric at every grid load — the measured, not
//! extrapolated, denominator every grid speedup is quoted against.
//!
//! **Grid (part B)** — a 1024-host leaf–spine what-if grid the exact
//! engine would grind through one full simulation at a time: every load
//! in {0.15, 0.3, 0.5, 0.7, 0.85} crossed with 21 failure variants
//! (healthy, trunk cuts, optics degradation, spine kills, double trunk
//! cuts, access cuts) = 105 scenarios. Scenarios share one
//! [`edm_approx::SweepCache`]; each load's healthy point builds a
//! [`edm_approx::SweepBase`] and fans its cold clusters over
//! `par_sweep` workers ([`edm_approx::simulate_batch`]), fault
//! variants go through [`edm_approx::SweepBase::estimate_delta`] so
//! only the clusters a fault touches are rebuilt and replayed.
//! The whole grid runs `EDM_GRID_PASSES` times with fresh caches and
//! each scenario reports its minimum wall-clock, the usual steal-noise
//! defense on shared runners.
//!
//! Run:
//!   `cargo run --release -p edm-bench --bin approx_sweep [-- --out DIR]`
//!
//! Env:
//!   `EDM_FLOWS` — flows per validation point (default 4,000)
//!   `EDM_GRID_FLOWS` — flows per grid scenario (default 20,000)
//!   `EDM_GRID_VARIANTS` — fault variants per load (default 21)
//!   `EDM_GRID_PASSES` — full grid passes, min taken (default 2)
//!   `EDM_REPS` — timing repetitions per validation point (default 3)
//!
//! The ≥10× speedup gate (mean and median per-scenario estimator
//! wall-clock vs the same-run direct exact cost at that scenario's
//! load) and the 100+-scenario floor are asserted only at full scale —
//! CI smoke runs shrink the knobs and still assert the error envelope.
//!
//! Writes `BENCH_approx.json` into `--out DIR` (default `.`).

use std::time::Instant;

use edm_approx::{
    apply_faults, simulate_batch, ApproxEngine, LinkCluster, SweepBase, SweepCache, P99_ERROR_BOUND,
};
use edm_bench::{par_sweep, row, scenarios};
use edm_core::sim::Flow;
use edm_sim::{Bandwidth, Duration, Summary, Time};
use edm_topo::{FaultEvent, FaultKind, LeafSpine, TopoEdm, TopoEdmConfig, Topology};
use edm_workloads::{RackAwareWorkload, SyntheticWorkload};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Minimum wall-clock of `reps` runs of `f`, in nanoseconds.
fn min_ns<F: FnMut()>(reps: usize, mut f: F) -> u64 {
    (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .min()
        .expect("at least one rep")
}

fn rack_workload(
    nodes: usize,
    racks: usize,
    load: f64,
    size: u32,
    count: usize,
) -> RackAwareWorkload {
    RackAwareWorkload {
        nodes,
        racks,
        link: Bandwidth::from_gbps(100),
        load,
        size,
        write_fraction: 0.5,
        local_fraction: 0.5,
        count,
    }
}

fn p(s: &mut Summary, q: f64) -> f64 {
    assert!(!s.is_empty());
    s.percentile(q)
}

/// One exact-vs-approx validation point on an overlap size.
struct Overlap {
    name: String,
    hosts: usize,
    load: f64,
    size: u32,
    p50_err: f64,
    p99_err: f64,
    in_envelope: bool,
    asserted: bool,
    exact_ns: u64,
    approx_ns: u64,
}

/// Runs one overlap comparison: the exact engine sees `cfg` (fault
/// events and all); the estimator sees the post-fault fabric statically.
#[allow(clippy::too_many_arguments)]
fn overlap_point(
    name: &str,
    hosts: usize,
    load: f64,
    size: u32,
    topo: &Topology,
    cfg: &TopoEdmConfig,
    flows: &[Flow],
    reps: usize,
    asserted: bool,
) -> Overlap {
    let exact_eng = TopoEdm::new(cfg.clone());
    let mut what_if = topo.clone();
    let static_faults: Vec<FaultKind> = cfg.faults.iter().map(|f| f.kind).collect();
    apply_faults(&mut what_if, &static_faults);
    let mut est_cfg = cfg.clone();
    est_cfg.faults.clear();
    let approx_eng = ApproxEngine::new(est_cfg);

    let exact = exact_eng.simulate(topo, flows);
    let est = approx_eng.estimate(&what_if, flows);
    assert_eq!(est.delivered(), exact.delivered(), "{name}: deliverability");
    let mut xs = Summary::new();
    for o in &exact.outcomes {
        if let Some(m) = o.mct() {
            xs.record_duration(m);
        }
    }
    let mut es = est.mct_summary();
    let err = |q: f64, xs: &mut Summary, es: &mut Summary| {
        let (x, e) = (p(xs, q), p(es, q));
        (e - x).abs() / x
    };
    let p50_err = err(50.0, &mut xs, &mut es);
    let p99_err = err(99.0, &mut xs, &mut es);
    let in_envelope = p50_err <= P99_ERROR_BOUND && p99_err <= P99_ERROR_BOUND;
    if asserted {
        assert!(
            in_envelope,
            "{name}: p50 {p50_err:.4} / p99 {p99_err:.4} outside the \
             documented {P99_ERROR_BOUND} envelope"
        );
    }

    let exact_ns = min_ns(reps, || {
        std::hint::black_box(exact_eng.simulate(topo, flows));
    });
    let approx_ns = min_ns(reps, || {
        std::hint::black_box(approx_eng.estimate(&what_if, flows));
    });
    Overlap {
        name: name.into(),
        hosts,
        load,
        size,
        p50_err,
        p99_err,
        in_envelope,
        asserted,
        exact_ns,
        approx_ns,
    }
}

/// The grid's deterministic fault-variant catalog: 21 what-if states of
/// the 1024-host fabric, weighted roughly like production fault logs —
/// optics degradations and single-host link cuts dominate, trunk cuts
/// are less common, and whole-spine losses are rare (but stay in the
/// grid: they are the scenarios a what-if sweep exists to price).
fn variants(topo: &Topology) -> Vec<(String, Vec<FaultKind>)> {
    let trunks: Vec<u32> = topo
        .links()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.is_trunk())
        .map(|(i, _)| i as u32)
        .collect();
    let hosts = topo.nodes();
    let spread = |i: usize, n: usize| trunks[(i * trunks.len()) / n];
    let mut v: Vec<(String, Vec<FaultKind>)> = vec![("healthy".into(), vec![])];
    for i in 0..6 {
        let t = spread(i, 6);
        v.push((format!("trunk_down_{t}"), vec![FaultKind::LinkDown(t)]));
    }
    for i in 0..6 {
        let t = spread(2 * i + 1, 12);
        v.push((
            format!("degrade_{t}"),
            vec![FaultKind::DegradeLink {
                link: t,
                extra: Duration::from_us(1),
            }],
        ));
    }
    // Spines are numbered after the leaves.
    let leaves = topo
        .links()
        .iter()
        .filter_map(|l| match l.a {
            edm_topo::Endpoint::Node(_) => match l.b {
                edm_topo::Endpoint::Port { switch, .. } => Some(switch + 1),
                edm_topo::Endpoint::Node(_) => None,
            },
            _ => None,
        })
        .max()
        .expect("hosts attach to leaves");
    for s in [leaves, leaves + 4] {
        v.push((format!("spine_down_{s}"), vec![FaultKind::SwitchDown(s)]));
    }
    {
        let (a, b) = (spread(0, 6), spread(3, 6));
        v.push((
            format!("double_trunk_{a}_{b}"),
            vec![FaultKind::LinkDown(a), FaultKind::LinkDown(b)],
        ));
    }
    for i in 0..5 {
        let n = (i * hosts) / 5 + i;
        v.push((
            format!("access_down_{n}"),
            vec![FaultKind::LinkDown(topo.node_link(n))],
        ));
    }
    v
}

/// Ensures every cluster in `clusters` has cached delays, fanning the
/// cold ones over `par_sweep` workers — the cache's
/// peek/insert/note_hits protocol.
fn fanout_clusters(cfg: &TopoEdmConfig, clusters: &[LinkCluster], cache: &mut SweepCache) {
    let mut hits = 0u64;
    let mut miss: Vec<usize> = Vec::new();
    for (i, c) in clusters.iter().enumerate() {
        if cache.peek(c).is_some() {
            hits += 1;
        } else {
            miss.push(i);
        }
    }
    cache.note_hits(hits);
    if !miss.is_empty() {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
            .min(miss.len());
        // Contiguous batches: neighbors in cluster order share port
        // shapes, so each worker's domain pool stays hot.
        let batches: Vec<Vec<usize>> = (0..workers)
            .map(|w| {
                let (lo, hi) = ((w * miss.len()) / workers, ((w + 1) * miss.len()) / workers);
                miss[lo..hi].to_vec()
            })
            .collect();
        let points: Vec<Vec<&LinkCluster>> = batches
            .iter()
            .map(|b| b.iter().map(|&i| &clusters[i]).collect())
            .collect();
        let results = par_sweep(points, |batch| simulate_batch(&batch, cfg));
        for (b, ds) in batches.iter().zip(results) {
            for (&i, dl) in b.iter().zip(ds) {
                cache.insert(&clusters[i], dl);
            }
        }
    }
}

struct GridPoint {
    load: f64,
    variant: String,
    est_ns: u64,
    exact_direct_ns: u64,
    exact_extrap_ns: u64,
    delivered: usize,
    failed: usize,
    clusters: usize,
    replays: u64,
    p50_ns: f64,
    p99_ns: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    let flows_n = env_u64("EDM_FLOWS", 4_000) as usize;
    let grid_flows = env_u64("EDM_GRID_FLOWS", 20_000) as usize;
    let variants_n = env_u64("EDM_GRID_VARIANTS", 21) as usize;
    let passes = env_u64("EDM_GRID_PASSES", 2) as usize;
    let reps = env_u64("EDM_REPS", 3) as usize;
    const GRID_LOADS: [f64; 5] = [0.15, 0.3, 0.5, 0.7, 0.85];
    let full_scale = grid_flows >= 20_000 && variants_n >= 21;

    println!(
        "approx_sweep: validation {flows_n} flows/point, grid {} loads x \
         {variants_n} variants x {grid_flows} flows, {passes} pass(es)\n",
        GRID_LOADS.len()
    );

    // ---- Part A: overlap validation --------------------------------
    let cfg = TopoEdmConfig::default();
    let mut overlap: Vec<Overlap> = Vec::new();

    let topo144 = edm_topo::cluster_topology(&edm_core::sim::ClusterConfig::default());
    for load in [0.4, 0.7] {
        let flows = SyntheticWorkload::paper_default(load, 0.5, flows_n).generate(42);
        overlap.push(overlap_point(
            &format!("single_switch_144/load_{load}"),
            144,
            load,
            64,
            &topo144,
            &cfg,
            &flows,
            reps,
            true,
        ));
    }

    let topo288 = Topology::leaf_spine(scenarios::leaf_spine_288_spec(1));
    for load in [0.4, 0.7] {
        let flows = rack_workload(288, 4, load, 64, flows_n).generate(42);
        overlap.push(overlap_point(
            &format!("leaf_spine_288/load_{load}"),
            288,
            load,
            64,
            &topo288,
            &cfg,
            &flows,
            reps,
            true,
        ));
    }

    // Trunk-fault scenario: the exact engine takes it as a t=0 event,
    // the estimator as a static degraded fabric.
    {
        let trunk = topo288
            .links()
            .iter()
            .position(|l| l.is_trunk())
            .expect("leaf-spine has trunks") as u32;
        let mut fcfg = cfg.clone();
        fcfg.faults.push(FaultEvent {
            at: Time::ZERO,
            kind: FaultKind::LinkDown(trunk),
        });
        let flows = rack_workload(288, 4, 0.7, 64, flows_n).generate(42);
        overlap.push(overlap_point(
            "leaf_spine_288/trunk_down/load_0.7",
            288,
            0.7,
            64,
            &topo288,
            &fcfg,
            &flows,
            reps,
            true,
        ));
    }

    // The documented breakdown regime, recorded but not asserted: at
    // multi-KiB messages per-hop serialization couples the links and the
    // independent per-link replays miss correlated delay.
    {
        let flows = rack_workload(288, 4, 0.7, 4096, flows_n).generate(42);
        overlap.push(overlap_point(
            "leaf_spine_288/size_4096/load_0.7",
            288,
            0.7,
            4096,
            &topo288,
            &cfg,
            &flows,
            reps,
            false,
        ));
    }

    row(
        "overlap",
        &[
            "load".into(),
            "size".into(),
            "p50err".into(),
            "p99err".into(),
            "exact_ms".into(),
            "approx_ms".into(),
            "envelope".into(),
        ],
    );
    for o in &overlap {
        row(
            &o.name,
            &[
                format!("{:.2}", o.load),
                o.size.to_string(),
                format!("{:.4}", o.p50_err),
                format!("{:.4}", o.p99_err),
                format!("{:.2}", o.exact_ns as f64 / 1e6),
                format!("{:.2}", o.approx_ns as f64 / 1e6),
                if o.in_envelope { "in" } else { "OUT" }.to_string(),
            ],
        );
    }

    // ---- Same-run A/B at 288 nodes for every grid load -------------
    // Grounds the grid's extrapolated exact cost: exact per-flow
    // wall-clock at the largest overlap size, per load.
    println!();
    let mut ab: Vec<(f64, u64, u64, usize)> = Vec::new(); // (load, exact_ns, approx_ns, flows)
    for &load in &GRID_LOADS {
        let flows = rack_workload(288, 4, load, 64, flows_n).generate(42);
        let exact_eng = TopoEdm::new(cfg.clone());
        let approx_eng = ApproxEngine::new(cfg.clone());
        let exact_ns = min_ns(reps, || {
            std::hint::black_box(exact_eng.simulate(&topo288, &flows));
        });
        let approx_ns = min_ns(reps, || {
            std::hint::black_box(approx_eng.estimate(&topo288, &flows));
        });
        row(
            &format!("ab_288/load_{load}"),
            &[
                format!("exact {:.2} ms", exact_ns as f64 / 1e6),
                format!("approx {:.2} ms", approx_ns as f64 / 1e6),
                format!(
                    "{:.2} us/flow exact",
                    exact_ns as f64 / 1e3 / flows.len() as f64
                ),
            ],
        );
        ab.push((load, exact_ns, approx_ns, flows.len()));
    }
    // Naively extrapolated exact cost of one grid scenario at `load`:
    // the 288-node per-flow cost times the grid flow count. The direct
    // calibration below shows this understates the true 1024-host cost
    // (more switches, deeper heaps), so it is reported but never used
    // as a speedup denominator.
    let extrap_ns = |load: f64| -> u64 {
        let &(_, exact_ns, _, n) = ab
            .iter()
            .find(|(l, ..)| *l == load)
            .expect("every grid load has an A/B point");
        (exact_ns as f64 / n as f64 * grid_flows as f64) as u64
    };

    // ---- Direct 1024-host exact calibration, per grid load ---------
    // The grid fabric is still small enough to run the exact engine on
    // directly, so the speedup denominator is a same-run measurement,
    // not an extrapolation: one exact 1024-host run per load (min of
    // 2). Fault variants cost the exact engine the same as healthy runs
    // (fewer routable flows, same event volume), so the healthy direct
    // cost stands in for every variant at that load. Beyond this size
    // you would fall back to the extrapolation, whose per-load
    // calibration factor this section also reports.
    let spec1024 = LeafSpine::symmetric(16, 8, 64, 8);
    let topo1024 = Topology::leaf_spine(spec1024);
    println!();
    let direct: Vec<(f64, u64)> = GRID_LOADS
        .iter()
        .map(|&load| {
            let flows = rack_workload(1024, 16, load, 64, grid_flows).generate(42);
            let eng = TopoEdm::new(cfg.clone());
            let ns = min_ns(2, || {
                std::hint::black_box(eng.simulate(&topo1024, &flows));
            });
            row(
                &format!("calibration/load_{load}"),
                &[
                    format!("exact 1024-host {:.1} ms", ns as f64 / 1e6),
                    format!("extrapolation {:.1} ms", extrap_ns(load) as f64 / 1e6),
                    format!("factor {:.2}", ns as f64 / extrap_ns(load) as f64),
                ],
            );
            (load, ns)
        })
        .collect();
    let direct_ns = |load: f64| -> u64 {
        direct
            .iter()
            .find(|(l, _)| *l == load)
            .expect("every grid load measured directly")
            .1
    };
    println!();

    // ---- Part B: the what-if grid ----------------------------------
    let vars = {
        let mut v = variants(&topo1024);
        v.truncate(variants_n);
        v
    };
    let eng = ApproxEngine::new(cfg.clone());
    let loads: Vec<(f64, Vec<Flow>)> = GRID_LOADS
        .iter()
        .map(|&l| (l, rack_workload(1024, 16, l, 64, grid_flows).generate(42)))
        .collect();

    let mut grid: Vec<GridPoint> = Vec::new();
    for pass in 0..passes.max(1) {
        let mut cache = SweepCache::new();
        let mut idx = 0;
        for (load, flows) in &loads {
            // The healthy variant runs first at each load: it builds the
            // load's `SweepBase` (routes, decomposition, per-link member
            // index), fans the cold clusters across cores, and adopts
            // their delays. Every fault variant is then a delta rebuild
            // against that base. All of the base construction is timed
            // inside the healthy point — nothing is free.
            let mut base: Option<SweepBase> = None;
            for (vname, faults) in &vars {
                let before = cache.misses();
                let t = Instant::now();
                let res = if faults.is_empty() {
                    let mut b = SweepBase::new(&topo1024, &cfg, flows.clone());
                    fanout_clusters(&cfg, &b.decomp().clusters, &mut cache);
                    b.adopt(&cache);
                    let r = cache.compose(&topo1024, &cfg, b.decomp(), eng.combine);
                    base = Some(b);
                    r
                } else {
                    let mut what_if = topo1024.clone();
                    apply_faults(&mut what_if, faults);
                    base.as_ref()
                        .expect("healthy variant seeds the base first")
                        .estimate_delta(&what_if, eng.combine, &mut cache)
                };
                let est_ns = t.elapsed().as_nanos() as u64;
                if pass == 0 {
                    let mut s = res.mct_summary();
                    grid.push(GridPoint {
                        load: *load,
                        variant: vname.clone(),
                        est_ns,
                        exact_direct_ns: direct_ns(*load),
                        exact_extrap_ns: extrap_ns(*load),
                        delivered: res.delivered(),
                        failed: res.failed(),
                        clusters: res.clusters,
                        replays: cache.misses() - before,
                        p50_ns: p(&mut s, 50.0),
                        p99_ns: p(&mut s, 99.0),
                    });
                } else {
                    grid[idx].est_ns = grid[idx].est_ns.min(est_ns);
                }
                idx += 1;
            }
        }
        if pass + 1 == passes.max(1) {
            println!(
                "grid cache (final pass): {} hits, {} replays, {} solo probes",
                cache.hits(),
                cache.misses(),
                cache.solo_probes()
            );
        }
    }

    // Per-scenario speedup: each scenario's estimator wall-clock vs the
    // directly measured exact cost of that scenario's load. Three
    // aggregates, all reported: the mean and median of per-scenario
    // speedups (the gated numbers — "how much cheaper is a scenario"),
    // and the aggregate ratio total-exact/total-estimate (dominated by
    // the few expensive spine-kill and healthy cold-start points).
    let scenarios_run = grid.len();
    let mean_est_ns = grid.iter().map(|g| g.est_ns).sum::<u64>() / scenarios_run as u64;
    let max_est_ns = grid.iter().map(|g| g.est_ns).max().expect("grid nonempty");
    let mut speedups: Vec<f64> = grid
        .iter()
        .map(|g| g.exact_direct_ns as f64 / g.est_ns as f64)
        .collect();
    speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite speedups"));
    let mean_speedup = speedups.iter().sum::<f64>() / scenarios_run as f64;
    let median_speedup = speedups[scenarios_run / 2];
    let min_speedup = speedups[0];
    let aggregate_speedup = grid.iter().map(|g| g.exact_direct_ns).sum::<u64>() as f64
        / grid.iter().map(|g| g.est_ns).sum::<u64>() as f64;
    println!(
        "grid: {scenarios_run} scenarios, mean {:.2} ms/scenario (max {:.2})\n\
         per-scenario speedup vs direct exact: mean {mean_speedup:.1}x, \
         median {median_speedup:.1}x, min {min_speedup:.1}x \
         (aggregate {aggregate_speedup:.1}x)\n",
        mean_est_ns as f64 / 1e6,
        max_est_ns as f64 / 1e6,
    );

    // ---- Artifact --------------------------------------------------
    let mut json = String::from("{\n  \"group\": \"approx\",\n");
    json.push_str(&format!(
        "  \"flows_per_point\": {flows_n},\n  \"p99_error_bound\": {P99_ERROR_BOUND},\n"
    ));
    json.push_str("  \"overlap\": [\n");
    for (i, o) in overlap.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"hosts\": {}, \"load\": {:.2}, \
             \"size\": {}, \"p50_err\": {:.4}, \"p99_err\": {:.4}, \
             \"in_envelope\": {}, \"asserted\": {}, \"exact_ms\": {:.3}, \
             \"approx_ms\": {:.3}}}{}\n",
            o.name,
            o.hosts,
            o.load,
            o.size,
            o.p50_err,
            o.p99_err,
            o.in_envelope,
            o.asserted,
            o.exact_ns as f64 / 1e6,
            o.approx_ns as f64 / 1e6,
            if i + 1 < overlap.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n  \"ab_288\": [\n");
    for (i, (load, exact_ns, approx_ns, n)) in ab.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"load\": {:.2}, \"flows\": {n}, \"exact_ms\": {:.3}, \
             \"approx_ms\": {:.3}, \"exact_us_per_flow\": {:.3}}}{}\n",
            load,
            *exact_ns as f64 / 1e6,
            *approx_ns as f64 / 1e6,
            *exact_ns as f64 / 1e3 / *n as f64,
            if i + 1 < ab.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n  \"calibration\": [\n");
    for (i, (load, ns)) in direct.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"hosts\": 1024, \"flows\": {grid_flows}, \"load\": {:.2}, \
             \"exact_direct_ms\": {:.3}, \"extrapolated_ms\": {:.3}, \
             \"factor\": {:.3}}}{}\n",
            load,
            *ns as f64 / 1e6,
            extrap_ns(*load) as f64 / 1e6,
            *ns as f64 / extrap_ns(*load) as f64,
            if i + 1 < direct.len() { "," } else { "" },
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"grid\": {{\"hosts\": 1024, \"flows\": {grid_flows}, \
         \"loads\": {:?}, \"variants\": {}, \"scenarios\": {scenarios_run}, \
         \"passes\": {passes}, \"mean_est_ms\": {:.3}, \"max_est_ms\": {:.3}, \
         \"mean_speedup\": {mean_speedup:.2}, \"median_speedup\": {median_speedup:.2}, \
         \"min_speedup\": {min_speedup:.2}, \"aggregate_speedup\": {aggregate_speedup:.2}}},\n",
        GRID_LOADS,
        vars.len(),
        mean_est_ns as f64 / 1e6,
        max_est_ns as f64 / 1e6,
    ));
    json.push_str("  \"grid_points\": [\n");
    for (i, g) in grid.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"load\": {:.2}, \"variant\": \"{}\", \"est_ms\": {:.3}, \
             \"exact_direct_ms\": {:.3}, \"exact_extrap_ms\": {:.3}, \"speedup\": {:.1}, \
             \"delivered\": {}, \"failed\": {}, \"clusters\": {}, \
             \"replays\": {}, \"p50_ns\": {:.0}, \"p99_ns\": {:.0}}}{}\n",
            g.load,
            g.variant,
            g.est_ns as f64 / 1e6,
            g.exact_direct_ns as f64 / 1e6,
            g.exact_extrap_ns as f64 / 1e6,
            g.exact_direct_ns as f64 / g.est_ns as f64,
            g.delivered,
            g.failed,
            g.clusters,
            g.replays,
            g.p50_ns,
            g.p99_ns,
            if i + 1 < grid.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = out_dir.join("BENCH_approx.json");
    std::fs::write(&path, &json).expect("write artifact");
    println!("wrote {}", path.display());

    if full_scale {
        assert!(
            scenarios_run >= 100,
            "full-scale grid must cover 100+ scenarios, ran {scenarios_run}"
        );
        assert!(
            mean_speedup >= 10.0,
            "full-scale grid mean per-scenario speedup {mean_speedup:.1}x \
             below the 10x gate"
        );
        assert!(
            median_speedup >= 10.0,
            "full-scale grid median per-scenario speedup {median_speedup:.1}x \
             below the 10x gate"
        );
    }
}
