//! Machine-readable performance baselines: times the hot-path benchmark
//! set with `std::time::Instant` and emits `BENCH_<group>.json` files so
//! future PRs can diff numbers instead of eyeballing criterion output.
//!
//! Run:
//!   `cargo run --release -p edm-bench --bin bench_json [-- --out DIR]`
//!
//! Optional env: `EDM_BENCH_ITERS` (samples per benchmark, default 20)
//! and `EDM_MEM_FLOWS` (scale of the `mem` group's streaming run,
//! default 50,000 — the committed `BENCH_mem.json` comes from the
//! dedicated `million_flows` binary at full 1M scale). The `app` group
//! likewise runs at smoke scale here; the committed `BENCH_app.json`
//! comes from the `app_sweep` binary at the full grid.
//!
//! Each `BENCH_<group>.json` holds `{"group", "unit", "results": [{"name",
//! "min_ns", "mean_ns", "iters"}]}` — minima are the regression-tracking
//! signal (means absorb machine noise). `BENCH_mem.json` (group `mem`)
//! instead reports the streaming-lifecycle memory benchmark: peak RSS,
//! active-flow high-water marks, and streamed-vs-exact tail percentiles.

use edm_baselines::prelude::*;
use edm_bench::hold;
use edm_bench::scenarios;
use edm_core::sim::{ClusterConfig, EdmProtocol, FabricProtocol};
use edm_sched::scheduler::{Scheduler, SchedulerConfig};
use edm_sim::{BinaryHeapEventQueue, Duration, EventQueue, Time};
use edm_topo::{IpTraffic, TopoEdm, TopoEdmConfig};
use std::hint::black_box;
use std::time::Instant;

/// One measured benchmark.
struct Entry {
    name: String,
    min_ns: f64,
    mean_ns: f64,
    iters: usize,
}

/// Runs `f` for `iters` samples (after one warm-up) and aggregates the
/// per-sample nanoseconds it returns — so setup inside `f` can be excluded
/// from its own timing.
fn measure<F: FnMut() -> f64>(name: &str, iters: usize, mut f: F) -> Entry {
    f(); // warm-up: page in code and data
    let mut min = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..iters {
        let ns = f();
        min = min.min(ns);
        total += ns;
    }
    Entry {
        name: name.to_string(),
        min_ns: min,
        mean_ns: total / iters as f64,
        iters,
    }
}

/// Times one call of `f`, returning elapsed nanoseconds.
fn timed<R, F: FnOnce() -> R>(f: F) -> f64 {
    let t0 = Instant::now();
    black_box(f());
    t0.elapsed().as_nanos() as f64
}

fn write_group(dir: &std::path::Path, group: &str, entries: &[Entry]) {
    let mut json = String::new();
    json.push_str(&format!(
        "{{\n  \"group\": \"{group}\",\n  \"unit\": \"ns_per_iter\",\n  \"results\": [\n"
    ));
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"min_ns\": {:.1}, \"mean_ns\": {:.1}, \"iters\": {}}}{comma}\n",
            e.name, e.min_ns, e.mean_ns, e.iters
        ));
    }
    json.push_str("  ]\n}\n");
    let path = dir.join(format!("BENCH_{group}.json"));
    std::fs::write(&path, json).expect("write baseline file");
    println!("wrote {}", path.display());
}

fn fig8_group(iters: usize) -> Vec<Entry> {
    let cluster = ClusterConfig::default();
    let w500 = scenarios::fig8_flows(500);
    let mut out = Vec::new();
    out.push(measure("fig8/simulate_500_flows/EDM", iters, || {
        timed(|| {
            EdmProtocol::default()
                .simulate(&cluster, &w500)
                .outcomes
                .len()
        })
    }));
    out.push(measure("fig8/simulate_500_flows/IRD", iters, || {
        timed(|| {
            IrdProtocol::default()
                .simulate(&cluster, &w500)
                .outcomes
                .len()
        })
    }));
    out.push(measure("fig8/simulate_500_flows/DCTCP", iters, || {
        timed(|| {
            QueueFabric::new(QueueConfig::dctcp())
                .simulate(&cluster, &w500)
                .outcomes
                .len()
        })
    }));
    out.push(measure("fig8/simulate_500_flows/CXL", iters, || {
        timed(|| {
            CxlProtocol::default()
                .simulate(&cluster, &w500)
                .outcomes
                .len()
        })
    }));
    // The demand-sparse regime: ports ≫ active flows.
    for flows in [2usize, 16] {
        let w = scenarios::sparse_flows(flows);
        out.push(measure(
            &format!("fig8/simulate_{flows}_flows/EDM"),
            iters,
            || timed(|| EdmProtocol::default().simulate(&cluster, &w).outcomes.len()),
        ));
    }
    out
}

fn sched_group(iters: usize) -> Vec<Entry> {
    let mut out = Vec::new();
    // Dense grant round: 200 random notifications over 144 ports (the
    // criterion `sched/grant_round_144_ports` scenario; setup excluded).
    out.push(measure("sched/grant_round_144_ports", iters, || {
        let mut s = scenarios::grant_round_scheduler();
        timed(|| s.poll(Time::ZERO).grants.len())
    }));
    // Steady-state sparse polls: k disjoint single-chunk flows per round,
    // amortized over an inner batch so timer overhead stays negligible.
    const BATCH: u32 = 64;
    for &(ports, flows) in &[(144usize, 2usize), (144, 16), (512, 2), (512, 16)] {
        let mut s = Scheduler::new(SchedulerConfig::default_for_ports(ports));
        let mut now = Time::ZERO;
        let step = Duration::from_ns(100);
        out.push(measure(
            &format!("sched/sparse_poll/{ports}_ports_{flows}_flows"),
            iters,
            || {
                let ns = timed(|| {
                    for _ in 0..BATCH {
                        black_box(scenarios::sparse_poll_round(&mut s, now, flows));
                        now += step;
                    }
                });
                ns / BATCH as f64
            },
        ));
    }
    out
}

/// Per-op nanoseconds of the shared hold-model loop ([`edm_bench::hold`],
/// the same workload the `sim/event_queue` criterion group times) at a
/// steady queue size `n`.
fn hold_entry<Q: hold::Queue>(name: &str, n: usize, iters: usize) -> Entry {
    const HOLD_OPS: usize = 4_096;
    let (mut q, mut rng) = hold::prefill::<Q>(n);
    measure(name, iters, move || {
        let ns = timed(|| black_box(hold::run(&mut q, &mut rng, HOLD_OPS)));
        ns / HOLD_OPS as f64
    })
}

fn sim_group(iters: usize) -> Vec<Entry> {
    let mut out = Vec::new();
    for &n in &[1_024usize, 16_384] {
        out.push(hold_entry::<EventQueue<u64>>(
            &format!("sim/event_queue/calendar_hold/{n}"),
            n,
            iters,
        ));
        out.push(hold_entry::<BinaryHeapEventQueue<u64>>(
            &format!("sim/event_queue/binary_heap_hold/{n}"),
            n,
            iters,
        ));
    }
    out
}

fn topo_group(iters: usize) -> Vec<Entry> {
    let mut out = Vec::new();
    // Degenerate 1-switch fabric on the fig8 scenario: the framework
    // overhead against `fig8/simulate_500_flows/EDM` (bit-identical
    // results, pinned by proptest).
    let cluster = ClusterConfig::default();
    let one = edm_topo::cluster_topology(&cluster);
    let w500 = scenarios::fig8_flows(500);
    out.push(measure("topo/single_switch_144/500_flows", iters, || {
        timed(|| TopoEdm::default().simulate(&one, &w500).delivered())
    }));
    // 288 nodes as 4 leaves × 72 with 2 spines, rack-aware traffic at
    // load 0.6 with 50% rack-local requests.
    let flows = scenarios::rack_flows_288(0.6, 0.5, 500);
    for (name, oversub, ip) in [
        ("topo/leaf_spine_288/500_flows", 1usize, 0.0),
        ("topo/leaf_spine_288_oversub4/500_flows", 4, 0.0),
        ("topo/leaf_spine_288_ip25/500_flows", 1, 0.25),
    ] {
        let topo = scenarios::leaf_spine_288(oversub);
        let proto = TopoEdm::new(TopoEdmConfig {
            ip: IpTraffic::load(ip),
            ..TopoEdmConfig::default()
        });
        out.push(measure(name, iters, || {
            timed(|| proto.simulate(&topo, &flows).delivered())
        }));
    }
    // The acceptance comparison's denominator: the single-switch path on
    // the same 288-node workload (leaf-spine must stay within 2×).
    let big = ClusterConfig {
        nodes: 288,
        ..ClusterConfig::default()
    };
    out.push(measure(
        "topo/single_switch_288_same_workload/500_flows",
        iters,
        || timed(|| EdmProtocol::default().simulate(&big, &flows).outcomes.len()),
    ));
    out
}

/// Parallel conservative DES: the 288-node leaf–spine acceptance
/// workload, sequential vs sharded. The first entry is the sequential
/// baseline, then one entry per shard count.
fn par_group(iters: usize) -> Vec<Entry> {
    let topo = scenarios::leaf_spine_288(1);
    let flows = scenarios::rack_flows_288(0.6, 0.5, 2000);
    let proto = TopoEdm::default();
    let mut out = vec![measure("par/leaf_spine_288_2000/sequential", iters, || {
        timed(|| proto.simulate(&topo, &flows).delivered())
    })];
    for shards in [2usize, 4] {
        out.push(measure(
            &format!("par/leaf_spine_288_2000/shards_{shards}"),
            iters,
            || timed(|| proto.simulate_sharded(&topo, &flows, shards).delivered()),
        ));
    }
    out
}

/// Writes `BENCH_par.json`: plain `ns_per_iter` rows (schema-compatible
/// with every other group, so min-merging tools stay correct) plus a
/// separate typed `speedup_vs_sequential` map of unit-less ratios
/// (sequential time / sharded time; ≤ 1 on a single-core machine, the
/// ≥ 2x acceptance target needs real cores).
fn write_par_group(dir: &std::path::Path, entries: &[Entry]) {
    let seq = &entries[0];
    let mut json = String::new();
    json.push_str("{\n  \"group\": \"par\",\n  \"unit\": \"ns_per_iter\",\n  \"results\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"min_ns\": {:.1}, \"mean_ns\": {:.1}, \"iters\": {}}}{comma}\n",
            e.name, e.min_ns, e.mean_ns, e.iters
        ));
    }
    json.push_str("  ],\n  \"speedup_vs_sequential\": {\n");
    let shard_rows: Vec<&Entry> = entries[1..].iter().collect();
    for (i, e) in shard_rows.iter().enumerate() {
        let comma = if i + 1 < shard_rows.len() { "," } else { "" };
        let label = e.name.rsplit('/').next().expect("named entry");
        json.push_str(&format!(
            "    \"{label}\": {{\"min\": {:.3}, \"mean\": {:.3}}}{comma}\n",
            seq.min_ns / e.min_ns,
            seq.mean_ns / e.mean_ns
        ));
    }
    json.push_str("  }\n}\n");
    let path = dir.join("BENCH_par.json");
    std::fs::write(&path, json).expect("write baseline file");
    println!("wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let iters: usize = std::env::var("EDM_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);

    write_group(&out_dir, "sim", &sim_group(iters));
    write_group(&out_dir, "fig8", &fig8_group(iters));
    write_group(&out_dir, "sched", &sched_group(iters));
    write_group(&out_dir, "topo", &topo_group(iters));
    write_par_group(&out_dir, &par_group(iters));
    let mem_flows: usize = std::env::var("EDM_MEM_FLOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);
    edm_bench::mem::measure(mem_flows, 1).write(&out_dir);
    // The app group at smoke scale (the committed BENCH_app.json comes
    // from the dedicated `app_sweep` binary at the full grid).
    edm_bench::app::measure(edm_bench::app::AppScale::smoke()).write(&out_dir);
}
