//! Multi-switch fabric sweep: leaf–spine size × oversubscription ×
//! background-IP fraction, on rack-aware memory traffic.
//!
//! For every point the harness reports the normalized mean/p99 MCT
//! (each flow normalized by its own locality's unloaded latency), the
//! reroute/failure counters, and the harness-side per-flow simulation
//! cost; the footer compares that cost against the legacy single-switch
//! path at equal load (the ISSUE 3 acceptance gate is ≤ 2×).
//!
//! Run: `cargo run --release -p edm-bench --bin topo_sweep`
//!
//! Optional env: `EDM_FLOWS` (default 2000), `EDM_LOAD` (default 0.6),
//! `EDM_LOCAL` (default 0.5, fraction of rack-local requests),
//! `EDM_SHARDS` (default 1: sequential engine; > 1 runs every point on
//! the sharded conservative engine — bit-identical results — and the
//! footer reports the sequential-vs-sharded A/B on the non-blocking
//! fabric).

use edm_bench::{par_sweep, scenarios};
use edm_core::sim::{ClusterConfig, EdmProtocol, FabricProtocol, Flow, FlowKind};
use edm_sim::{Duration, Time};
use edm_topo::{IpTraffic, LeafSpine, TopoEdm, TopoEdmConfig, Topology};
use edm_workloads::SyntheticWorkload;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Per-(kind × locality) unloaded probes for normalization.
struct SoloTable {
    local_w: Duration,
    local_r: Duration,
    remote_w: Duration,
    remote_r: Duration,
}

impl SoloTable {
    fn measure(proto: &TopoEdm, topo: &Topology, spec: &LeafSpine) -> SoloTable {
        let half = spec.nodes_per_leaf / 2;
        let probe = |dst: usize, kind: FlowKind| {
            let f = Flow {
                id: 0,
                src: 0,
                dst,
                size: 64,
                arrival: Time::ZERO,
                kind,
            };
            proto.solo_mct(topo, &f).expect("pristine fabric routes")
        };
        SoloTable {
            local_w: probe(half, FlowKind::Write),
            local_r: probe(half, FlowKind::Read),
            remote_w: probe(spec.nodes_per_leaf + half, FlowKind::Write),
            remote_r: probe(spec.nodes_per_leaf + half, FlowKind::Read),
        }
    }

    fn solo(&self, spec: &LeafSpine, f: &Flow) -> Duration {
        let local = f.src / spec.nodes_per_leaf == f.dst / spec.nodes_per_leaf;
        match (local, f.kind) {
            (true, FlowKind::Write) => self.local_w,
            (true, FlowKind::Read) => self.local_r,
            (false, FlowKind::Write) => self.remote_w,
            (false, FlowKind::Read) => self.remote_r,
        }
    }
}

fn main() {
    let count = env_f64("EDM_FLOWS", 2000.0) as usize;
    let load = env_f64("EDM_LOAD", 0.6);
    let local = env_f64("EDM_LOCAL", 0.5);
    let shards = env_f64("EDM_SHARDS", 1.0) as usize;

    println!(
        "Leaf-spine sweep: 288 nodes (4 leaves x 72), 2 spines, load {load}, \
         {:.0}% rack-local, {count} flows, {} engine",
        local * 100.0,
        if shards > 1 {
            format!("{shards}-shard")
        } else {
            "sequential".to_string()
        }
    );
    println!();
    println!(
        "{:<22} {:>10} {:>10} {:>8} {:>8} {:>10} {:>12}",
        "oversub / IP load", "norm mean", "norm p99", "reroute", "failed", "IP frames", "us/flow"
    );

    let flows = scenarios::rack_flows_288(load, local, count);
    let points: Vec<(usize, f64)> = [1usize, 2, 4]
        .iter()
        .flat_map(|&o| [0.0, 0.25, 0.5].iter().map(move |&ip| (o, ip)))
        .collect();
    let rows = par_sweep(points.clone(), |(oversub, ip)| {
        let spec = scenarios::leaf_spine_288_spec(oversub);
        let topo = scenarios::leaf_spine_288(oversub);
        let proto = TopoEdm::new(TopoEdmConfig {
            ip: IpTraffic::load(ip),
            ..TopoEdmConfig::default()
        });
        let solos = SoloTable::measure(&proto, &topo, &spec);
        let t0 = std::time::Instant::now();
        let result = if shards > 1 {
            proto.simulate_sharded(&topo, &flows, shards)
        } else {
            proto.simulate(&topo, &flows)
        };
        let wall = t0.elapsed();
        let mut norm = result.normalized_mct(|f| solos.solo(&spec, f));
        format!(
            "{:<22} {:>10.3} {:>10.3} {:>8} {:>8} {:>10} {:>9.2} us",
            format!("{oversub}:1 / ip {:.2}", ip),
            norm.mean(),
            norm.percentile(99.0),
            result.reroutes,
            result.failed(),
            result.ip_frames,
            wall.as_secs_f64() * 1e6 / flows.len() as f64,
        )
    });
    for row in rows {
        println!("{row}");
    }

    // Footer: harness cost vs the legacy single-switch path at equal
    // load (best of 5 to shed scheduler/turbo noise).
    let best_of = |f: &mut dyn FnMut() -> usize| -> f64 {
        let mut best = f64::INFINITY;
        let mut n = 1;
        for _ in 0..5 {
            let t0 = std::time::Instant::now();
            n = f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best * 1e6 / n as f64
    };
    let legacy_flows = SyntheticWorkload::paper_default(load, 0.5, count).generate(42);
    let cluster = ClusterConfig::default();
    let legacy_per_flow = best_of(&mut || {
        EdmProtocol::default()
            .simulate(&cluster, &legacy_flows)
            .outcomes
            .len()
    });
    let big_cluster = ClusterConfig {
        nodes: 288,
        ..ClusterConfig::default()
    };
    let big_legacy_per_flow = best_of(&mut || {
        EdmProtocol::default()
            .simulate(&big_cluster, &flows)
            .outcomes
            .len()
    });
    let topo = scenarios::leaf_spine_288(1);
    let proto = TopoEdm::default();
    let topo_per_flow = best_of(&mut || proto.simulate(&topo, &flows).outcomes.len());
    let events = proto.simulate(&topo, &flows).events;
    if shards > 1 {
        let par_per_flow =
            best_of(&mut || proto.simulate_sharded(&topo, &flows, shards).outcomes.len());
        println!();
        println!(
            "parallel DES A/B (non-blocking fabric): sequential {topo_per_flow:.2} us/flow, \
             {shards} shards {par_per_flow:.2} us/flow ({:.2}x speedup)",
            topo_per_flow / par_per_flow
        );
    }
    let one_switch = edm_topo::cluster_topology(&cluster);
    let framework_per_flow =
        best_of(&mut || proto.simulate(&one_switch, &legacy_flows).outcomes.len());
    println!();
    println!(
        "per-flow cost, same 288-node workload: single-switch path \
         {big_legacy_per_flow:.2} us, leaf-spine {topo_per_flow:.2} us \
         ({:.2}x; acceptance gate <= 2x at equal load), {:.1} events/flow",
        topo_per_flow / big_legacy_per_flow,
        events as f64 / flows.len() as f64,
    );
    println!(
        "reference: legacy 144n at the same load {legacy_per_flow:.2} us/flow; \
         topo framework on the same 1-switch cluster {framework_per_flow:.2} us/flow"
    );
    println!();
    println!(
        "expected shape: at 1:1 the fabric adds only per-hop latency \
         (norm mean close to the single-switch curve); oversubscription \
         concentrates cross-rack traffic on fewer trunks and inflates the \
         tail; background IP costs little with preemption (one 66-bit \
         block per crossing)."
    );
}
