//! Ablation (§4.2.1 claim): EDM maintains near-constant remote-memory
//! latency under interference from IP traffic, thanks to intra-frame
//! preemption — while a MAC-layer fabric must wait out entire frames.
//!
//! Sweeps interfering frame sizes and compares the wait a small memory
//! message suffers (in PHY block slots) under three policies: EDM fair
//! preemption, EDM memory-first, and no preemption (MAC behaviour).
//!
//! Run: `cargo run --release -p edm-bench --bin preemption`

use edm_phy::frame::{blocks_for_frame, encode_frame};
use edm_phy::mem_codec::{encode_message, MemMessage};
use edm_phy::preempt::{PreemptMux, TxPolicy};
use edm_phy::{Block, BLOCK_CLOCK};

/// Blocks the memory message waits when it arrives `progress` blocks into
/// the frame's transmission under `policy`.
fn wait_blocks(frame_len: usize, progress: usize, policy: TxPolicy) -> usize {
    let mut mux = PreemptMux::new(policy);
    mux.enqueue_frame(encode_frame(&vec![0u8; frame_len]).expect("valid frame"));
    for _ in 0..progress {
        mux.tick();
    }
    mux.enqueue_memory(encode_message(&MemMessage::new(1, 0, vec![0xAA; 8])));
    let mut waited = 0;
    loop {
        if matches!(mux.tick(), Block::MemStart(_)) {
            return waited;
        }
        waited += 1;
        assert!(waited < 10_000, "memory message starved");
    }
}

/// MAC layer: the message waits for the rest of the frame.
fn mac_wait_blocks(frame_len: usize, progress: usize) -> usize {
    blocks_for_frame(frame_len) - progress
}

fn main() {
    println!("Intra-frame preemption ablation: 8 B memory message arriving");
    println!("10 blocks into an interfering frame's transmission");
    println!();
    println!(
        "{:<16} {:>14} {:>14} {:>14}",
        "frame size", "EDM fair", "EDM mem-first", "MAC (no preempt)"
    );
    for frame_len in [64usize, 256, 512, 1500, 9000] {
        let progress = 10.min(blocks_for_frame(frame_len) - 1);
        let fair = wait_blocks(frame_len, progress, TxPolicy::Fair);
        let first = wait_blocks(frame_len, progress, TxPolicy::MemoryFirst);
        let mac = mac_wait_blocks(frame_len, progress);
        println!(
            "{:<16} {:>11} ns {:>11} ns {:>11} ns",
            format!("{frame_len} B"),
            (BLOCK_CLOCK * fair as u64).as_ns(),
            (BLOCK_CLOCK * first as u64).as_ns(),
            (BLOCK_CLOCK * mac as u64).as_ns(),
        );
    }
    println!();
    println!(
        "paper: failure to preempt a 1500 B frame costs 120 ns at 100 G \
         (720 ns for 9 KB jumbo); EDM's wait is a constant couple of block \
         slots regardless of frame size — this is why EDM held ~300 ns \
         under IP interference in the testbed (§4.2.1)."
    );
}
