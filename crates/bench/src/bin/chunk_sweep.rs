//! Ablation (§3.1.3): scheduler chunk size. The chunk must cover the
//! matching latency for line-rate scheduling (≥128 B on a 512×100G
//! switch), but larger chunks hold ports longer and delay competing
//! messages. The evaluation settles on 256 B.
//!
//! Run: `cargo run --release -p edm-bench --bin chunk_sweep`

use edm_core::sim::{solo_mct, ClusterConfig, EdmProtocol, FabricProtocol, Flow, FlowKind};
use edm_workloads::{AppTrace, SyntheticWorkload};

fn main() {
    let cluster = ClusterConfig::default();
    println!("Chunk-size sweep at load 0.8 (evaluation default: 256 B)");
    println!();
    println!(
        "{:<8} {:>16} {:>16}",
        "chunk", "64 B norm mean", "Hadoop norm mean"
    );
    let small = SyntheticWorkload::paper_default(0.8, 0.5, 3000).generate(42);
    let heavy = AppTrace::hadoop().generate(cluster.nodes, cluster.link, 0.8, 1500, 42);
    // One thread per chunk size: independent simulations fan out via
    // par_sweep, printed in input order.
    let rows = edm_bench::par_sweep(vec![64u32, 128, 256, 512, 1024], |chunk| {
        let mut p = EdmProtocol {
            chunk_bytes: chunk,
            ..EdmProtocol::default()
        };
        let probe = small[0];
        let solo_w = solo_mct(
            &mut p,
            &cluster,
            &Flow {
                kind: FlowKind::Write,
                ..probe
            },
        );
        let solo_r = solo_mct(
            &mut p,
            &cluster,
            &Flow {
                kind: FlowKind::Read,
                ..probe
            },
        );
        let r_small = p.simulate(&cluster, &small);
        let small_mean = r_small
            .normalized_mct(|f| match f.kind {
                FlowKind::Write => solo_w,
                FlowKind::Read => solo_r,
            })
            .mean();
        // Heavy trace: normalize by mean MCT against the 256 B default to
        // keep the comparison one-dimensional.
        let r_heavy = p.simulate(&cluster, &heavy);
        let heavy_mean_us = r_heavy.mean_mct().as_us_f64();
        format!(
            "{:<5} B {:>16.3} {:>13.2} us",
            chunk, small_mean, heavy_mean_us
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!();
    println!(
        "expected shape: small-message latency is flat in chunk size (64 B \
         messages fit any chunk) while oversized chunks inflate contention; \
         elephants prefer larger chunks (fewer grant round-trips). 256 B \
         balances both, consistent with the paper's choice."
    );
}
