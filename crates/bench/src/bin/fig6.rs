//! Regenerates **Figure 6**: requests/second for the YCSB workloads over
//! a 25 GbE link — EDM's in-PHY transport vs RDMA (RoCEv2).
//!
//! Run: `cargo run --release -p edm-bench --bin fig6`

use edm_core::throughput::{edm_throughput, rdma_throughput, RequestMix};
use edm_sim::Bandwidth;

fn main() {
    let link = Bandwidth::from_gbps(25);
    println!("Figure 6: YCSB throughput on {link} (1 KB reads, 100 B writes)");
    println!();
    println!(
        "{:<8} {:>12} {:>12} {:>8}   bottlenecks (EDM | RDMA)",
        "workload", "EDM Mrps", "RDMA Mrps", "ratio"
    );
    let mut ratios = Vec::new();
    for (name, mix) in [
        ("A", RequestMix::ycsb_a()),
        ("B", RequestMix::ycsb_b()),
        ("F", RequestMix::ycsb_f()),
    ] {
        let e = edm_throughput(link, &mix);
        let r = rdma_throughput(link, &mix);
        let ratio = e.requests_per_sec / r.requests_per_sec;
        ratios.push(ratio);
        let bottleneck = |t: &edm_core::throughput::ThroughputEstimate| {
            if t.initiation >= t.uplink && t.initiation >= t.downlink {
                "engine"
            } else if t.downlink >= t.uplink {
                "downlink"
            } else {
                "uplink"
            }
        };
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>7.2}x   {} | {}",
            name,
            e.requests_per_sec / 1e6,
            r.requests_per_sec / 1e6,
            ratio,
            bottleneck(&e),
            bottleneck(&r),
        );
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!();
    println!(
        "average EDM/RDMA ratio: {avg:.2}x (paper: ~2.7x; causes: RoCEv2 \
         transport engine occupancy, 64 B minimum frames, and IFG overhead \
         vs EDM's 66-bit blocks and repurposed IFG)"
    );
}
