//! Ablation (§3.1.1 property 4): FCFS vs SRPT priority assignment.
//!
//! The paper chooses the policy by workload: FCFS is optimal for
//! light-tailed traffic, SRPT for heavy-tailed. This harness runs both
//! policies on a light-tailed workload (uniform 64 B messages) and a
//! heavy-tailed one (the Hadoop trace) and reports mean and tail
//! normalized completion times.
//!
//! Run: `cargo run --release -p edm-bench --bin policy_ablation`

use edm_bench::SoloCurve;
use edm_core::sim::{ClusterConfig, EdmProtocol, FabricProtocol, Flow, FlowKind};
use edm_sched::Policy;
use edm_workloads::{AppTrace, SyntheticWorkload};

fn norm_stats(
    policy: Policy,
    cluster: &ClusterConfig,
    flows: &[Flow],
    max_size: u32,
) -> (f64, f64) {
    let mut p = EdmProtocol {
        policy,
        ..EdmProtocol::default()
    };
    let wcurve = SoloCurve::measure(&mut p, cluster, FlowKind::Write, max_size);
    let rcurve = SoloCurve::measure(&mut p, cluster, FlowKind::Read, max_size);
    let r = p.simulate(cluster, flows);
    let mut norm = r.normalized_mct(|f| {
        let ns = match f.kind {
            FlowKind::Write => wcurve.solo_ns(f.size),
            FlowKind::Read => rcurve.solo_ns(f.size),
        };
        edm_sim::Duration::from_ns_f64(ns)
    });
    (norm.mean(), norm.percentile(99.0))
}

fn main() {
    let cluster = ClusterConfig::default();
    println!("Scheduling-policy ablation at load 0.8 (paper §3.1.1, property 4)");
    println!();
    println!(
        "{:<28} {:>14} {:>14}",
        "workload / policy", "norm. mean", "norm. p99"
    );

    // One thread per (workload, policy) point: the four simulations are
    // independent, so they fan out via par_sweep, printed in input order.
    let light = SyntheticWorkload::paper_default(0.8, 0.5, 4000).generate(42);
    let heavy = AppTrace::hadoop().generate(cluster.nodes, cluster.link, 0.8, 3000, 42);
    let max = AppTrace::hadoop().cdf().max_value() as u32;
    let points: Vec<(&str, &str, Policy, &[Flow], u32)> = vec![
        ("light-tailed 64 B", "FCFS", Policy::Fcfs, &light, 64),
        ("light-tailed 64 B", "SRPT", Policy::Srpt, &light, 64),
        ("heavy-tailed Hadoop", "FCFS", Policy::Fcfs, &heavy, max),
        ("heavy-tailed Hadoop", "SRPT", Policy::Srpt, &heavy, max),
    ];
    let rows = edm_bench::par_sweep(points, |(workload, name, policy, flows, max_size)| {
        let (mean, p99) = norm_stats(policy, &cluster, flows, max_size);
        format!(
            "{:<28} {:>14.3} {:>14.3}",
            format!("{workload} / {name}"),
            mean,
            p99
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!();
    println!(
        "expected shape: on light-tailed traffic the policies tie (all \
         messages equal); on heavy-tailed traffic SRPT cuts the mean by \
         letting mice bypass elephants (at some elephant-tail cost)."
    );
}
