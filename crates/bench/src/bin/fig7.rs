//! Regenerates **Figure 7**: average end-to-end access latency for a
//! YCSB-A key-value workload whose objects are split between local DRAM
//! and remote memory in different ratios, under EDM, CXL, and RDMA.
//!
//! Local accesses cost ~82 ns (DDR4 + on-chip path). Remote accesses pay
//! the fabric (Table 1 for EDM/RDMA, the Pond-calibrated constants for
//! CXL) plus the remote DRAM service. YCSB-A is 50% reads / 50% updates,
//! so each fabric's remote cost is the read/write average.
//!
//! Run: `cargo run --release -p edm-bench --bin fig7`

use edm_baselines::stacks::{self, cxl, LOCAL_DRAM};
use edm_core::latency::{edm_read, edm_write};
use edm_sim::Duration;

/// Average of read and write fabric latency plus remote DRAM service.
fn remote_cost(read: Duration, write: Duration) -> f64 {
    (read.as_ns_f64() + write.as_ns_f64()) / 2.0 + LOCAL_DRAM.as_ns_f64()
}

fn main() {
    let edm = remote_cost(edm_read().total(), edm_write().total());
    let cxl = remote_cost(cxl::READ, cxl::WRITE);
    let rdma = remote_cost(
        stacks::rocev2_read().total(),
        stacks::rocev2_write().total(),
    );
    let local = LOCAL_DRAM.as_ns_f64();

    println!("Figure 7: end-to-end latency vs local:remote split (YCSB-A)");
    println!();
    println!("remote access cost: EDM {edm:.0} ns, CXL {cxl:.0} ns, RDMA {rdma:.0} ns");
    println!("local  access cost: {local:.0} ns (DDR4)");
    println!();
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "local:remote", "EDM ns", "CXL ns", "RDMA ns"
    );
    for (l, r) in [(100u32, 10u32), (66, 34), (50, 50), (34, 66), (10, 100)] {
        let total = (l + r) as f64;
        let mix = |remote: f64| (l as f64 * local + r as f64 * remote) / total;
        println!(
            "{:<12} {:>10.0} {:>10.0} {:>10.0}",
            format!("{l}:{r}"),
            mix(edm),
            mix(cxl),
            mix(rdma)
        );
    }
    println!();
    println!(
        "paper shape: EDM within ~1.3x of CXL at every split and far below \
         RDMA; latency grows with the remote share."
    );
    let edm_over_cxl = edm / cxl;
    println!("EDM/CXL remote-cost ratio: {edm_over_cxl:.2}x (paper: within 1.3x)");
}
