//! Closed-loop application sweep: tenant-driven YCSB over the 288-node
//! leaf–spine, EDM vs CXL-over-Ethernet, plus the EDAN-style slowdown
//! grid → `BENCH_app.json`.
//!
//! Run:
//!   `cargo run --release -p edm-bench --bin app_sweep [-- --out DIR]`
//!
//! Env:
//!   `EDM_APP_TENANTS` — closed-loop tenants (default 24)
//!   `EDM_APP_OPS` — ops per tenant (default 200)
//!   `EDM_APP_SHARDS` — shard count per run (default 1, sequential;
//!   any value produces bit-identical results, pinned by `prop_app`)
//!   `EDM_APP_GRID` — `full` (default: 5 MLPs × 3 splits × 2 loads) or
//!   `smoke` (3 × 2 × 1 at reduced tenant/op counts, for CI)
//!   `EDM_RSS_CEILING_MB` — optional gate: exit non-zero if process
//!   peak RSS exceeds this many MB after the sweep
//!
//! The sweep *asserts* the acceptance envelope before writing: every op
//! completes (healthy fabric), residency stays inside the summed MLP
//! windows (O(active ops) memory), and EDM beats CXL-oE on both median
//! latency and sustained rate on the identical topology.

use edm_bench::app::{measure, AppScale};
use edm_bench::row;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    let smoke = std::env::var("EDM_APP_GRID").is_ok_and(|v| v == "smoke");
    let base = if smoke {
        AppScale::smoke()
    } else {
        AppScale::full()
    };
    let scale = AppScale {
        tenants: env_usize("EDM_APP_TENANTS", base.tenants),
        ops_per_tenant: env_usize("EDM_APP_OPS", base.ops_per_tenant as usize) as u64,
        shards: env_usize("EDM_APP_SHARDS", base.shards),
        ..base
    };
    let ceiling_mb = std::env::var("EDM_RSS_CEILING_MB")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());

    println!(
        "app_sweep: 288-node leaf-spine, {} YCSB-B tenants x {} ops, {} shard(s), {} grid\n",
        scale.tenants,
        scale.ops_per_tenant,
        scale.shards,
        if scale.full_grid { "full" } else { "smoke" }
    );
    let report = measure(scale);

    row(
        "transport",
        &["p50", "p99", "ops/s", "failed", "hwm"].map(String::from),
    );
    for p in &report.comparison {
        row(
            &p.label,
            &[
                format!("{:.0} ns", p.p50_ns),
                format!("{:.0} ns", p.p99_ns),
                format!("{:.2e}", p.ops_per_sec),
                p.failed.to_string(),
                p.ops_high_water.to_string(),
            ],
        );
    }
    println!();
    row(
        "grid point",
        &["slowdown", "p50", "ops/s"].map(String::from),
    );
    for g in &report.grid {
        row(
            &g.point.label,
            &[
                format!("{:.3}", g.slowdown),
                format!("{:.0} ns", g.point.p50_ns),
                format!("{:.2e}", g.point.ops_per_sec),
            ],
        );
    }

    // Acceptance envelope. The window bound is per run: tenants x mlp.
    let expected = scale.tenants as u64 * scale.ops_per_tenant;
    for p in &report.comparison {
        assert_eq!(
            p.completed, expected,
            "{}: every op must complete on a healthy fabric",
            p.label
        );
        assert_eq!(p.failed, 0, "{}: no op may fail", p.label);
    }
    let edm = report.edm();
    let cxl = report.cxl();
    assert!(
        edm.ops_high_water <= scale.tenants * 4,
        "residency exceeds the MLP windows"
    );
    assert!(
        edm.p50_ns < cxl.p50_ns,
        "EDM median {} ns must beat CXL-oE {} ns on the same fabric",
        edm.p50_ns,
        cxl.p50_ns
    );
    assert!(
        edm.ops_per_sec > cxl.ops_per_sec,
        "EDM rate {:.2e} must beat CXL-oE {:.2e} on the same fabric",
        edm.ops_per_sec,
        cxl.ops_per_sec
    );
    for g in &report.grid {
        assert_eq!(g.point.completed, expected, "{}: incomplete", g.point.label);
        assert!(
            g.point.ops_high_water <= scale.tenants * g.mlp as usize,
            "{}: residency exceeds the MLP windows",
            g.point.label
        );
        assert!(
            g.slowdown > 0.99,
            "{}: remote serving cannot beat all-local ({:.3})",
            g.point.label,
            g.slowdown
        );
    }
    println!(
        "\nenvelope ok: EDM beats CXL-oE ({:.0} vs {:.0} ns p50, {:.2e} vs {:.2e} ops/s)",
        edm.p50_ns, cxl.p50_ns, edm.ops_per_sec, cxl.ops_per_sec
    );

    report.write(&out_dir);

    if let Some(mb) = ceiling_mb {
        let peak_kb = report.peak_rss_kb.expect("RSS gate needs procfs");
        if peak_kb > mb * 1024 {
            eprintln!(
                "FAIL: peak RSS {:.1} MB exceeds ceiling {mb} MB",
                peak_kb as f64 / 1024.0
            );
            std::process::exit(1);
        }
        println!(
            "peak RSS {:.1} MB within ceiling {mb} MB",
            peak_kb as f64 / 1024.0
        );
    }
}
