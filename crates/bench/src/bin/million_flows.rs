//! Streaming-lifecycle memory benchmark: a million-flow multi-switch run
//! in bounded RSS.
//!
//! Drives the 288-node leaf–spine fabric with rack-aware traffic pulled
//! lazily from a streaming [`FlowSource`], folding per-flow MCTs into a
//! ~30 KB log-bucketed histogram as flows retire — so resident memory
//! tracks the *active*-flow population while the total flow count scales
//! to millions. A baseline run at a tenth of the scale demonstrates the
//! flatness (10× the flows, same high-water marks) and pins the streamed
//! tail percentiles to an exact retained-sample oracle.
//!
//! Run:
//!   `cargo run --release -p edm-bench --bin million_flows [-- --out DIR]`
//!
//! Env:
//!   `EDM_FLOWS` — total flows for the full run (default 1,000,000)
//!   `EDM_SHARDS` — shard count for both runs (default 1, sequential)
//!   `EDM_FAULTS` — set to `1` to inject a mid-run spine flap (down at
//!   half the baseline arrival span, back up at three quarters) into
//!   both runs, so the flatness and RSS gates also cover the fault path
//!   `EDM_RSS_CEILING_MB` — optional gate: exit non-zero if the process
//!   peak RSS (`VmHWM`) exceeds this many MB after the full run
//!
//! Writes `BENCH_mem.json` into `--out DIR` (default `.`).
//!
//! [`FlowSource`]: edm_workloads::FlowSource

use edm_bench::mem;
use edm_bench::row;
use edm_sim::LogHistogram;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    let flows = env_usize("EDM_FLOWS", 1_000_000);
    let shards = env_usize("EDM_SHARDS", 1);
    let with_faults = env_usize("EDM_FAULTS", 0) != 0;
    let ceiling_mb = std::env::var("EDM_RSS_CEILING_MB")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());

    let faults = if with_faults {
        let topo = edm_bench::scenarios::leaf_spine_288(1);
        edm_bench::faults::mid_run_spine_flap(&topo, mem::baseline_span(flows))
    } else {
        Vec::new()
    };
    println!(
        "million_flows: 288-node leaf-spine, rack-aware load 0.6, \
         {flows} flows streamed on {shards} shard(s){}\n",
        if with_faults {
            " with a mid-run spine flap"
        } else {
            ""
        }
    );
    let report = mem::measure_with(flows, shards, &faults);

    let fmt_rss = |kb: Option<u64>| {
        kb.map(|v| format!("{:.1} MB", v as f64 / 1024.0))
            .unwrap_or_else(|| "n/a".into())
    };
    row(
        "",
        &["flows", "active_hwm", "msg_slots", "peak_rss"].map(String::from),
    );
    for (label, run) in [("baseline", &report.baseline), ("full", &report.full)] {
        row(
            label,
            &[
                run.flows.to_string(),
                run.stats.active_high_water.to_string(),
                run.stats.msg_slots_high_water.to_string(),
                fmt_rss(run.peak_rss_kb),
            ],
        );
    }
    println!(
        "\nfull run: {} delivered, {} failed, {} retried, {} readmitted, {} events",
        report.full.stats.delivered,
        report.full.stats.failed,
        report.full.stats.retried,
        report.full.stats.readmitted,
        report.full.stats.events
    );
    println!(
        "streamed MCT: p50 {:.1} ns, p99 {:.1} ns, p99.9 {:.1} ns, p99.99 {:.1} ns",
        report.full.percentile_ns(50.0),
        report.full.percentile_ns(99.0),
        report.full.percentile_ns(99.9),
        report.full.percentile_ns(99.99),
    );
    println!(
        "accuracy (baseline scale): exact p99 {:.1} ns vs streamed {:.1} ns \
         (bound {:.2}%)",
        report.exact_ns[1],
        report.streamed_ns[1],
        LogHistogram::MAX_RELATIVE_ERROR * 100.0
    );

    report.write(&out_dir);

    if let Some(mb) = ceiling_mb {
        let peak_kb = report.full.peak_rss_kb.expect("RSS gate needs procfs");
        if peak_kb > mb * 1024 {
            eprintln!(
                "FAIL: peak RSS {:.1} MB exceeds EDM_RSS_CEILING_MB={mb}",
                peak_kb as f64 / 1024.0
            );
            std::process::exit(1);
        }
        println!(
            "RSS gate: peak {:.1} MB within {mb} MB ceiling",
            peak_kb as f64 / 1024.0
        );
    }
}
