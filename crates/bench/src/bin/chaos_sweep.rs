//! Chaos campaign: seeded fault/repair schedules against the streamed
//! 288-node leaf–spine fabric, across load points.
//!
//! Four scenarios — single-link flaps, a spine kill with revival,
//! rolling rack outages, and correlated optics degradation — each derive
//! a deterministic schedule from the workload's arrival span and a seed
//! (see [`edm_bench::faults`]). Every (scenario, load) point streams its
//! flows with bounded retries, folding outcomes into windowed
//! [`Availability`] counters, and reports recovery time after the first
//! incident, goodput-under-failure, and the failed/retried/re-admitted
//! tallies. Points run sequentially so the process peak RSS bounds the
//! resident footprint of a single streamed fault run.
//!
//! Run:
//!   `cargo run --release -p edm-bench --bin chaos_sweep [-- --out DIR]`
//!
//! Env:
//!   `EDM_FLOWS` — flows per point (default 50,000)
//!   `EDM_SHARDS` — shard count (default 1, sequential)
//!   `EDM_SEED` — schedule seed (default 42)
//!   `EDM_RSS_CEILING_MB` — optional gate: exit non-zero if the process
//!   peak RSS (`VmHWM`) exceeds this many MB after the campaign
//!
//! Writes `BENCH_faults.json` into `--out DIR` (default `.`).

use edm_bench::mem::peak_rss_kb;
use edm_bench::{faults, row, scenarios};
use edm_sim::{Availability, Duration, Time};
use edm_topo::{FaultEvent, FlowStatus, TopoEdm, TopoEdmConfig, Topology};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Point {
    scenario: &'static str,
    load: f64,
    delivered: u64,
    failed: u64,
    reroutes: u64,
    retried: u64,
    readmitted: u64,
    active_hwm: usize,
    goodput_bytes: u64,
    availability: f64,
    recovery: Option<Duration>,
}

/// Streams one (scenario, load) point and folds its outcomes.
fn run_point(
    topo: &Topology,
    scenario: &'static str,
    load: f64,
    flows: usize,
    shards: usize,
    schedule: Vec<FaultEvent>,
) -> Point {
    let incident = faults::first_incident(&schedule).expect("chaos schedules inject faults");
    let wl = scenarios::rack_workload_288(load, 0.5, flows);
    let proto = TopoEdm::new(TopoEdmConfig {
        faults: schedule,
        max_retries: 3,
        ..TopoEdmConfig::default()
    });
    let mut avail = Availability::new(Duration::from_us(10));
    let mut goodput_bytes = 0u64;
    let sink = |o: edm_topo::TopoOutcome| match o.status {
        FlowStatus::Delivered(at) => {
            avail.record_delivery(at);
            goodput_bytes += o.flow.size as u64;
        }
        FlowStatus::Failed(at) => avail.record_failure(at),
    };
    let stats = if shards > 1 {
        proto.simulate_sharded_streamed(topo, wl.source(42), sink, shards)
    } else {
        proto.simulate_streamed(topo, wl.source(42), sink)
    };
    Point {
        scenario,
        load,
        delivered: stats.delivered,
        failed: stats.failed,
        reroutes: stats.reroutes,
        retried: stats.retried,
        readmitted: stats.readmitted,
        active_hwm: stats.active_high_water,
        goodput_bytes,
        availability: avail.availability(),
        recovery: avail.recovery_after(incident),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    let flows = env_u64("EDM_FLOWS", 50_000) as usize;
    let shards = env_u64("EDM_SHARDS", 1) as usize;
    let seed = env_u64("EDM_SEED", 42);
    let ceiling_mb = std::env::var("EDM_RSS_CEILING_MB")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());

    let topo = scenarios::leaf_spine_288(1);
    println!(
        "chaos_sweep: 288-node leaf-spine, {flows} flows per point on \
         {shards} shard(s), seed {seed}\n"
    );

    let loads = [0.4, 0.7];
    let mut points = Vec::new();
    for &load in &loads {
        // The schedule anchors to this load's own arrival span so every
        // incident lands mid-stream.
        let span = scenarios::rack_workload_288(load, 0.5, flows)
            .source(42)
            .last()
            .expect("non-empty workload")
            .arrival
            .saturating_since(Time::ZERO);
        let schedules: [(&'static str, Vec<FaultEvent>); 4] = [
            (
                "link_flaps",
                faults::single_link_flaps(&topo, span, 3, seed),
            ),
            (
                "spine_kill_revive",
                faults::spine_kill_revive(&topo, span, seed),
            ),
            ("rolling_racks", faults::rolling_rack_outages(&topo, span)),
            (
                "correlated_degrade",
                faults::correlated_degradation(&topo, span, Duration::from_us(1), seed),
            ),
        ];
        for (name, schedule) in schedules {
            points.push(run_point(&topo, name, load, flows, shards, schedule));
        }
    }

    row(
        "",
        &[
            "load",
            "delivered",
            "failed",
            "reroutes",
            "retried",
            "readmit",
            "avail",
            "recovery",
        ]
        .map(String::from),
    );
    for p in &points {
        row(
            p.scenario,
            &[
                format!("{:.1}", p.load),
                p.delivered.to_string(),
                p.failed.to_string(),
                p.reroutes.to_string(),
                p.retried.to_string(),
                p.readmitted.to_string(),
                format!("{:.4}", p.availability),
                p.recovery
                    .map(edm_bench::ns)
                    .unwrap_or_else(|| "none".into()),
            ],
        );
    }

    let rss_kb = peak_rss_kb();
    let mut json = String::from("{\n  \"group\": \"faults\",\n");
    json.push_str(&format!(
        "  \"flows_per_point\": {flows},\n  \"shards\": {shards},\n  \"seed\": {seed},\n"
    ));
    json.push_str(&format!(
        "  \"peak_rss_kb\": {},\n  \"points\": [\n",
        rss_kb
            .map(|v| v.to_string())
            .unwrap_or_else(|| "null".into())
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"load\": {:.1}, \"delivered\": {}, \
             \"failed\": {}, \"reroutes\": {}, \"retried\": {}, \
             \"readmitted\": {}, \"active_flow_hwm\": {}, \
             \"goodput_bytes\": {}, \"availability\": {:.4}, \
             \"recovery_us\": {}}}{}\n",
            p.scenario,
            p.load,
            p.delivered,
            p.failed,
            p.reroutes,
            p.retried,
            p.readmitted,
            p.active_hwm,
            p.goodput_bytes,
            p.availability,
            p.recovery
                .map(|d| format!("{:.2}", d.as_ns_f64() / 1000.0))
                .unwrap_or_else(|| "null".into()),
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = out_dir.join("BENCH_faults.json");
    std::fs::write(&path, &json).expect("write campaign file");
    println!("\nwrote {}", path.display());

    if let Some(mb) = ceiling_mb {
        let peak_kb = rss_kb.expect("RSS gate needs procfs");
        if peak_kb > mb * 1024 {
            eprintln!(
                "FAIL: peak RSS {:.1} MB exceeds EDM_RSS_CEILING_MB={mb}",
                peak_kb as f64 / 1024.0
            );
            std::process::exit(1);
        }
        println!(
            "RSS gate: peak {:.1} MB within {mb} MB ceiling",
            peak_kb as f64 / 1024.0
        );
    }
}
