//! DDR4-like DRAM timing: open-page policy, per-bank row buffers, bank
//! conflicts, and burst transfer time.
//!
//! The model captures what matters to EDM's latency story (§2.3, Figure 7):
//! an intra-server memory access costs "a few 10s to a few 100s of
//! nanoseconds depending on the access pattern" — row-buffer hits are fast,
//! row conflicts pay precharge + activate, and concurrent accesses to one
//! bank serialize.

use edm_sim::{Duration, Time};

/// DRAM device/timing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// CAS latency (column access of an open row).
    pub t_cl: Duration,
    /// RAS-to-CAS delay (activate a row).
    pub t_rcd: Duration,
    /// Row precharge time (close a row).
    pub t_rp: Duration,
    /// Data-burst transfer time per 64 B burst.
    pub t_burst: Duration,
    /// Number of banks.
    pub banks: usize,
    /// Row size in bytes (granularity of row-buffer locality).
    pub row_bytes: u64,
}

impl DramConfig {
    /// DDR4-2400-ish timings: tCL = tRCD = tRP = 13.75 ns (rounded to ps),
    /// 3.33 ns per 64 B burst (derived from the testbed's 77 GB/s across
    /// DIMMs — a single 64 B burst at 19.2 GB/s per channel), 16 banks,
    /// 8 KB rows.
    pub fn ddr4_2400() -> Self {
        DramConfig {
            t_cl: Duration::from_ps(13_750),
            t_rcd: Duration::from_ps(13_750),
            t_rp: Duration::from_ps(13_750),
            t_burst: Duration::from_ps(3_330),
            banks: 16,
            row_bytes: 8192,
        }
    }
}

/// Kind of DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A read burst.
    Read,
    /// A write burst.
    Write,
}

/// Per-bank open-row state plus busy tracking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramTiming {
    config: DramConfig,
    /// Open row per bank (`None` = precharged).
    open_row: Vec<Option<u64>>,
    /// Bank busy-until time.
    busy_until: Vec<Time>,
    hits: u64,
    misses: u64,
    conflicts: u64,
}

/// The outcome of timing one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessTiming {
    /// When the access starts service (after any bank queuing).
    pub start: Time,
    /// When the data transfer completes.
    pub complete: Time,
    /// Whether the access hit the open row.
    pub row_hit: bool,
}

impl AccessTiming {
    /// Total latency from request to completion.
    pub fn latency(&self, issued: Time) -> Duration {
        self.complete.saturating_since(issued)
    }
}

impl DramTiming {
    /// Creates the timing model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero banks or a zero-sized row.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.banks > 0, "need at least one bank");
        assert!(config.row_bytes > 0, "row size must be positive");
        DramTiming {
            open_row: vec![None; config.banks],
            busy_until: vec![Time::ZERO; config.banks],
            config,
            hits: 0,
            misses: 0,
            conflicts: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Row-buffer hits so far.
    pub fn row_hits(&self) -> u64 {
        self.hits
    }

    /// Row-buffer misses (row closed) so far.
    pub fn row_misses(&self) -> u64 {
        self.misses
    }

    /// Row conflicts (different row open) so far.
    pub fn row_conflicts(&self) -> u64 {
        self.conflicts
    }

    fn bank_and_row(&self, addr: u64) -> (usize, u64) {
        let row = addr / self.config.row_bytes;
        // Interleave rows across banks (standard XOR-free mapping).
        let bank = (row % self.config.banks as u64) as usize;
        (bank, row)
    }

    /// Times an access of `len` bytes at `addr` issued at time `now`.
    ///
    /// Multi-burst accesses (len > 64) pay one burst time per 64 B after
    /// the initial column access, like a real burst-chop-free controller.
    pub fn access(&mut self, now: Time, addr: u64, len: usize, _kind: AccessKind) -> AccessTiming {
        let (bank, row) = self.bank_and_row(addr);
        let start = now.max(self.busy_until[bank]);
        let (array_latency, row_hit) = match self.open_row[bank] {
            Some(open) if open == row => {
                self.hits += 1;
                (self.config.t_cl, true)
            }
            Some(_) => {
                self.conflicts += 1;
                (
                    self.config.t_rp + self.config.t_rcd + self.config.t_cl,
                    false,
                )
            }
            None => {
                self.misses += 1;
                (self.config.t_rcd + self.config.t_cl, false)
            }
        };
        self.open_row[bank] = Some(row);
        let bursts = (len.max(1) as u64).div_ceil(64);
        let complete = start + array_latency + bursts * self.config.t_burst;
        self.busy_until[bank] = complete;
        AccessTiming {
            start,
            complete,
            row_hit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> DramTiming {
        DramTiming::new(DramConfig::ddr4_2400())
    }

    #[test]
    fn first_access_is_row_miss() {
        let mut d = dram();
        let t = d.access(Time::ZERO, 0, 64, AccessKind::Read);
        assert!(!t.row_hit);
        // tRCD + tCL + 1 burst.
        assert_eq!(
            t.complete,
            Time::ZERO
                + Duration::from_ps(13_750)
                + Duration::from_ps(13_750)
                + Duration::from_ps(3_330)
        );
    }

    #[test]
    fn second_access_same_row_hits() {
        let mut d = dram();
        let t1 = d.access(Time::ZERO, 0, 64, AccessKind::Read);
        let t2 = d.access(t1.complete, 64, 64, AccessKind::Read);
        assert!(t2.row_hit);
        assert_eq!(
            t2.complete.saturating_since(t1.complete),
            Duration::from_ps(13_750 + 3_330)
        );
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut d = dram();
        let cfg = *d.config();
        let row_stride = cfg.row_bytes * cfg.banks as u64; // same bank, new row
        let t1 = d.access(Time::ZERO, 0, 64, AccessKind::Read);
        let t2 = d.access(t1.complete, row_stride, 64, AccessKind::Read);
        assert!(!t2.row_hit);
        assert_eq!(
            t2.complete.saturating_since(t1.complete),
            cfg.t_rp + cfg.t_rcd + cfg.t_cl + cfg.t_burst
        );
        assert_eq!(d.row_conflicts(), 1);
    }

    #[test]
    fn bank_busy_serializes() {
        let mut d = dram();
        let t1 = d.access(Time::ZERO, 0, 64, AccessKind::Read);
        // Second access to the same bank issued immediately must queue.
        let t2 = d.access(Time::ZERO, 64, 64, AccessKind::Read);
        assert_eq!(t2.start, t1.complete);
    }

    #[test]
    fn different_banks_parallel() {
        let mut d = dram();
        let cfg = *d.config();
        let t1 = d.access(Time::ZERO, 0, 64, AccessKind::Read);
        let t2 = d.access(Time::ZERO, cfg.row_bytes, 64, AccessKind::Read); // next bank
        assert_eq!(t2.start, Time::ZERO);
        assert_eq!(t1.start, Time::ZERO);
    }

    #[test]
    fn large_access_pays_per_burst() {
        let mut d = dram();
        let small = d.access(Time::ZERO, 0, 64, AccessKind::Read);
        let mut d2 = dram();
        let big = d2.access(Time::ZERO, 0, 1024, AccessKind::Read);
        let delta = big.complete.saturating_since(small.complete);
        // 1024 B = 16 bursts vs 1: 15 extra bursts.
        assert_eq!(delta, 15 * Duration::from_ps(3_330));
    }

    #[test]
    fn typical_latency_in_paper_range() {
        // §1: intra-server memory access "varies from a few 10s to a few
        // 100s of nanoseconds".
        let mut d = dram();
        let t = d.access(Time::ZERO, 4096, 64, AccessKind::Read);
        let ns = t.latency(Time::ZERO).as_ns_f64();
        assert!((10.0..300.0).contains(&ns), "latency {ns} ns out of range");
    }

    #[test]
    fn stats_track_access_mix() {
        let mut d = dram();
        d.access(Time::ZERO, 0, 64, AccessKind::Read);
        d.access(Time::from_us(1), 64, 64, AccessKind::Write);
        assert_eq!(d.row_misses(), 1);
        assert_eq!(d.row_hits(), 1);
    }
}
