//! NIC-side atomic read-modify-write operations (§3.2.1).
//!
//! On receiving an RMWREQ, the memory node's NIC issues a read to the local
//! controller, applies the opcode, writes the result back, and returns the
//! RRES — all without preemption by other memory requests. EDM uses this to
//! implement compare-and-swap for locks and mutexes.

use crate::store::Store;
use core::fmt;

/// The modify opcode of an RMWREQ (operands are 64-bit DDR4 words).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmwOp {
    /// Compare-and-swap: if `*addr == expected`, store `desired`; returns
    /// the *original* value (so success ⇔ returned == expected).
    CompareAndSwap {
        /// Value the caller expects at the address.
        expected: u64,
        /// Value to store on match.
        desired: u64,
    },
    /// Fetch-and-add: `*addr += operand`; returns the original value.
    FetchAdd(u64),
    /// Atomic exchange: `*addr = operand`; returns the original value.
    Swap(u64),
    /// Bitwise and: `*addr &= operand`; returns the original value.
    And(u64),
    /// Bitwise or: `*addr |= operand`; returns the original value.
    Or(u64),
    /// Bitwise xor: `*addr ^= operand`; returns the original value.
    Xor(u64),
    /// Unsigned minimum: `*addr = min(*addr, operand)`; returns original.
    Min(u64),
    /// Unsigned maximum: `*addr = max(*addr, operand)`; returns original.
    Max(u64),
}

impl RmwOp {
    /// Applies the opcode to `current`, returning the new stored value.
    pub fn apply(self, current: u64) -> u64 {
        match self {
            RmwOp::CompareAndSwap { expected, desired } => {
                if current == expected {
                    desired
                } else {
                    current
                }
            }
            RmwOp::FetchAdd(x) => current.wrapping_add(x),
            RmwOp::Swap(x) => x,
            RmwOp::And(x) => current & x,
            RmwOp::Or(x) => current | x,
            RmwOp::Xor(x) => current ^ x,
            RmwOp::Min(x) => current.min(x),
            RmwOp::Max(x) => current.max(x),
        }
    }

    /// Size in bytes of the RRES this op produces. CAS returns the original
    /// word; the paper notes the response "can be as small as 1 bit
    /// True/False", but returning the original value subsumes that and
    /// matches x86/RDMA semantics. All ops here return 8 bytes.
    pub fn response_bytes(self) -> u32 {
        8
    }

    /// Size in bytes of the RMWREQ payload: address (8) + opcode (1) +
    /// operands. CAS carries three 64-bit words total (§2.3: 24 B).
    pub fn request_bytes(self) -> u32 {
        match self {
            RmwOp::CompareAndSwap { .. } => 24, // addr + expected + desired
            _ => 17,                            // addr + opcode + operand
        }
    }
}

impl fmt::Display for RmwOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmwOp::CompareAndSwap { .. } => write!(f, "cas"),
            RmwOp::FetchAdd(_) => write!(f, "faa"),
            RmwOp::Swap(_) => write!(f, "swap"),
            RmwOp::And(_) => write!(f, "and"),
            RmwOp::Or(_) => write!(f, "or"),
            RmwOp::Xor(_) => write!(f, "xor"),
            RmwOp::Min(_) => write!(f, "min"),
            RmwOp::Max(_) => write!(f, "max"),
        }
    }
}

/// A complete RMW request: target address plus opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RmwRequest {
    /// Target memory address (8-byte aligned word).
    pub addr: u64,
    /// The modify operation.
    pub op: RmwOp,
}

impl RmwRequest {
    /// Executes the request atomically against `store`, returning the
    /// original value (the RRES payload).
    ///
    /// Atomicity holds by construction: the simulation executes the
    /// read–modify–write as one uninterruptible step, exactly as the NIC
    /// hardware does (it does not interleave other memory requests).
    pub fn execute(self, store: &mut Store) -> u64 {
        let original = store.read_u64(self.addr);
        let new = self.op.apply(original);
        store.write_u64(self.addr, new);
        original
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_success_and_failure() {
        let mut m = Store::new();
        m.write_u64(0, 5);
        let r = RmwRequest {
            addr: 0,
            op: RmwOp::CompareAndSwap {
                expected: 5,
                desired: 9,
            },
        }
        .execute(&mut m);
        assert_eq!(r, 5); // success: returned == expected
        assert_eq!(m.read_u64(0), 9);

        let r = RmwRequest {
            addr: 0,
            op: RmwOp::CompareAndSwap {
                expected: 5,
                desired: 77,
            },
        }
        .execute(&mut m);
        assert_eq!(r, 9); // failure: returned != expected
        assert_eq!(m.read_u64(0), 9, "failed CAS must not write");
    }

    #[test]
    fn fetch_add_wraps() {
        let mut m = Store::new();
        m.write_u64(8, u64::MAX);
        let r = RmwRequest {
            addr: 8,
            op: RmwOp::FetchAdd(2),
        }
        .execute(&mut m);
        assert_eq!(r, u64::MAX);
        assert_eq!(m.read_u64(8), 1);
    }

    #[test]
    fn swap_returns_original() {
        let mut m = Store::new();
        m.write_u64(16, 111);
        let r = RmwRequest {
            addr: 16,
            op: RmwOp::Swap(222),
        }
        .execute(&mut m);
        assert_eq!((r, m.read_u64(16)), (111, 222));
    }

    #[test]
    fn bitwise_ops() {
        let mut m = Store::new();
        m.write_u64(0, 0b1100);
        RmwRequest {
            addr: 0,
            op: RmwOp::And(0b1010),
        }
        .execute(&mut m);
        assert_eq!(m.read_u64(0), 0b1000);
        RmwRequest {
            addr: 0,
            op: RmwOp::Or(0b0001),
        }
        .execute(&mut m);
        assert_eq!(m.read_u64(0), 0b1001);
        RmwRequest {
            addr: 0,
            op: RmwOp::Xor(0b1111),
        }
        .execute(&mut m);
        assert_eq!(m.read_u64(0), 0b0110);
    }

    #[test]
    fn min_max() {
        let mut m = Store::new();
        m.write_u64(0, 50);
        RmwRequest {
            addr: 0,
            op: RmwOp::Min(30),
        }
        .execute(&mut m);
        assert_eq!(m.read_u64(0), 30);
        RmwRequest {
            addr: 0,
            op: RmwOp::Max(90),
        }
        .execute(&mut m);
        assert_eq!(m.read_u64(0), 90);
    }

    #[test]
    fn message_sizes_match_paper() {
        // §2.3: CAS "contains three 64-bit arguments (24 B)".
        assert_eq!(
            RmwOp::CompareAndSwap {
                expected: 0,
                desired: 0
            }
            .request_bytes(),
            24
        );
        assert_eq!(RmwOp::FetchAdd(1).response_bytes(), 8);
    }

    #[test]
    fn spinlock_built_from_cas() {
        // The paper's motivating use: locks via CAS.
        let mut m = Store::new();
        let lock_addr = 128;
        let acquire = |m: &mut Store| {
            RmwRequest {
                addr: lock_addr,
                op: RmwOp::CompareAndSwap {
                    expected: 0,
                    desired: 1,
                },
            }
            .execute(m)
                == 0
        };
        assert!(acquire(&mut m), "first acquire succeeds");
        assert!(!acquire(&mut m), "second acquire fails while held");
        m.write_u64(lock_addr, 0); // release
        assert!(acquire(&mut m), "re-acquire after release");
    }
}
