//! The memory controller: the DDR4-style interface EDM's demand estimation
//! relies on.
//!
//! Every request carries an explicit byte count — §3.1.1: "a memory access
//! request message must include the number of bytes to be read or written,
//! since it is required by the memory controller interface, such as DDR4."
//! That is what makes the switch's implicit read-demand estimation
//! perfectly accurate.

use crate::dram::{AccessKind, AccessTiming, DramConfig, DramTiming};
use crate::rmw::RmwRequest;
use crate::store::Store;
use edm_sim::{Duration, Time};

/// A memory controller: functional store + DDR4 timing.
#[derive(Debug, Clone)]
pub struct MemoryController {
    store: Store,
    timing: DramTiming,
    reads: u64,
    writes: u64,
    rmws: u64,
}

impl MemoryController {
    /// Creates a controller with the given DRAM timing configuration.
    pub fn new(config: DramConfig) -> Self {
        MemoryController {
            store: Store::new(),
            timing: DramTiming::new(config),
            reads: 0,
            writes: 0,
            rmws: 0,
        }
    }

    /// Creates a controller with DDR4-2400 timings.
    pub fn ddr4() -> Self {
        MemoryController::new(DramConfig::ddr4_2400())
    }

    /// Read counter.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Write counter.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// RMW counter.
    pub fn rmws(&self) -> u64 {
        self.rmws
    }

    /// Direct access to the backing store (for test setup / inspection).
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// Direct read-only access to the backing store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Reads `len` bytes at `addr`, issued at `now`.
    ///
    /// Returns the data and the completion timing.
    pub fn read(&mut self, now: Time, addr: u64, len: usize) -> (Vec<u8>, AccessTiming) {
        self.reads += 1;
        let timing = self.timing.access(now, addr, len, AccessKind::Read);
        (self.store.read(addr, len), timing)
    }

    /// Writes `data` at `addr`, issued at `now`. Returns completion timing.
    pub fn write(&mut self, now: Time, addr: u64, data: &[u8]) -> AccessTiming {
        self.writes += 1;
        let timing = self.timing.access(now, addr, data.len(), AccessKind::Write);
        self.store.write(addr, data);
        timing
    }

    /// Executes an atomic RMW at `now`: read + modify + write, serialized
    /// on the target bank with no intervening access (the NIC performs the
    /// three steps without preemption, §3.2.1).
    ///
    /// Returns the original value and the completion timing of the
    /// write-back.
    pub fn rmw(&mut self, now: Time, req: RmwRequest) -> (u64, AccessTiming) {
        self.rmws += 1;
        let read_t = self.timing.access(now, req.addr, 8, AccessKind::Read);
        let original = self.store.read_u64(req.addr);
        let new = req.op.apply(original);
        // The modify step is combinational on the NIC; the write-back
        // starts as soon as the read data is available.
        let write_t = self
            .timing
            .access(read_t.complete, req.addr, 8, AccessKind::Write);
        self.store.write_u64(req.addr, new);
        (original, write_t)
    }

    /// Typical single-access latency for this configuration, used by the
    /// latency-composition experiments (Figure 7's ~82 ns local access is
    /// DRAM + on-chip interconnect; this returns the DRAM part).
    pub fn typical_read_latency(&self) -> Duration {
        let c = self.timing.config();
        c.t_rcd + c.t_cl + c.t_burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmw::RmwOp;

    #[test]
    fn read_returns_written_data() {
        let mut mc = MemoryController::ddr4();
        mc.write(Time::ZERO, 64, &[1, 2, 3, 4]);
        let (data, t) = mc.read(Time::from_us(1), 64, 4);
        assert_eq!(data, vec![1, 2, 3, 4]);
        assert!(t.complete > Time::from_us(1));
    }

    #[test]
    fn rmw_is_serialized_read_then_write() {
        let mut mc = MemoryController::ddr4();
        mc.store_mut().write_u64(0, 10);
        let (orig, t) = mc.rmw(
            Time::ZERO,
            RmwRequest {
                addr: 0,
                op: RmwOp::FetchAdd(5),
            },
        );
        assert_eq!(orig, 10);
        assert_eq!(mc.store().read_u64(0), 15);
        // Write-back completes after a read + a (row-hit) write.
        let read_only = {
            let mut mc2 = MemoryController::ddr4();
            let (_, t) = mc2.read(Time::ZERO, 0, 8);
            t.complete
        };
        assert!(t.complete > read_only);
    }

    #[test]
    fn rmw_atomic_against_interleaving() {
        // Two CAS on the same lock issued at the same instant: exactly one
        // must win because execution is serialized.
        let mut mc = MemoryController::ddr4();
        let cas = |mc: &mut MemoryController, now| {
            mc.rmw(
                now,
                RmwRequest {
                    addr: 0,
                    op: RmwOp::CompareAndSwap {
                        expected: 0,
                        desired: 1,
                    },
                },
            )
            .0 == 0
        };
        let a = cas(&mut mc, Time::ZERO);
        let b = cas(&mut mc, Time::ZERO);
        assert!(a ^ b, "exactly one CAS must succeed");
    }

    #[test]
    fn counters() {
        let mut mc = MemoryController::ddr4();
        mc.read(Time::ZERO, 0, 8);
        mc.write(Time::ZERO, 0, &[0]);
        mc.rmw(
            Time::ZERO,
            RmwRequest {
                addr: 0,
                op: RmwOp::Swap(1),
            },
        );
        assert_eq!((mc.reads(), mc.writes(), mc.rmws()), (1, 1, 1));
    }

    #[test]
    fn typical_latency_tens_of_ns() {
        let mc = MemoryController::ddr4();
        let ns = mc.typical_read_latency().as_ns_f64();
        assert!((20.0..60.0).contains(&ns), "typical latency {ns} ns");
    }
}
