//! The memory controller: the DDR4-style interface EDM's demand estimation
//! relies on.
//!
//! Every request carries an explicit byte count — §3.1.1: "a memory access
//! request message must include the number of bytes to be read or written,
//! since it is required by the memory controller interface, such as DDR4."
//! That is what makes the switch's implicit read-demand estimation
//! perfectly accurate.

use crate::dram::{AccessKind, AccessTiming, DramConfig, DramTiming};
use crate::rmw::RmwRequest;
use crate::store::Store;
use edm_sim::{Duration, Time};

/// A memory controller: functional store + DDR4 timing.
#[derive(Debug, Clone)]
pub struct MemoryController {
    store: Store,
    timing: DramTiming,
    reads: u64,
    writes: u64,
    rmws: u64,
}

impl MemoryController {
    /// Creates a controller with the given DRAM timing configuration.
    pub fn new(config: DramConfig) -> Self {
        MemoryController {
            store: Store::new(),
            timing: DramTiming::new(config),
            reads: 0,
            writes: 0,
            rmws: 0,
        }
    }

    /// Creates a controller with DDR4-2400 timings.
    pub fn ddr4() -> Self {
        MemoryController::new(DramConfig::ddr4_2400())
    }

    /// Read counter.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Write counter.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// RMW counter.
    pub fn rmws(&self) -> u64 {
        self.rmws
    }

    /// Direct access to the backing store (for test setup / inspection).
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// Direct read-only access to the backing store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Reads `len` bytes at `addr`, issued at `now`.
    ///
    /// Returns the data and the completion timing.
    pub fn read(&mut self, now: Time, addr: u64, len: usize) -> (Vec<u8>, AccessTiming) {
        self.reads += 1;
        let timing = self.timing.access(now, addr, len, AccessKind::Read);
        (self.store.read(addr, len), timing)
    }

    /// Writes `data` at `addr`, issued at `now`. Returns completion timing.
    pub fn write(&mut self, now: Time, addr: u64, data: &[u8]) -> AccessTiming {
        self.writes += 1;
        let timing = self.timing.access(now, addr, data.len(), AccessKind::Write);
        self.store.write(addr, data);
        timing
    }

    /// Executes an atomic RMW at `now`: read + modify + write, serialized
    /// on the target bank with no intervening access (the NIC performs the
    /// three steps without preemption, §3.2.1).
    ///
    /// Returns the original value and the completion timing of the
    /// write-back.
    pub fn rmw(&mut self, now: Time, req: RmwRequest) -> (u64, AccessTiming) {
        self.rmws += 1;
        let read_t = self.timing.access(now, req.addr, 8, AccessKind::Read);
        let original = self.store.read_u64(req.addr);
        let new = req.op.apply(original);
        // The modify step is combinational on the NIC; the write-back
        // starts as soon as the read data is available.
        let write_t = self
            .timing
            .access(read_t.complete, req.addr, 8, AccessKind::Write);
        self.store.write_u64(req.addr, new);
        (original, write_t)
    }

    /// Typical single-access latency for this configuration, used by the
    /// latency-composition experiments (Figure 7's ~82 ns local access is
    /// DRAM + on-chip interconnect; this returns the DRAM part).
    pub fn typical_read_latency(&self) -> Duration {
        let c = self.timing.config();
        c.t_rcd + c.t_cl + c.t_burst
    }
}

/// The memory node's *service-time* interface: DDR4 timing with no
/// functional store behind it.
///
/// The closed-loop application tier (`edm-topo`'s `app` module) simulates
/// millions of key-value ops where only *when* the DIMM answers matters,
/// never the bytes — a functional [`Store`] would allocate a page per
/// touched slot for data nobody reads. `MemoryService` keeps the full
/// banked open-page contention model (per-bank busy windows, row
/// hits/misses/conflicts) and the KV access *shapes* — a get is a slot
/// header probe followed by the value read, a put one header+value write,
/// an RMW a serialized read→modify→write — while dropping the payload.
/// Timing equivalence with the functional paths is pinned by
/// `prop_memory`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryService {
    timing: DramTiming,
    gets: u64,
    puts: u64,
    rmws: u64,
}

/// Fixed per-slot header bytes of the KV layout ([`crate::kvstore`]'s
/// `SLOT_HEADER`): key + value length, read before the value itself.
pub const KV_SLOT_HEADER: usize = 16;

impl MemoryService {
    /// Creates a service model with the given DRAM timing configuration.
    pub fn new(config: DramConfig) -> Self {
        MemoryService {
            timing: DramTiming::new(config),
            gets: 0,
            puts: 0,
            rmws: 0,
        }
    }

    /// Creates a service model with DDR4-2400 timings.
    pub fn ddr4() -> Self {
        MemoryService::new(DramConfig::ddr4_2400())
    }

    /// The underlying DRAM timing state (row-buffer counters etc.).
    pub fn timing(&self) -> &DramTiming {
        &self.timing
    }

    /// `(gets, puts, rmws)` served so far.
    pub fn ops(&self) -> (u64, u64, u64) {
        (self.gets, self.puts, self.rmws)
    }

    /// Serves a KV *get* of a `value_len`-byte object in the slot at
    /// `addr`: the slot header read, then the value read chained off its
    /// completion — the same two-access shape as [`KvStore::get`]
    /// (which pins this equivalence in `prop_memory`). Returns when the
    /// value's last burst leaves the DIMM.
    ///
    /// [`KvStore::get`]: crate::kvstore::KvStore::get
    pub fn get(&mut self, now: Time, addr: u64, value_len: usize) -> Time {
        self.gets += 1;
        let header = self
            .timing
            .access(now, addr, KV_SLOT_HEADER, AccessKind::Read);
        self.timing
            .access(
                header.complete,
                addr + KV_SLOT_HEADER as u64,
                value_len,
                AccessKind::Read,
            )
            .complete
    }

    /// Serves a KV *put* of a `value_len`-byte value into the slot at
    /// `addr`: header and value land in one write burst train
    /// ([`KvStore::put`]'s single-access shape).
    ///
    /// [`KvStore::put`]: crate::kvstore::KvStore::put
    pub fn put(&mut self, now: Time, addr: u64, value_len: usize) -> Time {
        self.puts += 1;
        self.timing
            .access(now, addr, KV_SLOT_HEADER + value_len, AccessKind::Write)
            .complete
    }

    /// Serves a NIC-side atomic RMW on the word at `addr`: an 8-byte read
    /// and the write-back chained off its completion, no intervening
    /// access — the same serialization as [`MemoryController::rmw`].
    pub fn rmw(&mut self, now: Time, addr: u64) -> Time {
        self.rmws += 1;
        let read_t = self.timing.access(now, addr, 8, AccessKind::Read);
        self.timing
            .access(read_t.complete, addr, 8, AccessKind::Write)
            .complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmw::RmwOp;

    #[test]
    fn read_returns_written_data() {
        let mut mc = MemoryController::ddr4();
        mc.write(Time::ZERO, 64, &[1, 2, 3, 4]);
        let (data, t) = mc.read(Time::from_us(1), 64, 4);
        assert_eq!(data, vec![1, 2, 3, 4]);
        assert!(t.complete > Time::from_us(1));
    }

    #[test]
    fn rmw_is_serialized_read_then_write() {
        let mut mc = MemoryController::ddr4();
        mc.store_mut().write_u64(0, 10);
        let (orig, t) = mc.rmw(
            Time::ZERO,
            RmwRequest {
                addr: 0,
                op: RmwOp::FetchAdd(5),
            },
        );
        assert_eq!(orig, 10);
        assert_eq!(mc.store().read_u64(0), 15);
        // Write-back completes after a read + a (row-hit) write.
        let read_only = {
            let mut mc2 = MemoryController::ddr4();
            let (_, t) = mc2.read(Time::ZERO, 0, 8);
            t.complete
        };
        assert!(t.complete > read_only);
    }

    #[test]
    fn rmw_atomic_against_interleaving() {
        // Two CAS on the same lock issued at the same instant: exactly one
        // must win because execution is serialized.
        let mut mc = MemoryController::ddr4();
        let cas = |mc: &mut MemoryController, now| {
            mc.rmw(
                now,
                RmwRequest {
                    addr: 0,
                    op: RmwOp::CompareAndSwap {
                        expected: 0,
                        desired: 1,
                    },
                },
            )
            .0 == 0
        };
        let a = cas(&mut mc, Time::ZERO);
        let b = cas(&mut mc, Time::ZERO);
        assert!(a ^ b, "exactly one CAS must succeed");
    }

    #[test]
    fn counters() {
        let mut mc = MemoryController::ddr4();
        mc.read(Time::ZERO, 0, 8);
        mc.write(Time::ZERO, 0, &[0]);
        mc.rmw(
            Time::ZERO,
            RmwRequest {
                addr: 0,
                op: RmwOp::Swap(1),
            },
        );
        assert_eq!((mc.reads(), mc.writes(), mc.rmws()), (1, 1, 1));
    }

    #[test]
    fn typical_latency_tens_of_ns() {
        let mc = MemoryController::ddr4();
        let ns = mc.typical_read_latency().as_ns_f64();
        assert!((20.0..60.0).contains(&ns), "typical latency {ns} ns");
    }
}
