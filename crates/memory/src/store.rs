//! A sparse byte-addressable backing store.
//!
//! Pages are allocated on first touch, so a simulated "64 GB DIMM" costs
//! host memory proportional to the bytes actually used. Unwritten bytes
//! read as zero, like freshly initialized DRAM in the testbed.

use std::collections::HashMap;

/// Bytes per backing page.
pub const PAGE_BYTES: usize = 4096;

/// A sparse, byte-addressable memory.
///
/// ```
/// use edm_memory::Store;
/// let mut m = Store::new();
/// m.write(0x1000, &[1, 2, 3]);
/// assert_eq!(m.read(0x1000, 3), vec![1, 2, 3]);
/// assert_eq!(m.read(0xDEAD_BEEF, 2), vec![0, 0]); // untouched reads zero
/// ```
#[derive(Debug, Default, Clone)]
pub struct Store {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES]>>,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Number of pages actually allocated.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads `len` bytes starting at `addr` (zero-filled where untouched).
    pub fn read(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.read_into(addr, &mut out);
        out
    }

    /// Reads into a caller-provided buffer.
    pub fn read_into(&self, addr: u64, buf: &mut [u8]) {
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let page = a / PAGE_BYTES as u64;
            let in_page = (a % PAGE_BYTES as u64) as usize;
            let n = (PAGE_BYTES - in_page).min(buf.len() - off);
            match self.pages.get(&page) {
                Some(p) => buf[off..off + n].copy_from_slice(&p[in_page..in_page + n]),
                None => buf[off..off + n].fill(0),
            }
            off += n;
        }
    }

    /// Writes `data` starting at `addr`, allocating pages as needed.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let mut off = 0usize;
        while off < data.len() {
            let a = addr + off as u64;
            let page = a / PAGE_BYTES as u64;
            let in_page = (a % PAGE_BYTES as u64) as usize;
            let n = (PAGE_BYTES - in_page).min(data.len() - off);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_BYTES]));
            p[in_page..in_page + n].copy_from_slice(&data[off..off + n]);
            off += n;
        }
    }

    /// Reads a little-endian u64 at `addr` (the DDR4 word size the paper's
    /// RMW operations work on).
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read_into(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian u64 at `addr`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write(addr, &value.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_reads_zero() {
        let m = Store::new();
        assert_eq!(m.read(12345, 4), vec![0; 4]);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = Store::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write(777, &data);
        assert_eq!(m.read(777, 256), data);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Store::new();
        let addr = PAGE_BYTES as u64 - 3; // straddles two pages
        m.write(addr, &[9, 8, 7, 6, 5, 4]);
        assert_eq!(m.read(addr, 6), vec![9, 8, 7, 6, 5, 4]);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn sparse_far_addresses() {
        let mut m = Store::new();
        m.write(0, &[1]);
        m.write(63 << 30, &[2]); // "64 GB" away
        assert_eq!(m.resident_pages(), 2);
        assert_eq!(m.read(63 << 30, 1), vec![2]);
    }

    #[test]
    fn u64_helpers() {
        let mut m = Store::new();
        m.write_u64(40, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.read_u64(40), 0xDEAD_BEEF_CAFE_F00D);
        // Overlap check: byte view is little-endian.
        assert_eq!(m.read(40, 1), vec![0x0D]);
    }

    #[test]
    fn partial_overwrite() {
        let mut m = Store::new();
        m.write(100, &[1, 1, 1, 1]);
        m.write(102, &[2, 2]);
        assert_eq!(m.read(100, 4), vec![1, 1, 2, 2]);
    }
}
