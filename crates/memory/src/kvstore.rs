//! A fixed-slot key-value store over a [`MemoryController`] — the
//! application of the paper's §4.2.2 experiments (Figures 6 and 7).
//!
//! The YCSB experiments store "the entire key-value store on the remote
//! memory node"; reads query 1 KB objects with an 8 B request, writes carry
//! 100 B. This store maps each key to a fixed-size slot by open addressing
//! so that a `get` is a single remote read of a known address and size —
//! the access pattern that makes memory disaggregation traffic so small
//! and latency-critical.

use crate::controller::MemoryController;
use edm_sim::{Duration, Time};

/// Slot header bytes: key (8) + value length (4) + occupancy tag (4).
const SLOT_HEADER: usize = 16;
const TAG_OCCUPIED: u32 = 0xC0DE_CAFE;

/// A fixed-capacity, fixed-slot KV store.
#[derive(Debug)]
pub struct KvStore {
    mem: MemoryController,
    slots: u64,
    value_capacity: usize,
    base_addr: u64,
    occupied: u64,
}

/// Errors from KV operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// Value longer than the slot's value capacity.
    ValueTooLarge {
        /// Attempted value length.
        len: usize,
        /// Slot capacity.
        capacity: usize,
    },
    /// All probe slots occupied by other keys.
    Full,
    /// Key not present.
    NotFound,
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::ValueTooLarge { len, capacity } => {
                write!(f, "value of {len} bytes exceeds slot capacity {capacity}")
            }
            KvError::Full => write!(f, "store is full"),
            KvError::NotFound => write!(f, "key not found"),
        }
    }
}

impl std::error::Error for KvError {}

/// The result of a timed KV operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvResponse {
    /// Value bytes (empty for `put`).
    pub value: Vec<u8>,
    /// Memory-side completion time.
    pub complete: Time,
}

impl KvStore {
    /// Creates a store of `slots` slots, each holding values up to
    /// `value_capacity` bytes, backed by DDR4 timing.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or not a power of two (cheap masking), or
    /// `value_capacity` is zero.
    pub fn new(slots: u64, value_capacity: usize) -> Self {
        assert!(slots > 0 && slots.is_power_of_two(), "slots must be 2^k");
        assert!(value_capacity > 0, "value capacity must be positive");
        KvStore {
            mem: MemoryController::ddr4(),
            slots,
            value_capacity,
            base_addr: 0,
            occupied: 0,
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> u64 {
        self.occupied
    }

    /// Whether the store has no entries.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Slot capacity for values, in bytes.
    pub fn value_capacity(&self) -> usize {
        self.value_capacity
    }

    /// The memory address of the slot for `key` after probing. This is the
    /// address a compute node embeds in its RREQ/WREQ.
    pub fn slot_addr(&self, slot_index: u64) -> u64 {
        self.base_addr + slot_index * (SLOT_HEADER + self.value_capacity) as u64
    }

    fn hash(&self, key: u64) -> u64 {
        // SplitMix64 finalizer: good avalanche for sequential keys.
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) & (self.slots - 1)
    }

    /// Finds the slot index holding `key`, or the first free probe slot.
    fn probe(&self, key: u64) -> Result<(u64, bool), KvError> {
        let start = self.hash(key);
        for i in 0..self.slots {
            let idx = (start + i) & (self.slots - 1);
            let addr = self.slot_addr(idx);
            let tag = u32::from_le_bytes(
                self.mem
                    .store()
                    .read(addr + 12, 4)
                    .try_into()
                    .expect("4 bytes"),
            );
            if tag != TAG_OCCUPIED {
                return Ok((idx, false));
            }
            let stored_key = self.mem.store().read_u64(addr);
            if stored_key == key {
                return Ok((idx, true));
            }
        }
        Err(KvError::Full)
    }

    /// Inserts or updates `key`, issued at `now`.
    ///
    /// # Errors
    ///
    /// Fails if the value exceeds the slot capacity or the store is full.
    pub fn put(&mut self, now: Time, key: u64, value: &[u8]) -> Result<KvResponse, KvError> {
        if value.len() > self.value_capacity {
            return Err(KvError::ValueTooLarge {
                len: value.len(),
                capacity: self.value_capacity,
            });
        }
        let (idx, existed) = self.probe(key)?;
        let addr = self.slot_addr(idx);
        let mut record = Vec::with_capacity(SLOT_HEADER + value.len());
        record.extend_from_slice(&key.to_le_bytes());
        record.extend_from_slice(&(value.len() as u32).to_le_bytes());
        record.extend_from_slice(&TAG_OCCUPIED.to_le_bytes());
        record.extend_from_slice(value);
        let t = self.mem.write(now, addr, &record);
        if !existed {
            self.occupied += 1;
        }
        Ok(KvResponse {
            value: Vec::new(),
            complete: t.complete,
        })
    }

    /// Reads the value for `key`, issued at `now`.
    ///
    /// # Errors
    ///
    /// Fails with [`KvError::NotFound`] for absent keys.
    pub fn get(&mut self, now: Time, key: u64) -> Result<KvResponse, KvError> {
        let (idx, existed) = self.probe(key)?;
        if !existed {
            return Err(KvError::NotFound);
        }
        let addr = self.slot_addr(idx);
        let (header, _) = self.mem.read(now, addr, SLOT_HEADER);
        let len = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
        let (value, t) = self.mem.read(now, addr + SLOT_HEADER as u64, len);
        Ok(KvResponse {
            value,
            complete: t.complete,
        })
    }

    /// Typical service latency of a `get` (header + value reads, row hit).
    pub fn typical_get_latency(&self) -> Duration {
        2 * self.mem.typical_read_latency()
    }

    /// The memory address of the *value* stored under `key`, if present.
    ///
    /// This is what a disaggregated client embeds in its RREQ/WREQ: after
    /// an initial directory exchange, remote reads address object memory
    /// directly (no per-access lookup on the wire).
    pub fn value_addr(&self, key: u64) -> Option<u64> {
        match self.probe(key) {
            Ok((idx, true)) => Some(self.slot_addr(idx) + SLOT_HEADER as u64),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut kv = KvStore::new(1024, 1024);
        kv.put(Time::ZERO, 42, b"hello world").unwrap();
        let r = kv.get(Time::from_us(1), 42).unwrap();
        assert_eq!(r.value, b"hello world");
        assert!(r.complete > Time::from_us(1));
    }

    #[test]
    fn update_in_place() {
        let mut kv = KvStore::new(64, 64);
        kv.put(Time::ZERO, 1, b"old").unwrap();
        kv.put(Time::ZERO, 1, b"newer").unwrap();
        assert_eq!(kv.get(Time::ZERO, 1).unwrap().value, b"newer");
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn missing_key() {
        let mut kv = KvStore::new(64, 64);
        assert_eq!(kv.get(Time::ZERO, 9).unwrap_err(), KvError::NotFound);
    }

    #[test]
    fn value_too_large() {
        let mut kv = KvStore::new(64, 16);
        assert_eq!(
            kv.put(Time::ZERO, 1, &[0; 17]).unwrap_err(),
            KvError::ValueTooLarge {
                len: 17,
                capacity: 16
            }
        );
    }

    #[test]
    fn collision_probing() {
        let mut kv = KvStore::new(4, 32); // tiny: force collisions
        for k in 0..4u64 {
            kv.put(Time::ZERO, k, &k.to_le_bytes()).unwrap();
        }
        assert_eq!(kv.len(), 4);
        for k in 0..4u64 {
            assert_eq!(kv.get(Time::ZERO, k).unwrap().value, k.to_le_bytes());
        }
        assert_eq!(kv.put(Time::ZERO, 99, b"x").unwrap_err(), KvError::Full);
    }

    #[test]
    fn ycsb_shape_objects() {
        // The paper's Fig 6 workload: 1 KB objects, 100 B writes.
        let mut kv = KvStore::new(4096, 1024);
        let obj = vec![7u8; 1024];
        for k in 0..100 {
            kv.put(Time::ZERO, k, &obj).unwrap();
        }
        let r = kv.get(Time::ZERO, 50).unwrap();
        assert_eq!(r.value.len(), 1024);
        let lat = kv.typical_get_latency().as_ns_f64();
        assert!(lat < 150.0, "KV get latency {lat} ns too slow for Fig 7");
    }
}
