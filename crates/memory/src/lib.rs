//! `edm-memory` — the memory-node substrate: DRAM timing, a byte-addressable
//! backing store, the memory controller, NIC-side atomic read-modify-write
//! (§3.2.1, "Implementing RMWREQ"), and a remote key-value store
//! application (§4.2.2).
//!
//! The paper's memory node is an FPGA with 64 GB of off-chip DDR4. Here the
//! DDR4 DIMM is a banked timing model over a sparse store:
//!
//! * [`dram`] — open-page DDR4 timing (tCL/tRCD/tRP, per-bank row buffers,
//!   bank conflicts), calibrated so a typical access lands in the few-tens
//!   of nanoseconds the paper's Figure 7 assumes (~82 ns end-to-end local
//!   access including the controller);
//! * [`store`] — a sparse byte-addressable memory (allocate-on-touch
//!   pages), so simulating "64 GB DIMMs" costs only what is touched;
//! * [`controller`] — the DDR4 controller interface: reads and writes carry
//!   an explicit byte count (which is exactly what gives EDM its free,
//!   perfectly accurate demand estimates for read replies);
//! * [`rmw`] — the NIC-side atomic unit: compare-and-swap and friends,
//!   executed read→modify→write without preemption;
//! * [`kvstore`] — a fixed-slot key-value store over the controller, the
//!   application used by the YCSB experiments (Figures 6 and 7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod dram;
pub mod kvstore;
pub mod rmw;
pub mod store;

pub use controller::{MemoryController, MemoryService, KV_SLOT_HEADER};
pub use dram::{DramConfig, DramTiming};
pub use kvstore::KvStore;
pub use rmw::{RmwOp, RmwRequest};
pub use store::Store;
