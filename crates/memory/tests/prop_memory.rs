//! Property-based tests for the memory substrate: the sparse store
//! behaves like a flat byte array, RMW ops match their scalar semantics,
//! DRAM timing is causal, and the KV store behaves like a map.
//!
//! The timing families pin the DDR4 model exactly — open-page hit vs
//! miss vs row-conflict latency at arbitrary address pairs, work-
//! conserving per-bank queueing under same-instant bursts, NIC-side RMW
//! atomicity against interleaved traffic — and pin the *service-time*
//! model ([`MemoryService`]) bit-equal to the functional paths
//! ([`KvStore`] get/put, [`MemoryController`] RMW) that the closed-loop
//! application tier replaces with it.

use edm_memory::dram::{AccessKind, DramConfig, DramTiming};
use edm_memory::kvstore::KvError;
use edm_memory::rmw::{RmwOp, RmwRequest};
use edm_memory::{KvStore, MemoryController, MemoryService, Store, KV_SLOT_HEADER};
use edm_sim::{Duration, Time};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// The sparse store agrees with a reference HashMap<addr, byte> under
    /// arbitrary interleaved writes and reads.
    #[test]
    fn store_matches_reference(
        writes in proptest::collection::vec(
            (0u64..10_000, proptest::collection::vec(any::<u8>(), 1..64)),
            1..50
        ),
        probes in proptest::collection::vec((0u64..10_000, 1usize..64), 1..20),
    ) {
        let mut store = Store::new();
        let mut reference: HashMap<u64, u8> = HashMap::new();
        for (addr, data) in &writes {
            store.write(*addr, data);
            for (i, &b) in data.iter().enumerate() {
                reference.insert(addr + i as u64, b);
            }
        }
        for &(addr, len) in &probes {
            let got = store.read(addr, len);
            for (i, &b) in got.iter().enumerate() {
                let want = reference.get(&(addr + i as u64)).copied().unwrap_or(0);
                prop_assert_eq!(b, want, "mismatch at {}", addr + i as u64);
            }
        }
    }

    /// Every RMW opcode matches its scalar definition and returns the
    /// original value.
    #[test]
    fn rmw_scalar_semantics(initial in any::<u64>(), operand in any::<u64>(), operand2 in any::<u64>()) {
        let cases: Vec<(RmwOp, u64)> = vec![
            (RmwOp::FetchAdd(operand), initial.wrapping_add(operand)),
            (RmwOp::Swap(operand), operand),
            (RmwOp::And(operand), initial & operand),
            (RmwOp::Or(operand), initial | operand),
            (RmwOp::Xor(operand), initial ^ operand),
            (RmwOp::Min(operand), initial.min(operand)),
            (RmwOp::Max(operand), initial.max(operand)),
            (
                RmwOp::CompareAndSwap { expected: operand, desired: operand2 },
                if initial == operand { operand2 } else { initial },
            ),
        ];
        for (op, want_stored) in cases {
            let mut store = Store::new();
            store.write_u64(64, initial);
            let original = RmwRequest { addr: 64, op }.execute(&mut store);
            prop_assert_eq!(original, initial, "{:?} must return the original", op);
            prop_assert_eq!(store.read_u64(64), want_stored, "{:?} stored value", op);
        }
    }

    /// DRAM timing is causal and busy-consistent: completions never
    /// precede issue, and per-bank accesses never overlap.
    #[test]
    fn dram_timing_causal(
        accesses in proptest::collection::vec((0u64..1_000_000, 1usize..512, 0u64..10_000), 1..60)
    ) {
        let mut dram = DramTiming::new(DramConfig::ddr4_2400());
        let mut issued = Time::ZERO;
        let mut completions: Vec<(u64, Time, Time)> = Vec::new(); // (bank-ish addr, start, complete)
        for &(addr, len, gap) in &accesses {
            issued += edm_sim::Duration::from_ps(gap);
            let t = dram.access(issued, addr, len, AccessKind::Read);
            prop_assert!(t.start >= issued, "service before issue");
            prop_assert!(t.complete > t.start, "zero-time access");
            completions.push((addr / 8192 % 16, t.start, t.complete));
        }
        // Same-bank accesses are serialized.
        for i in 0..completions.len() {
            for j in i + 1..completions.len() {
                let (b1, s1, c1) = completions[i];
                let (b2, s2, c2) = completions[j];
                if b1 == b2 {
                    prop_assert!(
                        c1 <= s2 || c2 <= s1,
                        "bank {b1} overlap: [{s1},{c1}] vs [{s2},{c2}]"
                    );
                }
            }
        }
    }

    /// The KV store behaves like a HashMap under arbitrary put/get
    /// sequences (within capacity).
    #[test]
    fn kvstore_matches_map(
        ops in proptest::collection::vec((0u64..64, proptest::collection::vec(any::<u8>(), 0..32), any::<bool>()), 1..80)
    ) {
        let mut kv = KvStore::new(256, 32);
        let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();
        for (key, value, is_put) in &ops {
            if *is_put && !value.is_empty() {
                kv.put(Time::ZERO, *key, value).expect("capacity ample");
                reference.insert(*key, value.clone());
            } else {
                match (kv.get(Time::ZERO, *key), reference.get(key)) {
                    (Ok(resp), Some(want)) => prop_assert_eq!(&resp.value, want),
                    (Err(_), None) => {}
                    (got, want) => prop_assert!(
                        false,
                        "kv/get mismatch for key {key}: {got:?} vs {want:?}"
                    ),
                }
            }
        }
        prop_assert_eq!(kv.len(), reference.len() as u64);
    }

    /// Open-page timing boundaries, exactly: after any first access, a
    /// second access pays tCL on a row hit, tRCD+tCL on a fresh bank,
    /// and tRP+tRCD+tCL on a row conflict — plus one burst per 64 B —
    /// and the hit/miss/conflict counters classify it the same way.
    #[test]
    fn dram_open_page_boundaries(
        addr1 in 0u64..1_000_000,
        addr2 in 0u64..1_000_000,
        len in 1usize..256,
    ) {
        let cfg = DramConfig::ddr4_2400();
        let mut d = DramTiming::new(cfg);
        let t1 = d.access(Time::ZERO, addr1, 64, AccessKind::Read);
        let t2 = d.access(t1.complete, addr2, len, AccessKind::Read);
        let row = |a: u64| a / cfg.row_bytes;
        let bank = |a: u64| row(a) % cfg.banks as u64;
        let same_bank = bank(addr2) == bank(addr1);
        let array = if !same_bank {
            cfg.t_rcd + cfg.t_cl // fresh bank: row miss
        } else if row(addr2) == row(addr1) {
            cfg.t_cl // open-page hit
        } else {
            cfg.t_rp + cfg.t_rcd + cfg.t_cl // row conflict
        };
        let bursts = (len as u64).div_ceil(64);
        prop_assert_eq!(
            t2.complete.saturating_since(t1.complete),
            array + bursts * cfg.t_burst
        );
        prop_assert_eq!(t2.row_hit, same_bank && row(addr2) == row(addr1));
        prop_assert_eq!(d.row_hits() + d.row_misses() + d.row_conflicts(), 2);
        prop_assert_eq!(d.row_hits(), u64::from(t2.row_hit));
    }

    /// Work-conserving bank queueing: a burst of accesses all issued at
    /// the same instant serializes per bank with no idle gaps — each
    /// queued access starts exactly when its bank releases — while
    /// distinct banks proceed independently.
    #[test]
    fn bank_queueing_under_bursts(
        accesses in proptest::collection::vec((0u64..1_000_000, 1usize..256), 2..40),
    ) {
        let cfg = DramConfig::ddr4_2400();
        let mut d = DramTiming::new(cfg);
        let mut busy: HashMap<u64, Time> = HashMap::new();
        for &(addr, len) in &accesses {
            let t = d.access(Time::ZERO, addr, len, AccessKind::Read);
            let bank = (addr / cfg.row_bytes) % cfg.banks as u64;
            match busy.get(&bank) {
                Some(&release) => prop_assert_eq!(
                    t.start,
                    release,
                    "queued access on bank {} must start at release",
                    bank
                ),
                None => prop_assert_eq!(t.start, Time::ZERO),
            }
            busy.insert(bank, t.complete);
        }
    }

    /// NIC-side RMW atomicity against interleaved traffic: over a small
    /// set of words under arbitrary interleavings of plain reads, plain
    /// writes, and every RMW opcode, each RMW observes the complete
    /// prefix of earlier ops on its word and the final state equals the
    /// scalar fold.
    #[test]
    fn rmw_atomic_across_interleaved_ops(
        ops in proptest::collection::vec(
            (0u64..4, 0u8..10, any::<u64>(), any::<u64>(), 0u64..10_000),
            1..60,
        ),
    ) {
        let mut mc = MemoryController::ddr4();
        let mut reference = [0u64; 4];
        let mut now = Time::ZERO;
        for &(word, sel, a, b, gap) in &ops {
            now += Duration::from_ps(gap);
            let addr = word * 8;
            let w = word as usize;
            match sel {
                0 => {
                    mc.write(now, addr, &a.to_le_bytes());
                    reference[w] = a;
                }
                1 => {
                    let (data, _) = mc.read(now, addr, 8);
                    let got = u64::from_le_bytes(data.try_into().expect("8 bytes"));
                    prop_assert_eq!(got, reference[w]);
                }
                s => {
                    let op = match s {
                        2 => RmwOp::FetchAdd(a),
                        3 => RmwOp::Swap(a),
                        4 => RmwOp::And(a),
                        5 => RmwOp::Or(a),
                        6 => RmwOp::Xor(a),
                        7 => RmwOp::Min(a),
                        8 => RmwOp::Max(a),
                        _ => RmwOp::CompareAndSwap { expected: a, desired: b },
                    };
                    let (orig, t) = mc.rmw(now, RmwRequest { addr, op });
                    prop_assert_eq!(orig, reference[w], "RMW must observe the full prefix");
                    reference[w] = op.apply(reference[w]);
                    prop_assert!(t.complete > now, "RMW write-back takes time");
                }
            }
        }
        for (w, &want) in reference.iter().enumerate() {
            prop_assert_eq!(mc.store().read_u64(w as u64 * 8), want);
        }
    }

    /// The fixed-slot store fills to capacity and never evicts: a put
    /// succeeds exactly while a slot is free (or the key is resident),
    /// reports `Full` otherwise, and every accepted key stays readable —
    /// open addressing trades rejections for evictions.
    #[test]
    fn kvstore_fills_to_capacity_never_evicts(
        slots_pow in 2u32..6,
        keys in proptest::collection::vec(any::<u64>(), 1..80),
    ) {
        let slots = 1u64 << slots_pow;
        let mut kv = KvStore::new(slots, 16);
        let mut reference: HashMap<u64, [u8; 8]> = HashMap::new();
        for &k in &keys {
            let fits = reference.contains_key(&k) || (reference.len() as u64) < slots;
            let res = kv.put(Time::ZERO, k, &k.to_le_bytes());
            if fits {
                prop_assert!(res.is_ok(), "{} of {} slots used, put must fit", reference.len(), slots);
                reference.insert(k, k.to_le_bytes());
            } else {
                prop_assert_eq!(res.unwrap_err(), KvError::Full);
            }
        }
        prop_assert_eq!(kv.len(), reference.len() as u64);
        for (&k, want) in &reference {
            prop_assert_eq!(&kv.get(Time::ZERO, k).expect("resident").value, want);
        }
        // A key that was never inserted must not read as a value (the
        // error is NotFound, or Full when every probe slot is taken).
        let absent = (0..).map(|i| u64::MAX / 2 + i).find(|k| !reference.contains_key(k));
        prop_assert!(kv.get(Time::ZERO, absent.expect("fresh key")).is_err());
    }

    /// The service-time model is bit-equal to the functional KV path:
    /// replaying one op sequence through `KvStore` (functional store +
    /// DDR4 timing) and `MemoryService` (timing only) yields identical
    /// completion times for every get and put. 48-byte value capacity
    /// makes the 64-byte slot stride divide the 8 KB row, so a slot
    /// never straddles a row boundary — the regime the service model's
    /// chained header→value get is exact in.
    #[test]
    fn memory_service_matches_kvstore_timing(
        ops in proptest::collection::vec(
            (0u64..16, any::<bool>(), 1usize..48, 0u64..50_000),
            1..60,
        ),
    ) {
        let mut kv = KvStore::new(256, 48);
        let mut svc = MemoryService::ddr4();
        let mut len_of: HashMap<u64, usize> = HashMap::new();
        let mut now = Time::ZERO;
        let mut timed = 0u64;
        for &(key, is_put, len, gap) in &ops {
            now += Duration::from_ps(gap);
            if is_put {
                let r = kv.put(now, key, &vec![0xAB; len]).expect("ample capacity");
                let addr = kv.value_addr(key).expect("resident") - KV_SLOT_HEADER as u64;
                let s = svc.put(now, addr, len);
                prop_assert_eq!(s, r.complete, "put timing diverged");
                len_of.insert(key, len);
                timed += 1;
            } else if let Some(&stored) = len_of.get(&key) {
                let addr = kv.value_addr(key).expect("resident") - KV_SLOT_HEADER as u64;
                let r = kv.get(now, key).expect("resident");
                let s = svc.get(now, addr, stored);
                prop_assert_eq!(s, r.complete, "get timing diverged");
                timed += 1;
            }
            // Gets of absent keys are untimed on both paths: skipped.
        }
        let (gets, puts, _) = svc.ops();
        prop_assert_eq!(gets + puts, timed);
    }

    /// The service-time model is bit-equal to the functional RMW path:
    /// `MemoryService::rmw` completes exactly when
    /// `MemoryController::rmw`'s write-back does, for any address/time
    /// sequence (both chain an 8 B read into an 8 B write).
    #[test]
    fn memory_service_matches_controller_rmw_timing(
        ops in proptest::collection::vec((0u64..10_000, any::<u64>(), 0u64..20_000), 1..40),
    ) {
        let mut ctl = MemoryController::ddr4();
        let mut svc = MemoryService::ddr4();
        let mut now = Time::ZERO;
        for &(word, operand, gap) in &ops {
            now += Duration::from_ps(gap);
            let addr = word * 8;
            let (_, t) = ctl.rmw(now, RmwRequest { addr, op: RmwOp::FetchAdd(operand) });
            let s = svc.rmw(now, addr);
            prop_assert_eq!(s, t.complete, "RMW timing diverged");
        }
        let timing = svc.timing();
        prop_assert_eq!(
            timing.row_hits() + timing.row_misses() + timing.row_conflicts(),
            2 * ops.len() as u64
        );
    }
}
